"""Executor parity: Engine.run vs BuiltNetwork.forward on every zoo spec.

The acceptance bar is <= 1e-5 output deviation with BatchNorm folded and
quantisation baked.  The exact-math comparisons run under the float64 policy
(where the fold's only deviation is final rounding); a separate test pins the
float32 production policy to a tight bound as well.
"""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor, no_grad
from repro.baselines.model_zoo import MODEL_ZOO, get_model
from repro.nas.arch_spec import scale_spec
from repro.nas.network import build_network
from repro.runtime import Engine, compile_spec

BUILDABLE = [
    name for name in sorted(MODEL_ZOO) if get_model(name).buildable()
]


def _scaled(name: str):
    return scale_spec(
        get_model(name, num_classes=4), width_mult=0.1, input_size=32,
        num_classes=4,
    )


def _warmed_network(spec, seed=0):
    """Build + run a few training steps so BN running stats are non-trivial."""
    rng = np.random.default_rng(seed + 99)
    net = build_network(spec, seed=seed)
    for _ in range(2):
        net(Tensor(rng.normal(size=(4, 3, spec.input_size, spec.input_size))))
    net.eval()
    return net


def _reference(net, x, bits=None):
    with no_grad():
        return net(Tensor(x), bits=bits).data


@pytest.mark.usefixtures("float64_numerics")
class TestParityFloat64:
    @pytest.mark.parametrize("name", BUILDABLE)
    def test_every_zoo_spec_within_1e5(self, name):
        spec = _scaled(name)
        net = _warmed_network(spec)
        x = np.random.default_rng(1).normal(size=(2, 3, 32, 32))
        ref = _reference(net, x)
        out = Engine(compile_spec(net)).run(x)
        assert np.max(np.abs(ref - out)) <= 1e-5

    @pytest.mark.parametrize("bits", [4, 8, 16])
    def test_quantised_bitwidths_within_1e5(self, bits):
        for name in ("MobileNet-V2", "ResNet18", "VGG16"):
            spec = _scaled(name)
            net = _warmed_network(spec)
            x = np.random.default_rng(2).normal(size=(2, 3, 32, 32))
            ref = _reference(net, x, bits=bits)
            out = Engine(compile_spec(net, bits=bits)).run(x)
            assert np.max(np.abs(ref - out)) <= 1e-5, (name, bits)

    def test_spec_weight_bits_annotation_parity(self):
        spec = _scaled("EDD-Net-1")  # carries weight_bits=16
        assert spec.weight_bits == 16
        net = _warmed_network(spec)
        x = np.random.default_rng(3).normal(size=(1, 3, 32, 32))
        ref = _reference(net, x)  # forward also defaults to the annotation
        out = Engine(compile_spec(net)).run(x)
        assert np.max(np.abs(ref - out)) <= 1e-5


class TestParityFloat32:
    @pytest.mark.parametrize("name", ["MobileNet-V2", "GoogleNet", "ResNet18"])
    def test_production_dtype_stays_tight(self, name):
        spec = _scaled(name)
        net = _warmed_network(spec)
        x = np.random.default_rng(4).normal(size=(2, 3, 32, 32))
        ref = _reference(net, x)
        out = Engine(compile_spec(net)).run(x)
        assert out.dtype == np.float32
        assert np.max(np.abs(ref - out)) <= 5e-5


class TestEngineMechanics:
    @pytest.fixture(scope="class")
    def engine(self):
        return Engine(compile_spec(_scaled("MobileNet-V2"), seed=0))

    def test_single_sample_round_trip(self, engine):
        x = np.random.default_rng(0).normal(size=(3, 32, 32))
        out = engine.run(x)
        assert out.shape == (4,)
        batched = engine.run(x[None])
        assert batched.shape == (1, 4)
        np.testing.assert_array_equal(out, batched[0])

    def test_runs_are_deterministic(self, engine):
        x = np.random.default_rng(5).normal(size=(3, 3, 32, 32))
        np.testing.assert_array_equal(engine.run(x), engine.run(x))

    def test_batch_results_match_singles(self, engine):
        xs = np.random.default_rng(6).normal(size=(4, 3, 32, 32))
        batched = engine.run(xs)
        for i in range(4):
            single = engine.run(xs[i])
            np.testing.assert_allclose(batched[i], single, rtol=1e-6, atol=1e-6)

    def test_rejects_wrong_shape(self, engine):
        with pytest.raises(ValueError, match="does not match plan input"):
            engine.run(np.zeros((2, 3, 8, 8)))

    def test_arena_cached_per_batch(self, engine):
        x = np.random.default_rng(7).normal(size=(2, 3, 32, 32))
        engine.run(x)
        arena_before = engine._arenas[2]
        engine.run(x)
        assert engine._arenas[2] is arena_before

    def test_stats_accumulate(self):
        engine = Engine(compile_spec(_scaled("MobileNet-V2"), seed=0))
        x = np.random.default_rng(8).normal(size=(1, 3, 32, 32))
        engine.run(x)
        engine.run(x)
        stats = engine.stats()
        assert stats["runs"] == 2
        assert stats["total_ms"] > 0
        assert stats["mean_ms"] == pytest.approx(stats["total_ms"] / 2)

    def test_output_is_a_copy(self, engine):
        x = np.random.default_rng(9).normal(size=(1, 3, 32, 32))
        first = engine.run(x)
        snapshot = first.copy()
        engine.run(np.random.default_rng(10).normal(size=(1, 3, 32, 32)))
        np.testing.assert_array_equal(first, snapshot)
