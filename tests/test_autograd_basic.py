"""Unit tests for elementwise autograd primitives (gradcheck-verified)."""

import numpy as np
import pytest

from repro.autograd import gradcheck
from repro.autograd.ops_basic import (
    add,
    clip_ste,
    div,
    exp,
    log,
    maximum,
    mul,
    neg,
    pow_,
    round_ste,
    sigmoid,
    sqrt,
    sub,
    tanh,
    where,
)
from repro.autograd.tensor import Tensor, no_grad, tensor


def t(data, grad=True):
    return tensor(np.asarray(data, dtype=float), requires_grad=grad)


# Gradcheck runs under an explicit dtype policy: float64 at finite-difference
# precision, float32 (the production default) with loosened tolerances.
GRADCHECK_SETTINGS = {
    np.dtype(np.float64): dict(eps=1e-6, atol=1e-5, rtol=1e-4),
    np.dtype(np.float32): dict(eps=3e-3, atol=5e-2, rtol=5e-2),
}


@pytest.fixture(params=sorted(GRADCHECK_SETTINGS, key=str), ids=lambda d: d.name)
def gc(request):
    dtype = request.param

    def check(fn, inputs):
        return gradcheck(fn, inputs, dtype=dtype, **GRADCHECK_SETTINGS[dtype])

    return check


class TestForwardValues:
    def test_add(self):
        out = add(t([1.0, 2.0]), t([3.0, 4.0]))
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_sub(self):
        np.testing.assert_allclose(sub(t([3.0]), t([5.0])).data, [-2.0])

    def test_mul(self):
        np.testing.assert_allclose(mul(t([2.0, 3.0]), t([4.0, 5.0])).data, [8.0, 15.0])

    def test_div(self):
        np.testing.assert_allclose(div(t([8.0]), t([2.0])).data, [4.0])

    def test_neg(self):
        np.testing.assert_allclose(neg(t([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow(self):
        np.testing.assert_allclose(pow_(t([2.0, 3.0]), 2.0).data, [4.0, 9.0])

    def test_exp_log_roundtrip(self):
        x = t([0.5, 1.5])
        np.testing.assert_allclose(log(exp(x)).data, x.data)

    def test_sqrt(self):
        np.testing.assert_allclose(sqrt(t([4.0, 9.0])).data, [2.0, 3.0])

    def test_tanh_range(self):
        out = tanh(t(np.linspace(-5, 5, 11)))
        assert np.all(np.abs(out.data) < 1.0)

    def test_sigmoid_extremes_stable(self):
        out = sigmoid(t([-1000.0, 0.0, 1000.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0], atol=1e-12)

    def test_maximum(self):
        np.testing.assert_allclose(
            maximum(t([1.0, 5.0]), t([3.0, 2.0])).data, [3.0, 5.0]
        )

    def test_where(self):
        out = where(np.array([True, False]), t([1.0, 1.0]), t([2.0, 2.0]))
        np.testing.assert_allclose(out.data, [1.0, 2.0])

    def test_round_ste_forward(self):
        np.testing.assert_allclose(round_ste(t([0.4, 0.6, -1.5])).data, [0.0, 1.0, -2.0])

    def test_clip_ste_forward(self):
        np.testing.assert_allclose(
            clip_ste(t([-2.0, 0.5, 2.0]), -1.0, 1.0).data, [-1.0, 0.5, 1.0]
        )


class TestGradients:
    def test_add_gradcheck(self, rng, gc):
        a, b = t(rng.normal(size=(3, 4))), t(rng.normal(size=(3, 4)))
        assert gc(add, [a, b])

    def test_mul_gradcheck(self, rng, gc):
        a, b = t(rng.normal(size=(3, 4))), t(rng.normal(size=(3, 4)))
        assert gc(mul, [a, b])

    def test_div_gradcheck(self, rng, gc):
        a = t(rng.normal(size=(3,)))
        b = t(rng.uniform(1.0, 2.0, size=(3,)))
        assert gc(div, [a, b])

    def test_broadcast_gradcheck(self, rng, gc):
        a = t(rng.normal(size=(3, 4)))
        b = t(rng.normal(size=(4,)))
        assert gc(add, [a, b])
        assert gc(mul, [a, b])

    def test_scalar_broadcast_gradcheck(self, rng, gc):
        a = t(rng.normal(size=(2, 3)))
        b = t(rng.normal(size=()))
        assert gc(mul, [a, b])

    def test_pow_gradcheck(self, rng, gc):
        a = t(rng.uniform(0.5, 2.0, size=(5,)))
        assert gc(lambda x: pow_(x, 3.0), [a])
        assert gc(lambda x: pow_(x, -0.5), [a])

    def test_exp_log_sqrt_tanh_sigmoid_gradcheck(self, rng, gc):
        a = t(rng.uniform(0.5, 2.0, size=(4,)))
        for fn in (exp, log, sqrt, tanh, sigmoid):
            a.zero_grad()
            assert gc(fn, [a])

    def test_maximum_gradcheck_no_ties(self, rng, gc):
        a = t([1.0, 5.0, -2.0])
        b = t([3.0, 2.0, -4.0])
        assert gc(maximum, [a, b])

    def test_maximum_tie_splits_gradient(self):
        a, b = t([2.0]), t([2.0])
        out = maximum(a, b)
        out.backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [0.5])

    def test_round_ste_gradient_is_identity(self):
        a = t([0.4, 1.6])
        round_ste(a).backward(np.array([2.0, 3.0]))
        np.testing.assert_allclose(a.grad, [2.0, 3.0])

    def test_clip_ste_gradient_masks_outside(self):
        a = t([-2.0, 0.5, 2.0])
        clip_ste(a, -1.0, 1.0).backward(np.array([1.0, 1.0, 1.0]))
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])


class TestGraphMechanics:
    def test_gradient_accumulates_across_backwards(self):
        a = t([1.0])
        (a * 2.0).backward(np.array([1.0]))
        (a * 3.0).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [5.0])

    def test_diamond_graph_accumulates(self):
        a = t([2.0])
        b = a * 3.0
        out = b + b
        out.backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [6.0])

    def test_no_grad_suppresses_graph(self):
        a = t([1.0])
        with no_grad():
            out = a * 2.0
        assert out.backward_fn is None
        out.backward(np.array([1.0]))  # no-op on a leaf
        assert a.grad is None

    def test_detach_cuts_graph(self):
        a = t([1.0])
        out = (a * 2.0).detach() * 3.0
        out.backward(np.array([1.0]))
        assert a.grad is None

    def test_operator_sugar(self):
        a = t([2.0])
        out = (-a + 3.0) * 2.0 / 4.0 - 1.0
        np.testing.assert_allclose(out.data, [-0.5])
        out2 = 1.0 - a
        np.testing.assert_allclose(out2.data, [-1.0])
        out3 = 6.0 / a
        np.testing.assert_allclose(out3.data, [3.0])
        out4 = a**2
        np.testing.assert_allclose(out4.data, [4.0])

    def test_backward_shape_mismatch_raises(self):
        a = t([1.0, 2.0])
        with pytest.raises(ValueError, match="seed gradient shape"):
            (a * 1.0).backward(np.zeros((3,)))

    def test_repr_mentions_shape_and_grad(self):
        assert "requires_grad" in repr(t([1.0]))
        assert "shape=(2,)" in repr(tensor([1.0, 2.0]))


@pytest.fixture
def rng():
    return np.random.default_rng(0)
