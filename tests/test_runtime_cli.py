"""CLI coverage for the runtime commands (infer / serve / bench --suite)."""

import json

import pytest

from repro.cli import build_parser, main

SCALE = ["--width", "0.1", "--input-size", "16", "--classes", "4"]


class TestParser:
    def test_infer_defaults(self):
        args = build_parser().parse_args(["infer", "--model", "MobileNet-V2"])
        assert args.batch == 1
        assert args.runs == 10
        assert args.format == "text"
        assert args.bits is None

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--model", "EDD-Net-1"])
        assert args.max_batch == 8
        assert args.max_wait_ms == 2.0
        assert args.target == "gpu"
        assert not args.once

    def test_bench_suite_choice(self):
        args = build_parser().parse_args(["bench", "--suite", "runtime"])
        assert args.suite == "runtime"
        assert args.output is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--suite", "nope"])

    def test_infer_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["infer", "--model", "NotANet"])

    def test_runtime_commands_exclude_unbuildable_models(self):
        # ShuffleNet has no builder unit, so it never reaches compile_spec.
        for command in ("infer", "serve"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--model", "ShuffleNet-V2"])

    def test_invalid_counts_exit_as_user_error(self, capsys):
        assert main(["infer", "--model", "MobileNet-V2", *SCALE,
                     "--runs", "0"]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["serve", "--model", "MobileNet-V2", *SCALE,
                     "--requests", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_single_seed_cache_dir_is_rejected(self, capsys, tmp_path):
        # The cache is keyed per multi-seed batch; silently ignoring the
        # flag on the single-seed path would fake a working cache.
        assert main(["search", "--epochs", "1", "--blocks", "2",
                     "--cache-dir", str(tmp_path)]) == 2
        assert "requires --seeds" in capsys.readouterr().err


class TestInferCommand:
    def test_json_output(self, capsys):
        code = main(["infer", "--model", "MobileNet-V2", *SCALE,
                     "--runs", "2", "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"]["name"] == "MobileNet-V2-w0.1"
        assert payload["batch"] == 1
        assert payload["latency_ms"]["p50"] > 0
        assert payload["output_shape"] == [1, 4]

    def test_compare_reports_speedup(self, capsys):
        code = main(["infer", "--model", "MobileNet-V2", *SCALE,
                     "--runs", "2", "--compare", "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["compare"]["speedup"] > 0
        assert payload["compare"]["forward_latency_ms"]["p50"] > 0

    def test_text_output(self, capsys):
        code = main(["infer", "--model", "MobileNet-V2", *SCALE, "--runs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "arena" in out
        assert "p50" in out

    def test_quantised_plan(self, capsys):
        code = main(["infer", "--model", "MobileNet-V2", *SCALE,
                     "--bits", "8", "--runs", "1", "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"]["bits"] == 8


class TestServeCommand:
    def test_once_round_trips_one_request(self, capsys):
        code = main(["serve", "--model", "MobileNet-V2", *SCALE,
                     "--once", "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["requests"] == 1
        assert payload["stats"]["requests"] == 1
        assert payload["stats"]["latency_ms"]["p50"] > 0
        pvm = payload["predicted_vs_measured"]
        assert pvm["target"] == "gpu"
        assert pvm["measured_ms"] > 0

    def test_multiple_requests_text(self, capsys):
        code = main(["serve", "--model", "MobileNet-V2", *SCALE,
                     "--requests", "3", "--max-wait-ms", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 3 request(s)" in out
        assert "latency p50" in out


class TestCompileAndPlanCLI:
    def test_compile_then_infer_plan(self, tmp_path, capsys):
        plan_path = str(tmp_path / "plan.npz")
        assert main(["compile", "--model", "MobileNet-V2", *SCALE,
                     "--out", plan_path, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["path"] == plan_path
        assert payload["plan"]["ops"] > 0
        assert main(["infer", "--plan", plan_path, "--runs", "2",
                     "--format", "json"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["plan"]["name"] == payload["plan"]["name"]
        assert result["latency_ms"]["p50"] > 0

    def test_infer_needs_model_or_plan(self, capsys):
        assert main(["infer", "--runs", "1"]) == 2
        assert "either --model or --plan" in capsys.readouterr().err

    def test_infer_plan_rejects_compare(self, tmp_path, capsys):
        plan_path = str(tmp_path / "plan.npz")
        main(["compile", "--model", "MobileNet-V2", *SCALE, "--out", plan_path])
        capsys.readouterr()
        assert main(["infer", "--plan", plan_path, "--compare"]) == 2

    def test_training_suite_choice(self):
        args = build_parser().parse_args(["bench", "--suite", "training"])
        assert args.suite == "training"

    def test_calibrate_from_serve_log(self, tmp_path, capsys):
        log = str(tmp_path / "serving.jsonl")
        assert main(["serve", "--model", "MobileNet-V2", *SCALE, "--once",
                     "--calibration-log", log, "--format", "json"]) == 0
        capsys.readouterr()
        assert main(["calibrate", "--log", log, "--format", "json"]) == 0
        fits = json.loads(capsys.readouterr().out)["fits"]
        assert len(fits) == 1
        assert fits[0]["records"] == 1
        assert fits[0]["fitted_scale"] > 0
