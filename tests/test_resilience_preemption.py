"""SIGTERM/SIGINT preemption: checkpoint-then-exit at a safe point."""

import os
import signal

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointCallback, find_latest_checkpoint
from repro.core.config import EDDConfig
from repro.core.cosearch import EDDSearcher
from repro.resilience import (
    PREEMPTION_EXIT_CODE,
    Preempted,
    PreemptionCallback,
    PreemptionGuard,
    preemption_requested,
)


def _config(epochs=3):
    return EDDConfig(target="fpga_pipelined", epochs=epochs, batch_size=8,
                     arch_start_epoch=0, seed=0, resource_fraction=0.5)


def _signal_self(signum=signal.SIGTERM):
    os.kill(os.getpid(), signum)


class TestGuard:
    def test_defer_mode_records_without_raising(self):
        with PreemptionGuard(mode="defer") as guard:
            assert not preemption_requested()
            _signal_self()
            assert preemption_requested()
            assert guard.signum == signal.SIGTERM
        assert not preemption_requested()  # guard gone, flag with it

    def test_second_signal_escalates(self):
        with PreemptionGuard(mode="defer"):
            _signal_self()
            with pytest.raises(KeyboardInterrupt):
                _signal_self()

    def test_raise_mode_unwinds_immediately(self):
        entered, exited = [], []

        class _Tracked:
            def __enter__(self):
                entered.append(True)
                return self

            def __exit__(self, *exc):
                exited.append(True)

        with pytest.raises(Preempted) as err:
            with PreemptionGuard(mode="raise"):
                with _Tracked():
                    _signal_self(signal.SIGINT)
        assert err.value.signame == "SIGINT"
        assert entered and exited  # the inner context manager drained

    def test_handlers_restored_on_exit(self):
        before = signal.getsignal(signal.SIGTERM)
        with PreemptionGuard(mode="defer"):
            assert signal.getsignal(signal.SIGTERM) != before
        assert signal.getsignal(signal.SIGTERM) == before

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            PreemptionGuard(mode="panic")

    def test_requested_false_without_guard(self):
        assert not preemption_requested()


class _StubCheckpoint:
    def __init__(self, path="/tmp/stub.npz"):
        self.path = path
        self.calls = 0

    def save_now(self):
        self.calls += 1
        return self.path


class TestCallback:
    def test_noop_without_pending_signal(self):
        stub = _StubCheckpoint()
        callback = PreemptionCallback(stub)
        callback(object())  # no guard, no signal: must not raise
        assert stub.calls == 0

    def test_saves_then_raises_on_pending_signal(self):
        stub = _StubCheckpoint()
        callback = PreemptionCallback(stub)
        record = type("R", (), {"epoch": 5})()
        with PreemptionGuard(mode="defer"):
            _signal_self()
            with pytest.raises(Preempted) as err:
                callback(record)
        assert stub.calls == 1
        assert err.value.checkpoint == stub.path
        assert err.value.epoch == 5
        assert err.value.signum == signal.SIGTERM

    def test_raises_cleanly_without_checkpointer(self):
        callback = PreemptionCallback(None)
        with PreemptionGuard(mode="defer"):
            _signal_self()
            with pytest.raises(Preempted) as err:
                callback(type("R", (), {"epoch": 0})())
        assert err.value.checkpoint is None


class TestSearchPreemption:
    """A preempted search checkpoints at the epoch boundary and the resumed
    run is bit-identical to the uninterrupted one."""

    def _preempt_at(self, tiny_space, tiny_splits, ckdir, kill_epoch):
        searcher = EDDSearcher(tiny_space, tiny_splits, _config())
        checkpoint = CheckpointCallback(searcher, ckdir, every=1)

        def deliver(record):
            if record.epoch == kill_epoch:
                _signal_self()

        with PreemptionGuard(mode="defer"):
            with pytest.raises(Preempted) as err:
                searcher.search(
                    name="pre",
                    callbacks=[deliver, checkpoint,
                               PreemptionCallback(checkpoint)],
                )
        return err.value

    def test_preempted_search_saves_and_resumes_identically(
        self, tiny_space, tiny_splits, tmp_path
    ):
        full = EDDSearcher(tiny_space, tiny_splits, _config()).search(name="pre")
        ckdir = tmp_path / "ck"
        err = self._preempt_at(tiny_space, tiny_splits, ckdir, kill_epoch=1)
        assert err.checkpoint is not None
        assert err.epoch == 1
        latest = find_latest_checkpoint(ckdir)
        assert str(latest) == err.checkpoint
        resumed = EDDSearcher(tiny_space, tiny_splits, _config()).resume(
            latest, name="pre"
        )
        np.testing.assert_array_equal(resumed.theta, full.theta)
        np.testing.assert_array_equal(resumed.phi, full.phi)
        np.testing.assert_equal(
            [r.to_dict() for r in resumed.history],
            [r.to_dict() for r in full.history],
        )

    def test_exit_code_is_ex_tempfail(self):
        assert PREEMPTION_EXIT_CODE == 75
