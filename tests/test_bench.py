"""Unit tests for the numerics benchmark harness (repro.bench).

The full suite is exercised by CI's bench-smoke job; here we test the
harness mechanics — baseline emulation fidelity, report rendering and
serialisation — without paying for a whole benchmark run.
"""

import json

import numpy as np
import pytest

from repro import bench
from repro.autograd import ops_nn
from repro.autograd.tensor import Tensor, get_default_dtype, tensor


class TestBaselineEmulation:
    def test_restores_patched_symbols(self):
        import repro.nas.quantization as quantization
        from repro.nn.layers import BatchNorm2d

        before = (ops_nn.conv2d, BatchNorm2d.forward, quantization.fake_quantize)
        with bench.pre_refactor_numerics():
            assert ops_nn.conv2d is ops_nn._reference_conv2d
            assert get_default_dtype() == np.dtype(np.float64)
        assert (
            ops_nn.conv2d,
            BatchNorm2d.forward,
            quantization.fake_quantize,
        ) == before
        assert get_default_dtype() == np.dtype(np.float32)

    def test_composite_bn_matches_fused(self):
        from repro.nn.layers import BatchNorm2d

        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 3, 5, 5))
        fused = BatchNorm2d(3)(Tensor(x))
        composite_bn = BatchNorm2d(3)
        composite = bench._composite_bn_forward(composite_bn, Tensor(x))
        np.testing.assert_allclose(fused.data, composite.data, atol=1e-5)

    def test_composite_fake_quantize_matches_fused(self):
        from repro.nas.quantization import fake_quantize

        rng = np.random.default_rng(1)
        x = rng.normal(size=(6,))
        fused = fake_quantize(tensor(x), 8)
        composite = bench._composite_fake_quantize(tensor(x), 8)
        np.testing.assert_allclose(fused.data, composite.data, atol=1e-6)


class TestReport:
    @pytest.fixture
    def report(self):
        return {
            "meta": {"quick": True, "dtype_policy": "float32",
                     "numpy": np.__version__, "python": "3.x", "machine": "x"},
            "conv": {
                "cases": [{
                    "name": "dense3x3",
                    "shape": {"batch": 2, "c_in": 3, "hw": 8, "c_out": 4,
                              "kernel": 3, "stride": 1, "groups": 1},
                    "current_ms": 1.0, "baseline_ms": 3.0,
                    "current_ops_per_sec": 1000.0, "speedup": 3.0,
                }],
                "geomean_speedup": 3.0,
                "total_speedup": 3.0,
            },
            "supernet": {
                "weight_step_ms": 10.0, "arch_step_ms": 20.0,
                "baseline_weight_step_ms": 20.0, "baseline_arch_step_ms": 50.0,
                "weight_step_speedup": 2.0, "arch_step_speedup": 2.5,
                "weight_steps_per_sec": 100.0,
            },
            "search": {
                "epochs": 2, "blocks": 2, "wall_seconds": 0.5,
                "baseline_wall_seconds": 1.0, "speedup": 2.0,
                "phase_seconds": {"anneal": 0.0, "weight": 0.3,
                                  "arch": 0.15, "derive": 0.01},
            },
        }

    def test_write_report_round_trips(self, report, tmp_path):
        path = bench.write_report(report, tmp_path / "BENCH_numerics.json")
        assert json.loads(path.read_text()) == report

    def test_render_report_mentions_key_numbers(self, report):
        text = bench.render_report(report)
        assert "dense3x3" in text
        assert "3.0x" in text
        assert "api.search" in text
        assert "engine phases" in text

    def test_conv_cases_are_valid_shapes(self):
        for name, (n, c_in, h, w, c_out, k, s, p, g) in bench.CONV_CASES.items():
            assert c_in % g == 0 and c_out % g == 0, name
            assert (h + 2 * p - k) // s + 1 >= 1, name


def test_conv_bench_single_case_runs(monkeypatch):
    """One tiny case through the real timing loop (fast smoke)."""
    monkeypatch.setattr(
        bench, "CONV_CASES", {"tiny": (1, 2, 5, 5, 2, 3, 1, 1, 1)}
    )
    out = bench.bench_conv(quick=True)
    assert len(out["cases"]) == 1
    case = out["cases"][0]
    assert case["current_ms"] > 0 and case["baseline_ms"] > 0
    assert out["geomean_speedup"] > 0


class TestRuntimeSuite:
    @pytest.fixture(scope="class")
    def report(self):
        """One small model through the real runtime timing loop."""
        return bench.run_runtime_benchmarks(quick=True, models=["MobileNet-V2"])

    def test_report_structure(self, report):
        assert report["meta"]["suite"] == "runtime"
        section = report["runtime"]
        assert section["batch_sizes"] == [1, 8]
        (record,) = section["models"]
        assert record["name"] == "MobileNet-V2"
        assert record["arena_reuse"] > 1.0
        for row in record["batches"]:
            assert row["engine_ms"] > 0 and row["forward_ms"] > 0
            assert row["max_abs_diff"] <= 1e-4

    def test_geomean_is_batch1(self, report):
        section = report["runtime"]
        (record,) = section["models"]
        batch1 = next(r for r in record["batches"] if r["batch"] == 1)
        assert section["geomean_batch1_speedup"] == pytest.approx(
            batch1["speedup"]
        )

    def test_render_runtime_report(self, report):
        text = bench.render_runtime_report(report)
        assert "MobileNet-V2" in text
        assert "geomean batch-1 speedup" in text
        assert "arena" in text

    def test_round_trips_through_json(self, report, tmp_path):
        path = bench.write_report(report, tmp_path / "BENCH_runtime.json")
        assert json.loads(path.read_text())["meta"]["suite"] == "runtime"

    def test_runtime_zoo_names_excludes_shuffle(self):
        names = bench.runtime_zoo_names()
        assert "ShuffleNet-V2" not in names
        assert "MobileNet-V2" in names
        assert len(names) == 12


class TestTrainingSuite:
    def test_tconv_grad_section(self):
        section = bench.bench_tconv_grad(quick=True)
        assert section["cases"], "no tconv cases recorded"
        for case in section["cases"]:
            assert case["stride"] > 1
            assert case["max_abs_diff"] <= 1e-4
            assert case["phased_ms"] > 0 and case["dilated_ms"] > 0
        assert np.isfinite(section["geomean_speedup"])

    def test_step_allocation_profile_counts_drop_with_pool(self):
        searcher, splits = bench._make_searcher()
        x, y = splits.train.images[:12], splits.train.labels[:12]
        off = bench._step_allocation_profile(searcher, x, y, pool_on=False)
        # Two pooled profiles: the first may still be filling buckets for
        # freshly sampled candidate shapes; steady state is the claim.
        bench._step_allocation_profile(searcher, x, y, pool_on=True)
        on = bench._step_allocation_profile(searcher, x, y, pool_on=True)
        assert off["forward_alloc_blocks"] > on["forward_alloc_blocks"] * 5
        assert on["peak_bytes"] < off["peak_bytes"]

    def test_dilated_input_grads_context_restores(self):
        from repro.autograd import ops_nn

        original = ops_nn._conv_input_grad
        with bench._dilated_input_grads():
            assert ops_nn._conv_input_grad is not original
        assert ops_nn._conv_input_grad is original

    def test_render_training_report(self):
        report = {
            "meta": {"quick": True, "suite": "training", "dtype_policy": "float32",
                     "numpy": np.__version__, "python": "3", "machine": "x"},
            "conv": {
                "cases": [{"name": "r_dw3x3", "small": True, "current_ms": 1.0,
                           "baseline_ms": 2.0, "speedup": 2.0,
                           "shape": {}}],
                "geomean_speedup_small": 2.0,
                "geomean_speedup": 2.0,
            },
            "tconv_grad": {
                "cases": [{"name": "dw3x3_s2", "stride": 2, "kernel": 3,
                           "dilated_ms": 2.0, "phased_ms": 1.0, "speedup": 2.0,
                           "max_abs_diff": 0.0}],
                "geomean_speedup": 2.0,
            },
            "step": {
                "weight_step_ms": 10.0, "arch_step_ms": 20.0,
                "baseline_weight_step_ms": 12.0, "baseline_arch_step_ms": 22.0,
                "weight_step_speedup": 1.2, "arch_step_speedup": 1.1,
                "loss_parity": True,
                "allocations": {
                    "pool_off": {"forward_alloc_blocks": 100, "peak_bytes": 1 << 20},
                    "pool_on": {"forward_alloc_blocks": 2, "peak_bytes": 1 << 16},
                    "forward_alloc_reduction": 50.0,
                },
                "pool": {"hits": 10, "misses": 1, "releases": 11,
                         "outstanding": 0, "pooled_bytes": 1 << 20,
                         "free_buffers": 4},
            },
            "search": {"epochs": 2, "blocks": 2, "wall_seconds": 1.0,
                       "baseline_wall_seconds": 1.2, "epoch_seconds": 0.5,
                       "baseline_epoch_seconds": 0.6, "speedup": 1.2,
                       "loss_parity": True},
        }
        text = bench.render_training_report(report)
        assert "r_dw3x3" in text
        assert "forward allocations: 100 -> 2" in text
        assert "loss parity: True" in text
        path_suite = json.dumps(report)
        assert json.loads(path_suite)["meta"]["suite"] == "training"
