"""Unit tests for search-trajectory analysis and ASCII charts."""

import math

import pytest

from repro.core.results import EpochRecord
from repro.eval.trajectory import (
    ConvergenceSummary,
    ascii_chart,
    render_trajectory,
    summarize,
)


def make_history(epochs=5, converging=True):
    records = []
    for e in range(epochs):
        progress = e / max(epochs - 1, 1)
        records.append(
            EpochRecord(
                epoch=e,
                train_loss=2.0 - progress if converging else 2.0,
                val_acc_loss=float("nan") if e == 0 else 1.8 - progress,
                perf_loss=float("nan") if e == 0 else 1.0 - 0.3 * progress,
                resource=float("nan") if e == 0 else 50.0 - 10 * progress,
                total_loss=float("nan") if e == 0 else 3.0 - progress,
                temperature=5.0 * 0.9**e,
                theta_perplexity=4.0 - 3.0 * progress if converging else 4.0,
            )
        )
    return records


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize(make_history())
        assert summary.epochs == 5
        assert summary.train_loss_drop == pytest.approx(1.0)
        assert summary.final_theta_perplexity == pytest.approx(1.0)
        assert summary.perplexity_drop == pytest.approx(3.0)
        assert summary.resource_trend < 0

    def test_skips_nan_warmup(self):
        summary = summarize(make_history())
        assert math.isfinite(summary.final_val_loss)
        assert math.isfinite(summary.final_perf_loss)

    def test_converged_detection(self):
        assert summarize(make_history(converging=True)).converged()
        assert not summarize(make_history(converging=False)).converged()

    def test_explicit_threshold(self):
        summary = summarize(make_history())
        assert summary.converged(perplexity_threshold=1.5)
        assert not summary.converged(perplexity_threshold=0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            summarize([])


class TestAsciiChart:
    def test_contains_extremes(self):
        chart = ascii_chart([1.0, 5.0, 3.0], title="t", width=30, height=5)
        assert "t" in chart
        assert "5.000" in chart
        assert "1.000" in chart
        assert "*" in chart

    def test_handles_all_nan(self):
        chart = ascii_chart([float("nan")] * 3, title="x")
        assert "no finite data" in chart

    def test_handles_constant_series(self):
        chart = ascii_chart([2.0, 2.0, 2.0])
        assert "*" in chart

    def test_single_point(self):
        chart = ascii_chart([1.5])
        assert "*" in chart

    def test_respects_width(self):
        chart = ascii_chart(list(range(100)), width=20, height=4)
        body_lines = [l for l in chart.splitlines() if "|" in l]
        assert all(len(l) <= 9 + 1 + 20 + 2 for l in body_lines)


class TestRenderTrajectory:
    def test_all_panels_present(self):
        text = render_trajectory(make_history())
        assert "train loss" in text
        assert "validation accuracy loss" in text
        assert "Perf_loss" in text
        assert "perplexity" in text
        assert "RES" in text

    def test_gpu_history_omits_resource_panel(self):
        history = make_history()
        for r in history:
            r.resource = 0.0
        assert "RES (device units)" not in render_trajectory(history)

    def test_integrates_with_real_search(self, tiny_space, tiny_splits):
        from repro.core.config import EDDConfig
        from repro.core.cosearch import EDDSearcher

        config = EDDConfig(target="gpu", epochs=2, batch_size=8,
                           arch_start_epoch=0, seed=0)
        result = EDDSearcher(tiny_space, tiny_splits, config).search()
        summary = summarize(result.history)
        assert isinstance(summary, ConvergenceSummary)
        assert render_trajectory(result.history)
