"""Unit tests for concrete layers (conv, BN, pooling, linear)."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    GlobalAvgPool2d,
    Identity,
    Linear,
    ReLU6,
)


@pytest.fixture
def rng():
    return np.random.default_rng(4)


class TestConv2d:
    def test_same_padding_default(self, rng):
        conv = Conv2d(3, 8, kernel_size=5, rng=rng)
        assert conv.padding == 2
        out = conv(Tensor(rng.normal(size=(2, 3, 9, 9))))
        assert out.shape == (2, 8, 9, 9)

    def test_stride_halves(self, rng):
        conv = Conv2d(3, 4, 3, stride=2, rng=rng)
        out = conv(Tensor(rng.normal(size=(1, 3, 8, 8))))
        assert out.shape == (1, 4, 4, 4)

    def test_depthwise_channel_preserving(self, rng):
        conv = DepthwiseConv2d(6, 3, rng=rng)
        out = conv(Tensor(rng.normal(size=(1, 6, 5, 5))))
        assert out.shape == (1, 6, 5, 5)
        assert conv.weight.shape == (6, 1, 3, 3)

    def test_deterministic_init_from_rng(self):
        a = Conv2d(3, 4, 3, rng=np.random.default_rng(1))
        b = Conv2d(3, 4, 3, rng=np.random.default_rng(1))
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_kaiming_scale(self, rng):
        conv = Conv2d(16, 64, 3, rng=rng)
        std = conv.weight.data.std()
        expected = np.sqrt(2.0 / (16 * 9))
        assert 0.5 * expected < std < 1.5 * expected


class TestBatchNorm2d:
    def test_normalises_in_train_mode(self, rng):
        bn = BatchNorm2d(3)
        x = Tensor(rng.normal(loc=5.0, scale=3.0, size=(8, 3, 4, 4)))
        out = bn(x)
        assert abs(out.data.mean()) < 1e-6
        assert abs(out.data.std() - 1.0) < 0.05

    def test_running_stats_update(self, rng):
        bn = BatchNorm2d(2, momentum=0.5)
        x = Tensor(rng.normal(loc=2.0, size=(16, 2, 4, 4)))
        bn(x)
        assert np.all(bn.running_mean > 0.5)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.normal(size=(8, 2, 4, 4)))
        for _ in range(20):
            bn(x)
        bn.eval()
        out_eval = bn(x)
        bn.train()
        out_train = bn(x)
        np.testing.assert_allclose(out_eval.data, out_train.data, atol=0.2)

    def test_gradients_flow_to_gamma_beta_and_input(self, rng):
        bn = BatchNorm2d(3)
        x = Tensor(rng.normal(size=(4, 3, 2, 2)), requires_grad=True)
        bn(x).sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None
        assert x.grad is not None

    def test_rejects_non_nchw(self):
        with pytest.raises(ValueError, match="NCHW"):
            BatchNorm2d(3)(Tensor(np.ones((2, 3))))


class TestOtherLayers:
    def test_linear_shapes(self, rng):
        lin = Linear(10, 5, rng=rng)
        assert lin(Tensor(rng.normal(size=(3, 10)))).shape == (3, 5)

    def test_linear_no_bias(self, rng):
        lin = Linear(4, 2, bias=False, rng=rng)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_relu6(self):
        out = ReLU6()(Tensor(np.array([-3.0, 3.0, 8.0])))
        np.testing.assert_allclose(out.data, [0.0, 3.0, 6.0])

    def test_identity(self, rng):
        x = Tensor(rng.normal(size=(2, 2)))
        assert Identity()(x) is x

    def test_avg_pool_module(self, rng):
        out = AvgPool2d(2)(Tensor(rng.normal(size=(1, 2, 4, 4))))
        assert out.shape == (1, 2, 2, 2)

    def test_global_avg_pool_module(self, rng):
        out = GlobalAvgPool2d()(Tensor(rng.normal(size=(2, 5, 3, 3))))
        assert out.shape == (2, 5)
