"""Phase-decomposed transposed-conv input gradients vs the dilated oracle.

The phased kernel must match :func:`_conv_input_grad_dilated` (the original
dilate-then-correlate formulation, kept as the oracle) to float64 summation-
order tolerance (the sub-GEMMs reassociate the additions) across every
stride/kernel/shape class — including the awkward ones: input
rows the kernel never reaches (``(H - kH) % stride != 0``), phases with an
empty sub-kernel (``stride > kH``), grouped and depthwise layouts, and
non-square inputs.
"""

import numpy as np
import pytest

from repro.autograd import ops_nn
from repro.autograd.gradcheck import gradcheck
from repro.autograd.pool import buffer_pool
from repro.autograd.tensor import default_dtype, tensor

RNG = np.random.default_rng(42)


def _case(n, c_in, c_out, h, w, k, stride, groups):
    out_h = (h - k) // stride + 1
    out_w = (w - k) // stride + 1
    grad = RNG.normal(size=(n, c_out, out_h, out_w))
    weight = RNG.normal(size=(c_out, c_in // groups, k, k))
    return grad, weight, (n, c_in, h, w)


# (c_in, c_out, groups) layout classes: dense, depthwise, grouped.
LAYOUTS = [(3, 5, 1), (4, 4, 4), (4, 6, 2)]


@pytest.mark.parametrize("stride", [2, 3, 4])
@pytest.mark.parametrize("kernel", [1, 2, 3, 5])
@pytest.mark.parametrize("layout", LAYOUTS)
def test_phased_matches_oracle(stride, kernel, layout):
    c_in, c_out, groups = layout
    for h in (kernel, kernel + 1, 7, 9, 12):
        if h < kernel or (h - kernel) // stride + 1 < 1:
            continue
        grad, weight, x_shape = _case(2, c_in, c_out, h, h, kernel, stride, groups)
        oracle = ops_nn._conv_input_grad_dilated(grad, weight, x_shape, stride, groups)
        phased = ops_nn._conv_input_grad_phased(grad, weight, x_shape, stride, groups)
        np.testing.assert_allclose(phased, oracle, rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("stride,kernel,h", [
    (2, 3, 8),    # (8-3) % 2 != 0: trailing row unreached
    (3, 2, 9),    # (9-2) % 3 != 0
    (4, 3, 10),   # (10-3) % 4 != 0
    (3, 5, 11),   # (11-5) % 3 == 0 control case
])
def test_unreached_trailing_rows(stride, kernel, h):
    grad, weight, x_shape = _case(2, 3, 4, h, h, kernel, stride, 1)
    oracle = ops_nn._conv_input_grad_dilated(grad, weight, x_shape, stride, 1)
    phased = ops_nn._conv_input_grad_phased(grad, weight, x_shape, stride, 1)
    np.testing.assert_allclose(phased, oracle, rtol=1e-12, atol=1e-12)
    # Rows past the last kernel touch must have exactly-zero gradient.
    last_touched = (grad.shape[2] - 1) * stride + kernel
    if last_touched < h:
        assert np.all(phased[:, :, last_touched:, :] == 0.0)


@pytest.mark.parametrize("stride,kernel", [(3, 2), (4, 3), (4, 2), (5, 3)])
def test_empty_phases_stay_zero(stride, kernel):
    """stride > kernel: some input phases are never touched by any tap."""
    h = 2 * stride + kernel
    grad, weight, x_shape = _case(2, 3, 4, h, h, kernel, stride, 1)
    oracle = ops_nn._conv_input_grad_dilated(grad, weight, x_shape, stride, 1)
    phased = ops_nn._conv_input_grad_phased(grad, weight, x_shape, stride, 1)
    np.testing.assert_allclose(phased, oracle, rtol=1e-12, atol=1e-12)
    # At least one phase has an empty sub-kernel; its rows are zero.
    empty = [p for p in range(stride)
             if len(range((kernel - 1 - p) % stride, kernel, stride)) == 0]
    assert empty, "case selection should produce an empty phase"
    for p in empty:
        assert np.all(phased[:, :, p::stride, :] == 0.0)


def test_non_square_input():
    grad, weight, x_shape = _case(3, 4, 6, 11, 8, 3, 2, 2)
    oracle = ops_nn._conv_input_grad_dilated(grad, weight, x_shape, 2, 2)
    phased = ops_nn._conv_input_grad_phased(grad, weight, x_shape, 2, 2)
    np.testing.assert_allclose(phased, oracle, rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("stride,kernel,groups", [
    (2, 3, 1), (2, 5, 1), (3, 3, 1), (2, 3, 4), (2, 5, 4), (3, 2, 2),
])
def test_gradcheck_through_phased_path(monkeypatch, stride, kernel, groups):
    """Float64 gradcheck of conv2d with the input grad forced through the
    phase decomposition (the dispatch threshold would otherwise route these
    deliberately small shapes to the dilated path)."""
    monkeypatch.setattr(
        ops_nn, "_conv_input_grad",
        lambda grad, w, shape, s, g: ops_nn._conv_input_grad_phased(
            grad, w, shape, s, g
        ),
    )
    c_in = 4
    c_out = 4 if groups == 4 else 6 if groups == 2 else 5
    h = kernel + 2 * stride + 1
    with default_dtype(np.float64):
        x = tensor(RNG.normal(size=(2, c_in, h, h)), requires_grad=True)
        w = tensor(
            RNG.normal(size=(c_out, c_in // groups, kernel, kernel)),
            requires_grad=True,
        )
        assert gradcheck(
            lambda a, b: ops_nn.conv2d(a, b, stride=stride, groups=groups),
            (x, w),
        )


def test_phased_under_buffer_pool_matches_oracle():
    """Pooled scratch must not change results (canvases are zeroed)."""
    grad, weight, x_shape = _case(2, 4, 4, 9, 9, 3, 2, 4)
    oracle = ops_nn._conv_input_grad_dilated(grad, weight, x_shape, 2, 4)
    with buffer_pool(True):
        # Dirty the pool so reused buffers carry garbage if not re-zeroed.
        x = tensor(RNG.normal(size=(2, 4, 9, 9)), requires_grad=True)
        w = tensor(RNG.normal(size=(4, 1, 3, 3)), requires_grad=True)
        ops_nn.conv2d(x, w, stride=2, groups=4).sum().backward()
        x.zero_grad()
        w.zero_grad()
        phased = ops_nn._conv_input_grad_phased(grad, weight, x_shape, 2, 4)
    np.testing.assert_allclose(phased, oracle, rtol=1e-12, atol=1e-12)


def test_conv2d_stride2_end_to_end_matches_reference():
    """Full conv fwd+bwd with stride 2 against the loop-based reference."""
    with default_dtype(np.float64):
        x_data = RNG.normal(size=(2, 4, 10, 10))
        w_data = RNG.normal(size=(6, 4, 3, 3))
        seed = RNG.normal(size=(2, 6, 5, 5))

        def run(conv_fn):
            x = tensor(x_data, requires_grad=True)
            w = tensor(w_data, requires_grad=True)
            out = conv_fn(x, w, stride=2, padding=1)
            out.backward(seed)
            return out.data.copy(), x.grad.copy(), w.grad.copy()

        out_fast, gx_fast, gw_fast = run(ops_nn.conv2d)
        out_ref, gx_ref, gw_ref = run(ops_nn._reference_conv2d)
        np.testing.assert_allclose(out_fast, out_ref, atol=1e-10)
        np.testing.assert_allclose(gx_fast, gx_ref, atol=1e-10)
        np.testing.assert_allclose(gw_fast, gw_ref, atol=1e-10)
