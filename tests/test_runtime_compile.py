"""Unit tests for graph capture (repro.runtime.compile_spec)."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.baselines.model_zoo import MODEL_ZOO, get_model
from repro.nas.arch_spec import (
    ArchSpec,
    ConvBlock,
    FCBlock,
    MBConvBlock,
    PoolBlock,
    StemBlock,
    scale_spec,
)
from repro.nas.network import build_network
from repro.runtime import Engine, compile_spec
from repro.runtime.plan import ExecutionPlan


def _tiny_spec() -> ArchSpec:
    return ArchSpec(
        "tiny",
        [
            StemBlock(out_ch=8, kernel=3, stride=2),
            MBConvBlock(expansion=2, kernel=3, out_ch=8),
            PoolBlock(kernel=2, stride=2, mode="max"),
            FCBlock(out_features=4),
        ],
        input_size=12,
        input_channels=3,
    )


def _pooly_spec() -> ArchSpec:
    """avgpool(2) immediately followed by a dense 1x1 conv — the fusable pair."""
    return ArchSpec(
        "pooly",
        [
            StemBlock(out_ch=8, kernel=3, stride=1),
            PoolBlock(kernel=2, stride=2, mode="avg"),
            ConvBlock(out_ch=6, kernel=1),
            FCBlock(out_features=4),
        ],
        input_size=12,
        input_channels=3,
    )


class TestCompile:
    def test_plan_structure(self):
        plan = compile_spec(_tiny_spec(), seed=0)
        assert isinstance(plan, ExecutionPlan)
        # stem conv + 3 MBConv convs (residual fused into the projection
        # conv — no separate add op) + pool + gap + linear
        assert plan.num_ops("conv") == 4
        assert plan.num_ops("add") == 0
        assert plan.num_ops("maxpool") == 1
        assert plan.num_ops("gap") == 1
        assert plan.num_ops("linear") == 1
        assert plan.input_shape == (3, 12, 12)
        assert plan.output_shape == (4,)
        fused = [op for op in plan.ops if op.attrs.get("add_buf") is not None]
        assert len(fused) == 1
        # The residual buffer is an op input, so liveness keeps it alive.
        assert fused[0].attrs["add_buf"] in fused[0].inputs

    def test_plan_structure_unfused(self):
        plan = compile_spec(_tiny_spec(), seed=0, fuse_residual=False)
        assert plan.num_ops("conv") == 4
        assert plan.num_ops("add") == 1
        assert all(op.attrs.get("add_buf") is None for op in plan.ops)

    def test_residual_fusion_parity(self):
        """Fused and unfused plans agree to float accumulation exactness."""
        rng = np.random.default_rng(5)
        net = build_network(_tiny_spec(), seed=1)
        for _ in range(2):
            net(Tensor(rng.normal(size=(4, 3, 12, 12))))
        net.eval()
        fused = Engine(compile_spec(net))
        unfused = Engine(compile_spec(net, fuse_residual=False))
        x = rng.normal(size=(4, 3, 12, 12))
        np.testing.assert_array_equal(fused.run(x), unfused.run(x))

    def test_accepts_built_network(self):
        net = build_network(_tiny_spec(), seed=3)
        plan = compile_spec(net)
        assert plan.name == "tiny"

    def test_pool_conv_fusion_collapses_pair_to_one_conv(self):
        plan = compile_spec(_pooly_spec(), seed=0)
        assert plan.num_ops("avgpool") == 0
        fused = [op for op in plan.ops if op.label == "avgpool2+conv1x1"]
        assert len(fused) == 1
        assert fused[0].attrs["kernel"] == 2
        assert fused[0].attrs["stride"] == 2
        unfused = compile_spec(_pooly_spec(), seed=0, fuse_pool=False)
        assert unfused.num_ops("avgpool") == 1
        assert unfused.num_ops("conv") == plan.num_ops("conv")
        assert len(unfused.ops) == len(plan.ops) + 1

    def test_pool_conv_fusion_parity(self, float64_numerics):
        """Fused avgpool+conv matches the unfused plan and the module path."""
        rng = np.random.default_rng(9)
        net = build_network(_pooly_spec(), seed=2)
        for _ in range(2):
            net(Tensor(rng.normal(size=(4, 3, 12, 12))))
        net.eval()
        fused = Engine(compile_spec(net))
        unfused = Engine(compile_spec(net, fuse_pool=False))
        x = rng.normal(size=(4, 3, 12, 12))
        # The fused conv reorders the float summation (window and channels
        # sum in one GEMM) — identical real-arithmetic map, so float64
        # agreement up to rounding.
        np.testing.assert_allclose(
            fused.run(x), unfused.run(x), rtol=1e-12, atol=1e-12
        )
        np.testing.assert_allclose(
            fused.run(x), net(Tensor(x)).data, rtol=1e-9, atol=1e-9
        )

    def test_pool_conv_fusion_skips_max_and_nonunit_convs(self):
        # _tiny_spec's max pool must never fuse; its op counts are pinned by
        # test_plan_structure with fuse_pool on by default.
        plan = compile_spec(_tiny_spec(), seed=0, fuse_pool=True)
        assert plan.num_ops("maxpool") == 1

    def test_bn_folding_matches_eval_forward(self):
        """Folded conv+bias reproduces conv -> eval BN on non-trivial stats."""
        rng = np.random.default_rng(0)
        net = build_network(_tiny_spec(), seed=0)
        for _ in range(3):  # give the running stats real values
            net(Tensor(rng.normal(size=(4, 3, 12, 12))))
        net.eval()
        plan = compile_spec(net)
        stem = plan.ops[0]
        unit = net.units[0]
        scale = unit.bn.gamma.data / np.sqrt(
            np.asarray(unit.bn.running_var) + unit.bn.eps
        )
        np.testing.assert_allclose(
            stem.weight,
            unit.conv.weight.data * scale.reshape(-1, 1, 1, 1),
            rtol=1e-5,
        )
        np.testing.assert_allclose(
            stem.bias,
            unit.bn.beta.data - np.asarray(unit.bn.running_mean) * scale,
            rtol=1e-5, atol=1e-7,
        )

    def test_quantisation_is_baked(self):
        net = build_network(_tiny_spec(), seed=0)
        full = compile_spec(net)
        quant = compile_spec(net, bits=4)
        assert quant.bits == 4
        assert full.bits is None
        stem_full, stem_q = full.ops[0].weight, quant.ops[0].weight
        assert not np.allclose(stem_full, stem_q)
        # 4-bit symmetric grid: at most 2^4 - 1 distinct *unfolded* levels,
        # so per-output-channel the folded weight has few distinct values.
        per_channel = stem_q.reshape(stem_q.shape[0], -1)
        assert all(len(np.unique(row)) <= 15 for row in per_channel)

    def test_spec_weight_bits_annotation_used(self):
        spec = _tiny_spec()
        spec.weight_bits = 8
        plan = compile_spec(spec, seed=0)
        assert plan.bits == 8
        explicit = compile_spec(spec, bits=32, seed=0)
        assert explicit.bits is None  # 32-bit is the float path

    def test_scratch_buffers_registered(self):
        plan = compile_spec(_tiny_spec(), seed=0)
        roles = {b.role for b in plan.buffers}
        assert roles == {"input", "activation", "scratch"}
        for op in plan.ops:
            if op.kind == "conv" and op.attrs["padding"]:
                assert op.attrs["pad_buf"] in op.scratch

    def test_shuffle_spec_rejected(self):
        spec = get_model("ShuffleNet-V2")
        assert not spec.buildable()
        with pytest.raises(TypeError, match="cannot"):
            compile_spec(spec)

    def test_unknown_model_type_rejected(self):
        with pytest.raises(TypeError, match="ArchSpec or BuiltNetwork"):
            compile_spec("MobileNet-V2")  # names resolve in api, not here

    def test_every_buildable_zoo_spec_compiles(self):
        for name in sorted(MODEL_ZOO):
            spec = get_model(name, num_classes=4)
            if not spec.buildable():
                continue
            scaled = scale_spec(spec, width_mult=0.05, input_size=32,
                                num_classes=4)
            plan = compile_spec(scaled, seed=0)
            assert plan.num_ops() > 0
            assert plan.output_shape == (4,)

    def test_to_dict_round_trips(self):
        import json

        plan = compile_spec(_tiny_spec(), seed=0)
        payload = json.loads(json.dumps(plan.to_dict()))
        assert payload["name"] == "tiny"
        assert payload["ops"] == len(plan.ops)
        assert payload["op_kinds"]["conv"] == 4

    def test_flatten_head(self):
        spec = ArchSpec(
            "flat",
            [ConvBlock(out_ch=4, kernel=3), FCBlock(out_features=3, flatten=True)],
            input_size=6,
        )
        plan = compile_spec(spec, seed=0)
        assert plan.num_ops("flatten") == 1
        flat_op = next(op for op in plan.ops if op.kind == "flatten")
        assert plan.buffer(flat_op.output).shape == (4 * 6 * 6,)
