"""Unit tests for optimisers and LR schedules."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.nn.optim import SGD, Adam, CosineSchedule, StepSchedule


def quadratic_param(start=5.0):
    return Tensor(np.array([start]), requires_grad=True)


def quadratic_step(p):
    p.zero_grad()
    loss = (p * p).sum()
    loss.backward()
    return float(loss.data)


class TestSGD:
    def test_descends_quadratic(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(50):
            quadratic_step(p)
            opt.step()
        assert abs(p.item()) < 1e-3

    def test_momentum_accelerates(self):
        p_plain, p_mom = quadratic_param(), quadratic_param()
        sgd = SGD([p_plain], lr=0.01)
        mom = SGD([p_mom], lr=0.01, momentum=0.9)
        for _ in range(30):
            quadratic_step(p_plain)
            sgd.step()
            quadratic_step(p_mom)
            mom.step()
        assert abs(p_mom.item()) < abs(p_plain.item())

    def test_weight_decay_shrinks_params(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1)
        opt.step()
        assert p.item() < 1.0

    def test_skips_params_without_grad(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_validation(self):
        p = quadratic_param()
        with pytest.raises(ValueError, match="learning rate"):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError, match="momentum"):
            SGD([p], lr=0.1, momentum=1.5)


class TestAdam:
    def test_descends_quadratic(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.1)
        losses = []
        for _ in range(200):
            losses.append(quadratic_step(p))
            opt.step()
        # Adam oscillates near the optimum at fixed lr; check convergence zone.
        assert abs(p.item()) < 0.1
        assert losses[-1] < losses[0] * 1e-3

    def test_bias_correction_first_step_magnitude(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.step()
        # With bias correction the first step is ~lr regardless of beta.
        np.testing.assert_allclose(p.item(), 0.9, atol=1e-6)

    def test_weight_decay(self):
        p = Tensor(np.array([2.0]), requires_grad=True)
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1)
        opt.step()
        assert p.item() < 2.0


class TestSchedules:
    def test_cosine_endpoints(self):
        p = quadratic_param()
        opt = SGD([p], lr=1.0)
        sched = CosineSchedule(opt, total_steps=10, lr_min=0.1)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] < 1.0
        np.testing.assert_allclose(lrs[-1], 0.1, atol=1e-9)
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_cosine_clamps_after_total(self):
        p = quadratic_param()
        sched = CosineSchedule(SGD([p], lr=1.0), total_steps=2)
        for _ in range(5):
            last = sched.step()
        np.testing.assert_allclose(last, 0.0, atol=1e-12)

    def test_step_schedule_decays(self):
        p = quadratic_param()
        opt = SGD([p], lr=1.0)
        sched = StepSchedule(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        np.testing.assert_allclose(opt.lr, 0.1)

    def test_schedule_validation(self):
        p = quadratic_param()
        with pytest.raises(ValueError):
            CosineSchedule(SGD([p], lr=1.0), total_steps=0)
        with pytest.raises(ValueError):
            StepSchedule(SGD([p], lr=1.0), step_size=0)
