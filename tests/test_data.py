"""Unit tests for the synthetic dataset substrate and data loading."""

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    Dataset,
    SyntheticTaskConfig,
    make_synthetic_task,
    normalize,
    random_flip,
    random_shift,
)


@pytest.fixture
def small_config():
    return SyntheticTaskConfig(
        num_classes=4, image_size=8, train_per_class=6, val_per_class=3,
        test_per_class=3, seed=0,
    )


class TestSyntheticTask:
    def test_split_sizes(self, small_config):
        splits = make_synthetic_task(small_config)
        assert len(splits.train) == 24
        assert len(splits.val) == 12
        assert len(splits.test) == 12

    def test_shapes_and_dtypes(self, small_config):
        splits = make_synthetic_task(small_config)
        assert splits.train.images.shape == (24, 3, 8, 8)
        assert splits.train.labels.dtype == np.int64

    def test_all_classes_present_in_each_split(self, small_config):
        splits = make_synthetic_task(small_config)
        for split in (splits.train, splits.val, splits.test):
            assert set(split.labels) == {0, 1, 2, 3}

    def test_deterministic_given_seed(self, small_config):
        a = make_synthetic_task(small_config)
        b = make_synthetic_task(small_config)
        np.testing.assert_allclose(a.train.images, b.train.images)
        np.testing.assert_array_equal(a.train.labels, b.train.labels)

    def test_different_seed_different_data(self, small_config):
        import dataclasses

        a = make_synthetic_task(small_config)
        b = make_synthetic_task(dataclasses.replace(small_config, seed=1))
        assert not np.allclose(a.train.images, b.train.images)

    def test_splits_are_not_identical(self, small_config):
        splits = make_synthetic_task(small_config)
        assert not np.allclose(
            splits.train.images[:12], splits.val.images[:12]
        )

    def test_within_class_similarity_exceeds_between_class(self):
        """The class signal must be learnable: same-class samples correlate."""
        config = SyntheticTaskConfig(
            num_classes=4, image_size=12, train_per_class=10, noise_std=0.2, seed=2,
        )
        splits = make_synthetic_task(config)
        images, labels = splits.train.images, splits.train.labels
        flat = images.reshape(len(images), -1)
        flat = flat - flat.mean(axis=1, keepdims=True)
        flat /= np.linalg.norm(flat, axis=1, keepdims=True)
        sim = flat @ flat.T
        same = sim[labels[:, None] == labels[None, :]]
        diff = sim[labels[:, None] != labels[None, :]]
        # Remove self-similarity diagonal contribution.
        assert same.mean() > diff.mean() + 0.05

    def test_config_validation(self):
        with pytest.raises(ValueError, match="classes"):
            SyntheticTaskConfig(num_classes=1)
        with pytest.raises(ValueError, match="image_size"):
            SyntheticTaskConfig(image_size=2)
        with pytest.raises(ValueError, match="split"):
            SyntheticTaskConfig(train_per_class=0)

    def test_dataset_validation(self):
        with pytest.raises(ValueError, match="NCHW"):
            Dataset(images=np.zeros((3, 4)), labels=np.zeros(3))
        with pytest.raises(ValueError, match="mismatch"):
            Dataset(images=np.zeros((3, 1, 2, 2)), labels=np.zeros(2))

    def test_num_classes_property(self, small_config):
        splits = make_synthetic_task(small_config)
        assert splits.train.num_classes == 4


class TestDataLoader:
    def test_batch_shapes(self, small_config):
        splits = make_synthetic_task(small_config)
        loader = DataLoader(splits.train, batch_size=5, seed=0)
        batches = list(loader)
        assert len(batches) == len(loader) == 5  # 24 samples -> 4 full + 1 part
        assert batches[0][0].shape == (5, 3, 8, 8)
        assert batches[-1][0].shape == (4, 3, 8, 8)

    def test_drop_last(self, small_config):
        splits = make_synthetic_task(small_config)
        loader = DataLoader(splits.train, batch_size=5, drop_last=True, seed=0)
        assert len(loader) == 4
        assert all(len(y) == 5 for _, y in loader)

    def test_covers_every_sample_once(self, small_config):
        splits = make_synthetic_task(small_config)
        loader = DataLoader(splits.train, batch_size=7, shuffle=True, seed=1)
        seen = np.concatenate([y for _, y in loader])
        assert len(seen) == 24

    def test_shuffle_differs_between_epochs(self, small_config):
        splits = make_synthetic_task(small_config)
        loader = DataLoader(splits.train, batch_size=24, shuffle=True, seed=1)
        first = next(iter(loader))[1].copy()
        second = next(iter(loader))[1].copy()
        assert not np.array_equal(first, second)

    def test_no_shuffle_preserves_order(self, small_config):
        splits = make_synthetic_task(small_config)
        loader = DataLoader(splits.train, batch_size=24, shuffle=False)
        np.testing.assert_array_equal(next(iter(loader))[1], splits.train.labels)

    def test_rejects_bad_batch_size(self, small_config):
        splits = make_synthetic_task(small_config)
        with pytest.raises(ValueError):
            DataLoader(splits.train, batch_size=0)


class TestTransforms:
    def test_normalize_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        x = rng.normal(loc=3.0, scale=2.0, size=(10, 3, 4, 4))
        out = normalize(x)
        assert abs(out.mean()) < 1e-12
        assert abs(out.std() - 1.0) < 1e-12

    def test_normalize_with_explicit_stats(self):
        x = np.ones((2, 1, 2, 2))
        out = normalize(x, mean=1.0, std=2.0)
        np.testing.assert_allclose(out, 0.0)

    def test_random_flip_preserves_content(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(6, 1, 4, 4))
        out = random_flip(x, rng, p=1.0)
        np.testing.assert_allclose(out, x[..., ::-1])

    def test_random_flip_p_zero_identity(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(6, 1, 4, 4))
        np.testing.assert_allclose(random_flip(x, rng, p=0.0), x)

    def test_random_shift_preserves_pixel_multiset(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 2, 5, 5))
        out = random_shift(x, rng, max_shift=2)
        for i in range(3):
            np.testing.assert_allclose(
                np.sort(out[i].ravel()), np.sort(x[i].ravel())
            )
