"""Process worker tier: cross-process packs, tier parity, liveness stats.

Three contracts:

* **weight packs cross the process boundary** — a
  :class:`~repro.runtime.fleet.weights.PlanWeightPack` restored inside a
  freshly *spawned* interpreter yields read-only memmapped weights and
  byte-identical engine outputs (the cold-start path every process worker
  takes);
* **tier parity** — for the same inputs, thread and process fleets return
  numerically identical outputs and their ``stats()`` documents share one
  schema (so dashboards and ``repro calibrate`` need no per-tier code);
* **liveness surface** — process workers report real pids and respawn
  counts, thread workers the same keys with ``pid: None``.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro import api
from repro.nas.arch_spec import ArchSpec, FCBlock, MBConvBlock, PoolBlock, StemBlock
from repro.runtime import Engine, compile_spec
from repro.runtime.fleet import (
    ServingFleet,
    burst_trace,
    merge_traces,
    pack_plan_memmap,
    replay,
)

WAIT = 30.0


def _tiny_spec(name: str, out_features: int = 4) -> ArchSpec:
    return ArchSpec(
        name,
        [
            StemBlock(out_ch=8, kernel=3, stride=2),
            MBConvBlock(expansion=2, kernel=3, out_ch=8),
            PoolBlock(kernel=2, stride=2, mode="max"),
            FCBlock(out_features=out_features),
        ],
        input_size=12,
        input_channels=3,
    )


@pytest.fixture(scope="module")
def plans():
    return {
        "a": compile_spec(_tiny_spec("a"), seed=0),
        "b": compile_spec(_tiny_spec("b", out_features=3), seed=1),
    }


@pytest.fixture
def sample():
    return np.random.default_rng(0).standard_normal((3, 12, 12))


def _pack_child(pack, sample_bytes, shape, dtype, queue):
    """Spawned-subprocess body: restore the pack and run one sample.

    Module-level so the spawn start method can pickle it from the test
    module (spawn ships the parent's ``sys.path``).
    """
    plan = pack.restore()
    writable = 0
    checked = 0
    for op in plan.ops:
        for array in (op.weight, op.bias):
            if array is None:
                continue
            checked += 1
            try:
                array[...] = 0.0
                writable += 1
            except (ValueError, OSError):
                pass
    sample = np.frombuffer(sample_bytes, dtype=dtype).reshape(shape)
    out = np.asarray(Engine(plan).run(sample))
    queue.put({
        "checked": checked,
        "writable": writable,
        "out_bytes": out.tobytes(),
        "out_dtype": str(out.dtype),
        "out_shape": out.shape,
    })


class TestCrossProcessPack:
    def test_spawned_subprocess_restores_readonly_and_byte_identical(
        self, plans, sample
    ):
        pack = pack_plan_memmap(plans["a"])
        try:
            ctx = mp.get_context("spawn")
            queue = ctx.Queue()
            proc = ctx.Process(
                target=_pack_child,
                args=(
                    pack,
                    sample.tobytes(),
                    sample.shape,
                    str(sample.dtype),
                    queue,
                ),
            )
            proc.start()
            try:
                report = queue.get(timeout=WAIT)
            finally:
                proc.join(WAIT)
            assert proc.exitcode == 0
            assert report["checked"] > 0
            assert report["writable"] == 0  # every array is read-only
            expected = np.asarray(Engine(plans["a"]).run(sample))
            assert report["out_dtype"] == str(expected.dtype)
            assert tuple(report["out_shape"]) == expected.shape
            assert report["out_bytes"] == expected.tobytes()
        finally:
            pack.unlink()


def _schema(obj):
    """Key structure of a stats document, with leaves erased."""
    if isinstance(obj, dict):
        return {key: _schema(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [_schema(value) for value in obj]
    return None


class TestProcessFleet:
    def test_round_trip_matches_engines(self, plans, sample):
        with ServingFleet(plans, workers=2, kind="process") as fleet:
            out_a = fleet.infer("a", sample, timeout=WAIT)
            out_b = fleet.infer("b", sample, timeout=WAIT)
            np.testing.assert_array_equal(
                out_a, Engine(plans["a"]).run(sample)
            )
            np.testing.assert_array_equal(
                out_b, Engine(plans["b"]).run(sample)
            )
            stats = fleet.stats()
        assert stats["fleet"]["completed"] == 2
        assert stats["config"]["kind"] == "process"

    def test_thread_and_process_tiers_are_equivalent(self, plans, sample):
        # Sequential arrivals (no coalescing races) so both tiers complete
        # every request and emit fully-populated stats documents.
        trace = merge_traces(
            burst_trace("a", bursts=3, burst_size=1, gap_s=0.03),
            burst_trace("b", bursts=3, burst_size=1, gap_s=0.03),
        )
        inputs = {"a": sample, "b": sample}
        records = {}
        outputs = {}
        stats = {}
        for kind in ("thread", "process"):
            with ServingFleet(plans, workers=2, kind=kind) as fleet:
                records[kind] = replay(fleet, trace, inputs, timeout=WAIT)
                outputs[kind] = {
                    model: fleet.infer(model, sample, timeout=WAIT)
                    for model in ("a", "b")
                }
                stats[kind] = fleet.stats()
        # Numerically identical outputs...
        for model in ("a", "b"):
            np.testing.assert_array_equal(
                outputs["thread"][model], outputs["process"][model]
            )
        # ...the same replay outcome...
        assert records["thread"].keys() == records["process"].keys()
        for kind in ("thread", "process"):
            assert records[kind]["completed"] == len(trace)
            assert records[kind]["rejected"] == 0
            assert records[kind]["failed"] == 0
        # ...and one stats schema across tiers (only leaf values differ).
        assert _schema(stats["thread"]) == _schema(stats["process"])

    def test_worker_liveness_blocks(self, plans):
        with ServingFleet(plans, workers=2, kind="process") as proc_fleet:
            proc_workers = proc_fleet.stats()["workers"]
        with ServingFleet(plans, workers=2, kind="thread") as thread_fleet:
            thread_workers = thread_fleet.stats()["workers"]
        assert len(proc_workers) == len(thread_workers) == 2
        pids = set()
        for block in proc_workers:
            assert block["kind"] == "process"
            assert block["alive"] is True
            assert block["restarts"] == 0
            assert isinstance(block["pid"], int)
            pids.add(block["pid"])
        assert len(pids) == 2  # distinct real processes
        for block in thread_workers:
            assert block["kind"] == "thread"
            assert block["pid"] is None
            assert block["restarts"] == 0
            assert block.keys() == proc_workers[0].keys()

    def test_invalid_kind_rejected(self, plans):
        with pytest.raises(ValueError, match="kind"):
            ServingFleet(plans, workers=1, kind="goroutine")

    def test_api_serve_fleet_passes_worker_kind(self):
        with api.serve_fleet(
            {"tiny": "MobileNet-V2"}, workers=1, worker_kind="process",
            width_mult=0.1, input_size=16, num_classes=4,
        ) as fleet:
            x = np.random.default_rng(2).normal(size=(3, 16, 16))
            logits = fleet.infer("tiny", x, timeout=WAIT)
            assert logits.shape == (4,)
            assert fleet.stats()["config"]["kind"] == "process"
