"""Shared fixtures: tiny search spaces, datasets and samplers.

Everything here is sized for sub-second construction so the suite stays
fast on a single CPU.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticTaskConfig, make_synthetic_task
from repro.nas.gumbel import GumbelSoftmax
from repro.nas.quantization import QuantizationConfig
from repro.nas.space import SearchSpaceConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def float64_numerics():
    """Pin the tensor dtype policy to float64 for exact-math assertions.

    Modules full of identity/gradcheck checks opt in with
    ``pytestmark = pytest.mark.usefixtures("float64_numerics")``; the
    float32 production policy is exercised by test_autograd_dtype.
    """
    from repro.autograd.tensor import default_dtype

    with default_dtype(np.float64):
        yield


@pytest.fixture
def tiny_space() -> SearchSpaceConfig:
    return SearchSpaceConfig.tiny()


@pytest.fixture
def small_space() -> SearchSpaceConfig:
    return SearchSpaceConfig.reduced(num_blocks=3, num_classes=6, input_size=12)


@pytest.fixture
def fpga_quant_per_op() -> QuantizationConfig:
    return QuantizationConfig.fpga(sharing="per_op")


@pytest.fixture
def fpga_quant_per_block() -> QuantizationConfig:
    return QuantizationConfig.fpga(sharing="per_block_op")


@pytest.fixture
def gpu_quant() -> QuantizationConfig:
    return QuantizationConfig.gpu()


@pytest.fixture
def sampler() -> GumbelSoftmax:
    return GumbelSoftmax(seed=7)


@pytest.fixture
def tiny_splits():
    config = SyntheticTaskConfig(
        num_classes=4,
        image_size=8,
        train_per_class=8,
        val_per_class=4,
        test_per_class=4,
        seed=11,
    )
    return make_synthetic_task(config)
