"""Unit + property tests for Gumbel-Softmax sampling (paper Sec. 3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd.tensor import Tensor
from repro.nas.gumbel import (
    GumbelSoftmax,
    TemperatureSchedule,
    entropy_of_logits,
    gumbel_softmax_sample,
    log_m_entropy_budget,
    perplexity,
    sample_gumbel,
    uniform_logits,
)

pytestmark = pytest.mark.usefixtures("float64_numerics")


@pytest.fixture
def rng():
    return np.random.default_rng(6)


class TestSampling:
    def test_soft_sample_is_distribution(self, rng):
        logits = Tensor(rng.normal(size=(4, 5)))
        out = gumbel_softmax_sample(logits, 1.0, rng, hard=False)
        assert np.all(out.data >= 0)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_hard_sample_is_one_hot(self, rng):
        logits = Tensor(rng.normal(size=(4, 5)))
        out = gumbel_softmax_sample(logits, 1.0, rng, hard=True)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))
        assert set(np.unique(out.data)) <= {0.0, 1.0}

    def test_hard_sample_straight_through_gradient(self, rng):
        logits = Tensor(rng.normal(size=(3,)), requires_grad=True)
        out = gumbel_softmax_sample(logits, 1.0, rng, hard=True)
        out.backward(np.ones(3))
        assert logits.grad is not None
        # Softmax jacobian rows sum to ~0.
        np.testing.assert_allclose(logits.grad.sum(), 0.0, atol=1e-10)

    def test_soft_gradient_reaches_logits(self, rng):
        logits = Tensor(rng.normal(size=(5,)), requires_grad=True)
        out = gumbel_softmax_sample(logits, 2.0, rng, hard=False)
        (out * Tensor(np.arange(5.0))).sum().backward()
        assert np.abs(logits.grad).sum() > 0

    def test_low_temperature_concentrates(self, rng):
        logits = Tensor(np.array([5.0, 0.0, 0.0]))
        out = gumbel_softmax_sample(logits, 0.05, rng, hard=False)
        assert out.data.max() > 0.99

    def test_sampling_frequencies_follow_logits(self):
        """Gumbel-max property: argmax frequencies approximate softmax."""
        rng = np.random.default_rng(0)
        logits = Tensor(np.log(np.array([0.6, 0.3, 0.1])))
        counts = np.zeros(3)
        for _ in range(2000):
            out = gumbel_softmax_sample(logits, 1.0, rng, hard=True)
            counts[np.argmax(out.data)] += 1
        np.testing.assert_allclose(counts / 2000, [0.6, 0.3, 0.1], atol=0.05)

    def test_invalid_temperature(self, rng):
        with pytest.raises(ValueError, match="temperature"):
            gumbel_softmax_sample(Tensor(np.zeros(3)), 0.0, rng)

    def test_gumbel_noise_statistics(self, rng):
        noise = sample_gumbel((20000,), rng)
        # Gumbel(0,1): mean = Euler-Mascheroni, var = pi^2/6.
        assert abs(noise.mean() - 0.5772) < 0.03
        assert abs(noise.var() - np.pi**2 / 6) < 0.1


class TestTemperatureSchedule:
    def test_monotone_decay_to_floor(self):
        sched = TemperatureSchedule(t_initial=5.0, t_min=0.5, decay=0.5)
        temps = [sched.at_epoch(e) for e in range(10)]
        assert temps[0] == 5.0
        assert all(a >= b for a, b in zip(temps, temps[1:]))
        assert temps[-1] == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            TemperatureSchedule(t_initial=-1.0)
        with pytest.raises(ValueError):
            TemperatureSchedule(decay=1.5)

    def test_sampler_set_epoch(self):
        sampler = GumbelSoftmax(TemperatureSchedule(5.0, 0.1, 0.5), seed=0)
        assert sampler.set_epoch(0) == 5.0
        assert sampler.set_epoch(2) == 1.25

    def test_sampler_reproducible_by_seed(self):
        logits = Tensor(np.zeros(4))
        a = GumbelSoftmax(seed=3).sample(logits).data
        b = GumbelSoftmax(seed=3).sample(logits).data
        np.testing.assert_allclose(a, b)

    def test_expected_is_noise_free(self):
        sampler = GumbelSoftmax(seed=0)
        logits = Tensor(np.array([1.0, 0.0]))
        a = sampler.expected(logits).data
        b = sampler.expected(logits).data
        np.testing.assert_allclose(a, b)


class TestEntropyHelpers:
    def test_uniform_logits_max_entropy(self):
        logits = uniform_logits((4,))
        np.testing.assert_allclose(entropy_of_logits(logits), log_m_entropy_budget(4))

    def test_perplexity_of_uniform(self):
        np.testing.assert_allclose(perplexity(uniform_logits((5,))), 5.0)

    def test_peaked_logits_low_entropy(self):
        assert entropy_of_logits(np.array([100.0, 0.0, 0.0])) < 1e-6


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=2, max_size=8
    ),
    st.floats(min_value=0.1, max_value=10.0),
    st.integers(min_value=0, max_value=10_000),
)
def test_property_sample_always_simplex(logits, temperature, seed):
    rng = np.random.default_rng(seed)
    out = gumbel_softmax_sample(Tensor(np.array(logits)), temperature, rng, hard=False)
    assert np.all(out.data >= 0)
    np.testing.assert_allclose(out.data.sum(), 1.0, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=2, max_size=8
    ),
    st.integers(min_value=0, max_value=10_000),
)
def test_property_hard_sample_selects_valid_index(logits, seed):
    rng = np.random.default_rng(seed)
    out = gumbel_softmax_sample(Tensor(np.array(logits)), 1.0, rng, hard=True)
    assert int(out.data.argmax()) in range(len(logits))
    np.testing.assert_allclose(np.sort(out.data)[-1], 1.0)
