"""Fault-path tests for the resilient parallel evaluator.

Faults are injected with the deterministic :mod:`repro.resilience.testing`
harness: each task carries a per-attempt script (crash / hang / error / ok)
and an on-disk attempt ledger that survives worker death and pool rebuilds.
The load-bearing assertion throughout is *value equality with the
fault-free run* — retries, timeouts and rebuilds may change wall-clock,
never results or rankings.
"""

import numpy as np
import pytest

from repro.core.parallel import ParallelEvaluator
from repro.resilience import PoisonTask, RetryPolicy
from repro.resilience.testing import (
    CRASH,
    ERROR,
    HANG,
    OK,
    FaultInjected,
    FaultyTask,
    attempts_made,
)

# No-sleep policy: fault tests exercise the retry logic, not the pacing.
FAST = RetryPolicy(max_retries=2, base_delay_s=0.0, max_delay_s=0.0)


def _score(payload):
    """Deterministic per-seed score — the payload *is* the seed."""
    rng = np.random.default_rng(payload)
    return float(rng.normal())


TASK = FaultyTask(_score)


def _scripted(ledger, scripts):
    """Payloads for seeds ``0..len(scripts)-1`` with the given fault scripts."""
    return [
        TASK.payload(i, ledger, i, faults=script)
        for i, script in enumerate(scripts)
    ]


def _reference(n):
    """The fault-free serial answer every faulted run must reproduce."""
    return [_score(i) for i in range(n)]


class TestCrashRecovery:
    def test_worker_crash_is_retried_to_the_right_answer(self, tmp_path):
        scripts = [(), (CRASH, OK), ()]
        evaluator = ParallelEvaluator(workers=2, retry=FAST)
        results = evaluator.map(TASK, _scripted(tmp_path, scripts))
        assert results == _reference(3)
        assert attempts_made(tmp_path, 1) == 2  # crashed once, then clean

    def test_innocent_tasks_survive_pool_rebuild(self, tmp_path):
        # One crash breaks the shared pool; every unfinished task is
        # resubmitted, but only the crasher's budget is charged.
        scripts = [(CRASH, OK), (), (), (), ()]
        evaluator = ParallelEvaluator(
            workers=2, retry=RetryPolicy(max_retries=1, base_delay_s=0.0,
                                         max_delay_s=0.0)
        )
        results = evaluator.map(TASK, _scripted(tmp_path, scripts))
        assert results == _reference(5)

    def test_repeated_crasher_is_quarantined(self, tmp_path):
        scripts = [(), (CRASH, CRASH, CRASH, CRASH)]
        evaluator = ParallelEvaluator(
            workers=2, retry=RetryPolicy(max_retries=1, base_delay_s=0.0,
                                         max_delay_s=0.0)
        )
        with pytest.raises(PoisonTask) as err:
            evaluator.map(TASK, _scripted(tmp_path, scripts))
        assert err.value.index == 1
        assert len(err.value.failures) == 2
        assert "crash" in err.value.failures[0]


class TestTimeouts:
    def test_hung_task_is_killed_and_retried(self, tmp_path):
        scripts = [(), (HANG, OK)]
        evaluator = ParallelEvaluator(
            workers=2, task_timeout=1.0, retry=FAST
        )
        results = evaluator.map(TASK, _scripted(tmp_path, scripts))
        assert results == _reference(2)
        assert attempts_made(tmp_path, 1) == 2

    def test_permanent_hang_quarantines_without_wedging(self, tmp_path):
        scripts = [(HANG, HANG, HANG, HANG), ()]
        evaluator = ParallelEvaluator(
            workers=2, task_timeout=0.5,
            retry=RetryPolicy(max_retries=1, base_delay_s=0.0, max_delay_s=0.0),
        )
        with pytest.raises(PoisonTask) as err:
            evaluator.map(TASK, _scripted(tmp_path, scripts))
        assert err.value.index == 0
        assert all("timeout" in f for f in err.value.failures)

    def test_task_raising_timeouterror_is_an_error_not_a_timeout(self):
        # 3.11+ folds futures.TimeoutError into builtin TimeoutError; a task
        # *raising* it must be treated as a task failure, not a hung worker.
        evaluator = ParallelEvaluator(
            workers=2, kind="thread", task_timeout=30.0, quarantine_after=1
        )
        with pytest.raises(PoisonTask) as err:
            evaluator.map(_raise_timeout, [0, 1])
        assert "TimeoutError" in err.value.failures[0]
        assert "timeout after" not in err.value.failures[0]


def _raise_timeout(_payload):
    raise TimeoutError("task-level deadline")


class TestFlakyErrors:
    @pytest.mark.parametrize("kind", ["process", "thread"])
    def test_flaky_errors_retry_in_place(self, tmp_path, kind):
        scripts = [(), (ERROR, ERROR, OK), (ERROR, OK)]
        evaluator = ParallelEvaluator(workers=2, kind=kind, retry=FAST)
        results = evaluator.map(TASK, _scripted(tmp_path, scripts))
        assert results == _reference(3)

    def test_serial_path_retries_identically(self, tmp_path):
        scripts = [(), (ERROR, OK)]
        serial = ParallelEvaluator(workers=1, retry=FAST)
        assert serial.map(TASK, _scripted(tmp_path, scripts)) == _reference(2)
        assert attempts_made(tmp_path, 1) == 2

    def test_serial_poison_matches_parallel_contract(self, tmp_path):
        scripts = [(ERROR, ERROR, ERROR, ERROR)]
        serial = ParallelEvaluator(
            workers=1, retry=RetryPolicy(max_retries=2, base_delay_s=0.0,
                                         max_delay_s=0.0)
        )
        with pytest.raises(PoisonTask) as err:
            serial.map(TASK, _scripted(tmp_path, scripts))
        assert err.value.index == 0
        assert len(err.value.failures) == 3
        assert isinstance(err.value.__cause__, FaultInjected)

    def test_without_retry_errors_still_fail_fast(self, tmp_path):
        scripts = [(ERROR,)]
        evaluator = ParallelEvaluator(workers=2, kind="thread")
        with pytest.raises(FaultInjected):
            evaluator.map(TASK, _scripted(tmp_path, scripts))

    def test_quarantine_after_caps_retry_budget(self, tmp_path):
        scripts = [(ERROR, ERROR, ERROR, ERROR)]
        evaluator = ParallelEvaluator(
            workers=2, kind="thread",
            retry=RetryPolicy(max_retries=10, base_delay_s=0.0,
                              max_delay_s=0.0),
            quarantine_after=2,
        )
        with pytest.raises(PoisonTask) as err:
            evaluator.map(TASK, _scripted(tmp_path, scripts))
        assert len(err.value.failures) == 2


class TestRankingEquality:
    """The headline guarantee: faults never change values or rankings."""

    def test_faulted_parallel_equals_fault_free_serial(self, tmp_path):
        n = 6
        scripts = [()] * n
        scripts[1] = (ERROR, OK)
        scripts[3] = (CRASH, OK)
        scripts[4] = (ERROR, ERROR, OK)
        evaluator = ParallelEvaluator(workers=3, retry=FAST)
        faulted = evaluator.map(TASK, _scripted(tmp_path, scripts))
        clean = _reference(n)
        assert faulted == clean  # bit-identical values...
        assert list(np.argsort(faulted)) == list(np.argsort(clean))  # ...and rank

    def test_worker_count_invariance_under_faults(self, tmp_path):
        scripts = [(), (ERROR, OK), (), (ERROR, OK)]
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        one = ParallelEvaluator(workers=1, retry=FAST).map(
            TASK, _scripted(tmp_path / "a", scripts)
        )
        many = ParallelEvaluator(workers=4, kind="thread", retry=FAST).map(
            TASK, _scripted(tmp_path / "b", scripts)
        )
        assert one == many == _reference(4)


class TestValidation:
    def test_rejects_bad_task_timeout(self):
        with pytest.raises(ValueError, match="task_timeout"):
            ParallelEvaluator(workers=2, task_timeout=0)

    def test_rejects_bad_quarantine(self):
        with pytest.raises(ValueError, match="quarantine_after"):
            ParallelEvaluator(workers=2, quarantine_after=0)

    def test_plain_evaluator_is_not_resilient(self):
        assert not ParallelEvaluator(workers=2)._resilient
        assert ParallelEvaluator(workers=2, retry=FAST)._resilient
        assert ParallelEvaluator(workers=2, task_timeout=1.0)._resilient
