"""Kernel-equivalence tests: im2col convolutions vs the shift-and-accumulate
oracle (:func:`repro.autograd.ops_nn._reference_conv2d` — the pre-refactor
implementation kept verbatim as an independent reference).

Forward values and both backward gradients (input and weight) must match
across strides, paddings, group counts (dense / grouped / depthwise), odd
spatial shapes, and the batch-chunked large-column path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.autograd.ops_nn as ops_nn
from repro.autograd.ops_nn import _reference_conv2d, conv2d, max_pool2d
from repro.autograd.tensor import default_dtype, tensor


@pytest.fixture(autouse=True)
def _float64_numerics():
    """Equivalence is asserted to 1e-10; run both paths at float64."""
    with default_dtype(np.float64):
        yield


def _compare(n, c_in, h, w, c_out, k, stride, padding, groups, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, c_in, h, w))
    weight = rng.normal(size=(c_out, c_in // groups, k, k))

    x_new, w_new = tensor(x, requires_grad=True), tensor(weight, requires_grad=True)
    out_new = conv2d(x_new, w_new, stride=stride, padding=padding, groups=groups)
    seed_grad = rng.normal(size=out_new.shape)
    out_new.backward(seed_grad)

    x_ref, w_ref = tensor(x, requires_grad=True), tensor(weight, requires_grad=True)
    out_ref = _reference_conv2d(x_ref, w_ref, stride=stride, padding=padding,
                                groups=groups)
    out_ref.backward(seed_grad)

    np.testing.assert_allclose(out_new.data, out_ref.data, atol=1e-10)
    np.testing.assert_allclose(x_new.grad, x_ref.grad, atol=1e-10)
    np.testing.assert_allclose(w_new.grad, w_ref.grad, atol=1e-10)


# Explicit grid: every conv flavour the supernet and the model zoo emit.
@pytest.mark.parametrize("stride", [1, 2, 3])
@pytest.mark.parametrize("case", [
    ("dense", 2, 4, 9, 7, 6, 3, 1, 1),     # (n, c_in, h, w, c_out, k, pad, groups)
    ("pointwise", 3, 8, 6, 6, 12, 1, 0, 1),
    ("depthwise3", 2, 6, 8, 8, 6, 3, 1, 6),
    ("depthwise5", 1, 4, 9, 9, 4, 5, 2, 4),
    ("grouped", 2, 8, 7, 7, 12, 3, 1, 2),
], ids=lambda c: c[0] if isinstance(c, tuple) else str(c))
def test_conv_matches_reference(case, stride):
    _, n, c_in, h, w, c_out, k, pad, groups = case
    if (h + 2 * pad - k) < 0:
        pytest.skip("kernel larger than padded input")
    _compare(n, c_in, h, w, c_out, k, stride, pad, groups, seed=stride)


def test_chunked_path_matches_reference():
    """Force the batch-chunked backward (columns above _COL_CHUNK_BYTES)."""
    original = ops_nn._COL_CHUNK_BYTES
    ops_nn._COL_CHUNK_BYTES = 1 << 10  # 1 KiB: everything chunks
    try:
        _compare(5, 6, 8, 8, 6, 3, 1, 1, groups=6, seed=11)
        _compare(5, 4, 9, 7, 8, 3, 2, 1, groups=1, seed=12)
    finally:
        ops_nn._COL_CHUNK_BYTES = original


def test_input_grad_skipped_for_graph_external_input():
    """Inputs outside the graph get no input gradient computed (stem conv)."""
    rng = np.random.default_rng(3)
    x = tensor(rng.normal(size=(2, 3, 6, 6)))  # requires_grad=False
    w = tensor(rng.normal(size=(4, 3, 3, 3)), requires_grad=True)
    out = conv2d(x, w, padding=1)
    out.backward(np.ones(out.shape))
    assert x.grad is None
    assert w.grad is not None
    # weight gradient is unaffected by the skip
    x_ref = tensor(x.data, requires_grad=True)
    w_ref = tensor(w.data, requires_grad=True)
    out_ref = _reference_conv2d(x_ref, w_ref, padding=1)
    out_ref.backward(np.ones(out_ref.shape))
    np.testing.assert_allclose(w.grad, w_ref.grad, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 3),
    c_mult=st.integers(1, 3),
    h=st.integers(5, 11),
    w=st.integers(5, 11),
    k=st.sampled_from([1, 3, 5]),
    stride=st.integers(1, 3),
    pad=st.integers(0, 2),
    mode=st.sampled_from(["dense", "depthwise", "grouped"]),
)
def test_property_conv_equivalence(n, c_mult, h, w, k, stride, pad, mode):
    """Random shapes: the vectorized kernels agree with the oracle."""
    if mode == "dense":
        c_in, c_out, groups = 2 * c_mult, 3, 1
    elif mode == "depthwise":
        c_in = c_out = groups = 2 * c_mult
    else:
        c_in, c_out, groups = 2 * c_mult, 4 * c_mult, 2
    if (h + 2 * pad - k) < 0 or (w + 2 * pad - k) < 0:
        return
    _compare(n, c_in, h, w, c_out, k, stride, pad, groups,
             seed=n * 1000 + h * 10 + w)


class TestMaxPoolEquivalence:
    """The im2col max pool matches the old shift-and-maximum semantics."""

    def _reference_max_pool(self, x_data, kernel, stride, padding):
        n, c, h, w = x_data.shape
        ph, pw = h + 2 * padding, w + 2 * padding
        out_h = (ph - kernel) // stride + 1
        out_w = (pw - kernel) // stride + 1
        padded = np.full((n, c, ph, pw), -np.inf)
        padded[:, :, padding:padding + h, padding:padding + w] = x_data
        out = np.full((n, c, out_h, out_w), -np.inf)
        for i in range(kernel):
            for j in range(kernel):
                win = padded[:, :, i: i + out_h * stride: stride,
                             j: j + out_w * stride: stride]
                np.maximum(out, win, out=out)
        return out

    @pytest.mark.parametrize("kernel,stride,padding", [
        (2, 2, 0), (3, 1, 1), (3, 2, 1), (2, 1, 0),
    ])
    def test_forward_matches(self, kernel, stride, padding):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(2, 3, 7, 7))
        out = max_pool2d(tensor(x), kernel, stride=stride, padding=padding)
        np.testing.assert_allclose(
            out.data, self._reference_max_pool(x, kernel, stride, padding)
        )

    def test_overlapping_backward_accumulates(self):
        rng = np.random.default_rng(6)
        x = tensor(rng.permutation(49).reshape(1, 1, 7, 7).astype(float),
                   requires_grad=True)
        out = max_pool2d(x, 3, stride=1, padding=0)
        out.backward(np.ones(out.shape))
        # every unit of upstream gradient lands somewhere in the input
        assert x.grad.sum() == out.data.size


class TestDepthwiseDirectEquivalence:
    """The direct depthwise kernel (einsum window forward/weight-grad plus
    shift-accumulate input grad) matches the reference conv exactly.

    Production dispatch requires stride 1, square kernels of 5+, and enough
    tap work (``_DW_DIRECT_MIN_ELEMS``); the threshold is pinned to 0 here
    so unit-sized problems exercise the direct code path.
    """

    @pytest.mark.parametrize("k,padding", [
        (5, 2), (5, 0), (7, 3), (7, 1),
    ])
    def test_matches_reference(self, k, padding, monkeypatch):
        monkeypatch.setattr(ops_nn, "_DW_DIRECT_MIN_ELEMS", 0)
        dispatched = []
        real = ops_nn._depthwise_direct

        def spy(xp, weight, op_name):
            dispatched.append(op_name)
            return real(xp, weight, op_name)

        monkeypatch.setattr(ops_nn, "_depthwise_direct", spy)
        rng = np.random.default_rng(11)
        c = 4
        x = rng.normal(size=(2, c, 9, 9))
        weight = rng.normal(size=(c, 1, k, k))
        x_new = tensor(x, requires_grad=True)
        w_new = tensor(weight, requires_grad=True)
        out_new = conv2d(x_new, w_new, stride=1, padding=padding, groups=c)
        seed_grad = rng.normal(size=out_new.shape)
        out_new.backward(seed_grad)
        assert dispatched == ["dwconv2d"]

        x_ref = tensor(x, requires_grad=True)
        w_ref = tensor(weight, requires_grad=True)
        out_ref = _reference_conv2d(x_ref, w_ref, stride=1, padding=padding,
                                    groups=c)
        out_ref.backward(seed_grad)
        np.testing.assert_allclose(out_new.data, out_ref.data, atol=1e-10)
        np.testing.assert_allclose(x_new.grad, x_ref.grad, atol=1e-10)
        np.testing.assert_allclose(w_new.grad, w_ref.grad, atol=1e-10)

    def test_external_input_skips_input_grad(self, monkeypatch):
        monkeypatch.setattr(ops_nn, "_DW_DIRECT_MIN_ELEMS", 0)
        rng = np.random.default_rng(12)
        x = tensor(rng.normal(size=(1, 3, 8, 8)))  # graph-external
        w = tensor(rng.normal(size=(3, 1, 5, 5)), requires_grad=True)
        out = conv2d(x, w, stride=1, padding=2, groups=3)
        out.backward(np.ones(out.shape))
        assert w.grad is not None and np.abs(w.grad).sum() > 0

    def test_kill_switch_pins_im2col(self, monkeypatch):
        monkeypatch.setattr(ops_nn, "_DW_DIRECT_MIN_ELEMS", 0)
        monkeypatch.setenv(ops_nn.DW_DIRECT_ENV, "0")

        def boom(*a, **k):  # pragma: no cover - failure path
            raise AssertionError("REPRO_DW_DIRECT=0 must pin im2col")

        monkeypatch.setattr(ops_nn, "_depthwise_direct", boom)
        rng = np.random.default_rng(13)
        x = tensor(rng.normal(size=(1, 3, 8, 8)), requires_grad=True)
        w = tensor(rng.normal(size=(3, 1, 5, 5)), requires_grad=True)
        out = conv2d(x, w, stride=1, padding=2, groups=3)
        out.backward(np.ones(out.shape))

    @pytest.mark.parametrize("stride,k", [(2, 5), (1, 3)])
    def test_unprofitable_shapes_stay_on_im2col(self, stride, k, monkeypatch):
        """Strided and 3x3 depthwise convs lose with the tap loop - the
        dispatch must leave them on the im2col path even with no floor."""
        monkeypatch.setattr(ops_nn, "_DW_DIRECT_MIN_ELEMS", 0)

        def boom(*a, **kw):  # pragma: no cover - failure path
            raise AssertionError(f"stride={stride} k={k} must not dispatch")

        monkeypatch.setattr(ops_nn, "_depthwise_direct", boom)
        rng = np.random.default_rng(14)
        x = tensor(rng.normal(size=(1, 3, 9, 9)), requires_grad=True)
        w = tensor(rng.normal(size=(3, 1, k, k)), requires_grad=True)
        out = conv2d(x, w, stride=stride, padding=k // 2, groups=3)
        out.backward(np.ones(out.shape))
