"""Unit tests for the accuracy/performance trade-off sweep."""

import pytest

from repro.core.config import EDDConfig
from repro.eval.pareto import (
    TradeoffPoint,
    format_tradeoff,
    pareto_front,
    tradeoff_sweep,
)


def p(err, perf, alpha=1.0):
    return TradeoffPoint(alpha_target=alpha, top1_error=err, perf_units=perf,
                         resource=0.0, spec_name="x")


class TestDominance:
    def test_strict_dominance(self):
        assert p(10, 1.0).dominates(p(20, 2.0))

    def test_no_self_dominance(self):
        a = p(10, 1.0)
        assert not a.dominates(p(10, 1.0))

    def test_tradeoff_points_incomparable(self):
        assert not p(10, 2.0).dominates(p(20, 1.0))
        assert not p(20, 1.0).dominates(p(10, 2.0))


class TestFront:
    def test_dominated_points_removed(self):
        points = [p(10, 1.0), p(20, 2.0), p(5, 3.0)]
        front = pareto_front(points)
        assert p(20, 2.0) not in front
        assert len(front) == 2

    def test_front_sorted_by_perf(self):
        points = [p(5, 3.0), p(10, 1.0)]
        front = pareto_front(points)
        assert front[0].perf_units <= front[1].perf_units

    def test_all_nondominated_kept(self):
        points = [p(30, 1.0), p(20, 2.0), p(10, 3.0)]
        assert len(pareto_front(points)) == 3


class TestFormat:
    def test_marks_front(self):
        text = format_tradeoff([p(10, 1.0, alpha=0.5), p(20, 2.0, alpha=2.0)])
        lines = text.splitlines()
        assert lines[1].rstrip().endswith("*")
        assert not lines[2].rstrip().endswith("*")


class TestSweep:
    def test_reduced_sweep_runs(self, tiny_space, tiny_splits):
        config = EDDConfig(target="gpu", epochs=1, batch_size=8,
                           arch_start_epoch=0, seed=0)
        points = tradeoff_sweep(
            tiny_space, tiny_splits, config,
            alpha_targets=(0.5, 2.0), train_epochs=1,
        )
        assert len(points) == 2
        assert {pt.alpha_target for pt in points} == {0.5, 2.0}
        for pt in points:
            assert pt.perf_units > 0
            assert 0 <= pt.top1_error <= 100
        assert pareto_front(points)
