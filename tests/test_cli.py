"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tables_defaults(self):
        args = build_parser().parse_args(["tables"])
        assert args.which == "all"

    def test_explore_requires_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore"])

    def test_search_options(self):
        args = build_parser().parse_args(
            ["search", "--target", "fpga_pipelined", "--epochs", "2"]
        )
        assert args.target == "fpga_pipelined"
        assert args.epochs == 2


class TestCommands:
    def test_anchors_exit_zero(self, capsys):
        assert main(["anchors"]) == 0
        out = capsys.readouterr().out
        assert "ResNet18@Titan RTX" in out
        assert "FAIL" not in out

    def test_zoo_lists_models(self, capsys):
        assert main(["zoo"]) == 0
        out = capsys.readouterr().out
        assert "EDD-Net-3" in out and "VGG16" in out

    def test_tables_single(self, capsys):
        assert main(["tables", "--which", "table3"]) == 0
        out = capsys.readouterr().out
        assert "DNNBuilder" in out

    def test_explore_model(self, capsys):
        assert main(["explore", "--model", "ResNet18", "--bits", "16"]) == 0
        out = capsys.readouterr().out
        assert "GPU latency" in out
        assert "FPGA throughput" in out

    def test_explore_unsupported_fpga(self, capsys):
        assert main(["explore", "--model", "ShuffleNet-V2"]) == 0
        assert "NA" in capsys.readouterr().out

    def test_search_runs(self, capsys):
        code = main([
            "search", "--target", "gpu", "--epochs", "2", "--blocks", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cli-gpu" in out
        assert "converged" in out
