"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tables_defaults(self):
        args = build_parser().parse_args(["tables"])
        assert args.which == "all"
        assert args.format == "text"

    def test_explore_requires_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore"])

    def test_search_options(self):
        args = build_parser().parse_args(
            ["search", "--target", "fpga_pipelined", "--epochs", "2"]
        )
        assert args.target == "fpga_pipelined"
        assert args.epochs == 2

    def test_target_choices_come_from_registry(self):
        from repro.hw.registry import target_names

        for target in target_names():
            args = build_parser().parse_args(["search", "--target", target])
            assert args.target == target
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--target", "tpu"])

    def test_bench_options(self):
        args = build_parser().parse_args(
            ["bench", "--quick", "--output", "out.json"]
        )
        assert args.quick is True
        assert args.output == "out.json"
        assert args.format == "text"

    def test_rejects_unknown_format(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["zoo", "--format", "yaml"])


class TestCommands:
    def test_anchors_exit_zero(self, capsys):
        assert main(["anchors"]) == 0
        out = capsys.readouterr().out
        assert "ResNet18@Titan RTX" in out
        assert "FAIL" not in out

    def test_zoo_lists_models(self, capsys):
        assert main(["zoo"]) == 0
        out = capsys.readouterr().out
        assert "EDD-Net-3" in out and "VGG16" in out

    def test_tables_single(self, capsys):
        assert main(["tables", "--which", "table3"]) == 0
        out = capsys.readouterr().out
        assert "DNNBuilder" in out

    def test_explore_model(self, capsys):
        assert main(["explore", "--model", "ResNet18", "--bits", "16"]) == 0
        out = capsys.readouterr().out
        # One row per registered target, with metric + value.
        assert "gpu" in out and "fpga_pipelined" in out and "accel" in out
        assert "latency" in out and "throughput" in out

    def test_explore_unsupported_fpga(self, capsys):
        assert main(["explore", "--model", "ShuffleNet-V2"]) == 0
        assert "NA" in capsys.readouterr().out

    def test_explore_text_includes_gpu_energy(self, capsys):
        assert main(["explore", "--model", "ResNet18", "--bits", "16"]) == 0
        assert "energy_mj" in capsys.readouterr().out

    def test_incompatible_device_is_clean_error(self, capsys):
        code = main(["explore", "--model", "ResNet18",
                     "--targets", "fpga_recursive", "--device", "titan-rtx"])
        assert code == 2
        assert "not registered for target" in capsys.readouterr().err

    def test_explore_notes_bit_clamp(self, capsys):
        """Satellite: the old silent min(bits, 16) clamp is now explicit."""
        assert main(["explore", "--model", "ResNet18", "--bits", "32"]) == 0
        out = capsys.readouterr().out
        assert "clamped to 16-bit" in out
        assert "4/8/16" in out

    def test_explore_json_round_trips(self, capsys):
        assert main(["explore", "--model", "ResNet18", "--bits", "16",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == len(payload["records"])
        targets = {r["target"] for r in payload["records"]}
        assert {"gpu", "fpga_recursive", "fpga_pipelined", "accel"} <= targets
        gpu = next(r for r in payload["records"] if r["target"] == "gpu")
        assert gpu["metric"] == "latency_ms" and gpu["value"] > 0

    def test_explore_plan_json(self, capsys):
        assert main(["explore", "--model", "VGG16", "--plan", "fpga_pipelined",
                     "--bits", "16", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metric"] == "throughput_fps"
        assert "Pipelined deployment plan" in payload["text"]

    def test_zoo_json_round_trips(self, capsys):
        assert main(["zoo", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {m["name"] for m in payload["models"]}
        assert "EDD-Net-3" in names and "VGG16" in names
        assert all(m["macs"] > 0 for m in payload["models"])

    def test_tables_json_round_trips(self, capsys):
        assert main(["tables", "--which", "table3", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["table3"]["columns"]
        assert any(r["name"] == "EDD-Net-3" for r in payload["table3"]["rows"])

    def test_search_runs(self, capsys):
        code = main([
            "search", "--target", "gpu", "--epochs", "2", "--blocks", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cli-gpu" in out
        assert "converged" in out

    def test_search_json_round_trips(self, capsys):
        code = main([
            "search", "--target", "gpu", "--epochs", "1", "--blocks", "2",
            "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["target"] == "gpu"
        assert payload["spec_name"] == "cli-gpu"
        assert len(payload["search"]["history"]) == 1
