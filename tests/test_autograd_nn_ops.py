"""Unit tests for the neural-network autograd primitives."""

import numpy as np
import pytest

from repro.autograd import gradcheck
from repro.autograd.ops_nn import (
    avg_pool2d,
    conv2d,
    global_avg_pool2d,
    linear,
    log_softmax,
    matmul,
    relu,
    relu6,
    softmax,
)
from repro.autograd.tensor import tensor

pytestmark = pytest.mark.usefixtures("float64_numerics")



@pytest.fixture
def rng():
    return np.random.default_rng(3)


def t(data):
    return tensor(np.asarray(data, dtype=float), requires_grad=True)


class TestMatmulLinear:
    def test_matmul_matches_numpy(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        np.testing.assert_allclose(matmul(t(a), t(b)).data, a @ b)

    def test_matmul_gradcheck(self, rng):
        a, b = t(rng.normal(size=(3, 4))), t(rng.normal(size=(4, 2)))
        assert gradcheck(matmul, [a, b])

    def test_matmul_rejects_non_2d(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            matmul(t(rng.normal(size=(2, 2, 2))), t(rng.normal(size=(2, 2))))

    def test_linear_with_bias_gradcheck(self, rng):
        x, w, b = t(rng.normal(size=(4, 3))), t(rng.normal(size=(2, 3))), t(rng.normal(size=(2,)))
        assert gradcheck(linear, [x, w, b])

    def test_linear_without_bias(self, rng):
        x, w = rng.normal(size=(4, 3)), rng.normal(size=(2, 3))
        np.testing.assert_allclose(linear(t(x), t(w)).data, x @ w.T)


class TestConv2d:
    def test_output_shape_same_padding(self, rng):
        x = t(rng.normal(size=(2, 3, 8, 8)))
        w = t(rng.normal(size=(5, 3, 3, 3)))
        assert conv2d(x, w, stride=1, padding=1).shape == (2, 5, 8, 8)

    def test_output_shape_stride2(self, rng):
        x = t(rng.normal(size=(1, 3, 8, 8)))
        w = t(rng.normal(size=(4, 3, 3, 3)))
        assert conv2d(x, w, stride=2, padding=1).shape == (1, 4, 4, 4)

    def test_identity_kernel(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        out = conv2d(tensor(x), tensor(w), stride=1, padding=1)
        np.testing.assert_allclose(out.data, x)

    def test_matches_scipy_correlate(self, rng):
        from scipy.signal import correlate2d

        x = rng.normal(size=(1, 1, 6, 6))
        w = rng.normal(size=(1, 1, 3, 3))
        out = conv2d(tensor(x), tensor(w), stride=1, padding=0)
        expected = correlate2d(x[0, 0], w[0, 0], mode="valid")
        np.testing.assert_allclose(out.data[0, 0], expected)

    def test_dense_gradcheck(self, rng):
        x = t(rng.normal(size=(2, 2, 5, 5)))
        w = t(rng.normal(size=(3, 2, 3, 3)))
        assert gradcheck(lambda a, b: conv2d(a, b, stride=2, padding=1), [x, w])

    def test_depthwise_gradcheck(self, rng):
        x = t(rng.normal(size=(2, 3, 5, 5)))
        w = t(rng.normal(size=(3, 1, 3, 3)))
        assert gradcheck(lambda a, b: conv2d(a, b, padding=1, groups=3), [x, w])

    def test_grouped_gradcheck(self, rng):
        x = t(rng.normal(size=(1, 4, 4, 4)))
        w = t(rng.normal(size=(6, 2, 3, 3)))
        assert gradcheck(lambda a, b: conv2d(a, b, padding=1, groups=2), [x, w])

    def test_grouped_matches_blockwise_dense(self, rng):
        x = rng.normal(size=(1, 4, 5, 5))
        w = rng.normal(size=(4, 2, 3, 3))
        out = conv2d(tensor(x), tensor(w), padding=1, groups=2)
        half1 = conv2d(tensor(x[:, :2]), tensor(w[:2]), padding=1)
        half2 = conv2d(tensor(x[:, 2:]), tensor(w[2:]), padding=1)
        np.testing.assert_allclose(out.data[:, :2], half1.data)
        np.testing.assert_allclose(out.data[:, 2:], half2.data)

    def test_rejects_bad_groups(self, rng):
        x = t(rng.normal(size=(1, 3, 4, 4)))
        w = t(rng.normal(size=(4, 1, 3, 3)))
        with pytest.raises(ValueError, match="not divisible"):
            conv2d(x, w, groups=2)

    def test_rejects_wrong_weight_channels(self, rng):
        x = t(rng.normal(size=(1, 4, 4, 4)))
        w = t(rng.normal(size=(4, 3, 3, 3)))
        with pytest.raises(ValueError, match="channels/group"):
            conv2d(x, w, groups=1)

    def test_rejects_non_nchw(self, rng):
        with pytest.raises(ValueError, match="NCHW"):
            conv2d(t(rng.normal(size=(3, 4, 4))), t(rng.normal(size=(1, 3, 3, 3))))


class TestMaxPooling:
    def test_forward_non_overlapping(self):
        from repro.autograd.ops_nn import max_pool2d

        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = max_pool2d(tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_forward_overlapping_same_padding(self):
        from repro.autograd.ops_nn import max_pool2d

        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = max_pool2d(tensor(x), 3, stride=1, padding=1)
        assert out.shape == (1, 1, 4, 4)
        assert out.data[0, 0, 0, 0] == 5.0  # max of top-left 2x2 window

    def test_gradient_goes_to_argmax(self):
        from repro.autograd.ops_nn import max_pool2d

        x = t(np.arange(16.0).reshape(1, 1, 4, 4))
        max_pool2d(x, 2).backward(np.ones((1, 1, 2, 2)))
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_gradcheck_distinct_values(self, rng):
        from repro.autograd.ops_nn import max_pool2d

        x = t(rng.permutation(36).reshape(1, 1, 6, 6).astype(float))
        assert gradcheck(lambda a: max_pool2d(a, 2), [x])
        x.zero_grad()
        assert gradcheck(lambda a: max_pool2d(a, 3, stride=2, padding=1), [x])

    def test_stride_default_equals_kernel(self, rng):
        from repro.autograd.ops_nn import max_pool2d

        x = tensor(rng.normal(size=(1, 2, 6, 6)))
        assert max_pool2d(x, 3).shape == (1, 2, 2, 2)

    def test_too_large_kernel_raises(self, rng):
        from repro.autograd.ops_nn import max_pool2d

        with pytest.raises(ValueError, match="too large"):
            max_pool2d(tensor(rng.normal(size=(1, 1, 2, 2))), 5)

    @pytest.mark.parametrize("kernel,stride,padding,shape", [
        (2, 2, 0, (3, 4, 8, 8)),     # flat-assign fast path
        (3, 3, 1, (2, 3, 9, 9)),     # fast path with padding
        (2, 3, 0, (2, 2, 10, 10)),   # stride > kernel (gaps, still fast path)
        (3, 2, 1, (2, 3, 9, 9)),     # overlapping -> np.add.at fallback
        (3, 1, 1, (2, 2, 6, 6)),     # heavy overlap fallback
    ])
    def test_backward_scatter_matches_bruteforce(self, rng, kernel, stride,
                                                 padding, shape):
        """The non-overlapping flat-scatter path and the add.at fallback both
        match a per-window brute-force gradient."""
        from repro.autograd.ops_nn import max_pool2d

        x = t(rng.normal(size=shape))
        out = max_pool2d(x, kernel, stride=stride, padding=padding)
        grad = rng.normal(size=out.shape)
        out.backward(grad)

        n, c, h, w = shape
        ph, pw = h + 2 * padding, w + 2 * padding
        padded = np.full((n, c, ph, pw), -np.inf)
        padded[:, :, padding:padding + h, padding:padding + w] = x.data
        expected = np.zeros((n, c, ph, pw))
        oh = (ph - kernel) // stride + 1
        ow = (pw - kernel) // stride + 1
        for ni in range(n):
            for ci in range(c):
                for i in range(oh):
                    for j in range(ow):
                        window = padded[ni, ci, i * stride:i * stride + kernel,
                                        j * stride:j * stride + kernel]
                        wi, wj = np.unravel_index(np.argmax(window), window.shape)
                        expected[ni, ci, i * stride + wi, j * stride + wj] += (
                            grad[ni, ci, i, j]
                        )
        np.testing.assert_allclose(
            x.grad, expected[:, :, padding:padding + h, padding:padding + w],
            rtol=1e-6,
        )


class TestPooling:
    def test_avg_pool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = avg_pool2d(tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradcheck(self, rng):
        x = t(rng.normal(size=(2, 2, 4, 4)))
        assert gradcheck(lambda a: avg_pool2d(a, 2), [x])

    def test_avg_pool_rejects_indivisible(self, rng):
        with pytest.raises(ValueError, match="divisible"):
            avg_pool2d(t(rng.normal(size=(1, 1, 5, 5))), 2)

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = global_avg_pool2d(tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)))

    def test_global_avg_pool_gradcheck(self, rng):
        x = t(rng.normal(size=(2, 3, 3, 3)))
        assert gradcheck(global_avg_pool2d, [x])


class TestActivations:
    def test_relu(self):
        np.testing.assert_allclose(relu(tensor([-1.0, 2.0])).data, [0.0, 2.0])

    def test_relu6_clips_both_sides(self):
        np.testing.assert_allclose(
            relu6(tensor([-1.0, 3.0, 9.0])).data, [0.0, 3.0, 6.0]
        )

    def test_relu_gradcheck(self, rng):
        x = t(rng.normal(size=(5,)) + 0.1)  # avoid kinks at 0
        assert gradcheck(relu, [x])

    def test_relu6_gradient_zero_above_six(self):
        x = t([7.0])
        relu6(x).backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [0.0])


class TestSoftmaxFamily:
    def test_softmax_sums_to_one(self, rng):
        out = softmax(t(rng.normal(size=(3, 5))), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(3))

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = rng.normal(size=(2, 4))
        np.testing.assert_allclose(
            log_softmax(tensor(x)).data, np.log(softmax(tensor(x)).data)
        )

    def test_log_softmax_stable_with_large_logits(self):
        out = log_softmax(tensor([[1000.0, 0.0]]))
        assert np.isfinite(out.data).all()

    def test_softmax_gradcheck(self, rng):
        x = t(rng.normal(size=(2, 4)))
        assert gradcheck(lambda a: softmax(a, axis=-1), [x])

    def test_log_softmax_gradcheck(self, rng):
        x = t(rng.normal(size=(2, 4)))
        assert gradcheck(lambda a: log_softmax(a, axis=-1), [x])
