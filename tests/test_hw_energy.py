"""Unit tests for the GPU energy extension (paper future work)."""

import numpy as np
import pytest

from repro.baselines.model_zoo import get_model
from repro.hw.device import TITAN_RTX
from repro.hw.energy import (
    GPUEnergyModel,
    gpu_energy_mj,
    mbconv_gpu_energy_mj,
)
from repro.nas.quantization import QuantizationConfig
from repro.nas.space import BlockGeometry, CandidateOp
from repro.nas.supernet import SuperNet, constant_sample

pytestmark = pytest.mark.usefixtures("float64_numerics")


GEOM = BlockGeometry(in_ch=16, out_ch=24, stride=2, in_h=16, in_w=16, out_h=8, out_w=8)


class TestOpEnergy:
    def test_positive_and_scales_with_latency(self):
        e32 = mbconv_gpu_energy_mj(GEOM, CandidateOp(3, 4), TITAN_RTX, 32)
        e16 = mbconv_gpu_energy_mj(GEOM, CandidateOp(3, 4), TITAN_RTX, 16)
        assert e32 > e16 > 0

    def test_bigger_ops_cost_more_energy(self):
        small = mbconv_gpu_energy_mj(GEOM, CandidateOp(3, 4), TITAN_RTX, 32)
        big = mbconv_gpu_energy_mj(GEOM, CandidateOp(7, 6), TITAN_RTX, 32)
        assert big > small


class TestGPUEnergyModel:
    def test_perf_is_latency_times_energy(self, tiny_space, gpu_quant):
        model = GPUEnergyModel(tiny_space, gpu_quant)
        sample = constant_sample(tiny_space, gpu_quant, [0] * tiny_space.num_blocks, 1)
        out = model.evaluate(sample)
        lat = out.diagnostics["expected_latency_ms"]
        energy = out.diagnostics["expected_energy_mj"]
        np.testing.assert_allclose(float(out.perf_loss.data), lat * energy, rtol=1e-9)

    def test_gradients_flow(self, tiny_space, gpu_quant, sampler):
        net = SuperNet(tiny_space, gpu_quant, seed=0)
        model = GPUEnergyModel(tiny_space, gpu_quant)
        out = model.evaluate(net.sample(sampler, hard=False))
        out.perf_loss.backward()
        assert np.abs(net.theta.grad).sum() > 0

    def test_usable_as_searcher_model(self, tiny_space, tiny_splits):
        from repro.core.config import EDDConfig
        from repro.core.cosearch import EDDSearcher

        config = EDDConfig(target="gpu", epochs=1, batch_size=8,
                           arch_start_epoch=0, seed=0)
        model = GPUEnergyModel(tiny_space, QuantizationConfig.gpu())
        result = EDDSearcher(tiny_space, tiny_splits, config,
                             hw_model=model).search()
        assert result.spec.metadata["op_labels"]


class TestAnalyticEnergy:
    def test_whole_network_energy_plausible(self):
        energy = gpu_energy_mj(get_model("ResNet18"), TITAN_RTX, 32)
        # 9.7 ms at 60-280 W -> roughly 0.6-2.7 J.
        assert 300.0 < energy < 3000.0

    def test_lower_precision_lower_energy(self):
        spec = get_model("EDD-Net-1")
        assert gpu_energy_mj(spec, TITAN_RTX, 16) < gpu_energy_mj(spec, TITAN_RTX, 32)

    def test_vgg_burns_most_energy(self):
        """Energy = power x time: the slowest, highest-utilisation network
        (VGG16) must top the energy column even where latency/energy
        orderings cross for low-utilisation mobile nets."""
        names = ("MobileNet-V2", "ResNet18", "EDD-Net-1", "VGG16")
        energies = {n: gpu_energy_mj(get_model(n), TITAN_RTX, 32) for n in names}
        assert max(energies, key=energies.get) == "VGG16"
        assert all(e > 0 for e in energies.values())
