"""Unit tests for the reusable SearchEngine (repro.core.engine)."""

import numpy as np
import pytest

from repro.core.engine import PHASES, EngineRun, EpochContext, SearchEngine


def loader(batches):
    """A re-iterable loader yielding fixed (x, y) batches."""
    return [
        (np.full((2, 2), float(i)), np.zeros(2, dtype=int)) for i in range(batches)
    ]


class TestEngineLoop:
    def test_runs_all_phases_and_records_history(self):
        calls = {"weight": 0, "arch": 0, "anneal": [], "derive": 0}

        def weight_step(x, y):
            calls["weight"] += 1
            return 1.5

        def arch_step(x, y, ctx):
            calls["arch"] += 1
            return {"acc_loss": 1.0, "perf_loss": 2.0, "resource": 3.0,
                    "total_loss": 4.0}

        def anneal(epoch):
            calls["anneal"].append(epoch)
            return 5.0 * 0.5 ** epoch

        def derive():
            calls["derive"] += 1
            return "spec"

        engine = SearchEngine(
            epochs=3, weight_step=weight_step, arch_step=arch_step,
            anneal=anneal, derive=derive,
        )
        run = engine.run(loader(4), loader(2))
        assert isinstance(run, EngineRun)
        assert calls == {"weight": 12, "arch": 6, "anneal": [0, 1, 2], "derive": 1}
        assert run.derived == "spec"
        assert len(run.history) == 3
        assert run.history[0].train_loss == pytest.approx(1.5)
        assert run.history[0].val_acc_loss == pytest.approx(1.0)
        assert run.history[0].temperature == pytest.approx(5.0)
        assert run.history[2].temperature == pytest.approx(1.25)

    def test_arch_start_epoch_defers_arch_phase(self):
        stats = []
        engine = SearchEngine(
            epochs=3,
            weight_step=lambda x, y: 0.0,
            arch_step=lambda x, y, ctx: stats.append(ctx.epoch) or {
                "acc_loss": 0.0, "perf_loss": 0.0, "resource": 0.0,
                "total_loss": 0.0,
            },
            arch_start_epoch=2,
        )
        run = engine.run(loader(1), loader(1))
        assert stats == [2]
        assert np.isnan(run.history[0].val_acc_loss)
        assert np.isfinite(run.history[2].val_acc_loss)

    def test_context_carries_train_batches_and_step(self):
        seen = []

        def arch_step(x, y, ctx: EpochContext):
            seen.append((ctx.epoch, ctx.step, len(ctx.train_batches)))
            return {"acc_loss": 0.0, "perf_loss": 0.0, "resource": 0.0,
                    "total_loss": 0.0}

        SearchEngine(
            epochs=2, weight_step=lambda x, y: 0.0, arch_step=arch_step,
            buffer_train_batches=True,
        ).run(loader(3), loader(2))
        assert seen == [(0, 0, 3), (0, 1, 3), (1, 0, 3), (1, 1, 3)]

    def test_train_batches_not_buffered_by_default(self):
        seen = []

        def arch_step(x, y, ctx: EpochContext):
            seen.append(len(ctx.train_batches))
            return {"acc_loss": 0.0, "perf_loss": 0.0, "resource": 0.0,
                    "total_loss": 0.0}

        SearchEngine(
            epochs=1, weight_step=lambda x, y: 0.0, arch_step=arch_step,
        ).run(loader(3), loader(1))
        assert seen == [0]

    def test_anneal_at_end_fires_after_steps(self):
        order = []
        engine = SearchEngine(
            epochs=1,
            weight_step=lambda x, y: order.append("weight") or 0.0,
            anneal=lambda epoch: order.append("anneal") or 0.1,
            anneal_at="end",
        )
        run = engine.run(loader(2))
        assert order == ["weight", "weight", "anneal"]
        assert run.history[0].temperature == pytest.approx(0.1)

    def test_zero_epochs_goes_straight_to_derive(self):
        run = SearchEngine(
            epochs=0, weight_step=lambda x, y: 0.0, derive=lambda: 42,
        ).run(loader(1))
        assert run.history == []
        assert run.derived == 42

    def test_callbacks_receive_records(self):
        records = []
        SearchEngine(
            epochs=2, weight_step=lambda x, y: 0.0, callbacks=[records.append],
        ).run(loader(1))
        assert [r.epoch for r in records] == [0, 1]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="epochs"):
            SearchEngine(epochs=-1, weight_step=lambda x, y: 0.0)
        with pytest.raises(ValueError, match="anneal_at"):
            SearchEngine(epochs=1, weight_step=lambda x, y: 0.0,
                         anneal_at="middle")


class TestTiming:
    def test_phase_accounting_covers_all_phases(self):
        engine = SearchEngine(
            epochs=2,
            weight_step=lambda x, y: 0.0,
            arch_step=lambda x, y, ctx: {
                "acc_loss": 0.0, "perf_loss": 0.0, "resource": 0.0,
                "total_loss": 0.0,
            },
            anneal=lambda epoch: 1.0,
            derive=lambda: None,
        )
        run = engine.run(loader(2), loader(1))
        assert set(run.phase_seconds) == set(PHASES)
        assert all(v >= 0.0 for v in run.phase_seconds.values())
        assert run.phase_calls["anneal"] == 2
        assert run.phase_calls["weight"] == 2   # one timed call per epoch
        assert run.phase_calls["arch"] == 2
        assert run.phase_calls["derive"] == 1
        assert run.wall_seconds > 0
        summary = run.timing_summary()
        assert set(summary) == set(PHASES)
        assert summary["weight"]["calls"] == 2


class TestDrivers:
    """The searcher and the trainer both drive the shared engine."""

    def test_searcher_result_carries_phase_seconds(self, tiny_space, tiny_splits):
        from repro.core.config import EDDConfig
        from repro.core.cosearch import EDDSearcher

        config = EDDConfig(target="gpu", epochs=2, batch_size=8, seed=0,
                           arch_start_epoch=0)
        result = EDDSearcher(tiny_space, tiny_splits, config).search(name="t")
        assert result.phase_seconds is not None
        assert set(result.phase_seconds) == set(PHASES)
        assert result.phase_seconds["weight"] > 0
        assert result.phase_seconds["arch"] > 0
        assert result.to_dict()["phase_seconds"]["weight"] > 0

    def test_searcher_history_matches_epochs(self, tiny_space, tiny_splits):
        from repro.core.config import EDDConfig
        from repro.core.cosearch import EDDSearcher

        config = EDDConfig(target="gpu", epochs=2, batch_size=8, seed=0,
                           arch_start_epoch=1)
        result = EDDSearcher(tiny_space, tiny_splits, config).search()
        assert len(result.history) == 2
        assert np.isnan(result.history[0].val_acc_loss)
        assert np.isfinite(result.history[1].val_acc_loss)

    def test_trainer_drives_engine(self, tiny_splits):
        from repro.core.trainer import train_from_spec
        from repro.nas.space import SearchSpaceConfig

        space = SearchSpaceConfig.tiny()
        ops = space.candidate_ops()
        spec = space.spec_for_choices([ops[0]] * space.num_blocks, name="t")
        result = train_from_spec(spec, tiny_splits, epochs=2, batch_size=8)
        assert len(result.train_losses) == 2
        assert all(np.isfinite(loss) for loss in result.train_losses)
