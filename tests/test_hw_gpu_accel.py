"""Unit tests for the GPU latency model (Sec. 4.2) and the bit-serial
accelerator extension (Sec. 4.3)."""

import numpy as np
import pytest

from repro.hw.accel import BitSerialAccelModel
from repro.hw.device import GTX_1080TI, TITAN_RTX
from repro.hw.gpu import GPUModel, mbconv_gpu_latency_us
from repro.nas.quantization import QuantizationConfig
from repro.nas.space import BlockGeometry, CandidateOp
from repro.nas.supernet import SuperNet, constant_sample

pytestmark = pytest.mark.usefixtures("float64_numerics")



GEOM = BlockGeometry(in_ch=16, out_ch=24, stride=2, in_h=16, in_w=16, out_h=8, out_w=8)


class TestOpLatencyTable:
    def test_latency_positive(self):
        assert mbconv_gpu_latency_us(GEOM, CandidateOp(3, 4), TITAN_RTX, 32) > 0

    def test_lower_precision_faster(self):
        op = CandidateOp(5, 4)
        lat = [mbconv_gpu_latency_us(GEOM, op, TITAN_RTX, b) for b in (32, 16, 8)]
        assert lat[0] > lat[1] > lat[2]

    def test_1080ti_ratios_match_table2(self):
        """The 1080 Ti precision factors are the paper's measured ratios."""
        op = CandidateOp(3, 4)
        l32 = mbconv_gpu_latency_us(GEOM, op, GTX_1080TI, 32)
        l16 = mbconv_gpu_latency_us(GEOM, op, GTX_1080TI, 16)
        # 2.29/2.83 = 0.809; memory-term differences allow small drift.
        assert 0.75 <= l16 / l32 <= 0.85

    def test_bigger_ops_slower(self):
        small = mbconv_gpu_latency_us(GEOM, CandidateOp(3, 4), TITAN_RTX, 32)
        big = mbconv_gpu_latency_us(GEOM, CandidateOp(7, 6), TITAN_RTX, 32)
        assert big > small


class TestGPUModel:
    def test_requires_global_sharing(self, tiny_space):
        with pytest.raises(ValueError, match="global"):
            GPUModel(tiny_space, QuantizationConfig.fpga("per_op"))

    def test_table_shape(self, tiny_space, gpu_quant):
        model = GPUModel(tiny_space, gpu_quant)
        assert model.latency_table_us.shape == (
            tiny_space.num_blocks, tiny_space.num_ops, gpu_quant.num_levels,
        )

    def test_evaluate_sums_blocks(self, tiny_space, gpu_quant):
        model = GPUModel(tiny_space, gpu_quant)
        sample = constant_sample(tiny_space, gpu_quant, [0] * tiny_space.num_blocks, 2)
        out = model.evaluate(sample)
        expected = model.latency_table_us[:, 0, 2].sum() / 1e3
        np.testing.assert_allclose(float(out.perf_loss.data), expected, rtol=1e-9)

    def test_resource_is_fixed_zero(self, tiny_space, gpu_quant):
        model = GPUModel(tiny_space, gpu_quant)
        sample = constant_sample(tiny_space, gpu_quant, [0] * tiny_space.num_blocks, 0)
        assert float(model.evaluate(sample).resource.data) == 0.0
        assert model.resource_bound is None
        assert model.implementation_parameters() == []

    def test_gradients_reach_arch_parameters(self, tiny_space, gpu_quant, sampler):
        net = SuperNet(tiny_space, gpu_quant, seed=0)
        model = GPUModel(tiny_space, gpu_quant)
        sample = net.sample(sampler, hard=False)
        model.evaluate(sample).perf_loss.backward()
        assert np.abs(net.theta.grad).sum() > 0
        assert np.abs(net.phi.grad).sum() > 0


class TestBitSerialAccel:
    def test_requires_per_block_op(self, tiny_space):
        with pytest.raises(ValueError, match="per_block_op"):
            BitSerialAccelModel(tiny_space, QuantizationConfig.fpga("per_op"))

    def test_latency_scales_with_precision(self, tiny_space):
        quant = QuantizationConfig.fpga("per_block_op")
        model = BitSerialAccelModel(tiny_space, quant)
        lo = constant_sample(tiny_space, quant, [0] * tiny_space.num_blocks, 0)
        hi = constant_sample(tiny_space, quant, [0] * tiny_space.num_blocks, 2)
        out_lo = model.evaluate(lo)
        out_hi = model.evaluate(hi)
        # Loom-like: latency and energy ~ proportional to weight precision.
        ratio = out_hi.diagnostics["energy_units"] / out_lo.diagnostics["energy_units"]
        np.testing.assert_allclose(ratio, 16 / 4, rtol=1e-6)

    def test_perf_is_latency_energy_product(self, tiny_space):
        quant = QuantizationConfig.fpga("per_block_op")
        model = BitSerialAccelModel(tiny_space, quant)
        sample = constant_sample(tiny_space, quant, [0] * tiny_space.num_blocks, 1)
        out = model.evaluate(sample)
        np.testing.assert_allclose(
            float(out.perf_loss.data),
            out.diagnostics["latency_units"] * out.diagnostics["energy_units"],
            rtol=1e-6,
        )

    def test_lanes_resource_and_projection(self, tiny_space):
        quant = QuantizationConfig.fpga("per_block_op")
        model = BitSerialAccelModel(tiny_space, quant, lanes_budget=64)
        sample = constant_sample(tiny_space, quant, [0] * tiny_space.num_blocks, 1)
        res = float(model.evaluate(sample).resource.data)
        np.testing.assert_allclose(res, 64.0, rtol=1e-6)  # pf0 splits the budget
        model.pf.data[:] = 99.0
        model.project_parameters()
        assert np.all(model.pf.data <= np.log2(64) + 1e-9)

    def test_gradients_reach_pf(self, tiny_space, sampler):
        quant = QuantizationConfig.fpga("per_block_op")
        net = SuperNet(tiny_space, quant, seed=0)
        model = BitSerialAccelModel(tiny_space, quant)
        out = model.evaluate(net.sample(sampler, hard=False))
        out.perf_loss.backward()
        assert np.abs(model.pf.grad).sum() > 0
