"""Integration tests: the full EDD pipeline end to end, per device target.

These are the closest thing to the paper's experimental flow at unit-test
scale: co-search on the synthetic proxy -> derive -> re-tune -> retrain ->
evaluate, plus the qualitative claims (co-search responds to hardware
pressure; fixed-implementation search does not see it).
"""

import numpy as np
import pytest

from repro.baselines.fixed_impl_nas import FixedImplementationNAS
from repro.core.config import EDDConfig
from repro.core.cosearch import EDDSearcher
from repro.core.trainer import train_from_spec
from repro.data.synthetic import SyntheticTaskConfig, make_synthetic_task
from repro.nas.space import SearchSpaceConfig


@pytest.fixture(scope="module")
def splits():
    return make_synthetic_task(
        SyntheticTaskConfig(
            num_classes=4, image_size=8, train_per_class=10,
            val_per_class=5, test_per_class=5, seed=21,
        )
    )


@pytest.fixture(scope="module")
def space():
    return SearchSpaceConfig.tiny()


@pytest.mark.parametrize(
    "target", ["gpu", "fpga_recursive", "fpga_pipelined", "accel"]
)
def test_cosearch_end_to_end_per_target(space, splits, target):
    config = EDDConfig(
        target=target, epochs=2, batch_size=10, seed=3, arch_start_epoch=0,
        resource_fraction=0.5 if target.startswith("fpga") else 1.0,
    )
    result = EDDSearcher(space, splits, config).search(name=f"e2e-{target}")
    # Derivation produced a complete, trainable spec.
    assert len(result.spec.metadata["op_labels"]) == space.num_blocks
    trained = train_from_spec(result.spec, splits, epochs=2, batch_size=10)
    assert np.isfinite(trained.top1_error)


def test_searched_net_learns_the_task(space, splits):
    config = EDDConfig(target="gpu", epochs=3, batch_size=10, seed=5,
                       arch_start_epoch=0)
    result = EDDSearcher(space, splits, config).search()
    trained = train_from_spec(result.spec, splits, epochs=12, batch_size=10, lr=0.08)
    assert trained.top1_error < 75.0  # chance is 75% for 4 classes


def test_resource_pressure_reduces_resource_usage(space, splits):
    """Under a violated DSP budget the Eq. 1 barrier must shed resources.

    The Sec. 5 initialisation respects the budget by construction, so we
    push the parallel factors above it and check the search pulls RES back
    down toward the bound.
    """
    config = EDDConfig(
        target="fpga_pipelined", epochs=4, batch_size=10, seed=2,
        arch_start_epoch=0, resource_fraction=0.02, beta=5.0,
    )
    searcher = EDDSearcher(space, splits, config)
    searcher.hw_model.pf.data += 4.0  # 16x over the initialised allocation
    searcher.calibrate_alpha()
    initial = float(
        searcher.hw_model.evaluate(searcher._expected_sample()).resource.data
    )
    bound = searcher.hw_model.resource_bound
    assert initial > bound  # budget violated by construction
    searcher.search()
    final = float(
        searcher.hw_model.evaluate(searcher._expected_sample()).resource.data
    )
    assert final < initial  # the barrier pushed RES down


def test_cosearch_beats_fixed_impl_on_hardware_objective(space, splits):
    """The paper's central ablation: with implementation variables frozen at
    16-bit the search cannot exploit quantisation, so the co-searched
    solution achieves a lower hardware cost on the same device model."""
    common = dict(epochs=3, batch_size=10, seed=7, arch_start_epoch=0)
    co_cfg = EDDConfig(target="fpga_recursive", **common)
    co = EDDSearcher(space, splits, co_cfg)
    co_result = co.search()
    co_perf = float(co.hw_model.evaluate(co._expected_sample()).perf_loss.data)

    fixed = FixedImplementationNAS(
        space, splits, EDDConfig(target="fpga_recursive", **common), fixed_bits=16
    )
    fixed.search()
    fixed_perf = float(
        fixed.hw_model.evaluate(fixed._expected_sample()).perf_loss.data
    )
    # Both perfs are alpha-normalised to ~1 at initialisation, so they are
    # directly comparable; the co-search must do at least as well.
    assert co_perf <= fixed_perf * 1.05


def test_gpu_search_prefers_low_precision_for_latency(space, splits):
    """With latency in the objective and accuracy barely affected on the
    proxy task, the GPU search should shift probability mass away from
    32-bit (the slowest path)."""
    config = EDDConfig(target="gpu", epochs=4, batch_size=10, seed=11,
                       arch_start_epoch=0)
    searcher = EDDSearcher(space, splits, config)
    searcher.search()
    probs = searcher.supernet.phi_probabilities()  # (Q,) = (8, 16, 32)-bit
    assert probs[2] < 1.0 / 3.0  # 32-bit below its uniform prior
