"""Unit tests for batched multi-seed search (api.search_many + CLI --seeds)."""

import json

import numpy as np
import pytest

from repro import api
from repro.core.results import MULTI_SEARCH_OBJECTIVES, MultiSearchResult


def _tiny_batch(seeds, **kwargs):
    return api.search_many(seeds, epochs=2, blocks=2, batch_size=8, **kwargs)


@pytest.fixture(scope="module")
def serial_batch():
    """Shared workers=1 batch over seeds [0, 1] (read-only in tests)."""
    return _tiny_batch([0, 1])


class TestSearchMany:
    def test_runs_align_with_seeds(self, serial_batch):
        assert serial_batch.seeds == [0, 1]
        assert [run.seed for run in serial_batch.runs] == [0, 1]

    def test_aggregate_picks_min_objective(self, serial_batch):
        values = serial_batch.objective_values()
        assert serial_batch.best_index == int(np.argmin(values))
        assert serial_batch.best_seed == serial_batch.seeds[serial_batch.best_index]
        assert serial_batch.best is serial_batch.runs[serial_batch.best_index]

    def test_workers_do_not_change_ranking(self, serial_batch):
        parallel = _tiny_batch([0, 1], workers=2)
        assert serial_batch.objective_values() == parallel.objective_values()
        assert serial_batch.best_index == parallel.best_index
        np.testing.assert_array_equal(
            serial_batch.best.result.theta, parallel.best.result.theta
        )

    def test_to_dict_one_record_per_seed_plus_aggregate(self, serial_batch):
        payload = serial_batch.to_dict()
        assert len(payload["runs"]) == 2
        assert payload["seeds"] == [0, 1]
        aggregate = payload["aggregate"]
        assert aggregate["objective"] == "total_loss"
        assert aggregate["best_seed"] in payload["seeds"]
        assert len(aggregate["objective_values"]) == 2
        assert aggregate["best_spec_name"]

    def test_alternate_objective(self):
        multi = _tiny_batch([0, 1], objective="val_acc_loss")
        values = [
            run.result.history[-1].val_acc_loss for run in multi.runs
        ]
        assert multi.best_index == int(np.argmin(values))

    def test_checkpoint_dirs_are_per_seed(self, tmp_path):
        api.search_many([0, 1], epochs=1, blocks=2, batch_size=8,
                        checkpoint_dir=str(tmp_path))
        assert (tmp_path / "seed-0").is_dir()
        assert (tmp_path / "seed-1").is_dir()
        assert list((tmp_path / "seed-0").glob("ckpt-epoch-*.npz"))

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one seed"):
            api.search_many([])
        with pytest.raises(ValueError, match="duplicate"):
            _tiny_batch([1, 1])
        with pytest.raises(ValueError, match="objective"):
            _tiny_batch([0], objective="vibes")
        with pytest.raises(ValueError, match="managed per run"):
            api.search_many([0, 1], seed=3)

    def test_objective_menu_matches_results_module(self):
        assert set(MULTI_SEARCH_OBJECTIVES) == {
            "total_loss", "val_acc_loss", "perf_loss", "resource",
        }


def _nan_aware_equal(a: float, b: float) -> bool:
    return (a != a and b != b) or a == b


class TestEarlyStopping:
    def test_survivor_is_bit_identical_to_full_run(self):
        """Probe-then-resume must reproduce the un-probed full run exactly.

        The survivor is compared against the *same seed's* run in the plain
        batch: which seed survives the 2-epoch probe is an objective-ranking
        question (with ``early_stop_keep=1`` the probe may legitimately drop
        the eventual 3-epoch winner), but the kept seed's resumed history
        must match its un-probed run bit for bit.
        """
        kwargs = dict(epochs=3, blocks=2, batch_size=8)
        plain = api.search_many([0, 1, 2], **kwargs)
        stopped = api.search_many(
            [0, 1, 2], early_stop_after=2, early_stop_keep=1, **kwargs
        )
        # keep=1: the survivor is the best (dominated probes rank +inf).
        assert stopped.best_seed not in stopped.early_stopped_seeds
        full = plain.runs[plain.seeds.index(stopped.best_seed)]
        resumed = stopped.best
        assert len(full.result.history) == len(resumed.result.history) == 3
        for rec_full, rec_resumed in zip(
            full.result.history, resumed.result.history
        ):
            for field in MULTI_SEARCH_OBJECTIVES:
                assert _nan_aware_equal(
                    float(getattr(rec_full, field)),
                    float(getattr(rec_resumed, field)),
                )
        np.testing.assert_array_equal(
            full.result.theta, resumed.result.theta
        )

    def test_dominated_seeds_are_flagged_and_truncated(self):
        stopped = api.search_many(
            [0, 1, 2], epochs=3, blocks=2, batch_size=8,
            early_stop_after=2, early_stop_keep=1,
        )
        assert len(stopped.early_stopped_seeds) == 2
        for seed, run in zip(stopped.seeds, stopped.runs):
            if seed in stopped.early_stopped_seeds:
                assert run.early_stopped
                assert len(run.result.history) == 2  # probe epochs only
                assert run.retrain is None
            else:
                assert not run.early_stopped
                assert len(run.result.history) == 3
        # Dominated probes rank as +inf and can never win.
        assert stopped.best_seed not in stopped.early_stopped_seeds
        payload = stopped.to_dict()
        assert payload["early_stopped_seeds"] == stopped.early_stopped_seeds
        json.dumps(payload)

    def test_probe_covering_all_epochs_disables_early_stop(self):
        multi = api.search_many(
            [0, 1], epochs=2, blocks=2, batch_size=8,
            early_stop_after=2, early_stop_keep=1,
        )
        assert multi.early_stopped_seeds == []
        assert all(len(run.result.history) == 2 for run in multi.runs)

    def test_early_stop_validation(self):
        kwargs = dict(epochs=3, blocks=2, batch_size=8)
        with pytest.raises(ValueError, match="early_stop_after"):
            api.search_many([0, 1], early_stop_after=0, **kwargs)
        with pytest.raises(ValueError, match="early_stop_keep"):
            api.search_many([0, 1], early_stop_after=1, early_stop_keep=0,
                            **kwargs)
        with pytest.raises(ValueError, match="cache_dir"):
            api.search_many([0, 1], early_stop_after=1, cache_dir="/tmp/x",
                            **kwargs)
        with pytest.raises(ValueError, match="resume"):
            api.search_many([0, 1], early_stop_after=1, resume=True, **kwargs)


class TestMultiSearchResultValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            MultiSearchResult(seeds=[0, 1], runs=[object()], objective="total_loss",
                              best_index=0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiSearchResult(seeds=[], runs=[], objective="total_loss",
                              best_index=0)

    def test_best_index_bounds(self):
        with pytest.raises(ValueError):
            MultiSearchResult(seeds=[0], runs=[object()], objective="total_loss",
                              best_index=5)


class TestCliSeeds:
    def test_seeds_count_expands_from_base_seed(self, capsys):
        from repro.cli import main

        code = main(["search", "--seeds", "2", "--seed", "5", "--epochs", "1",
                     "--blocks", "2", "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["seeds"] == [5, 6]
        assert len(payload["runs"]) == 2
        assert payload["aggregate"]["best_seed"] in (5, 6)

    def test_seeds_list_used_verbatim(self, capsys):
        from repro.cli import main

        code = main(["search", "--seeds", "3", "7", "--epochs", "1",
                     "--blocks", "2", "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["seeds"] == [3, 7]

    def test_seeds_text_output_marks_best(self, capsys):
        from repro.cli import main

        assert main(["search", "--seeds", "2", "--epochs", "1",
                     "--blocks", "2"]) == 0
        out = capsys.readouterr().out
        assert "<- best" in out
        assert "best seed" in out

    def test_bad_seed_count_is_user_error(self, capsys):
        from repro.cli import main

        assert main(["search", "--seeds", "0", "--epochs", "1"]) == 2
        assert "error:" in capsys.readouterr().err
