"""Dtype-policy tests: float32 default, explicit switching, no silent upcasts.

The production policy is float32 (the fast path); these tests assert that
every layer of the stack — tensor construction, conv/bn forward+backward,
optimizer steps, quantisation — stays in the policy dtype, for both
float32 and float64 policies, and that gradcheck retains float64 precision
regardless of the global setting.
"""

import numpy as np
import pytest

from repro.autograd import gradcheck
from repro.autograd.ops_basic import quantize_ste
from repro.autograd.ops_nn import batch_norm2d, conv2d, max_pool2d
from repro.autograd.tensor import (
    Tensor,
    default_dtype,
    get_default_dtype,
    set_default_dtype,
    tensor,
)
from repro.nas.quantization import fake_quantize, mixed_quantize
from repro.nn.layers import BatchNorm2d, Conv2d, Linear
from repro.nn.optim import SGD, Adam

DTYPES = (np.float32, np.float64)


class TestPolicyPlumbing:
    def test_default_is_float32(self):
        assert get_default_dtype() == np.dtype(np.float32)

    def test_set_returns_previous_and_sticks(self):
        previous = set_default_dtype(np.float64)
        try:
            assert previous == np.dtype(np.float32)
            assert get_default_dtype() == np.dtype(np.float64)
            assert tensor([1.0]).data.dtype == np.float64
        finally:
            set_default_dtype(previous)
        assert get_default_dtype() == np.dtype(np.float32)

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with default_dtype(np.float64):
                assert get_default_dtype() == np.dtype(np.float64)
                raise RuntimeError("boom")
        assert get_default_dtype() == np.dtype(np.float32)

    def test_rejects_unsupported_dtypes(self):
        with pytest.raises(ValueError, match="unsupported dtype"):
            set_default_dtype(np.int32)
        with pytest.raises(ValueError, match="unsupported dtype"):
            tensor([1.0], dtype=np.float16)

    def test_construction_coerces_to_policy(self):
        assert tensor([1, 2, 3]).data.dtype == np.float32
        assert tensor(np.zeros(3, dtype=np.float64)).data.dtype == np.float32
        assert tensor([1.0], dtype=np.float64).data.dtype == np.float64

    def test_detach_preserves_dtype_across_policy(self):
        t64 = tensor(np.zeros(3), dtype=np.float64)
        assert t64.detach().data.dtype == np.float64
        assert t64.astype(np.float32).data.dtype == np.float32


@pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: np.dtype(d).name)
class TestNoSilentUpcast:
    """Forward, backward and optimizer state all stay in the policy dtype."""

    def test_conv_bn_forward_backward(self, dtype):
        with default_dtype(dtype):
            rng = np.random.default_rng(0)
            conv = Conv2d(3, 8, 3, rng=rng)
            bn = BatchNorm2d(8)
            # float64 input data must not leak through the policy
            x = Tensor(rng.normal(size=(2, 3, 8, 8)), requires_grad=True)
            assert x.data.dtype == dtype
            out = bn(conv(x))
            assert out.data.dtype == dtype
            out.sum().backward()
            assert x.grad.dtype == dtype
            assert conv.weight.grad.dtype == dtype
            assert bn.gamma.grad.dtype == dtype
            assert bn.running_mean.dtype == dtype

    def test_pooling_and_linear(self, dtype):
        with default_dtype(dtype):
            rng = np.random.default_rng(1)
            x = Tensor(rng.normal(size=(2, 3, 6, 6)), requires_grad=True)
            pooled = max_pool2d(x, 2)
            assert pooled.data.dtype == dtype
            pooled.sum().backward()
            assert x.grad.dtype == dtype
            lin = Linear(4, 2, rng=rng)
            out = lin(Tensor(rng.normal(size=(5, 4))))
            assert out.data.dtype == dtype

    def test_optimizer_steps_keep_dtype(self, dtype):
        with default_dtype(dtype):
            rng = np.random.default_rng(2)
            for make in (
                lambda ps: SGD(ps, lr=0.1, momentum=0.9, weight_decay=1e-4),
                lambda ps: Adam(ps, lr=0.1),
            ):
                p = tensor(rng.normal(size=(3, 3)), requires_grad=True)
                opt = make([p])
                (p * p).sum().backward()
                opt.step()
                assert p.data.dtype == dtype
                assert p.grad.dtype == dtype

    def test_quantization_keeps_dtype(self, dtype):
        with default_dtype(dtype):
            rng = np.random.default_rng(3)
            x = tensor(rng.normal(size=(4, 4)), requires_grad=True)
            q = fake_quantize(x, 8)
            assert q.data.dtype == dtype
            weights = tensor([0.25, 0.25, 0.5])
            mixed = mixed_quantize(x, weights, (4, 8, 16))
            assert mixed.data.dtype == dtype
            mixed.sum().backward()
            assert x.grad.dtype == dtype

    def test_float64_constant_does_not_poison_graph(self, dtype):
        with default_dtype(dtype):
            x = tensor([1.0, 2.0], requires_grad=True)
            poisoned = x * Tensor(np.float64(2.0) * np.ones(2, dtype=np.float64))
            # make_op coerces every op output back to the policy dtype
            assert poisoned.data.dtype == dtype


@pytest.mark.parametrize("dtype,eps,atol,rtol", [
    (np.float64, 1e-6, 1e-5, 1e-4),
    (np.float32, 3e-3, 5e-2, 5e-2),
], ids=["float64", "float32"])
class TestGradcheckAcrossDtypes:
    """Gradients hold at both precisions (loose tolerances for float32)."""

    def test_conv2d(self, dtype, eps, atol, rtol):
        rng = np.random.default_rng(4)
        x = tensor(rng.normal(size=(2, 2, 5, 5)), requires_grad=True)
        w = tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        assert gradcheck(
            lambda a, b: conv2d(a, b, stride=2, padding=1),
            [x, w], eps=eps, atol=atol, rtol=rtol, dtype=dtype,
        )

    def test_batch_norm(self, dtype, eps, atol, rtol):
        rng = np.random.default_rng(5)
        x = tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        gamma = tensor(rng.uniform(0.5, 1.5, size=(2,)), requires_grad=True)
        beta = tensor(rng.normal(size=(2,)), requires_grad=True)
        assert gradcheck(
            lambda a, g, b: batch_norm2d(a, g, b)[0],
            [x, gamma, beta], eps=eps, atol=atol, rtol=rtol, dtype=dtype,
        )


def test_gradcheck_precise_under_float32_policy():
    """gradcheck must hold float64 precision even when the policy is float32."""
    rng = np.random.default_rng(6)
    assert get_default_dtype() == np.dtype(np.float32)
    x = tensor(rng.normal(size=(2, 3, 4, 4)), requires_grad=True)
    w = tensor(rng.normal(size=(3, 3, 3, 3)), requires_grad=True)
    assert gradcheck(lambda a, b: conv2d(a, b, padding=1), [x, w])


def test_quantize_ste_matches_composite():
    """The fused STE op equals the old clip->scale->round->rescale chain."""
    from repro.autograd.ops_basic import clip_ste, round_ste

    rng = np.random.default_rng(7)
    with default_dtype(np.float64):
        data = rng.normal(size=(6, 6)) * 2.0
        scale, low, high = 0.125, -1.5, 1.5
        a = tensor(data, requires_grad=True)
        fused = quantize_ste(a, scale, low, high)
        fused.backward(np.ones_like(fused.data))
        b = tensor(data, requires_grad=True)
        composite = round_ste(clip_ste(b, low, high) * (1.0 / scale)) * scale
        composite.backward(np.ones_like(composite.data))
        np.testing.assert_allclose(fused.data, composite.data)
        np.testing.assert_allclose(a.grad, b.grad)
