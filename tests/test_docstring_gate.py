"""The docstring-coverage CI gate must pass in-repo (tools/check_docstrings.py)."""

import importlib.util
from pathlib import Path

TOOL = Path(__file__).resolve().parent.parent / "tools" / "check_docstrings.py"


def _load_tool():
    spec = importlib.util.spec_from_file_location("check_docstrings", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_gate_script_exists():
    assert TOOL.is_file()


def test_public_surface_fully_documented():
    module = _load_tool()
    missing = module.collect_missing()
    assert missing == [], f"public names lacking docstrings: {missing}"


def test_gate_detects_gaps():
    """The checker must actually flag an undocumented public member."""
    module = _load_tool()

    class Undocumented:
        def method(self):
            pass

    Undocumented.__doc__ = None
    assert module._missing_in_class(Undocumented, "X") == ["X.method"]
