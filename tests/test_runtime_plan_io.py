"""ExecutionPlan save/load round-trips (cold-start-free deployment)."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.baselines.model_zoo import get_model
from repro.nas.arch_spec import scale_spec
from repro.nas.network import build_network
from repro.runtime import Engine, ExecutionPlan, compile_spec


@pytest.fixture(scope="module")
def compiled():
    spec = scale_spec(
        get_model("MobileNet-V2"), width_mult=0.1, input_size=16, num_classes=4
    )
    net = build_network(spec, seed=0)
    rng = np.random.default_rng(0)
    for _ in range(2):  # non-trivial BN running stats
        net(Tensor(rng.normal(size=(4, 3, 16, 16))))
    net.eval()
    return compile_spec(net)


def test_round_trip_structure(compiled, tmp_path):
    path = compiled.save(tmp_path / "plan.npz")
    loaded = ExecutionPlan.load(path)
    assert loaded.name == compiled.name
    assert loaded.dtype == compiled.dtype
    assert loaded.bits == compiled.bits
    assert loaded.input_buffer == compiled.input_buffer
    assert loaded.output_buffer == compiled.output_buffer
    assert len(loaded.ops) == len(compiled.ops)
    assert len(loaded.buffers) == len(compiled.buffers)
    for a, b in zip(loaded.ops, compiled.ops):
        assert (a.kind, a.inputs, a.output, a.act, a.scratch) == (
            b.kind, b.inputs, b.output, b.act, b.scratch
        )
        assert a.attrs == b.attrs
        if b.weight is None:
            assert a.weight is None
        else:
            np.testing.assert_array_equal(a.weight, b.weight)
            assert a.weight.dtype == b.weight.dtype


def test_round_trip_execution_parity(compiled, tmp_path):
    path = compiled.save(tmp_path / "plan.npz")
    loaded = ExecutionPlan.load(path)
    rng = np.random.default_rng(1)
    x = rng.normal(size=(3,) + compiled.input_shape)
    np.testing.assert_array_equal(Engine(loaded).run(x), Engine(compiled).run(x))


def test_concat_attrs_survive(tmp_path):
    """Tuple-valued attrs (concat channels) round-trip as tuples."""
    spec = scale_spec(
        get_model("GoogleNet"), width_mult=0.25, input_size=32, num_classes=4
    )
    plan = compile_spec(spec, seed=0)
    if plan.num_ops("concat") == 0:
        pytest.skip("model lowers without concat ops")
    loaded = ExecutionPlan.load(plan.save(tmp_path / "plan.npz"))
    rng = np.random.default_rng(2)
    for op in loaded.ops:
        if op.kind == "concat":
            assert isinstance(op.attrs["channels"], tuple)
    x = rng.normal(size=(2,) + plan.input_shape)
    np.testing.assert_array_equal(Engine(loaded).run(x), Engine(plan).run(x))


def test_load_rejects_foreign_npz(tmp_path):
    path = tmp_path / "not_a_plan.npz"
    np.savez(path, data=np.zeros(4))
    with pytest.raises(ValueError, match="not a saved ExecutionPlan"):
        ExecutionPlan.load(path)


def test_save_appends_npz_suffix_and_returns_real_path(compiled, tmp_path):
    """Regression: np.savez appends .npz; save must report the real file."""
    path = compiled.save(tmp_path / "myplan")
    assert path.name == "myplan.npz"
    assert path.exists()
    assert ExecutionPlan.load(path).name == compiled.name
