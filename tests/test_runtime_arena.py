"""Arena planner invariants: liveness, packing and reuse."""

import math

import numpy as np
import pytest

from repro.baselines.model_zoo import MODEL_ZOO, get_model
from repro.nas.arch_spec import scale_spec
from repro.runtime import compile_spec, live_ranges, plan_arena
from repro.runtime.arena import LiveRange, _peak_live
from repro.runtime.plan import BufferSpec, ExecutionPlan, PlanOp

BUILDABLE = [
    name for name in sorted(MODEL_ZOO) if get_model(name).buildable()
]

#: Models whose plans are pure chains (plus MBConv residuals); greedy packing
#: achieves the peak-live lower bound exactly on these.
CHAIN_MODELS = ("MobileNet-V2", "VGG16", "EDD-Net-1", "EDD-Net-2")


def _plan(name: str) -> ExecutionPlan:
    spec = scale_spec(
        get_model(name, num_classes=4), width_mult=0.1, input_size=32,
        num_classes=4,
    )
    return compile_spec(spec, seed=0)


class TestLiveRanges:
    def test_handmade_plan(self):
        buffers = [
            BufferSpec(0, (4,), role="input"),
            BufferSpec(1, (4,)),
            BufferSpec(2, (4,)),
        ]
        ops = [
            PlanOp(kind="gap", inputs=(0,), output=1),
            PlanOp(kind="gap", inputs=(1,), output=2),
        ]
        plan = ExecutionPlan(
            name="t", ops=ops, buffers=buffers, input_buffer=0,
            output_buffer=2, dtype=np.dtype(np.float32),
        )
        ranges = live_ranges(plan)
        assert ranges[0] == LiveRange(0, 0)
        assert ranges[1] == LiveRange(0, 1)
        assert ranges[2] == LiveRange(1, 1)
        # Buffers 0 and 2 never coexist -> the planner may overlap them.
        layout = plan_arena(plan)
        assert layout.arena_elems == 8
        assert layout.offsets[0] == layout.offsets[2]

    def test_overlap_predicate(self):
        assert LiveRange(0, 3).overlaps(LiveRange(3, 5))
        assert not LiveRange(0, 2).overlaps(LiveRange(3, 5))


class TestPlannerInvariants:
    @pytest.mark.parametrize("name", BUILDABLE)
    def test_no_live_overlap_and_peak_bound(self, name):
        plan = _plan(name)
        layout = plan_arena(plan)
        # Invariant 1+3: in-bounds slots, disjoint live buffers, arena never
        # above the no-reuse total (validate raises otherwise).
        layout.validate(plan)
        # Invariant 2: the arena stays at the peak-live lower bound, up to a
        # fraction of a percent of strip-packing fragmentation (the bound
        # itself is not always achievable).
        assert layout.arena_elems <= math.ceil(layout.peak_elems * 1.01)
        assert layout.peak_elems == _peak_live(plan, layout.ranges)

    @pytest.mark.parametrize("name", CHAIN_MODELS)
    def test_chain_models_pack_exactly_to_peak(self, name):
        layout = plan_arena(_plan(name))
        assert layout.arena_elems <= layout.peak_elems

    @pytest.mark.parametrize("name", BUILDABLE)
    def test_reuse_beats_per_op_allocation(self, name):
        layout = plan_arena(_plan(name))
        # Branch-heavy nets (ResNet, GoogleNet) keep wide early maps live
        # across the skip, so their floor is lower than the MBConv chains'.
        assert layout.reuse_factor > 1.5

    def test_validate_rejects_corrupt_layout(self):
        plan = _plan("MobileNet-V2")
        layout = plan_arena(plan)
        # Force two simultaneously-live buffers onto the same offset.
        ops0 = plan.ops[0]
        a, b = ops0.inputs[0], ops0.output
        layout.offsets[a] = layout.offsets[b]
        with pytest.raises(RuntimeError, match="overlap"):
            layout.validate(plan)

    def test_scratch_space_is_shared_across_convs(self):
        """im2col/pad scratch of different convs lands on the same offsets."""
        plan = _plan("MobileNet-V2")
        layout = plan_arena(plan)
        col_bufs = [
            op.attrs["col_buf"] for op in plan.ops
            if op.kind == "conv" and op.attrs["col_buf"] is not None
        ]
        assert len(col_bufs) > 3
        offsets = {layout.offsets[buf] for buf in col_bufs}
        assert len(offsets) < len(col_bufs)
