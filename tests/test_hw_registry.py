"""Unit tests for the target/device registry — the single dispatch point."""

import pytest

from repro.core.config import EDDConfig
from repro.hw.accel import BitSerialAccelModel
from repro.hw.device import GPUDevice, TITAN_RTX, ZC706
from repro.hw.fpga import FPGAModel
from repro.hw.gpu import GPUModel
from repro.hw.registry import (
    DEVICES,
    TARGETS,
    Registry,
    TargetSpec,
    build_hardware_model,
    get_device,
    get_target,
    quantization_for_target,
)


class TestRegistryMechanics:
    def test_round_trip(self):
        reg = Registry("thing")
        reg.register("alpha", 1)
        reg.register("Beta_Two", 2)
        assert reg.get("alpha") == 1
        assert reg.get("beta-two") == 2  # normalised lookup
        assert reg.names() == ["Beta_Two", "alpha"]
        assert "alpha" in reg and "gamma" not in reg
        assert len(reg) == 2

    def test_duplicate_rejected(self):
        reg = Registry("thing")
        reg.register("alpha", 1)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("alpha", 2)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("ALPHA", 3)  # same normalised key

    def test_unknown_lists_known(self):
        reg = Registry("widget")
        reg.register("alpha", 1)
        with pytest.raises(ValueError, match=r"unknown widget 'zeta'.*alpha"):
            reg.get("zeta")


class TestBuiltinRegistrations:
    def test_paper_targets_present(self):
        assert TARGETS.names() == [
            "accel", "fpga_pipelined", "fpga_recursive", "gpu",
        ]

    def test_paper_devices_present(self):
        for name in ("titan-rtx", "gtx-1080ti", "zcu102", "zc706",
                     "bit-serial-edge"):
            assert name in DEVICES

    def test_quantization_menus(self):
        assert quantization_for_target("gpu").sharing == "global"
        assert quantization_for_target("fpga_recursive").sharing == "per_op"
        assert quantization_for_target("fpga_pipelined").sharing == "per_block_op"
        assert quantization_for_target("accel").sharing == "per_block_op"

    def test_unknown_target_message(self):
        with pytest.raises(ValueError, match=r"unknown target 'tpu', known:"):
            get_target("tpu")

    def test_unknown_device_message(self):
        with pytest.raises(ValueError, match=r"unknown device 'a100', known:"):
            get_device("a100")

    def test_device_lookup_is_lenient(self):
        assert get_device("Titan_RTX") is TITAN_RTX
        assert get_device("zc706") is ZC706


class TestModelBuild:
    def test_builds_each_target(self, tiny_space):
        built = {
            name: build_hardware_model(tiny_space, EDDConfig(target=name))
            for name in TARGETS.names()
        }
        assert isinstance(built["gpu"], GPUModel)
        assert isinstance(built["fpga_recursive"], FPGAModel)
        assert built["fpga_recursive"].architecture == "recursive"
        assert built["fpga_pipelined"].architecture == "pipelined"
        assert isinstance(built["accel"], BitSerialAccelModel)

    def test_unknown_target_raises_at_build_site(self, tiny_space):
        """Satellite: no silent fall-through to the accel model."""
        config = EDDConfig(target="gpu")
        config.target = "npu-v9"  # bypass __post_init__ validation
        with pytest.raises(ValueError, match=r"unknown target 'npu-v9'"):
            build_hardware_model(tiny_space, config)

    def test_device_override_by_name(self, tiny_space):
        model = build_hardware_model(
            tiny_space, EDDConfig(target="gpu"), device="gtx-1080ti"
        )
        assert model.device.name == "GTX 1080 Ti"

    def test_device_not_allowed_for_target(self, tiny_space):
        with pytest.raises(ValueError, match="not registered for target"):
            build_hardware_model(
                tiny_space, EDDConfig(target="fpga_recursive"),
                device="titan-rtx",
            )


class TestTargetSpecCapabilities:
    def test_clamp_inside_menu_is_identity(self):
        spec = get_target("fpga_pipelined")
        for bits in spec.deploy_bits:
            assert spec.clamp_bits(bits) == (bits, False)

    def test_clamp_above_menu(self):
        assert get_target("fpga_recursive").clamp_bits(32) == (16, True)

    def test_clamp_below_menu(self):
        assert get_target("gpu").clamp_bits(4) == (8, True)

    def test_default_resource_fractions(self):
        assert get_target("gpu").default_resource_fraction == 1.0
        assert get_target("fpga_pipelined").default_resource_fraction < 1.0

    def test_estimator_present_for_all_targets(self):
        for name in TARGETS.names():
            assert get_target(name).estimator is not None


class TestExtension:
    def test_new_target_registration(self, tiny_space):
        """The plug-in recipe from the README, end to end."""
        from repro.hw.registry import register_device, register_target
        from repro.nas.quantization import QuantizationConfig

        device = GPUDevice(name="Test GPU", peak_fp32_tflops=1.0,
                           mem_bandwidth_gbps=100.0)
        try:
            register_device("test-gpu", device)

            @register_target(
                name="test_target",
                description="unit-test target",
                quantization=QuantizationConfig.gpu,
                default_device="test-gpu",
                devices=("test-gpu",),
                deploy_bits=(8, 16, 32),
                default_deploy_bits=32,
            )
            def _build(space, quant, config, dev):
                return GPUModel(space, quant, device=dev)

            assert "test_target" in TARGETS
            model = build_hardware_model(
                tiny_space, EDDConfig(target="test_target")
            )
            assert model.device is device
        finally:
            # Registries are process-global: undo so other tests see only the
            # built-in entries.
            TARGETS._items.pop("test-target", None)
            TARGETS._display.pop("test-target", None)
            DEVICES._items.pop("test-gpu", None)
            DEVICES._display.pop("test-gpu", None)

    def test_target_referencing_unknown_device_rejected(self):
        from repro.hw.registry import register_target
        from repro.nas.quantization import QuantizationConfig

        with pytest.raises(ValueError, match="unregistered device"):
            @register_target(
                name="bad_target",
                description="",
                quantization=QuantizationConfig.gpu,
                default_device="no-such-board",
                devices=("no-such-board",),
                deploy_bits=(32,),
                default_deploy_bits=32,
            )
            def _build(space, quant, config, dev):  # pragma: no cover
                raise AssertionError("should not be registered")
        assert "bad_target" not in TARGETS
