"""Unit tests for the analytic device evaluators and calibration anchors."""

import numpy as np
import pytest

from repro.baselines.model_zoo import get_model
from repro.hw.analytic import (
    UnsupportedNetworkError,
    fpga_pipelined_report,
    fpga_pipelined_throughput_fps,
    fpga_recursive_latency_ms,
    gpu_latency_ms,
)
from repro.hw.calibration import ANCHORS, verify_anchors
from repro.hw.device import GTX_1080TI, TITAN_RTX, ZC706, ZCU102
from repro.nas.arch_spec import scale_spec


class TestCalibrationAnchors:
    def test_all_anchors_hold(self):
        results = verify_anchors()
        for key, (measured, paper, ok) in results.items():
            assert ok, f"{key}: measured {measured:.2f} vs paper {paper:.2f}"

    def test_anchor_registry_covers_all_flows(self):
        metrics = {a.metric for a in ANCHORS}
        assert metrics == {
            "gpu_latency_ms", "fpga_recursive_latency_ms", "fpga_pipelined_fps",
        }


class TestGPUAnalytic:
    def test_lower_precision_faster(self):
        spec = get_model("EDD-Net-1")
        lat = [gpu_latency_ms(spec, GTX_1080TI, b) for b in (32, 16, 8)]
        assert lat[0] > lat[1] > lat[2]

    def test_wider_network_slower(self):
        base = get_model("MobileNet-V2")
        wide = scale_spec(base, width_mult=2.0)
        assert gpu_latency_ms(wide, TITAN_RTX) > gpu_latency_ms(base, TITAN_RTX)

    def test_headline_edd1_fastest_nas_model(self):
        """Table 1's GPU claim: EDD-Net-1 (16-bit) beats every NAS baseline."""
        edd1 = gpu_latency_ms(get_model("EDD-Net-1"), TITAN_RTX, weight_bits=16)
        rivals = ("MnasNet-A1", "FBNet-C", "Proxyless-cpu",
                  "Proxyless-Mobile", "Proxyless-gpu")
        for name in rivals:
            assert edd1 < gpu_latency_ms(get_model(name), TITAN_RTX, weight_bits=32)

    def test_headline_speedup_over_proxyless_gpu(self):
        """Paper: 1.40x over Proxyless-gpu; our model should land nearby."""
        edd1 = gpu_latency_ms(get_model("EDD-Net-1"), TITAN_RTX, 16)
        pgpu = gpu_latency_ms(get_model("Proxyless-gpu"), TITAN_RTX, 32)
        assert 1.15 <= pgpu / edd1 <= 1.7

    def test_ordering_correlates_with_paper(self):
        from scipy.stats import spearmanr

        paper = {
            "GoogleNet": 27.75, "MobileNet-V2": 17.87, "ShuffleNet-V2": 21.91,
            "ResNet18": 9.71, "MnasNet-A1": 17.94, "FBNet-C": 22.54,
            "Proxyless-cpu": 21.34, "Proxyless-Mobile": 21.23,
            "Proxyless-gpu": 15.72, "EDD-Net-1": 11.17, "EDD-Net-2": 13.00,
        }
        bits = {"EDD-Net-1": 16, "EDD-Net-2": 16}
        ours = [
            gpu_latency_ms(get_model(n), TITAN_RTX, bits.get(n, 32)) for n in paper
        ]
        rho = spearmanr(ours, list(paper.values())).statistic
        assert rho > 0.7


class TestRecursiveAnalytic:
    def test_shufflenet_unsupported(self):
        with pytest.raises(UnsupportedNetworkError, match="shuffle"):
            fpga_recursive_latency_ms(get_model("ShuffleNet-V2"), ZCU102)

    def test_lower_bits_faster(self):
        spec = get_model("ResNet18")
        assert fpga_recursive_latency_ms(spec, ZCU102, 8) < fpga_recursive_latency_ms(
            spec, ZCU102, 16
        )

    def test_all_table1_models_in_plausible_range(self):
        for name in ("GoogleNet", "MobileNet-V2", "ResNet18", "MnasNet-A1",
                     "FBNet-C", "Proxyless-gpu", "EDD-Net-1", "EDD-Net-2"):
            ms = fpga_recursive_latency_ms(get_model(name), ZCU102, 16)
            assert 4.0 < ms < 25.0, f"{name}: {ms}"


class TestPipelinedAnalytic:
    def test_table3_headline_edd3_beats_vgg(self):
        vgg = fpga_pipelined_throughput_fps(get_model("VGG16"), ZC706, 16)
        edd3 = fpga_pipelined_throughput_fps(get_model("EDD-Net-3"), ZC706, 16)
        ratio = edd3 / vgg
        assert ratio > 1.2  # paper: 1.45x

    def test_report_identifies_bottleneck(self):
        report = fpga_pipelined_report(get_model("EDD-Net-3"), ZC706, 16)
        assert report.bottleneck_kind == "dwconv"
        assert len(report.stage_us) == len(report.allocations)
        assert max(report.stage_us) == report.stage_us[report.bottleneck_index]

    def test_vgg_bottleneck_is_dense_conv(self):
        report = fpga_pipelined_report(get_model("VGG16"), ZC706, 16)
        assert report.bottleneck_kind == "conv"

    def test_allocations_within_dsp_budget(self):
        report = fpga_pipelined_report(get_model("EDD-Net-3"), ZC706, 16)
        assert sum(report.allocations) <= ZC706.dsp_total + 1e-6

    def test_more_dsps_more_throughput(self):
        import dataclasses

        small = dataclasses.replace(ZC706, dsp_total=450)
        spec = get_model("EDD-Net-3")
        assert fpga_pipelined_throughput_fps(spec, ZC706) > fpga_pipelined_throughput_fps(
            spec, small
        )

    def test_8bit_improves_throughput(self):
        spec = get_model("EDD-Net-3")
        assert fpga_pipelined_throughput_fps(spec, ZC706, 8) > fpga_pipelined_throughput_fps(
            spec, ZC706, 16
        )
