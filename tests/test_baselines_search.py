"""Unit tests for the fixed-implementation NAS and random-search baselines."""

import numpy as np
import pytest

from repro.baselines.fixed_impl_nas import FixedImplementationNAS, FrozenImplementationModel
from repro.baselines.random_search import random_search
from repro.core.config import EDDConfig
from repro.hw.registry import build_hardware_model
from repro.nas.supernet import constant_sample


class TestFrozenImplementationModel:
    def test_exposes_no_impl_parameters(self, tiny_space):
        inner = build_hardware_model(tiny_space, EDDConfig(target="fpga_recursive"))
        frozen = FrozenImplementationModel(inner, fixed_bits=16)
        assert frozen.implementation_parameters() == []
        assert frozen.resource_bound == inner.resource_bound

    def test_pins_quantisation(self, tiny_space):
        inner = build_hardware_model(tiny_space, EDDConfig(target="fpga_recursive"))
        frozen = FrozenImplementationModel(inner, fixed_bits=16)
        sample = constant_sample(tiny_space, None, [0] * tiny_space.num_blocks)
        out = frozen.evaluate(sample)
        # Evaluating the inner model directly at 16-bit must agree.
        direct = constant_sample(tiny_space, inner.quant,
                                 [0] * tiny_space.num_blocks,
                                 inner.quant.bitwidths.index(16))
        np.testing.assert_allclose(
            float(out.perf_loss.data), float(inner.evaluate(direct).perf_loss.data)
        )

    def test_rejects_bits_not_in_menu(self, tiny_space):
        inner = build_hardware_model(tiny_space, EDDConfig(target="fpga_recursive"))
        with pytest.raises(ValueError, match="menu"):
            FrozenImplementationModel(inner, fixed_bits=12)


class TestFixedImplementationNAS:
    def test_search_runs_and_annotates(self, tiny_space, tiny_splits):
        config = EDDConfig(target="fpga_recursive", epochs=2, batch_size=8,
                           arch_start_epoch=0, seed=0)
        nas = FixedImplementationNAS(tiny_space, tiny_splits, config, fixed_bits=16)
        result = nas.search()
        assert result.spec.metadata["fixed_implementation"] is True
        assert result.spec.weight_bits == 16

    def test_pf_stays_at_initialisation(self, tiny_space, tiny_splits):
        config = EDDConfig(target="fpga_recursive", epochs=2, batch_size=8,
                           arch_start_epoch=0, seed=0)
        nas = FixedImplementationNAS(tiny_space, tiny_splits, config)
        pf_before = nas.hw_model.inner.pf.data.copy()
        nas.search()
        np.testing.assert_allclose(nas.hw_model.inner.pf.data, pf_before)

    def test_theta_moves(self, tiny_space, tiny_splits):
        config = EDDConfig(target="fpga_recursive", epochs=2, batch_size=8,
                           arch_start_epoch=0, seed=0)
        nas = FixedImplementationNAS(tiny_space, tiny_splits, config)
        theta_before = nas.supernet.theta.data.copy()
        nas.search()
        assert not np.allclose(nas.supernet.theta.data, theta_before)


class TestRandomSearch:
    def test_returns_best_of_candidates(self, tiny_space, tiny_splits):
        config = EDDConfig(target="fpga_pipelined", epochs=1, batch_size=8, seed=0)
        best, candidates = random_search(
            tiny_space, tiny_splits, config, num_candidates=3, train_epochs=1, seed=0,
        )
        assert len(candidates) == 3
        assert best.objective == min(c.objective for c in candidates)
        assert best.spec.name.startswith("random-")

    def test_candidates_differ(self, tiny_space, tiny_splits):
        config = EDDConfig(target="fpga_pipelined", epochs=1, batch_size=8, seed=0)
        _, candidates = random_search(
            tiny_space, tiny_splits, config, num_candidates=3, train_epochs=1, seed=1,
        )
        descriptions = {c.spec.describe() for c in candidates}
        assert len(descriptions) > 1
