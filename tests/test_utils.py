"""Unit tests for repro.utils (rng, numeric helpers, serialization, logging)."""

import dataclasses
import logging

import numpy as np
import pytest

from repro.utils import (
    from_json_file,
    get_logger,
    log_sum_exp,
    new_rng,
    one_hot,
    sigmoid,
    softmax,
    spawn_rngs,
    stable_log,
    to_json_file,
)
from repro.utils.rng import (
    DEFAULT_SEED,
    RngMixin,
    capture_rng_state,
    restore_rng_state,
)


class TestRng:
    def test_same_seed_same_stream(self):
        assert new_rng(5).normal() == new_rng(5).normal()

    def test_different_seeds_differ(self):
        assert new_rng(5).normal() != new_rng(6).normal()

    def test_none_uses_default_seed(self):
        assert new_rng(None).normal() == new_rng(DEFAULT_SEED).normal()

    def test_spawn_count_and_independence(self):
        streams = spawn_rngs(1, 3)
        assert len(streams) == 3
        draws = [s.normal() for s in streams]
        assert len(set(draws)) == 3

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_mixin_lazy_and_reseed(self):
        class Thing(RngMixin):
            def __init__(self, seed):
                self._seed = seed

        a, b = Thing(3), Thing(3)
        assert a.rng.normal() == b.rng.normal()
        first = Thing(3).rng.normal()
        thing = Thing(3)
        thing.rng.normal()
        thing.reseed(3)
        assert thing.rng.normal() == first


class TestRngStateRoundTrip:
    def test_draws_bit_identical_after_restore(self):
        rng = new_rng(9)
        rng.normal(size=100)  # advance the stream
        state = capture_rng_state(rng)
        expected = rng.normal(size=50)
        other = new_rng(0)  # different seed, same bit-generator type
        restore_rng_state(other, state)
        np.testing.assert_array_equal(other.normal(size=50), expected)

    def test_state_is_uint8_array(self):
        state = capture_rng_state(new_rng(1))
        assert state.dtype == np.uint8
        assert state.ndim == 1

    def test_mismatched_bit_generator_rejected(self):
        state = capture_rng_state(new_rng(1))
        legacy = np.random.Generator(np.random.MT19937(0))
        with pytest.raises(ValueError, match="PCG64"):
            restore_rng_state(legacy, state)

    def test_loader_shuffle_stream_round_trips(self):
        from repro.data.loader import DataLoader
        from repro.data.synthetic import SyntheticTaskConfig, make_synthetic_task

        splits = make_synthetic_task(SyntheticTaskConfig(
            num_classes=3, image_size=6, train_per_class=6,
            val_per_class=2, test_per_class=2, seed=0,
        ))
        loader = DataLoader(splits.train, batch_size=4, shuffle=True, seed=1)
        list(loader)  # advance one epoch
        state = loader.rng_state()
        expected = [labels.tolist() for _, labels in loader]
        fresh = DataLoader(splits.train, batch_size=4, shuffle=True, seed=1)
        fresh.set_rng_state(state)
        assert [labels.tolist() for _, labels in fresh] == expected


class TestNumeric:
    def test_softmax_matches_scipy(self):
        from scipy.special import softmax as ref

        x = np.random.default_rng(0).normal(size=(3, 4))
        np.testing.assert_allclose(softmax(x, axis=-1), ref(x, axis=-1))

    def test_softmax_handles_large_values(self):
        out = softmax(np.array([1000.0, 1000.0]))
        np.testing.assert_allclose(out, [0.5, 0.5])

    def test_log_sum_exp_reference(self):
        from scipy.special import logsumexp as ref

        x = np.random.default_rng(1).normal(size=(4, 5))
        np.testing.assert_allclose(log_sum_exp(x, axis=1), ref(x, axis=1))

    def test_log_sum_exp_none_axis_scalar(self):
        assert log_sum_exp(np.ones((2, 2))).shape == ()

    def test_sigmoid_bounds(self):
        out = sigmoid(np.array([-1e4, 0.0, 1e4]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)

    def test_stable_log_clamps(self):
        assert np.isfinite(stable_log(np.array([0.0])))

    def test_one_hot_shape_and_values(self):
        out = one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_multidim(self):
        out = one_hot(np.array([[0, 1], [1, 0]]), 2)
        assert out.shape == (2, 2, 2)
        np.testing.assert_allclose(out.sum(axis=-1), np.ones((2, 2)))

    def test_one_hot_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            one_hot(np.array([3]), 3)

    def test_one_hot_rejects_bad_classes(self):
        with pytest.raises(ValueError, match="positive"):
            one_hot(np.array([0]), 0)


class TestSerialization:
    def test_roundtrip_with_numpy_types(self, tmp_path):
        payload = {
            "i": np.int64(3),
            "f": np.float64(1.5),
            "b": np.bool_(True),
            "a": np.arange(3),
        }
        path = to_json_file(payload, tmp_path / "x.json")
        loaded = from_json_file(path)
        assert loaded == {"i": 3, "f": 1.5, "b": True, "a": [0, 1, 2]}

    def test_dataclass_support(self, tmp_path):
        @dataclasses.dataclass
        class Point:
            x: int
            y: int

        path = to_json_file(Point(1, 2), tmp_path / "p.json")
        assert from_json_file(path) == {"x": 1, "y": 2}

    def test_creates_parent_dirs(self, tmp_path):
        path = to_json_file([1], tmp_path / "a" / "b" / "c.json")
        assert path.exists()


class TestLogging:
    def test_namespacing(self):
        assert get_logger("core").name == "repro.core"
        assert get_logger("repro.hw").name == "repro.hw"

    def test_no_duplicate_handlers(self):
        get_logger("x")
        get_logger("y")
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1
