"""Unit tests for depth search via skip candidates."""

import dataclasses

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.hw.fpga import (
    FPGAModel,
    candidate_uses_multipliers,
    candidate_workload,
    skip_workload,
)
from repro.hw.gpu import GPUModel, skip_gpu_latency_us
from repro.hw.device import TITAN_RTX
from repro.nas.network import build_network
from repro.nas.quantization import QuantizationConfig
from repro.nas.space import BlockGeometry, CandidateOp, SearchSpaceConfig
from repro.nas.supernet import SkipCandidate, SuperNet, constant_sample


@pytest.fixture
def skip_space(tiny_space):
    return dataclasses.replace(tiny_space, allow_skip=True)


IDENTITY_GEOM = BlockGeometry(in_ch=8, out_ch=8, stride=1, in_h=4, in_w=4, out_h=4, out_w=4)
PROJECT_GEOM = BlockGeometry(in_ch=8, out_ch=16, stride=2, in_h=4, in_w=4, out_h=2, out_w=2)


class TestCandidateOp:
    def test_skip_sentinel(self):
        op = CandidateOp.skip()
        assert op.is_skip
        assert op.label == "skip"
        assert not CandidateOp(3, 4).is_skip

    def test_menu_grows_by_one(self, tiny_space, skip_space):
        assert skip_space.num_ops == tiny_space.num_ops + 1
        assert skip_space.candidate_ops()[-1].is_skip
        # MBConv indices are stable.
        assert skip_space.candidate_ops()[:-1] == tiny_space.candidate_ops()


class TestSpecAssembly:
    def test_identity_skip_removes_block(self, skip_space):
        ops = skip_space.candidate_ops()
        choices = [ops[0]] * skip_space.num_blocks
        # Find a block where identity is legal (stride 1, same channels)...
        in_ch = skip_space.block_input_channels()
        legal = [
            i for i in range(skip_space.num_blocks)
            if skip_space.block_strides[i] == 1
            and in_ch[i] == skip_space.block_channels[i]
        ]
        assert legal, "tiny space should have at least one skippable block"
        choices[legal[0]] = CandidateOp.skip()
        spec = skip_space.spec_for_choices(choices)
        base = skip_space.spec_for_choices([ops[0]] * skip_space.num_blocks)
        assert len(spec.blocks) == len(base.blocks) - 1

    def test_projection_skip_becomes_conv1x1(self, skip_space):
        from repro.nas.arch_spec import ConvBlock

        choices = [CandidateOp.skip()] * skip_space.num_blocks
        spec = skip_space.spec_for_choices(choices)
        projections = [
            b for b in spec.blocks
            if isinstance(b, ConvBlock) and b.kernel == 1 and
            (b.stride == 2 or b.out_ch != b.out_ch)  # stride-changing ones
        ]
        assert projections  # the strided block cannot vanish

    def test_all_skip_network_trains(self, skip_space, tiny_splits):
        choices = [CandidateOp.skip()] * skip_space.num_blocks
        spec = skip_space.spec_for_choices(choices, name="all-skip")
        net = build_network(spec, seed=0)
        out = net(Tensor(tiny_splits.train.images[:4]))
        assert out.shape == (4, skip_space.num_classes)


class TestWorkloads:
    def test_identity_skip_free(self):
        assert skip_workload(IDENTITY_GEOM) == 0.0
        assert candidate_workload(IDENTITY_GEOM, CandidateOp.skip()) == 0.0

    def test_projection_skip_costs_pointwise(self):
        w = skip_workload(PROJECT_GEOM)
        assert w == 2 * 2 * 8 * 16 + 2 * 2 * 16

    def test_skip_cheaper_than_any_mbconv(self):
        for geom in (IDENTITY_GEOM, PROJECT_GEOM):
            mb = candidate_workload(geom, CandidateOp(3, 2))
            assert candidate_workload(geom, CandidateOp.skip()) < mb

    def test_multiplier_mask(self):
        assert not candidate_uses_multipliers(IDENTITY_GEOM, CandidateOp.skip())
        assert candidate_uses_multipliers(PROJECT_GEOM, CandidateOp.skip())
        assert candidate_uses_multipliers(IDENTITY_GEOM, CandidateOp(3, 2))

    def test_gpu_skip_latency(self):
        assert skip_gpu_latency_us(IDENTITY_GEOM, TITAN_RTX, 32) == 0.0
        assert skip_gpu_latency_us(PROJECT_GEOM, TITAN_RTX, 32) > 0.0


class TestSupernetWithSkip:
    def test_skip_candidate_forward_identity(self, rng):
        cand = SkipCandidate(8, 8, 1, None, rng)
        x = Tensor(rng.normal(size=(2, 8, 4, 4)))
        assert cand(x) is x

    def test_skip_candidate_projection_shapes(self, rng):
        cand = SkipCandidate(8, 16, 2, QuantizationConfig.fpga(), rng)
        x = Tensor(rng.normal(size=(2, 8, 4, 4)))
        assert cand(x).shape == (2, 16, 2, 2)

    def test_supernet_forward_both_modes(self, skip_space, sampler, rng):
        quant = QuantizationConfig.fpga(sharing="per_block_op")
        net = SuperNet(skip_space, quant, seed=0)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        for hard in (True, False):
            out = net(x, sample=net.sample(sampler, hard=hard))
            assert out.shape == (2, skip_space.num_classes)

    def test_identity_skip_res_masked(self, skip_space):
        quant = QuantizationConfig.fpga(sharing="per_block_op")
        model = FPGAModel(skip_space, quant, architecture="pipelined")
        skip_idx = skip_space.num_ops - 1
        sample = constant_sample(
            skip_space, quant, [skip_idx] * skip_space.num_blocks, 2
        )
        res_all_skip = float(model.evaluate(sample).resource.data)
        dense = constant_sample(skip_space, quant, [0] * skip_space.num_blocks, 2)
        res_dense = float(model.evaluate(dense).resource.data)
        assert res_all_skip < res_dense

    def test_gpu_table_skip_column_cheapest(self, skip_space):
        model = GPUModel(skip_space, QuantizationConfig.gpu())
        skip_idx = skip_space.num_ops - 1
        table = model.latency_table_us
        assert np.all(table[:, skip_idx, :] <= table[:, :-1, :].min(axis=1) + 1e-9)

    def test_search_end_to_end_with_skip(self, skip_space, tiny_splits):
        from repro.core.config import EDDConfig
        from repro.core.cosearch import EDDSearcher
        from repro.core.trainer import train_from_spec

        config = EDDConfig(target="fpga_pipelined", epochs=2, batch_size=8,
                           seed=1, arch_start_epoch=0, resource_fraction=0.1)
        result = EDDSearcher(skip_space, tiny_splits, config).search()
        assert len(result.spec.metadata["op_labels"]) == skip_space.num_blocks
        trained = train_from_spec(result.spec, tiny_splits, epochs=2, batch_size=8)
        assert np.isfinite(trained.top1_error)
