"""End-to-end observability: per-op profiles, search spans, fleet traces.

What must hold across the layers this PR wires together:

* ``Engine.run(profile=True)`` accumulates a per-op table, and
  :func:`repro.obs.profile_report` joins every op against the analytic
  per-op prediction for a GPU target — the payload ``repro calibrate
  --per-op`` refits from;
* an enabled global tracer makes the search loop emit per-epoch spans and
  loss/temperature counters;
* both fleet tiers emit the request lifecycle
  (``request`` ⊃ ``request.queued``/``request.dispatch``/``request.compute``)
  with child-process worker spans re-anchored inside the parent's
  ``fleet.submit`` span;
* :func:`repro.api.trace_session` scopes the above and writes the files.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import api
from repro.cli import build_parser, main
from repro.nas.arch_spec import ArchSpec, FCBlock, MBConvBlock, PoolBlock, StemBlock
from repro.obs import load_trace, profile_report, render_profile_table
from repro.obs.tracer import Tracer, get_tracer, set_tracer
from repro.runtime import Engine, compile_spec
from repro.runtime.fleet import ServingFleet

WAIT = 30.0


def _tiny_spec(name: str, out_features: int = 4) -> ArchSpec:
    return ArchSpec(
        name,
        [
            StemBlock(out_ch=8, kernel=3, stride=2),
            MBConvBlock(expansion=2, kernel=3, out_ch=8),
            PoolBlock(kernel=2, stride=2, mode="max"),
            FCBlock(out_features=out_features),
        ],
        input_size=12,
        input_channels=3,
    )


@pytest.fixture(scope="module")
def plans():
    return {
        "a": compile_spec(_tiny_spec("a"), seed=0),
        "b": compile_spec(_tiny_spec("b", out_features=3), seed=1),
    }


@pytest.fixture
def sample():
    return np.random.default_rng(0).standard_normal((3, 12, 12))


@pytest.fixture
def enabled_tracer():
    """Install a fresh enabled global tracer; restore the previous on exit."""
    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    yield tracer
    set_tracer(previous)


def _spans(tracer, name):
    return [e for e in tracer.events()
            if e.get("ph") == "X" and e["name"] == name]


def _within(child, parent, slack=0.0):
    return (parent["ts"] - slack <= child["ts"] and
            child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + slack)


class TestEngineProfile:
    def test_op_profile_accumulates_per_op_rows(self, plans, sample):
        engine = Engine(plans["a"])
        engine.run(sample)  # unprofiled warm-up must not touch the table
        engine.run(sample, profile=True)
        engine.run(sample, profile=True)
        rows = engine.op_profile()
        assert len(rows) == engine.plan.num_ops()
        assert engine.profiled_runs == 2
        for row in rows:
            assert row["calls"] == 2
            assert row["total_ms"] >= 0.0
            assert row["mean_ms"] == pytest.approx(row["total_ms"] / 2)
        engine.reset_profile()
        assert all(r["calls"] == 0 and r["mean_ms"] is None
                   for r in engine.op_profile())

    def test_profiled_run_matches_unprofiled_output(self, plans, sample):
        engine = Engine(plans["a"])
        plain = engine.run(sample)
        profiled = engine.run(sample, profile=True)
        np.testing.assert_array_equal(plain, profiled)

    def test_run_emits_engine_span_when_traced(
        self, plans, sample, enabled_tracer
    ):
        engine = Engine(plans["a"])
        engine.run(sample)
        (span,) = _spans(enabled_tracer, "engine.run")
        assert span["cat"] == "runtime"
        assert span["args"]["plan"] == engine.plan.name
        assert span["args"]["batch"] == 1
        assert span["dur"] > 0.0

    def test_profile_report_joins_every_op_against_gpu_prediction(
        self, plans, sample
    ):
        engine = Engine(plans["a"])
        engine.run(sample, profile=True)
        payload = profile_report(engine, target="gpu")
        assert payload["target"] == "gpu"
        assert payload["device"]
        assert len(payload["rows"]) == engine.plan.num_ops()
        for row in payload["rows"]:
            assert row["mean_ms"] is not None
            assert row["predicted_ms"] is not None
            assert row["measured_over_predicted"] is not None
        assert payload["total_predicted_ms"] > 0.0
        assert payload["total_measured_ms"] > 0.0
        table = render_profile_table(payload)
        assert "predicted" in table

    def test_profile_payload_feeds_per_op_calibration(
        self, plans, sample, tmp_path
    ):
        from repro.hw.calibration import fit_from_profile, records_from_profile

        engine = Engine(plans["a"])
        engine.run(sample, profile=True)
        payload = profile_report(engine, target="gpu")
        records = records_from_profile(payload)
        joined = [r for r in payload["rows"]
                  if r["predicted_ms"] and r["mean_ms"]]
        assert len(records) == len(joined)
        assert all(r["metric"] == "latency_ms" for r in records)
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(payload))
        fits = fit_from_profile(path)
        ((key, fit),) = fits.items()
        assert key[0] == "gpu"
        assert fit.records == len(records)
        assert fit.fitted_scale > 0.0

    def test_profile_without_target_rejected_by_calibration(
        self, plans, sample
    ):
        from repro.hw.calibration import records_from_profile

        engine = Engine(plans["a"])
        engine.run(sample, profile=True)
        payload = profile_report(engine)  # no target -> no prediction column
        with pytest.raises(ValueError, match="target"):
            records_from_profile(payload)


class TestSearchSpans:
    def test_epoch_spans_and_counters(self, enabled_tracer):
        api.search(target="gpu", epochs=2, blocks=2, seed=0)
        epochs = _spans(enabled_tracer, "search.epoch")
        assert len(epochs) == 2
        assert [s["args"]["epoch"] for s in epochs] == [0, 1]
        names = {e["name"] for e in enabled_tracer.events()
                 if e.get("ph") == "C"}
        assert {"search.train_loss", "search.total_loss",
                "search.temperature"} <= names
        phases = {e["name"] for e in enabled_tracer.events()
                  if e.get("ph") == "X" and e["name"].startswith("search.")}
        assert len(phases) > 1  # epoch plus at least one timed phase


class TestFleetTracing:
    def _submit_and_close(self, fleet, plans, sample, per_model=3):
        handles = []
        for name in plans:
            handles += [fleet.submit(name, sample) for _ in range(per_model)]
        for handle in handles:
            handle.result(timeout=WAIT)
        fleet.close()
        return len(handles)

    def test_thread_tier_request_lifecycle_nests(
        self, plans, sample, enabled_tracer
    ):
        with ServingFleet(plans, workers=2, kind="thread") as fleet:
            total = self._submit_and_close(fleet, plans, sample)
        requests = _spans(enabled_tracer, "request")
        assert len(requests) == total
        by_req = {s["args"]["req"]: s for s in requests}
        for stage in ("request.queued", "request.dispatch", "request.compute"):
            stages = _spans(enabled_tracer, stage)
            assert len(stages) == total
            for span in stages:
                parent = by_req[span["args"]["req"]]
                assert _within(span, parent, slack=1e-6)
                assert span["tid"] == parent["tid"]
        assert _spans(enabled_tracer, "engine.run")  # runtime layer joined in

    def test_process_tier_reanchors_child_spans(
        self, plans, sample, enabled_tracer
    ):
        with ServingFleet(plans, workers=1, kind="process") as fleet:
            total = self._submit_and_close(fleet, plans, sample, per_model=2)
        assert len(_spans(enabled_tracer, "request")) == total
        submits = _spans(enabled_tracer, "fleet.submit")
        computes = _spans(enabled_tracer, "worker.compute")
        builds = _spans(enabled_tracer, "worker.engine_build")
        assert submits and computes
        assert len(builds) == len(plans)  # one cold engine build per model
        # Re-anchored child spans live on the parent pid and the worker lane,
        # inside the submit span that shipped their batch.
        parent_pid = enabled_tracer.pid
        for child in computes + builds:
            assert child["pid"] == parent_pid
            assert child["args"]["worker"] == 0
            assert any(
                _within(child, submit, slack=1e-6)
                and submit["tid"] == child["tid"]
                for submit in submits
            ), f"{child['name']} span not inside any fleet.submit span"

    def test_disabled_tracer_serves_without_events(self, plans, sample):
        assert not get_tracer().enabled
        with ServingFleet(plans, workers=1, kind="thread") as fleet:
            fleet.submit("a", sample).result(timeout=WAIT)
        assert len(get_tracer()) == 0


class TestTraceSession:
    def test_writes_both_sinks_and_restores_previous(self, plans, sample,
                                                     tmp_path):
        chrome = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        before = get_tracer()
        with api.trace_session(chrome=str(chrome), jsonl=str(jsonl)) as tracer:
            assert get_tracer() is tracer
            Engine(plans["a"]).run(sample)
        assert get_tracer() is before
        chrome_events = load_trace(str(chrome))
        assert load_trace(str(jsonl)) == chrome_events
        assert any(e["name"] == "engine.run" for e in chrome_events)

    def test_kill_switch_writes_nothing(self, plans, sample, tmp_path,
                                        monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        chrome = tmp_path / "t.json"
        with api.trace_session(chrome=str(chrome)):
            Engine(plans["a"]).run(sample)
        assert not chrome.exists()


SCALE = ["--width", "0.1", "--input-size", "16", "--classes", "4"]


class TestObservabilityCLI:
    def test_parser_accepts_new_flags(self):
        args = build_parser().parse_args(
            ["--log-level", "warning", "serve", "--models", "EDD-Net-1",
             "--trace-out", "t.json", "--metrics-out", "m.txt"]
        )
        assert args.log_level == "warning"
        assert args.trace_out == "t.json"
        assert args.metrics_out == "m.txt"
        args = build_parser().parse_args(
            ["infer", "--model", "EDD-Net-1", "--profile",
             "--profile-out", "p.json", "--target", "gpu"]
        )
        assert args.profile and args.profile_out == "p.json"
        args = build_parser().parse_args(["trace", "summary", "t.json",
                                          "--top", "3"])
        assert args.file == "t.json" and args.top == 3

    def test_calibrate_requires_exactly_one_source(self, capsys, tmp_path):
        assert main(["calibrate"]) == 2
        assert "exactly one" in capsys.readouterr().err
        log = tmp_path / "log.jsonl"
        log.write_text("")
        assert main(["calibrate", "--log", str(log),
                     "--per-op", str(log)]) == 2

    def test_infer_profile_json_payload(self, capsys, tmp_path):
        out = tmp_path / "profile.json"
        rc = main(["infer", "--model", "EDD-Net-1", *SCALE, "--runs", "2",
                   "--profile", "--profile-out", str(out), "--target", "gpu",
                   "--format", "json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        profile = payload["profile"]
        assert profile["target"] == "gpu"
        assert all(row["predicted_ms"] is not None
                   for row in profile["rows"])
        assert json.loads(out.read_text())["rows"] == profile["rows"]
        rc = main(["calibrate", "--per-op", str(out)])
        assert rc == 0

    def test_serve_trace_out_then_trace_summary(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        rc = main(["serve", "--models", "EDD-Net-1", "--workers", "1",
                   "--requests", "2", *SCALE, "--trace-out", str(trace)])
        assert rc == 0
        assert f"wrote trace to {trace}" in capsys.readouterr().out
        events = load_trace(str(trace))
        names = {e["name"] for e in events if e.get("ph") == "X"}
        assert {"request", "request.queued", "request.dispatch",
                "request.compute"} <= names
        rc = main(["trace", "summary", str(trace), "--format", "json"])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["requests"] == 2
        assert "EDD-Net-1" in summary["queue_wait_ms"]
