"""Unit tests for reduction ops, including the Eq. 7 Log-Sum-Exp surrogate."""

import numpy as np
import pytest

from repro.autograd import gradcheck
from repro.autograd.ops_reduce import logsumexp, max_reduce, mean, sum_reduce
from repro.autograd.tensor import tensor


@pytest.fixture
def rng():
    return np.random.default_rng(2)


def t(data):
    return tensor(np.asarray(data, dtype=float), requires_grad=True)


class TestSumMean:
    @pytest.mark.parametrize("axis", [None, 0, 1, (0, 1)])
    def test_sum_matches_numpy(self, rng, axis):
        a = t(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(sum_reduce(a, axis=axis).data, a.data.sum(axis=axis))

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_mean_matches_numpy(self, rng, axis):
        a = t(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(mean(a, axis=axis).data, a.data.mean(axis=axis))

    def test_keepdims(self, rng):
        a = t(rng.normal(size=(3, 4)))
        assert sum_reduce(a, axis=1, keepdims=True).shape == (3, 1)

    def test_negative_axis(self, rng):
        a = t(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(sum_reduce(a, axis=-1).data, a.data.sum(axis=-1))

    def test_sum_gradcheck(self, rng):
        a = t(rng.normal(size=(3, 4)))
        assert gradcheck(lambda x: sum_reduce(x, axis=0), [a])

    def test_mean_gradcheck(self, rng):
        a = t(rng.normal(size=(3, 4)))
        assert gradcheck(lambda x: mean(x, axis=(0, 1)), [a])


class TestMax:
    def test_forward(self, rng):
        a = t(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(max_reduce(a, axis=1).data, a.data.max(axis=1))

    def test_gradcheck_unique_max(self):
        a = t([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]])
        assert gradcheck(lambda x: max_reduce(x, axis=1), [a])

    def test_tie_splits_gradient(self):
        a = t([[3.0, 3.0]])
        max_reduce(a, axis=1).backward(np.array([1.0]))
        np.testing.assert_allclose(a.grad, [[0.5, 0.5]])


class TestLogSumExp:
    def test_upper_and_lower_bounds(self, rng):
        """max(x) <= LSE(x) <= max(x) + log(n) — the smooth-max guarantee."""
        x = rng.normal(size=(10,)) * 5
        val = float(logsumexp(t(x)).data)
        assert x.max() <= val <= x.max() + np.log(len(x)) + 1e-12

    def test_stability_with_huge_values(self):
        a = t([1000.0, 1000.0])
        val = float(logsumexp(a).data)
        np.testing.assert_allclose(val, 1000.0 + np.log(2.0))

    def test_matches_numpy_reference(self, rng):
        from scipy.special import logsumexp as scipy_lse

        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(
            logsumexp(t(x), axis=1).data, scipy_lse(x, axis=1)
        )

    def test_gradient_is_softmax(self, rng):
        x = rng.normal(size=(4,))
        a = t(x)
        logsumexp(a).backward(np.array(1.0))
        expected = np.exp(x - x.max())
        expected /= expected.sum()
        np.testing.assert_allclose(a.grad, expected)

    def test_gradcheck(self, rng):
        a = t(rng.normal(size=(3, 4)))
        assert gradcheck(lambda x: logsumexp(x, axis=0), [a])
        a.zero_grad()
        assert gradcheck(lambda x: logsumexp(x, axis=None), [a])

    def test_keepdims_shape(self, rng):
        a = t(rng.normal(size=(3, 4)))
        assert logsumexp(a, axis=1, keepdims=True).shape == (3, 1)
