"""Unit tests for the stable ``repro.api`` facade."""

import json

import pytest

from repro import api
from repro.utils.serialization import ReproJSONEncoder


def _round_trip(payload):
    return json.loads(json.dumps(payload, cls=ReproJSONEncoder))


class TestIntrospection:
    def test_targets_listing(self):
        listing = api.targets()
        names = {t["name"] for t in listing}
        assert {"gpu", "fpga_recursive", "fpga_pipelined", "accel"} <= names
        gpu = next(t for t in listing if t["name"] == "gpu")
        assert gpu["deploy_bits"] == [8, 16, 32]
        assert gpu["sharing"] == "global"
        assert _round_trip(listing) == listing

    def test_devices_listing(self):
        listing = api.devices()
        by_name = {d["name"]: d for d in listing}
        assert "gpu" in by_name["titan-rtx"]["targets"]
        assert "fpga_pipelined" in by_name["zc706"]["targets"]

    def test_zoo_listing(self):
        listing = api.zoo()
        assert all(m["macs"] > 0 and m["params"] > 0 for m in listing)
        assert _round_trip(listing) == listing


class TestEstimate:
    def test_batch_shape_models_x_targets_x_bits(self):
        report = api.estimate(
            models=["ResNet18", "EDD-Net-1"],
            targets=["gpu", "fpga_recursive", "fpga_pipelined"],
            bits=[8, 16],
        )
        assert len(report) == 2 * 3 * 2
        keys = {(r.model, r.target, r.requested_bits) for r in report}
        assert len(keys) == 12  # no duplicates, full cross product

    def test_defaults_cover_all_targets(self):
        report = api.estimate(models=["VGG16"])
        assert {r.target for r in report} == set(
            t["name"] for t in api.targets()
        )
        # Default bits follow each target's registered deploy default.
        gpu = next(r for r in report if r.target == "gpu")
        assert gpu.requested_bits == 32 and not gpu.clamped

    def test_clamp_is_flagged_not_silent(self):
        report = api.estimate(
            models=["ResNet18"], targets=["fpga_pipelined"], bits=[32]
        )
        record = report.records[0]
        assert record.bits == 16 and record.clamped
        assert "clamped to 16-bit" in record.note

    def test_unsupported_network_does_not_sink_batch(self):
        report = api.estimate(
            models=["ShuffleNet-V2", "ResNet18"], targets=["fpga_recursive"]
        )
        by_model = {r.model: r for r in report}
        assert not by_model["ShuffleNet-V2"].supported
        assert by_model["ShuffleNet-V2"].value is None
        assert "shuffle" in by_model["ShuffleNet-V2"].note.lower()
        assert by_model["ResNet18"].supported

    def test_device_override(self):
        report = api.estimate(
            models=["ResNet18"], targets=["gpu"],
            devices={"gpu": "gtx-1080ti"},
        )
        assert report.records[0].device == "GTX 1080 Ti"

    def test_unknown_model_raises(self):
        with pytest.raises(ValueError, match="unknown model 'LeNet'"):
            api.estimate(models=["LeNet"])

    def test_no_models_raises_value_error(self):
        with pytest.raises(ValueError, match="at least one model"):
            api.estimate()
        with pytest.raises(ValueError, match="at least one model"):
            api.estimate(models=[])

    def test_devices_override_key_must_be_estimated(self):
        with pytest.raises(ValueError, match="unknown target 'gpus'"):
            api.estimate(models=["ResNet18"], targets=["gpu"],
                         devices={"gpus": "p100"})
        with pytest.raises(ValueError, match="not being estimated"):
            api.estimate(models=["ResNet18"], targets=["fpga_pipelined"],
                         devices={"gpu": "p100"})

    def test_unknown_target_raises(self):
        with pytest.raises(ValueError, match="unknown target 'tpu'"):
            api.estimate(models=["ResNet18"], targets=["tpu"])

    def test_to_dict_json_round_trips(self):
        report = api.estimate(
            models=["ResNet18", "EDD-Net-1"],
            targets=["gpu", "fpga_recursive", "fpga_pipelined"],
        )
        payload = _round_trip(report.to_dict())
        assert payload["count"] == 6
        assert len(payload["records"]) == 6
        for record in payload["records"]:
            assert record["metric"] in ("latency_ms", "throughput_fps")

    def test_accepts_arch_spec_objects(self):
        from repro.baselines.model_zoo import get_model

        report = api.estimate(models=[get_model("VGG16")], targets=["accel"])
        assert report.records[0].model == "VGG16"
        assert report.records[0].value > 0


class TestSearch:
    def test_search_report_round_trips(self):
        report = api.search(target="gpu", epochs=1, blocks=2, seed=0)
        assert report.target == "gpu"
        assert report.device == "Titan RTX"
        payload = _round_trip(report.to_dict())
        assert len(payload["search"]["history"]) == 1
        assert payload["retrain"] is None

    def test_search_uses_target_default_resource_fraction(self):
        report = api.search(target="fpga_pipelined", epochs=1, blocks=2)
        assert report.result.config.resource_fraction == pytest.approx(0.05)

    def test_search_unknown_target(self):
        with pytest.raises(ValueError, match="unknown target"):
            api.search(target="tpu", epochs=1)


class TestDeployPlan:
    def test_plan_text_and_metric(self):
        plan = api.deploy_plan("VGG16", "fpga_pipelined", bits=16)
        assert plan.metric == "throughput_fps" and plan.value > 0
        assert "bottleneck" in plan.text
        assert _round_trip(plan.to_dict())["model"] == "VGG16"

    def test_plan_clamps_with_note(self):
        plan = api.deploy_plan("ResNet18", "fpga_recursive", bits=32)
        assert plan.bits == 16 and plan.clamped
        assert "clamped" in plan.note

    def test_planless_target_raises_helpfully(self):
        with pytest.raises(ValueError, match="no deployment-plan renderer"):
            api.deploy_plan("ResNet18", "accel")
