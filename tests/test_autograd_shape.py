"""Unit tests for shape-manipulation autograd ops."""

import numpy as np
import pytest

from repro.autograd import gradcheck
from repro.autograd.ops_shape import (
    broadcast_to,
    concat,
    flatten,
    getitem,
    pad2d,
    reshape,
    transpose,
)
from repro.autograd.tensor import tensor


@pytest.fixture
def rng():
    return np.random.default_rng(1)


def t(data):
    return tensor(np.asarray(data, dtype=float), requires_grad=True)


class TestReshapeFlatten:
    def test_reshape_roundtrip(self, rng):
        a = t(rng.normal(size=(2, 3, 4)))
        out = reshape(a, (4, 6))
        assert out.shape == (4, 6)
        assert gradcheck(lambda x: reshape(x, (4, 6)), [a])

    def test_reshape_minus_one(self, rng):
        a = t(rng.normal(size=(2, 3, 4)))
        assert a.reshape(2, -1).shape == (2, 12)

    def test_flatten_default(self, rng):
        a = t(rng.normal(size=(2, 3, 4, 5)))
        assert flatten(a).shape == (2, 60)

    def test_flatten_start_axis(self, rng):
        a = t(rng.normal(size=(2, 3, 4)))
        assert flatten(a, start_axis=2).shape == (2, 3, 4)


class TestTranspose:
    def test_default_reverses(self, rng):
        a = t(rng.normal(size=(2, 3, 4)))
        assert transpose(a).shape == (4, 3, 2)

    def test_explicit_axes_gradcheck(self, rng):
        a = t(rng.normal(size=(2, 3, 4)))
        assert gradcheck(lambda x: transpose(x, (1, 2, 0)), [a])


class TestPad2d:
    def test_pad_shape(self, rng):
        a = t(rng.normal(size=(1, 2, 3, 3)))
        assert pad2d(a, 2).shape == (1, 2, 7, 7)

    def test_pad_zero_is_identity(self, rng):
        a = t(rng.normal(size=(1, 1, 3, 3)))
        assert pad2d(a, 0) is a

    def test_asymmetric_tuple(self, rng):
        a = t(rng.normal(size=(1, 1, 3, 3)))
        assert pad2d(a, (1, 2)).shape == (1, 1, 5, 7)

    def test_gradcheck(self, rng):
        a = t(rng.normal(size=(2, 2, 3, 3)))
        assert gradcheck(lambda x: pad2d(x, 1), [a])


class TestGetitem:
    def test_slice_forward(self, rng):
        a = t(rng.normal(size=(4, 5)))
        out = a[1:3, :2]
        np.testing.assert_allclose(out.data, a.data[1:3, :2])

    def test_integer_index_gradcheck(self, rng):
        a = t(rng.normal(size=(4, 5)))
        assert gradcheck(lambda x: getitem(x, (2, 3)), [a])

    def test_slice_gradcheck(self, rng):
        a = t(rng.normal(size=(4, 5)))
        assert gradcheck(lambda x: getitem(x, slice(1, 3)), [a])

    def test_duplicate_fancy_index_accumulates(self):
        a = t([1.0, 2.0, 3.0])
        out = getitem(a, np.array([0, 0, 2]))
        out.backward(np.ones(3))
        np.testing.assert_allclose(a.grad, [2.0, 0.0, 1.0])


class TestConcat:
    def test_forward(self, rng):
        a, b = t(rng.normal(size=(2, 3))), t(rng.normal(size=(4, 3)))
        assert concat([a, b], axis=0).shape == (6, 3)

    def test_gradcheck(self, rng):
        a, b = t(rng.normal(size=(2, 3))), t(rng.normal(size=(2, 2)))
        assert gradcheck(lambda x, y: concat([x, y], axis=1), [a, b])

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            concat([])


class TestBroadcastTo:
    def test_forward(self):
        a = t([1.0, 2.0])
        out = broadcast_to(a, (3, 2))
        assert out.shape == (3, 2)

    def test_gradient_sums(self):
        a = t([1.0, 2.0])
        broadcast_to(a, (3, 2)).backward(np.ones((3, 2)))
        np.testing.assert_allclose(a.grad, [3.0, 3.0])
