"""Unit tests for the Module/Parameter system."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.nn import Linear, Module, ModuleList, Parameter, Sequential, ReLU


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8)
        self.fc2 = Linear(8, 2)

    def forward(self, x):
        return self.fc2(self.fc1(x))


class TestRegistration:
    def test_parameters_found_recursively(self):
        net = TwoLayer()
        names = [n for n, _ in net.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_num_parameters(self):
        net = TwoLayer()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_direct_parameter_attribute(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(3))

        assert [n for n, _ in M().named_parameters()] == ["w"]

    def test_plain_tensor_not_registered(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.buf = Tensor(np.ones(3))

        assert M().parameters() == []


class TestModes:
    def test_train_eval_propagates(self):
        net = TwoLayer()
        net.eval()
        assert not net.training and not net.fc1.training
        net.train()
        assert net.training and net.fc2.training

    def test_zero_grad_clears(self):
        net = TwoLayer()
        out = net(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert net.fc1.weight.grad is not None
        net.zero_grad()
        assert net.fc1.weight.grad is None


class TestStateDict:
    def test_roundtrip(self):
        a, b = TwoLayer(), TwoLayer()
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        net = TwoLayer()
        state = net.state_dict()
        state["fc1.weight"][:] = 0.0
        assert not np.allclose(net.fc1.weight.data, 0.0)

    def test_missing_key_raises(self):
        net = TwoLayer()
        state = net.state_dict()
        del state["fc1.bias"]
        with pytest.raises(KeyError, match="missing"):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        net = TwoLayer()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError, match="shape mismatch"):
            net.load_state_dict(state)


class WithBuffer(Module):
    def __init__(self):
        super().__init__()
        self.fc = Linear(2, 2)
        self.register_buffer("count", np.zeros(3))


class TestBuffers:
    def test_named_buffers_recursive(self):
        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.inner = WithBuffer()

        names = [name for name, _ in Outer().named_buffers()]
        assert names == ["inner.count"]

    def test_reassignment_stays_tracked(self):
        module = WithBuffer()
        module.count = np.ones(3)
        assert dict(module.named_buffers())["count"].tolist() == [1.0, 1.0, 1.0]

    def test_buffers_not_parameters(self):
        module = WithBuffer()
        assert all(name != "count" for name, _ in module.named_parameters())

    def test_buffers_dict_roundtrip(self):
        module = WithBuffer()
        module.count = np.arange(3.0)
        state = module.buffers_dict()
        other = WithBuffer()
        other.load_buffers_dict(state)
        np.testing.assert_array_equal(other.count, np.arange(3.0))

    def test_load_unknown_buffer_raises(self):
        with pytest.raises(KeyError, match="unknown buffers"):
            WithBuffer().load_buffers_dict({"nope": np.zeros(1)})

    def test_batchnorm_running_stats_registered(self):
        from repro.nn import BatchNorm2d

        bn = BatchNorm2d(4)
        names = {name for name, _ in bn.named_buffers()}
        assert names == {"running_mean", "running_var"}


class TestContainers:
    def test_sequential_applies_in_order(self):
        seq = Sequential(Linear(4, 8), ReLU(), Linear(8, 3))
        out = seq(Tensor(np.ones((2, 4))))
        assert out.shape == (2, 3)
        assert len(seq) == 3
        assert isinstance(seq[1], ReLU)

    def test_sequential_registers_parameters(self):
        seq = Sequential(Linear(4, 8), Linear(8, 3))
        assert len(seq.parameters()) == 4

    def test_sequential_append(self):
        seq = Sequential(Linear(4, 4))
        seq.append(Linear(4, 2))
        assert seq(Tensor(np.ones((1, 4)))).shape == (1, 2)

    def test_module_list_indexing_and_iteration(self):
        ml = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(ml) == 2
        assert len(list(iter(ml))) == 2
        assert len(ml.parameters()) == 4

    def test_module_list_forward_raises(self):
        with pytest.raises(RuntimeError, match="container"):
            ModuleList([])(None)
