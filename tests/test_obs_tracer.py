"""Tracer/sink unit surface: disabled-path cost, export schema, re-anchoring.

The contracts pinned here are the ones the serving hot path and CI depend
on:

* a **disabled** tracer allocates nothing and records nothing (the
  ``span()`` fast path returns one shared singleton — tracemalloc-verified);
* the Chrome export is valid JSON with integer-microsecond ``ts``/``dur``
  and round-trips through :func:`repro.obs.load_trace` in both formats;
* :func:`repro.obs.reanchor_spans` translates child-relative timestamps so
  process-worker spans nest inside the parent's submit span;
* the latency reservoir keeps count/mean/max exact while bounding memory.
"""

from __future__ import annotations

import json
import logging
import math
import tracemalloc

import numpy as np
import pytest

from repro.obs import (
    Tracer,
    export_events,
    load_trace,
    prometheus_text,
    reanchor_spans,
    render_trace_summary,
    set_tracer,
    summarize_trace,
    tracing_allowed,
    write_chrome_trace,
    write_jsonl_trace,
    write_trace,
)
from repro.obs.tracer import _NULL_SPAN
from repro.runtime.fleet.metrics import (
    LATENCY_RESERVOIR,
    ReservoirSample,
    latency_percentiles,
)


class _StepClock:
    """Deterministic clock: each call returns start, start+step, ..."""

    def __init__(self, start: float = 100.0, step: float = 0.25) -> None:
        self.time = start
        self.step = step

    def __call__(self) -> float:
        now = self.time
        self.time += self.step
        return now


class TestTracer:
    def test_span_records_complete_event_in_seconds(self):
        tracer = Tracer(clock=_StepClock(start=10.0, step=0.5))
        with tracer.span("work", cat="test", args={"k": 1}, tid=7):
            pass
        (event,) = tracer.events()
        assert event["ph"] == "X"
        assert event["name"] == "work"
        assert event["cat"] == "test"
        assert event["ts"] == 10.0
        assert event["dur"] == 0.5
        assert event["tid"] == 7
        assert event["args"] == {"k": 1}

    def test_add_span_clamps_negative_duration(self):
        tracer = Tracer()
        tracer.add_span("x", 5.0, -1.0)
        assert tracer.events()[0]["dur"] == 0.0

    def test_counter_drops_non_finite_values(self):
        tracer = Tracer(clock=_StepClock())
        tracer.counter("loss", float("nan"))
        tracer.counter("loss", float("inf"))
        tracer.counter("loss", 1.5)
        events = tracer.events()
        assert len(events) == 1
        assert events[0]["ph"] == "C"
        assert events[0]["args"] == {"value": 1.5}

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work"):
            pass
        tracer.add_span("x", 0.0, 1.0)
        tracer.counter("c", 1.0)
        tracer.extend([{"ph": "X", "name": "y", "ts": 0.0, "dur": 1.0}])
        assert len(tracer) == 0

    def test_disabled_span_is_shared_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is _NULL_SPAN
        assert tracer.span("b") is tracer.span("c")

    def test_disabled_span_path_allocates_nothing(self):
        tracer = Tracer(enabled=False)
        span = tracer.span  # bind outside the traced window
        with tracer.span("warm"):
            pass
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(1000):
            with span("hot"):
                pass
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        growth = sum(
            stat.size_diff for stat in after.compare_to(before, "filename")
            if stat.size_diff > 0
        )
        # tracemalloc's own bookkeeping can show up; anything per-iteration
        # would be >= 1000 * minimal object size (~28 KiB).
        assert len(tracer) == 0
        assert growth < 4096

    def test_kill_switch_forces_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not tracing_allowed()
        tracer = Tracer(enabled=True)
        assert not tracer.enabled
        with tracer.span("work"):
            pass
        assert len(tracer) == 0

    def test_extend_and_clear(self):
        tracer = Tracer()
        tracer.extend([{"ph": "X", "name": "a", "ts": 0.0, "dur": 1.0}])
        assert len(tracer) == 1
        tracer.clear()
        assert tracer.events() == []

    def test_set_tracer_returns_previous(self):
        first = Tracer(enabled=False)
        previous = set_tracer(first)
        try:
            second = Tracer(enabled=False)
            assert set_tracer(second) is first
        finally:
            set_tracer(previous)


class TestReanchor:
    def test_child_spans_nest_inside_parent_interval(self):
        # Parent submit span: [5.0, 6.0).  Child recorded relative to its
        # own receipt time (t=0): compute at 0.1 for 0.5 s.
        child = [{
            "ph": "X", "name": "worker.compute", "cat": "fleet",
            "ts": 0.1, "dur": 0.5, "pid": 4242, "tid": 0,
            "args": {"model": "a"},
        }]
        (anchored,) = reanchor_spans(
            child, 5.0, pid=1, tid=3, extra_args={"worker": 3}
        )
        assert anchored["ts"] == pytest.approx(5.1)
        assert anchored["dur"] == 0.5
        assert anchored["pid"] == 1
        assert anchored["tid"] == 3
        assert anchored["args"] == {"model": "a", "worker": 3}
        assert 5.0 <= anchored["ts"]
        assert anchored["ts"] + anchored["dur"] <= 6.0

    def test_original_events_are_not_mutated(self):
        child = [{"ph": "X", "name": "x", "ts": 0.0, "dur": 1.0, "tid": 0}]
        reanchor_spans(child, 10.0, tid=5)
        assert child[0]["ts"] == 0.0
        assert child[0]["tid"] == 0


class TestSinks:
    @staticmethod
    def _events():
        tracer = Tracer(clock=_StepClock(start=1.0, step=0.001))
        with tracer.span("outer", cat="t"):
            pass
        tracer.counter("gauge", 2.5)
        return tracer.events()

    def test_chrome_trace_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        count = write_chrome_trace(self._events(), path)
        assert count == 2
        payload = json.loads((tmp_path / "trace.json").read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert [e["ph"] for e in events] == ["X", "C"]
        span = events[0]
        assert isinstance(span["ts"], int) and span["ts"] == 1_000_000
        assert isinstance(span["dur"], int) and span["dur"] == 1_000
        assert "pid" in span and "tid" in span
        assert "dur" not in events[1]  # counters carry no duration
        assert load_trace(path) == events

    def test_jsonl_round_trip_holds_same_objects(self, tmp_path):
        events = self._events()
        chrome = str(tmp_path / "t.json")
        jsonl = str(tmp_path / "t.jsonl")
        write_chrome_trace(events, chrome)
        write_jsonl_trace(events, jsonl)
        assert load_trace(jsonl) == load_trace(chrome) == export_events(events)

    def test_write_trace_dispatches_on_extension(self, tmp_path):
        events = self._events()
        jsonl = str(tmp_path / "t.jsonl")
        chrome = str(tmp_path / "t.json")
        write_trace(events, jsonl)
        write_trace(events, chrome)
        assert (tmp_path / "t.jsonl").read_text().count("\n") == 2
        assert (tmp_path / "t.json").read_text().startswith("{")

    def test_load_trace_accepts_bare_array_and_empty(self, tmp_path):
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps([{"ph": "X", "name": "a"}]))
        assert load_trace(str(bare)) == [{"ph": "X", "name": "a"}]
        empty = tmp_path / "empty.json"
        empty.write_text("")
        assert load_trace(str(empty)) == []


class TestPrometheusText:
    STATS = {
        "uptime_s": 12.5,
        "models": {
            "net-a": {
                "accepted": 5, "rejected": 1, "shed": 0, "completed": 4,
                "failed": 0, "queue_depth": 2,
                "latency_ms": {"mean": 3.0, "p50": 2.5, "p95": 4.0,
                               "p99": 4.5, "max": 5.0},
                "batches": 2,
            },
        },
        "workers": [{"busy_s": 1.25, "batches": 2, "crashes": 1,
                     "utilization": 0.1}],
    }

    def test_emits_expected_series(self):
        text = prometheus_text(self.STATS)
        assert ('repro_fleet_requests_total{model="net-a",'
                'outcome="completed"} 4.0') in text
        assert 'repro_fleet_queue_depth{model="net-a"} 2.0' in text
        assert ('repro_fleet_latency_ms{model="net-a",quantile="0.95"} '
                '4.0') in text
        assert 'repro_fleet_worker_crashes_total{worker="0"} 1.0' in text
        assert "repro_fleet_uptime_seconds 12.5" in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        stats = {"models": {'a"b': {"accepted": 1}}, "workers": []}
        assert 'model="a\\"b"' in prometheus_text(stats)


class TestSummarizeTrace:
    def test_self_time_subtracts_direct_children(self):
        # Chrome-schema (µs): parent [0, 10000), child [2000, 5000).
        events = [
            {"ph": "X", "name": "request", "ts": 0, "dur": 10_000,
             "pid": 1, "tid": 1},
            {"ph": "X", "name": "request.compute", "ts": 2_000, "dur": 3_000,
             "pid": 1, "tid": 1},
            {"ph": "C", "name": "gauge", "ts": 0, "pid": 1, "tid": 1,
             "args": {"value": 1}},
        ]
        summary = summarize_trace(events)
        assert summary["events"] == 3
        assert summary["spans"] == 2
        assert summary["requests"] == 1
        rows = {row["name"]: row for row in summary["ops"]}
        assert rows["request"]["self_ms"] == pytest.approx(7.0)
        assert rows["request"]["total_ms"] == pytest.approx(10.0)
        assert rows["request.compute"]["self_ms"] == pytest.approx(3.0)

    def test_queue_wait_percentiles_group_by_model(self):
        events = [
            {"ph": "X", "name": "request.queued", "ts": i * 100,
             "dur": 1_000 * (i + 1), "pid": 1, "tid": 0,
             "args": {"model": "m"}}
            for i in range(4)
        ]
        summary = summarize_trace(events)
        wait = summary["queue_wait_ms"]["m"]
        assert wait["count"] == 4
        assert wait["max_ms"] == pytest.approx(4.0)
        assert wait["p50_ms"] == pytest.approx(2.5)
        text = render_trace_summary(summary, top=3)
        assert "queue wait per model" in text
        assert "request.queued" in text


class TestReservoirSample:
    def test_small_sample_matches_exact_percentiles(self):
        values = [float(v) for v in range(1, 50)]
        sample = ReservoirSample()
        sample.extend(values)
        assert sample.summary() == latency_percentiles(values)

    def test_exact_tallies_and_bounded_memory_past_capacity(self):
        n = LATENCY_RESERVOIR * 3
        rng = np.random.default_rng(7)
        values = rng.exponential(10.0, size=n)
        sample = ReservoirSample()
        sample.extend(values)
        assert sample.count == len(sample) == n
        assert len(sample.values()) == LATENCY_RESERVOIR
        summary = sample.summary()
        assert summary["mean"] == pytest.approx(values.mean())
        assert summary["max"] == pytest.approx(values.max())
        # Percentiles are estimates from a uniform subsample: loose check.
        assert summary["p50"] == pytest.approx(
            float(np.percentile(values, 50)), rel=0.25
        )

    def test_deterministic_for_same_seed(self):
        values = list(np.random.default_rng(0).normal(size=5000))
        first = ReservoirSample(capacity=64, seed=3)
        second = ReservoirSample(capacity=64, seed=3)
        first.extend(values)
        second.extend(values)
        assert first.values() == second.values()

    def test_empty_summary_raises_like_latency_percentiles(self):
        with pytest.raises(ValueError):
            ReservoirSample().summary()
        with pytest.raises(ValueError):
            latency_percentiles([])

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ReservoirSample(capacity=0)


class TestLogLevels:
    def test_set_level_applies_and_returns_numeric(self):
        from repro.utils import log

        try:
            assert log.set_level("debug") == logging.DEBUG
            assert logging.getLogger("repro").level == logging.DEBUG
        finally:
            log.set_level("info")

    def test_parse_rejects_unknown_names(self):
        from repro.utils.log import _parse_level

        with pytest.raises(ValueError):
            _parse_level("loud")
        assert _parse_level("WARNING") == logging.WARNING
        assert _parse_level(17) == 17

    def test_env_level_configures_root(self, monkeypatch):
        from repro.utils import log

        monkeypatch.setenv("REPRO_LOG_LEVEL", "error")
        monkeypatch.setattr(log, "_configured", False)
        try:
            log.get_logger("obs.test")
            assert logging.getLogger("repro").level == logging.ERROR
        finally:
            log.set_level("info")

    def test_env_level_falls_back_silently_on_garbage(self, monkeypatch):
        from repro.utils import log

        monkeypatch.setenv("REPRO_LOG_LEVEL", "not-a-level")
        assert log._env_level() == logging.INFO


def test_nan_counter_never_breaks_chrome_export(tmp_path):
    """A trace containing only finite values must export with allow_nan=False."""
    tracer = Tracer(clock=_StepClock())
    tracer.counter("loss", math.nan)
    tracer.counter("loss", 0.25)
    path = str(tmp_path / "t.json")
    assert write_chrome_trace(tracer.events(), path) == 1
    assert load_trace(path)[0]["args"]["value"] == 0.25
