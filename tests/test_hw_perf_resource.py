"""Unit + property tests for Eqs. 6-10: performance reducers & resource models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd.tensor import Tensor
from repro.hw.perf_loss import (
    latency_sum,
    multi_objective,
    throughput_hard_max,
    throughput_lse,
)
from repro.hw.resource import resource_penalty, shared_resource, summed_resource

pytestmark = pytest.mark.usefixtures("float64_numerics")



def t(x, grad=False):
    return Tensor(np.asarray(x, dtype=float), requires_grad=grad)


class TestLatencySum:
    def test_eq6_sum(self):
        assert float(latency_sum(t([1.0, 2.0, 3.0])).data) == 6.0

    def test_alpha_scales(self):
        assert float(latency_sum(t([1.0, 2.0]), alpha=0.5).data) == 1.5

    def test_gradient_uniform(self):
        x = t([1.0, 2.0], grad=True)
        latency_sum(x, alpha=2.0).backward()
        np.testing.assert_allclose(x.grad, [2.0, 2.0])


class TestThroughputLSE:
    def test_eq7_upper_bounds_max(self):
        x = [3.0, 1.0, 2.5]
        val = float(throughput_lse(t(x)).data)
        assert max(x) <= val <= max(x) + np.log(len(x))

    def test_sharpness_tightens(self):
        x = t([3.0, 2.9, 2.8])
        loose = float(throughput_lse(x, sharpness=1.0).data)
        tight = float(throughput_lse(x, sharpness=0.1).data)
        assert abs(tight - 3.0) < abs(loose - 3.0)

    def test_gradient_concentrates_on_bottleneck(self):
        x = t([5.0, 1.0, 1.0], grad=True)
        throughput_lse(x, sharpness=0.2).backward()
        assert x.grad[0] > 0.9
        assert x.grad[1] < 0.05

    def test_gradient_reaches_all_blocks_unlike_hard_max(self):
        x = t([2.0, 1.9, 1.8], grad=True)
        throughput_lse(x).backward()
        assert np.all(x.grad > 0.1)
        y = t([2.0, 1.9, 1.8], grad=True)
        throughput_hard_max(y).backward()
        assert y.grad[1] == 0.0 and y.grad[2] == 0.0

    def test_invalid_sharpness(self):
        with pytest.raises(ValueError):
            throughput_lse(t([1.0]), sharpness=0.0)


class TestMultiObjective:
    def test_product(self):
        out = multi_objective([t(2.0), t(3.0), t(0.5)])
        assert float(out.data) == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            multi_objective([])

    def test_gradients_flow_to_both(self):
        a, b = t(2.0, grad=True), t(3.0, grad=True)
        multi_objective([a, b]).backward()
        np.testing.assert_allclose(a.grad, 3.0)
        np.testing.assert_allclose(b.grad, 2.0)


class TestSummedResource:
    def test_eq8(self):
        assert float(summed_resource(t([10.0, 20.0])).data) == 30.0


class TestSharedResource:
    def test_counts_shared_ip_once(self):
        """Two blocks surely selecting op 0 must count its IP ~once (Fig. 3)."""
        theta = t([[1.0, 0.0], [1.0, 0.0]])
        res = t([100.0, 50.0])
        val = float(shared_resource(theta, res).data)
        assert 90.0 < val < 100.0  # tanh(2) * 100 ~ 96.4, not 200

    def test_unused_op_not_counted(self):
        theta = t([[1.0, 0.0], [1.0, 0.0]])
        res = t([100.0, 50.0])
        val = float(shared_resource(theta, res).data)
        only_first = float(shared_resource(theta, t([100.0, 0.0])).data)
        np.testing.assert_allclose(val, only_first)

    def test_shared_never_exceeds_summed(self):
        rng = np.random.default_rng(0)
        theta = rng.dirichlet(np.ones(3), size=4)
        res = rng.uniform(1, 10, size=3)
        shared = float(shared_resource(t(theta), t(res)).data)
        summed = float((t(theta).sum(axis=0) * t(res)).sum().data)
        assert shared <= summed + 1e-9

    def test_shape_validation(self):
        with pytest.raises(ValueError, match=r"\(N, M\)"):
            shared_resource(t([1.0, 2.0]), t([1.0, 2.0]))
        with pytest.raises(ValueError, match="does not match"):
            shared_resource(t([[1.0, 0.0]]), t([1.0, 2.0, 3.0]))

    def test_gradient_flows(self):
        theta = t([[0.5, 0.5]], grad=True)
        res = t([10.0, 20.0], grad=True)
        shared_resource(theta, res).backward()
        assert theta.grad is not None and res.grad is not None


class TestResourcePenalty:
    def test_at_bound_equals_beta(self):
        val = float(resource_penalty(t(100.0), 100.0, beta=2.0).data)
        np.testing.assert_allclose(val, 2.0)

    def test_monotone_increasing_in_res(self):
        vals = [
            float(resource_penalty(t(r), 100.0).data) for r in (50.0, 100.0, 150.0, 200.0)
        ]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_large_overshoot_is_finite(self):
        val = float(resource_penalty(t(1e6), 100.0, base=20.0).data)
        assert np.isfinite(val)

    def test_unnormalised_mode(self):
        val = float(resource_penalty(t(101.0), 100.0, base=np.e, normalise=False).data)
        np.testing.assert_allclose(val, np.e)

    def test_gradient_positive_above_bound(self):
        res = t(150.0, grad=True)
        resource_penalty(res, 100.0).backward()
        assert res.grad > 0

    def test_validation(self):
        with pytest.raises(ValueError, match="res_ub"):
            resource_penalty(t(1.0), 0.0)
        with pytest.raises(ValueError, match="base"):
            resource_penalty(t(1.0), 1.0, base=1.0)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=10),
    st.floats(min_value=0.2, max_value=5.0),
)
def test_property_lse_bounds(values, sharpness):
    x = np.array(values)
    val = float(throughput_lse(Tensor(x), sharpness=sharpness).data)
    assert x.max() - 1e-6 <= val <= x.max() + sharpness * np.log(len(x)) + 1e-6


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=1000),
)
def test_property_sharing_bounded_by_single_count(n, m, seed):
    """Eq. 9: with tanh suppression each op's resource counts at most once."""
    rng = np.random.default_rng(seed)
    theta = rng.dirichlet(np.ones(m), size=n)
    res = rng.uniform(0.1, 10.0, size=m)
    val = float(shared_resource(Tensor(theta), Tensor(res)).data)
    assert val <= res.sum() + 1e-9
