"""Unit tests for the per-layer deployment plans."""

import pytest

from repro.baselines.model_zoo import get_model
from repro.hw.device import TITAN_RTX, ZC706, ZCU102
from repro.hw.report import (
    deployment_plan,
    gpu_plan,
    pipelined_plan,
    recursive_plan,
)


class TestPipelinedPlan:
    def test_contains_bottleneck_marker(self):
        text = pipelined_plan(get_model("EDD-Net-3"), ZC706, 16)
        assert "<-- bottleneck" in text
        assert "throughput:" in text

    def test_stage_count_matches_compute_layers(self):
        spec = get_model("EDD-Net-3")
        text = pipelined_plan(spec, ZC706, 16)
        stages = [l for l in spec.layers() if l.macs > 0 and l.kind != "fc"]
        data_rows = [l for l in text.splitlines() if l[:4].strip().isdigit()]
        assert len(data_rows) == len(stages)

    def test_allocation_total_reported(self):
        text = pipelined_plan(get_model("VGG16"), ZC706, 16)
        assert f"/ {ZC706.dsp_total}" in text


class TestRecursivePlan:
    def test_latency_matches_analytic(self):
        from repro.hw.analytic import fpga_recursive_latency_ms

        spec = get_model("ResNet18")
        text = recursive_plan(spec, ZCU102, 16)
        reported = float(text.split("end-to-end latency: ")[1].split(" ms")[0])
        assert reported == pytest.approx(
            fpga_recursive_latency_ms(spec, ZCU102, 16), abs=0.01
        )

    def test_skips_pool_layers(self):
        spec = get_model("VGG16")
        text = recursive_plan(spec, ZCU102, 16)
        assert "pool" not in text


class TestGPUPlan:
    def test_latency_matches_analytic(self):
        from repro.hw.analytic import gpu_latency_ms

        spec = get_model("MobileNet-V2")
        text = gpu_plan(spec, TITAN_RTX, 32)
        reported = float(text.split("batch-1 latency: ")[1].split(" ms")[0])
        assert reported == pytest.approx(gpu_latency_ms(spec, TITAN_RTX, 32), abs=0.01)

    def test_row_per_layer(self):
        spec = get_model("MobileNet-V2")
        text = gpu_plan(spec, TITAN_RTX, 32)
        data_rows = [l for l in text.splitlines() if l[:4].strip().isdigit()]
        assert len(data_rows) == len(spec.layers())


class TestDispatch:
    def test_all_flows(self):
        spec = get_model("ResNet18")
        assert "Pipelined" in deployment_plan(spec, "pipelined", ZC706)
        assert "Recursive" in deployment_plan(spec, "recursive", ZCU102)
        assert "GPU" in deployment_plan(spec, "gpu", TITAN_RTX)

    def test_unknown_flow(self):
        with pytest.raises(ValueError, match="unknown flow"):
            deployment_plan(get_model("ResNet18"), "asic", ZC706)

    def test_cli_plan_flag(self, capsys):
        from repro.cli import main

        assert main(["explore", "--model", "ResNet18", "--plan", "gpu"]) == 0
        assert "GPU deployment plan" in capsys.readouterr().out
