"""Buffer-pool semantics: aliasing safety, deterministic retire, parity."""

import numpy as np
import pytest

from repro.autograd import ops_nn
from repro.autograd.gradcheck import gradcheck
from repro.autograd.pool import (
    MIN_POOL_ELEMS,
    BufferPool,
    buffer_pool,
    get_pool,
)
from repro.autograd.tensor import Tensor, default_dtype, no_grad, tensor
from repro.nn.functional import cross_entropy


@pytest.fixture(autouse=True)
def _fresh_pool():
    """Isolate tests from each other's thread-local pool state."""
    get_pool().reset()
    yield
    get_pool().reset()


class TestBufferPool:
    def test_acquire_returns_requested_shape_and_dtype(self):
        pool = BufferPool()
        pool.enabled = True
        buf = pool.acquire((4, 256), np.float32)
        assert buf.shape == (4, 256)
        assert buf.dtype == np.float32

    def test_checked_out_buffer_never_handed_out_twice(self):
        pool = BufferPool()
        pool.enabled = True
        first = pool.acquire((1024,), np.float32)
        others = [pool.acquire((1024,), np.float32) for _ in range(8)]
        bases = {id(b.base if b.base is not None else b) for b in [first, *others]}
        assert len(bases) == 9  # all distinct backing arrays

    def test_release_then_reacquire_reuses_buffer(self):
        pool = BufferPool()
        pool.enabled = True
        buf = pool.acquire((2048,), np.float32)
        base = buf.base if buf.base is not None else buf
        assert pool.release(buf)
        again = pool.acquire((2048,), np.float32)
        assert (again.base if again.base is not None else again) is base
        assert pool.hits == 1

    def test_double_release_is_rejected(self):
        pool = BufferPool()
        pool.enabled = True
        buf = pool.acquire((1024,), np.float32)
        assert pool.release(buf)
        assert not pool.release(buf)
        # The free list must hold the buffer exactly once.
        assert pool.stats()["free_buffers"] == 1

    def test_release_of_foreign_array_is_noop(self):
        pool = BufferPool()
        pool.enabled = True
        assert not pool.release(np.zeros(1024, np.float32))
        assert pool.stats()["free_buffers"] == 0

    def test_small_requests_are_not_pooled(self):
        pool = BufferPool()
        pool.enabled = True
        buf = pool.acquire((MIN_POOL_ELEMS - 1,), np.float32)
        assert not pool.owns(buf)
        assert pool.outstanding == 0

    def test_zero_fill(self):
        pool = BufferPool()
        pool.enabled = True
        buf = pool.acquire((700,), np.float64, zero=True)
        buf.fill(7.0)
        pool.release(buf)
        again = pool.acquire((700,), np.float64, zero=True)
        assert np.all(again == 0.0)

    def test_dtype_buckets_are_separate(self):
        pool = BufferPool()
        pool.enabled = True
        f32 = pool.acquire((1024,), np.float32)
        pool.release(f32)
        f64 = pool.acquire((1024,), np.float64)
        assert f64.dtype == np.float64
        assert pool.misses == 2  # the float32 buffer was not reused

    def test_disabled_pool_allocates_plainly(self):
        pool = BufferPool()
        buf = pool.acquire((4096,), np.float32)
        assert not pool.owns(buf)
        assert pool.outstanding == 0

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUFFER_POOL", "0")
        with buffer_pool(True) as pool:
            assert not pool.enabled

    def test_reset_forgets_everything(self):
        pool = BufferPool()
        pool.enabled = True
        kept = pool.acquire((1024,), np.float32)
        released = pool.acquire((1024,), np.float32)
        pool.release(released)
        pool.reset()
        assert pool.outstanding == 0
        assert pool.stats()["free_buffers"] == 0
        assert not pool.owns(kept)


class TestTapeDrivenRelease:
    def test_conv_step_releases_everything(self):
        rng = np.random.default_rng(0)
        x = tensor(rng.normal(size=(4, 8, 8, 8)), requires_grad=True)
        w = tensor(rng.normal(size=(8, 8, 3, 3)), requires_grad=True)
        with buffer_pool(True) as pool:
            before = pool.outstanding
            out = ops_nn.conv2d(x, w, stride=1, padding=1)
            loss = out.sum()
            loss.backward()
            x.zero_grad()
            w.zero_grad()
            assert pool.outstanding == before

    def test_root_data_survives_backward(self):
        rng = np.random.default_rng(1)
        x = tensor(rng.normal(size=(2, 4, 6, 6)), requires_grad=True)
        w = tensor(rng.normal(size=(4, 4, 3, 3)), requires_grad=True)
        with buffer_pool(True) as pool:
            out = ops_nn.conv2d(x, w, padding=1)
            with buffer_pool(False):
                expected = ops_nn.conv2d(x.detach(), w.detach(), padding=1).data
            out.backward(np.ones(out.shape, dtype=out.data.dtype))
            # The root's pooled buffer was swapped for a private copy.
            assert not pool.owns(out.data)
            np.testing.assert_array_equal(out.data, expected)
            x.zero_grad()
            w.zero_grad()
            assert pool.outstanding == 0

    def test_detach_copies_pooled_data(self):
        rng = np.random.default_rng(2)
        x = tensor(rng.normal(size=(2, 4, 8, 8)), requires_grad=True)
        w = tensor(rng.normal(size=(4, 4, 3, 3)), requires_grad=True)
        with buffer_pool(True):
            out = ops_nn.conv2d(x, w, padding=1)
            snapshot = out.detach()
            assert snapshot.data is not out.data
            before = snapshot.data.copy()
            out.sum().backward()
            # More pooled work reusing the released buffers must not
            # corrupt the detached copy.
            ops_nn.conv2d(x, w, padding=1).sum().backward()
            np.testing.assert_array_equal(snapshot.data, before)
            x.zero_grad()
            w.zero_grad()

    def test_no_grad_forward_does_not_pool(self):
        rng = np.random.default_rng(3)
        x = tensor(rng.normal(size=(2, 8, 8, 8)))
        w = tensor(rng.normal(size=(8, 8, 3, 3)), requires_grad=True)
        with buffer_pool(True) as pool:
            with no_grad():
                ops_nn.conv2d(x, w, padding=1)
            assert pool.outstanding == 0

    def test_leaf_grad_released_by_zero_grad(self):
        rng = np.random.default_rng(4)
        x = tensor(rng.normal(size=(2, 8, 8, 8)), requires_grad=True)
        w = tensor(rng.normal(size=(8, 8, 3, 3)), requires_grad=True)
        with buffer_pool(True) as pool:
            ops_nn.conv2d(x, w, padding=1).sum().backward()
            assert pool.owns(x.grad)
            x.zero_grad()
            w.zero_grad()
            assert x.grad is None
            assert pool.outstanding == 0

    def test_gradcheck_passes_with_pool_enabled(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(2, 4, 6, 6))
        w = rng.normal(size=(4, 4, 3, 3))
        with buffer_pool(True), default_dtype(np.float64):
            xt = tensor(x, requires_grad=True)
            wt = tensor(w, requires_grad=True)
            assert gradcheck(
                lambda a, b: ops_nn.conv2d(a, b, stride=1, padding=1), (xt, wt)
            )


class TestPoolParity:
    """Pool on/off must be bit-identical — the pool only moves allocations."""

    def _training_losses(self, pool_on: bool) -> tuple[list, np.ndarray]:
        from repro.core.config import EDDConfig
        from repro.core.cosearch import EDDSearcher
        from repro.data.synthetic import SyntheticTaskConfig, make_synthetic_task
        from repro.nas.space import SearchSpaceConfig

        space = SearchSpaceConfig.reduced(num_blocks=2, num_classes=4, input_size=12)
        splits = make_synthetic_task(SyntheticTaskConfig(
            num_classes=4, image_size=12, train_per_class=6, val_per_class=4,
            test_per_class=4, seed=0,
        ))
        config = EDDConfig(target="fpga_pipelined", epochs=2, batch_size=8,
                           seed=0, arch_start_epoch=0)
        searcher = EDDSearcher(space, splits, config)
        searcher.calibrate_alpha()
        x, y = splits.train.images[:8], splits.train.labels[:8]
        xv, yv = splits.val.images[:8], splits.val.labels[:8]
        losses = []
        with buffer_pool(pool_on):
            for _ in range(3):
                losses.append(searcher.weight_step(x, y))
                losses.append(searcher.arch_step(xv, yv)["total_loss"])
            searcher.weight_optimizer.zero_grad()
            searcher.arch_optimizer.zero_grad()
        return losses, searcher.supernet.theta.data.copy()

    def test_losses_bit_identical(self):
        losses_off, theta_off = self._training_losses(False)
        losses_on, theta_on = self._training_losses(True)
        assert losses_off == losses_on
        np.testing.assert_array_equal(theta_off, theta_on)

    def test_outstanding_zero_after_training(self):
        self._training_losses(True)
        assert get_pool().outstanding == 0

    def test_supernet_loss_readable_after_backward(self):
        # The canonical post-backward reads: loss.item() and arch-step
        # telemetry scalars must stay valid with the pool on.
        losses, _ = self._training_losses(True)
        assert all(np.isfinite(losses))


def test_batch_norm_parity_with_pool():
    rng = np.random.default_rng(6)
    x = rng.normal(size=(4, 8, 6, 6))
    gamma = rng.normal(size=8)
    beta = rng.normal(size=8)

    def bn(pool_on):
        with buffer_pool(pool_on):
            xt = tensor(x, requires_grad=True)
            gt = tensor(gamma, requires_grad=True)
            bt = tensor(beta, requires_grad=True)
            out, mean, var = ops_nn.batch_norm2d(xt, gt, bt)
            # Pooled intermediates are invalid after backward — snapshot
            # the forward result first (the documented contract).
            data = out.data.copy()
            out.sum().backward()
            grads = (xt.grad.copy(), gt.grad.copy(), bt.grad.copy())
            for t in (xt, gt, bt):
                t.zero_grad()
        return data, mean, var, grads

    d0, m0, v0, g0 = bn(False)
    d1, m1, v1, g1 = bn(True)
    np.testing.assert_array_equal(d0, d1)
    np.testing.assert_array_equal(m0, m1)
    np.testing.assert_array_equal(v0, v1)
    for a, b in zip(g0, g1):
        np.testing.assert_array_equal(a, b)


def test_cross_entropy_loss_parity_with_pool():
    rng = np.random.default_rng(7)
    x = rng.normal(size=(8, 3, 12, 12))
    labels = rng.integers(0, 4, size=8)
    w = rng.normal(size=(4, 3 * 12 * 12)) * 0.01

    def loss_of(pool_on):
        with buffer_pool(pool_on):
            xt = tensor(x.reshape(8, -1))
            wt = tensor(w, requires_grad=True)
            logits = ops_nn.linear(xt, wt)
            loss = cross_entropy(logits, labels)
            loss.backward()
            value, grad = loss.item(), wt.grad.copy()
            wt.zero_grad()
        return value, grad

    v0, g0 = loss_of(False)
    v1, g1 = loss_of(True)
    assert v0 == v1
    np.testing.assert_array_equal(g0, g1)


def test_root_view_of_pooled_tensor_survives_backward():
    """Regression: a root that is a zero-copy view (reshape) of a pooled
    node's buffer must get a private copy before that buffer is recycled —
    and must never end up aliasing a leaf gradient."""
    from repro.autograd.ops_shape import reshape

    rng = np.random.default_rng(11)
    x = tensor(rng.normal(size=(2, 4, 8, 8)), requires_grad=True)
    w = tensor(rng.normal(size=(4, 4, 3, 3)), requires_grad=True)
    with buffer_pool(True) as pool:
        out = ops_nn.relu(ops_nn.conv2d(x, w, padding=1))
        z = reshape(out, (2, 4 * 8 * 8))
        with buffer_pool(False):
            expected = reshape(
                ops_nn.relu(ops_nn.conv2d(x.detach(), w.detach(), padding=1)),
                (2, 4 * 8 * 8),
            ).data
        z.backward(np.ones(z.shape, dtype=z.data.dtype))
        np.testing.assert_array_equal(z.data, expected)
        assert not np.shares_memory(z.data, x.grad)
        assert not pool.owns(z.data)
        x.zero_grad()
        w.zero_grad()
        assert pool.outstanding == 0


def test_sweep_reclaims_stranded_buffers():
    """A forward whose graph is dropped without backward strands its pooled
    buffers; sweep() returns them to the free lists once the graph is gone."""
    import gc

    rng = np.random.default_rng(12)
    x = tensor(rng.normal(size=(2, 8, 8, 8)), requires_grad=True)
    w = tensor(rng.normal(size=(8, 8, 3, 3)), requires_grad=True)
    with buffer_pool(True) as pool:
        out = ops_nn.conv2d(x, w, padding=1)
        stranded = pool.outstanding
        assert stranded > 0
        assert pool.sweep() == 0  # graph alive: nothing reclaimable
        del out
        gc.collect()
        assert pool.sweep() == stranded
        assert pool.outstanding == 0
        # Reclaimed buffers are reusable.
        out2 = ops_nn.conv2d(x, w, padding=1)
        out2.sum().backward()
        x.zero_grad()
        w.zero_grad()
        assert pool.outstanding == 0
