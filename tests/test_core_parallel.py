"""Unit tests for the deterministic parallel evaluator."""

import numpy as np
import pytest

from repro.core.parallel import (
    ParallelEvaluator,
    evaluate_parallel,
    get_shared,
    train_spec_worker,
)


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"boom {x}")


class TestParallelEvaluator:
    def test_serial_matches_plain_loop(self):
        evaluator = ParallelEvaluator(workers=1)
        assert evaluator.map(_square, [1, 2, 3]) == [1, 4, 9]

    @pytest.mark.parametrize("kind", ["process", "thread"])
    def test_parallel_preserves_submission_order(self, kind):
        evaluator = ParallelEvaluator(workers=4, kind=kind)
        payloads = list(range(16))
        assert evaluator.map(_square, payloads) == [p * p for p in payloads]

    def test_worker_counts_agree(self):
        payloads = list(range(8))
        serial = ParallelEvaluator(workers=1).map(_square, payloads)
        parallel = ParallelEvaluator(workers=3).map(_square, payloads)
        assert serial == parallel

    def test_single_payload_short_circuits(self):
        # len(payloads) <= 1 must not spin up an executor.
        assert ParallelEvaluator(workers=8).map(_square, [5]) == [25]

    def test_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            ParallelEvaluator(workers=2, kind="thread").map(_boom, [1, 2])

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            ParallelEvaluator(workers=0)

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            ParallelEvaluator(workers=2, kind="fiber")

    def test_convenience_wrapper(self):
        assert evaluate_parallel(_square, [2, 3], workers=2, kind="thread") == [4, 9]


def _read_shared(_payload):
    return get_shared()


class TestSharedSlot:
    def test_serial_path_installs_and_clears(self):
        token = object()
        results = ParallelEvaluator(workers=1).map(
            _read_shared, [0, 1], shared=token
        )
        assert results == [token, token]
        assert get_shared() is None

    @pytest.mark.parametrize("kind", ["process", "thread"])
    def test_workers_see_shared_object(self, kind):
        results = ParallelEvaluator(workers=2, kind=kind).map(
            _read_shared, [0, 1, 2], shared={"tag": 42}
        )
        assert all(r == {"tag": 42} for r in results)

    def test_train_worker_requires_shared_splits(self):
        with pytest.raises(RuntimeError, match="shared=splits"):
            train_spec_worker((None, 1, 8, 0))


class TestBaselineDeterminism:
    """workers=1 and workers=N must give identical candidates and rankings."""

    @pytest.fixture
    def setup(self, tiny_space, tiny_splits):
        from repro.core.config import EDDConfig

        config = EDDConfig(target="fpga_pipelined", batch_size=8,
                           resource_fraction=0.5)
        return tiny_space, tiny_splits, config

    def test_random_search_matches_serial(self, setup):
        from repro.baselines.random_search import random_search

        space, splits, config = setup
        best1, all1 = random_search(space, splits, config, num_candidates=4,
                                    train_epochs=1, seed=3, workers=1)
        best4, all4 = random_search(space, splits, config, num_candidates=4,
                                    train_epochs=1, seed=3, workers=4)
        assert [c.objective for c in all1] == [c.objective for c in all4]
        assert [c.top1_error for c in all1] == [c.top1_error for c in all4]
        assert best1.spec.name == best4.spec.name

    def test_evolution_matches_serial(self, setup):
        from repro.baselines.evolutionary import RegularizedEvolution

        space, splits, config = setup
        serial = RegularizedEvolution(space, splits, config, population_size=3,
                                      tournament_size=2, train_epochs=1,
                                      seed=5, workers=1).run(cycles=2)
        parallel = RegularizedEvolution(space, splits, config, population_size=3,
                                        tournament_size=2, train_epochs=1,
                                        seed=5, workers=3).run(cycles=2)
        assert serial.history == parallel.history
        assert serial.best.fitness == parallel.best.fitness
        assert serial.best.spec.name == parallel.best.spec.name
        assert serial.evaluations == parallel.evaluations


def _shared_images_sum(_payload):
    splits = get_shared()
    return (
        type(splits).__name__,
        type(splits.train.images).__name__,
        float(splits.train.images.sum()),
        int(splits.val.labels.sum()),
    )


class TestMemmapSharing:
    def test_pack_restore_round_trip(self, tiny_splits):
        from repro.core.parallel import pack_splits_memmap
        import os

        pack = pack_splits_memmap(tiny_splits)
        try:
            restored = pack.restore()
            for split in ("train", "val", "test"):
                original = getattr(tiny_splits, split)
                copy = getattr(restored, split)
                assert isinstance(copy.images, np.memmap)
                np.testing.assert_array_equal(copy.images, original.images)
                np.testing.assert_array_equal(copy.labels, original.labels)
            assert restored.config == tiny_splits.config
        finally:
            os.unlink(pack.path)

    def test_process_workers_see_memmap_backed_splits(self, tiny_splits):
        results = ParallelEvaluator(workers=2, kind="process").map(
            _shared_images_sum, [0, 1, 2], shared=tiny_splits
        )
        expected = (
            "DatasetSplits",
            "memmap",
            float(tiny_splits.train.images.sum()),
            int(tiny_splits.val.labels.sum()),
        )
        assert results == [expected] * 3

    def test_tempfile_removed_after_map(self, tiny_splits, monkeypatch):
        import repro.core.parallel as parallel_mod

        paths = []
        original = parallel_mod.pack_splits_memmap

        def recording(splits):
            pack = original(splits)
            paths.append(pack.path)
            return pack

        monkeypatch.setattr(parallel_mod, "pack_splits_memmap", recording)
        ParallelEvaluator(workers=2, kind="process").map(
            _shared_images_sum, [0, 1], shared=tiny_splits
        )
        import os

        assert paths and not os.path.exists(paths[0])

    def test_thread_kind_skips_memmap(self, tiny_splits):
        # Threads share memory already: the caller's object goes straight in.
        results = ParallelEvaluator(workers=2, kind="thread").map(
            _shared_images_sum, [0, 1], shared=tiny_splits
        )
        assert all(r[0] == "DatasetSplits" and r[1] == "ndarray" for r in results)
