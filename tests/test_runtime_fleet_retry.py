"""Backpressure retries: ``ServingFleet.submit_with_retry``.

The retry loop is pure client-side policy, so it is tested against a
scripted stand-in fleet (``submit`` plays a queue of outcomes) via the
unbound method — no worker processes, no timing, fully deterministic.
"""

import pytest

from repro.resilience import RetryPolicy
from repro.runtime.fleet import FleetClosed, QueueFull, ServingFleet


class _ScriptedFleet:
    """Minimal ``submit`` double: pops one scripted outcome per call."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = 0

    def submit(self, model, x, deadline_ms=None):
        self.calls += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def _submit(fake, retry, sleeps=None):
    return ServingFleet.submit_with_retry(
        fake, "m", None, retry=retry,
        sleep=(sleeps.append if sleeps is not None else (lambda _d: None)),
    )


class TestSubmitWithRetry:
    def test_first_try_success_never_sleeps(self):
        fake = _ScriptedFleet(["handle"])
        sleeps = []
        assert _submit(fake, RetryPolicy(max_retries=3), sleeps) == "handle"
        assert fake.calls == 1
        assert sleeps == []

    def test_queue_full_is_retried_with_policy_backoff(self):
        fake = _ScriptedFleet([QueueFull("full"), QueueFull("full"), "handle"])
        policy = RetryPolicy(max_retries=3, base_delay_s=0.01, seed=7)
        sleeps = []
        assert _submit(fake, policy, sleeps) == "handle"
        assert fake.calls == 3
        assert sleeps == policy.schedule()[:2]

    def test_reraises_once_budget_spent(self):
        fake = _ScriptedFleet([QueueFull("full")] * 3)
        with pytest.raises(QueueFull):
            _submit(fake, RetryPolicy(max_retries=2))
        assert fake.calls == 3

    def test_fleet_closed_is_never_retried(self):
        fake = _ScriptedFleet([FleetClosed("closed")])
        with pytest.raises(FleetClosed):
            _submit(fake, RetryPolicy(max_retries=5))
        assert fake.calls == 1

    def test_value_error_is_never_retried(self):
        fake = _ScriptedFleet([ValueError("unknown model")])
        with pytest.raises(ValueError):
            _submit(fake, RetryPolicy(max_retries=5))
        assert fake.calls == 1

    def test_queue_full_then_closed_stops_retrying(self):
        # The fleet shut down between attempts: the retry loop must not
        # keep hammering a closed fleet.
        fake = _ScriptedFleet([QueueFull("full"), FleetClosed("closed")])
        with pytest.raises(FleetClosed):
            _submit(fake, RetryPolicy(max_retries=5))
        assert fake.calls == 2

    def test_default_policy_used_when_none_given(self):
        fake = _ScriptedFleet([QueueFull("full"), "handle"])
        handle = ServingFleet.submit_with_retry(
            fake, "m", None, sleep=lambda _d: None
        )
        assert handle == "handle"
        assert fake.calls == 2  # RetryPolicy() default allows retries


class TestRealFleetIntegration:
    def test_submit_with_retry_round_trips(self):
        """On a live fleet the wrapper is just ``submit`` when nothing is full."""
        import numpy as np

        from repro import api

        spec = api.search(epochs=1, blocks=2, batch_size=8, seed=0).result.spec
        from repro.runtime import compile_spec

        plan = compile_spec(spec)
        with ServingFleet({"m": plan}, workers=1) as fleet:
            x = np.zeros(plan.input_shape, dtype=np.float32)
            out = fleet.submit_with_retry("m", x).result(timeout=30.0)
        assert out.shape[-1] == plan.output_shape[-1]
