"""Serving fleet: shared weights, scheduling, admission control, metrics."""

import json
import threading
import time

import numpy as np
import pytest

from repro import api
from repro.nas.arch_spec import ArchSpec, FCBlock, MBConvBlock, PoolBlock, StemBlock
from repro.runtime import Engine, compile_spec
from repro.runtime.fleet import (
    DeadlineExceeded,
    FleetClosed,
    FleetScheduler,
    QueueFull,
    ServingFleet,
    burst_trace,
    latency_percentiles,
    merge_traces,
    pack_plan_memmap,
    poisson_trace,
    replay,
)
from repro.runtime.fleet.requests import _FleetRequest


def _tiny_spec(name: str, out_features: int = 4) -> ArchSpec:
    return ArchSpec(
        name,
        [
            StemBlock(out_ch=8, kernel=3, stride=2),
            MBConvBlock(expansion=2, kernel=3, out_ch=8),
            PoolBlock(kernel=2, stride=2, mode="max"),
            FCBlock(out_features=out_features),
        ],
        input_size=12,
        input_channels=3,
    )


@pytest.fixture(scope="module")
def plans():
    return {
        "a": compile_spec(_tiny_spec("a"), seed=0),
        "b": compile_spec(_tiny_spec("b", out_features=3), seed=1),
    }


@pytest.fixture
def sample():
    return np.random.default_rng(0).standard_normal((3, 12, 12))


class _GatedEngine:
    """Engine stub whose run() blocks on a gate and counts invocations."""

    instances: list["_GatedEngine"] = []

    def __init__(self, plan):
        self.plan = plan
        self.gate = threading.Event()
        self.run_calls = 0
        _GatedEngine.instances.append(self)

    def run(self, batch):
        self.run_calls += 1
        self.gate.wait(timeout=10.0)
        return np.zeros((len(batch), 2))


@pytest.fixture
def gated_fleet(plans, monkeypatch):
    """One-worker fleet whose engines block until their gate opens."""
    _GatedEngine.instances = []
    monkeypatch.setattr("repro.runtime.fleet.fleet.Engine", _GatedEngine)
    fleet = ServingFleet({"a": plans["a"]}, workers=1, max_batch=4, max_queue=2)
    yield fleet
    for engine in _GatedEngine.instances:
        engine.gate.set()
    fleet.close()


def _wait_until(predicate, timeout=5.0):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return
        time.sleep(0.002)
    raise AssertionError("condition not reached in time")


class TestPlanWeightPack:
    def test_restore_matches_original_plan(self, plans, sample):
        pack = pack_plan_memmap(plans["a"])
        try:
            restored = pack.restore()
            np.testing.assert_array_equal(
                Engine(plans["a"]).run(sample), Engine(restored).run(sample)
            )
        finally:
            pack.unlink()

    def test_structural_plan_holds_no_weights(self, plans):
        pack = pack_plan_memmap(plans["a"])
        try:
            assert all(
                op.weight is None and op.bias is None for op in pack.plan.ops
            )
            assert pack.nbytes == sum(
                (op.weight.nbytes if op.weight is not None else 0)
                + (op.bias.nbytes if op.bias is not None else 0)
                for op in plans["a"].ops
            )
        finally:
            pack.unlink()

    def test_restored_weights_are_readonly_memmaps(self, plans):
        pack = pack_plan_memmap(plans["a"])
        try:
            restored = pack.restore()
            weighted = [op for op in restored.ops if op.weight is not None]
            assert weighted
            for op in weighted:
                assert isinstance(op.weight, np.memmap)
                with pytest.raises(ValueError):
                    op.weight[...] = 0.0
        finally:
            pack.unlink()

    def test_unlink_is_idempotent_and_maps_survive(self, plans, sample):
        pack = pack_plan_memmap(plans["a"])
        restored = pack.restore()
        pack.unlink()
        pack.unlink()
        # POSIX: live maps keep the pages readable after the unlink.
        np.testing.assert_array_equal(
            Engine(plans["a"]).run(sample), Engine(restored).run(sample)
        )


class TestFleetScheduler:
    def test_global_fifo_picks_oldest_head(self):
        scheduler = FleetScheduler(max_queue=8, max_batch=4)
        scheduler.add_model("a")
        scheduler.add_model("b")
        first = _FleetRequest("a", np.zeros(1))
        time.sleep(0.002)
        second = _FleetRequest("b", np.zeros(1))
        scheduler.submit(second)
        scheduler.submit(first)  # admission order must not matter
        model, live, shed = scheduler.next_batch()
        assert model == "a" and live == [first] and shed == []

    def test_batches_are_per_model(self):
        scheduler = FleetScheduler(max_queue=8, max_batch=4)
        for name in ("a", "b"):
            scheduler.add_model(name)
        requests = [_FleetRequest("a", np.zeros(1)) for _ in range(3)]
        other = _FleetRequest("b", np.zeros(1))
        for request in requests:
            scheduler.submit(request)
        scheduler.submit(other)
        model, live, _ = scheduler.next_batch()
        assert model == "a" and live == requests
        model, live, _ = scheduler.next_batch()
        assert model == "b" and live == [other]

    def test_next_batch_returns_none_when_closed_and_empty(self):
        scheduler = FleetScheduler()
        scheduler.add_model("a")
        scheduler.close()
        assert scheduler.next_batch() is None

    def test_validation(self):
        with pytest.raises(ValueError, match="max_queue"):
            FleetScheduler(max_queue=0)
        with pytest.raises(ValueError, match="max_batch"):
            FleetScheduler(max_batch=0)


class TestServingFleet:
    def test_multi_tenant_round_trip_matches_engines(self, plans, sample):
        with ServingFleet(plans, workers=2) as fleet:
            handle_a = fleet.submit("a", sample)
            handle_b = fleet.submit("b", sample)
            np.testing.assert_array_equal(
                handle_a.result(10.0), Engine(plans["a"]).run(sample)
            )
            np.testing.assert_array_equal(
                handle_b.result(10.0), Engine(plans["b"]).run(sample)
            )
            assert handle_a.model == "a"
            assert handle_a.latency_ms > 0
            assert handle_a.batch_size >= 1

    def test_zero_workers_rejected(self, plans):
        with pytest.raises(ValueError, match="workers"):
            ServingFleet(plans, workers=0)

    def test_empty_plans_rejected(self):
        with pytest.raises(ValueError, match="at least one plan"):
            ServingFleet({})

    def test_unregistered_model_rejected_with_roster(self, plans, sample):
        with ServingFleet(plans, workers=1) as fleet:
            with pytest.raises(ValueError, match="unknown model 'c'.*a, b"):
                fleet.submit("c", sample)

    def test_wrong_shape_rejected(self, plans):
        with ServingFleet(plans, workers=1) as fleet:
            with pytest.raises(ValueError, match="shape"):
                fleet.submit("a", np.zeros((3, 8, 8)))

    def test_queue_full_rejects_and_counts(self, gated_fleet, sample):
        first = gated_fleet.submit("a", sample)  # worker picks this up
        _wait_until(lambda: gated_fleet._scheduler.depths()["a"] == 0)
        gated_fleet.submit("a", sample)
        gated_fleet.submit("a", sample)  # queue now at max_queue=2
        with pytest.raises(QueueFull, match="full"):
            gated_fleet.submit("a", sample)
        _GatedEngine.instances[0].gate.set()
        first.result(10.0)
        stats = gated_fleet.stats()
        assert stats["models"]["a"]["rejected"] == 1
        assert stats["fleet"]["rejected"] == 1
        # The rejected submit's provisional acceptance was rolled back.
        assert stats["models"]["a"]["accepted"] == 3

    def test_deadline_shed_before_compute(self, gated_fleet, sample):
        blocker = gated_fleet.submit("a", sample)  # occupies the one worker
        _wait_until(lambda: gated_fleet._scheduler.depths()["a"] == 0)
        doomed = gated_fleet.submit("a", sample, deadline_ms=5.0)
        time.sleep(0.03)  # deadline passes while queued
        engine = _GatedEngine.instances[0]
        engine.gate.set()
        blocker.result(10.0)
        with pytest.raises(DeadlineExceeded, match="deadline"):
            doomed.result(10.0)
        # The shed request never reached the engine: one run for the blocker.
        _wait_until(lambda: gated_fleet.stats()["models"]["a"]["shed"] == 1)
        assert engine.run_calls == 1

    def test_shed_and_live_split_preserves_arrival_order(self, plans, sample):
        # Directly exercise the dequeue-time split: expired head, live tail.
        scheduler = FleetScheduler(max_queue=8, max_batch=4)
        scheduler.add_model("a")
        expired = _FleetRequest("a", sample, deadline_ms=0.0)
        alive = _FleetRequest("a", sample, deadline_ms=10_000.0)
        scheduler.submit(expired)
        scheduler.submit(alive)
        time.sleep(0.002)
        model, live, shed = scheduler.next_batch()
        assert model == "a"
        assert shed == [expired]
        assert live == [alive]

    def test_close_fails_queued_requests(self, plans, sample, monkeypatch):
        _GatedEngine.instances = []
        monkeypatch.setattr("repro.runtime.fleet.fleet.Engine", _GatedEngine)
        fleet = ServingFleet({"a": plans["a"]}, workers=1, max_queue=8)
        blocker = fleet.submit("a", sample)
        _wait_until(lambda: fleet._scheduler.depths()["a"] == 0)
        queued = [fleet.submit("a", sample) for _ in range(3)]
        _GatedEngine.instances[0].gate.set()
        fleet.close()
        blocker.result(10.0)
        for handle in queued:
            with pytest.raises(FleetClosed, match="shut down"):
                handle.result(10.0)
        with pytest.raises(FleetClosed):
            fleet.submit("a", sample)

    def test_close_is_idempotent(self, plans):
        fleet = ServingFleet(plans, workers=1)
        fleet.close()
        fleet.close()

    def test_stats_consistent_under_concurrent_submitters(self, plans, sample):
        per_thread = 20
        threads = 4
        with ServingFleet(plans, workers=2, max_queue=256) as fleet:
            def flood(model):
                for _ in range(per_thread):
                    fleet.submit(model, sample).result(30.0)

            workers = [
                threading.Thread(target=flood, args=("a" if i % 2 else "b",))
                for i in range(threads)
            ]
            for t in workers:
                t.start()
            for t in workers:
                t.join()
            stats = fleet.stats()
        fleet_block = stats["fleet"]
        assert fleet_block["accepted"] == threads * per_thread
        # Quiescent invariant: every accepted request was accounted for.
        assert fleet_block["accepted"] == (
            fleet_block["completed"] + fleet_block["failed"]
            + fleet_block["shed"] + fleet_block["queue_depth"]
        )
        for block in stats["models"].values():
            assert block["accepted"] == (
                block["completed"] + block["failed"] + block["shed"]
                + block["queue_depth"]
            )
        assert sum(
            block["accepted"] for block in stats["models"].values()
        ) == fleet_block["accepted"]

    def test_stats_are_json_serialisable_and_report_sharing(self, plans, sample):
        with ServingFleet(plans, workers=3) as fleet:
            fleet.infer("a", sample, timeout=10.0)
            stats = fleet.stats()
        json.dumps(stats)
        weights = stats["weights"]
        assert weights["shared_bytes"] > 0
        assert weights["unshared_bytes"] == 3 * weights["shared_bytes"]
        assert set(weights["per_model_bytes"]) == {"a", "b"}
        assert stats["config"]["workers"] == 3
        assert stats["config"]["kind"] == "thread"
        assert stats["config"]["models"] == ["a", "b"]
        assert len(stats["workers"]) == 3
        for block in stats["workers"]:
            assert block["crashes"] == 0
            assert block["kind"] == "thread"
            assert block["pid"] is None

    def test_engine_error_propagates_and_counts_failed(self, plans, sample,
                                                      monkeypatch):
        class _BoomEngine:
            def __init__(self, plan):
                self.plan = plan

            def run(self, batch):
                raise RuntimeError("kaboom")

        monkeypatch.setattr("repro.runtime.fleet.fleet.Engine", _BoomEngine)
        with ServingFleet({"a": plans["a"]}, workers=1) as fleet:
            handle = fleet.submit("a", sample)
            with pytest.raises(RuntimeError, match="kaboom"):
                handle.result(10.0)
            _wait_until(
                lambda: fleet.stats()["models"]["a"]["failed"] == 1
            )


class TestTraffic:
    def test_poisson_trace_is_deterministic_and_bounded(self):
        one = poisson_trace("a", rate_hz=200.0, duration_s=0.5, seed=3)
        two = poisson_trace("a", rate_hz=200.0, duration_s=0.5, seed=3)
        assert one == two
        assert all(0 <= event.t < 0.5 for event in one)
        assert [event.t for event in one] == sorted(event.t for event in one)
        assert one != poisson_trace("a", rate_hz=200.0, duration_s=0.5, seed=4)

    def test_burst_trace_shape(self):
        trace = burst_trace("b", bursts=3, burst_size=4, gap_s=0.1)
        assert len(trace) == 12
        assert sum(1 for event in trace if event.t == 0.0) == 4

    def test_merge_traces_sorts_by_arrival(self):
        merged = merge_traces(
            burst_trace("a", bursts=2, burst_size=1, gap_s=0.2),
            poisson_trace("b", rate_hz=50.0, duration_s=0.3, seed=0),
        )
        assert [event.t for event in merged] == sorted(
            event.t for event in merged
        )

    def test_trace_validation(self):
        with pytest.raises(ValueError, match="rate_hz"):
            poisson_trace("a", rate_hz=0.0, duration_s=1.0)
        with pytest.raises(ValueError, match=">= 1"):
            burst_trace("a", bursts=0, burst_size=1, gap_s=0.1)

    def test_replay_round_trip_summary(self, plans, sample):
        trace = merge_traces(
            poisson_trace("a", rate_hz=300.0, duration_s=0.1, seed=1),
            burst_trace("b", bursts=2, burst_size=3, gap_s=0.05),
        )
        inputs = {"a": sample, "b": sample}
        with ServingFleet(plans, workers=2, max_queue=512) as fleet:
            record = replay(fleet, trace, inputs)
        assert record["offered"] == len(trace)
        assert record["completed"] + record["rejected"] + record["shed"] \
            + record["failed"] == record["offered"]
        assert record["throughput_rps"] > 0
        assert set(record["per_model"]) <= {"a", "b"}
        json.dumps(record)

    def test_latency_percentiles_requires_samples(self):
        with pytest.raises(ValueError, match="at least one sample"):
            latency_percentiles([])
        summary = latency_percentiles([1.0, 2.0, 3.0])
        assert set(summary) == {"mean", "p50", "p95", "p99", "max"}


class TestServeFleetFacade:
    def test_serve_fleet_round_trip(self):
        rng = np.random.default_rng(1)
        with api.serve_fleet(
            ["EDD-Net-1", "MobileNet-V2"], workers=2,
            width_mult=0.1, input_size=16, num_classes=4,
        ) as fleet:
            x = rng.normal(size=(3, 16, 16))
            logits = fleet.infer("EDD-Net-1", x, timeout=30.0)
            assert logits.shape == (4,)
            assert fleet.models() == ["EDD-Net-1", "MobileNet-V2"]
            stats = fleet.stats()
        assert stats["fleet"]["completed"] == 1

    def test_serve_fleet_accepts_mapping_and_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one model"):
            api.serve_fleet([])
        with api.serve_fleet(
            {"tiny": "MobileNet-V2"}, workers=1,
            width_mult=0.1, input_size=16, num_classes=4,
        ) as fleet:
            assert fleet.models() == ["tiny"]
