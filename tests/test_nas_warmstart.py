"""Unit tests for supernet -> derived-network weight inheritance."""

import dataclasses

import numpy as np
import pytest

from repro.autograd.tensor import Tensor, no_grad
from repro.nas.derive import derive_arch_spec
from repro.nas.network import build_network
from repro.nas.space import SearchSpaceConfig
from repro.nas.supernet import SuperNet
from repro.nas.warmstart import inherit_weights


@pytest.fixture
def trained_supernet(tiny_space):
    """A supernet with non-trivial (randomised) weights and a decided theta."""
    net = SuperNet(tiny_space, quant=None, seed=3)
    rng = np.random.default_rng(9)
    net.theta.data = rng.normal(size=net.theta.shape)
    # Perturb BN running stats so stat copying is observable.
    for _, p in net.named_parameters():
        pass
    return net


class TestInheritance:
    def test_copies_report_count(self, trained_supernet):
        spec = derive_arch_spec(trained_supernet, name="child")
        child = build_network(spec, seed=99)
        copied = inherit_weights(trained_supernet, child)
        assert copied > 10

    def test_forward_exact_equivalence(self, trained_supernet, rng):
        """In eval mode, the warm-started child computes exactly what the
        supernet's argmax path computes (quantisation disabled)."""
        from repro.nas.gumbel import GumbelSoftmax
        from repro.nas.supernet import constant_sample

        supernet = trained_supernet
        spec = derive_arch_spec(supernet, name="child")
        child = build_network(spec, seed=99)
        inherit_weights(supernet, child)

        supernet.eval()
        child.eval()
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        chosen = [int(i) for i in supernet.theta.data.argmax(axis=-1)]
        sample = constant_sample(supernet.space, None, chosen)
        with no_grad():
            reference = supernet(x, sample=sample)
            warm = child(x, bits=None)
        np.testing.assert_allclose(warm.data, reference.data, atol=1e-10)

    def test_warmstart_beats_cold_start(self, trained_supernet, tiny_splits):
        """After brief supernet training, the inherited child starts with a
        lower loss than a fresh initialisation."""
        from repro.core.config import EDDConfig
        from repro.core.cosearch import EDDSearcher
        from repro.nn.functional import cross_entropy

        space = trained_supernet.space
        config = EDDConfig(target="gpu", epochs=3, batch_size=8, seed=0,
                           arch_start_epoch=0)
        searcher = EDDSearcher(space, tiny_splits, config)
        searcher.search()

        spec = derive_arch_spec(searcher.supernet, name="warm")
        cold = build_network(spec, seed=1)
        warm = build_network(spec, seed=1)
        inherit_weights(searcher.supernet, warm)

        x = Tensor(tiny_splits.val.images)
        y = tiny_splits.val.labels
        cold.eval()
        warm.eval()
        with no_grad():
            cold_loss = cross_entropy(cold(x, bits=None), y).item()
            warm_loss = cross_entropy(warm(x, bits=None), y).item()
        assert warm_loss < cold_loss

    def test_skip_blocks_handled(self, tiny_splits):
        space = dataclasses.replace(SearchSpaceConfig.tiny(), allow_skip=True)
        net = SuperNet(space, quant=None, seed=0)
        # Force skips everywhere (last op index is the skip).
        net.theta.data[:, -1] = 10.0
        spec = derive_arch_spec(net, name="skippy")
        child = build_network(spec, seed=5)
        copied = inherit_weights(net, child)
        assert copied > 0  # stem/head always copy

    def test_space_mismatch_raises(self, trained_supernet):
        other_space = SearchSpaceConfig.reduced(num_blocks=2, num_classes=4,
                                                input_size=8)
        other = SuperNet(other_space, quant=None, seed=0)
        spec = derive_arch_spec(other, name="other")
        child = build_network(spec, seed=0)
        # Different trunk width in the reduced space -> shape mismatch.
        with pytest.raises(ValueError, match="mismatch"):
            inherit_weights(trained_supernet, child)
