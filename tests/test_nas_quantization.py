"""Unit + property tests for differentiable quantisation (Sec. 3.2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd.tensor import Tensor
from repro.nas.quantization import (
    QuantizationConfig,
    fake_quantize,
    mixed_quantize,
    quantization_error,
)

pytestmark = pytest.mark.usefixtures("float64_numerics")


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestConfig:
    def test_fpga_menu(self):
        q = QuantizationConfig.fpga()
        assert q.bitwidths == (4, 8, 16)
        assert q.activation_bits == 16
        assert q.num_levels == 3

    def test_gpu_menu_is_global(self):
        q = QuantizationConfig.gpu()
        assert q.bitwidths == (8, 16, 32)
        assert q.sharing == "global"

    def test_phi_shapes_per_sharing(self):
        n, m = 4, 3
        assert QuantizationConfig.fpga("per_block_op").phi_shape(n, m) == (4, 3, 3)
        assert QuantizationConfig.fpga("per_op").phi_shape(n, m) == (3, 3)
        assert QuantizationConfig.gpu().phi_shape(n, m) == (3,)

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            QuantizationConfig(bitwidths=())
        with pytest.raises(ValueError, match="range"):
            QuantizationConfig(bitwidths=(1,))
        with pytest.raises(ValueError, match="sharing"):
            QuantizationConfig(sharing="bogus")


class TestFakeQuantize:
    def test_32bit_is_identity(self, rng):
        x = Tensor(rng.normal(size=(5,)))
        assert fake_quantize(x, 32) is x

    def test_output_on_grid(self, rng):
        x = Tensor(rng.normal(size=(100,)))
        bits = 4
        out = fake_quantize(x, bits)
        max_abs = np.abs(x.data).max()
        scale = max_abs / (2 ** (bits - 1) - 1)
        grid_positions = out.data / scale
        np.testing.assert_allclose(grid_positions, np.round(grid_positions), atol=1e-9)

    def test_error_shrinks_with_bits(self, rng):
        x = rng.normal(size=(200,))
        errors = [quantization_error(x, b) for b in (2, 4, 8, 16)]
        assert all(a > b for a, b in zip(errors, errors[1:]))
        assert quantization_error(x, 32) == 0.0

    def test_gradient_straight_through(self, rng):
        x = Tensor(rng.normal(size=(5,)), requires_grad=True)
        fake_quantize(x, 8).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(5))

    def test_explicit_max_abs_clips(self):
        x = Tensor(np.array([10.0, 0.5]))
        out = fake_quantize(x, 8, max_abs=1.0)
        assert out.data[0] <= 1.0

    def test_rejects_tiny_bits(self):
        with pytest.raises(ValueError):
            fake_quantize(Tensor(np.ones(2)), 1)

    def test_all_zero_input_survives(self):
        out = fake_quantize(Tensor(np.zeros(4)), 8)
        np.testing.assert_allclose(out.data, np.zeros(4))


class TestMixedQuantize:
    def test_one_hot_weights_select_single_path(self, rng):
        x = Tensor(rng.normal(size=(6,)))
        weights = Tensor(np.array([0.0, 1.0, 0.0]))
        out = mixed_quantize(x, weights, (4, 8, 16))
        np.testing.assert_allclose(out.data, fake_quantize(x, 8).data)

    def test_soft_weights_interpolate(self, rng):
        x = Tensor(rng.normal(size=(6,)))
        weights = Tensor(np.array([0.5, 0.5]))
        out = mixed_quantize(x, weights, (4, 16))
        expected = 0.5 * fake_quantize(x, 4).data + 0.5 * fake_quantize(x, 16).data
        np.testing.assert_allclose(out.data, expected)

    def test_gradient_reaches_weights(self, rng):
        x = Tensor(rng.normal(size=(6,)))
        weights = Tensor(np.array([0.3, 0.7]), requires_grad=True)
        mixed_quantize(x, weights, (4, 16)).sum().backward()
        assert weights.grad is not None

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="match"):
            mixed_quantize(Tensor(np.ones(3)), Tensor(np.ones(2)), (4, 8, 16))


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
    st.sampled_from([2, 3, 4, 6, 8, 12, 16]),
)
def test_property_quantization_error_bounded_by_half_step(values, bits):
    """|x - q(x)| <= scale/2 inside the clip range."""
    x = np.array(values)
    max_abs = np.abs(x).max() or 1.0
    scale = max_abs / (2 ** (bits - 1) - 1)
    out = fake_quantize(Tensor(x), bits).data
    assert np.all(np.abs(out - np.clip(x, -max_abs, max_abs)) <= scale / 2 + 1e-9)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        min_size=1,
        max_size=20,
    )
)
def test_property_quantization_idempotent(values):
    x = np.array(values)
    once = fake_quantize(Tensor(x), 8).data
    max_abs = np.abs(x).max() or 1.0
    twice = fake_quantize(Tensor(once), 8, max_abs=max_abs).data
    np.testing.assert_allclose(once, twice, atol=1e-9)
