"""Unit tests for training derived networks from scratch."""

import numpy as np
import pytest

from repro.core.trainer import evaluate_network, train_from_spec
from repro.nas.network import build_network
from repro.nas.space import SearchSpaceConfig


@pytest.fixture
def small_spec(tiny_space):
    ops = tiny_space.candidate_ops()
    return tiny_space.spec_for_choices([ops[0]] * tiny_space.num_blocks, name="train-me")


class TestTrainFromSpec:
    def test_returns_metrics(self, small_spec, tiny_splits):
        result = train_from_spec(small_spec, tiny_splits, epochs=2, batch_size=8)
        assert 0.0 <= result.top1_error <= 100.0
        assert 0.0 <= result.top5_error <= result.top1_error + 1e-9
        assert result.epochs == 2
        assert len(result.train_losses) == 2

    def test_learns_better_than_chance(self, small_spec, tiny_splits):
        """4-class proxy task: a trained tiny net must beat 75% error."""
        result = train_from_spec(
            small_spec, tiny_splits, epochs=12, batch_size=8, lr=0.08, seed=1
        )
        chance_error = 100.0 * (1.0 - 1.0 / 4)
        assert result.top1_error < chance_error

    def test_loss_decreases(self, small_spec, tiny_splits):
        result = train_from_spec(small_spec, tiny_splits, epochs=6, batch_size=8)
        assert result.train_losses[-1] < result.train_losses[0]

    def test_quantised_training_records_bits(self, small_spec, tiny_splits):
        result = train_from_spec(small_spec, tiny_splits, epochs=1, bits=8)
        assert result.weight_bits == 8

    def test_deterministic_given_seed(self, small_spec, tiny_splits):
        a = train_from_spec(small_spec, tiny_splits, epochs=1, seed=4)
        b = train_from_spec(small_spec, tiny_splits, epochs=1, seed=4)
        assert a.train_losses == b.train_losses


class TestEvaluateNetwork:
    def test_metrics_dict(self, small_spec, tiny_splits):
        net = build_network(small_spec, seed=0)
        metrics = evaluate_network(net, tiny_splits.test, batch_size=8)
        assert set(metrics) == {1, 5}
        assert 0.0 <= metrics[1] <= metrics[5] <= 1.0

    def test_eval_restores_training_mode(self, small_spec, tiny_splits):
        net = build_network(small_spec, seed=0)
        evaluate_network(net, tiny_splits.test)
        assert net.training

    def test_untrained_near_chance(self, small_spec, tiny_splits):
        net = build_network(small_spec, seed=0)
        metrics = evaluate_network(net, tiny_splits.test)
        assert metrics[1] < 0.7  # 4 classes: untrained should not be great
