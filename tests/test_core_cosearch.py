"""Unit tests for the bilevel co-search loop (Sec. 5)."""

import numpy as np
import pytest

from repro.core.config import EDDConfig
from repro.core.cosearch import (
    EDDSearcher,
    build_hardware_model,
    build_supernet,
    quantization_for_target,
)
from repro.hw.fpga import FPGAModel
from repro.hw.gpu import GPUModel
from repro.hw.accel import BitSerialAccelModel


class TestBuilders:
    def test_quantization_per_target(self):
        # The cosearch-level wrappers are deprecated thin shims over
        # repro.hw.registry; they must warn but keep working.
        with pytest.warns(DeprecationWarning, match="quantization_for_target"):
            assert quantization_for_target("gpu").sharing == "global"
        with pytest.warns(DeprecationWarning):
            assert quantization_for_target("fpga_recursive").sharing == "per_op"
            assert quantization_for_target("fpga_pipelined").sharing == "per_block_op"
            assert quantization_for_target("accel").sharing == "per_block_op"
        with pytest.raises(ValueError), pytest.warns(DeprecationWarning):
            quantization_for_target("tpu")

    def test_hardware_model_per_target(self, tiny_space):
        with pytest.warns(DeprecationWarning, match="build_hardware_model"):
            assert isinstance(
                build_hardware_model(tiny_space, EDDConfig(target="gpu")), GPUModel
            )
        with pytest.warns(DeprecationWarning):
            rec = build_hardware_model(tiny_space, EDDConfig(target="fpga_recursive"))
            assert isinstance(rec, FPGAModel) and rec.architecture == "recursive"
            pipe = build_hardware_model(tiny_space, EDDConfig(target="fpga_pipelined"))
            assert isinstance(pipe, FPGAModel) and pipe.architecture == "pipelined"
            assert isinstance(
                build_hardware_model(tiny_space, EDDConfig(target="accel")),
                BitSerialAccelModel,
            )

    def test_supernet_matches_target(self, tiny_space):
        net = build_supernet(tiny_space, EDDConfig(target="fpga_recursive"))
        assert net.quant.sharing == "per_op"


@pytest.fixture
def searcher(tiny_space, tiny_splits):
    config = EDDConfig(
        target="gpu", epochs=2, batch_size=8, seed=0, arch_start_epoch=0,
    )
    return EDDSearcher(tiny_space, tiny_splits, config)


class TestSteps:
    def test_weight_step_returns_loss(self, searcher, tiny_splits):
        x, y = tiny_splits.train.images[:8], tiny_splits.train.labels[:8]
        loss = searcher.weight_step(x, y)
        assert np.isfinite(loss) and loss > 0

    def test_weight_step_does_not_move_arch(self, searcher, tiny_splits):
        theta_before = searcher.supernet.theta.data.copy()
        x, y = tiny_splits.train.images[:8], tiny_splits.train.labels[:8]
        searcher.weight_step(x, y)
        np.testing.assert_allclose(searcher.supernet.theta.data, theta_before)

    def test_arch_step_moves_arch_not_weights(self, searcher, tiny_splits):
        searcher.calibrate_alpha()
        weight = searcher.supernet.candidate(0, 0).expand.weight
        weight_before = weight.data.copy()
        theta_before = searcher.supernet.theta.data.copy()
        x, y = tiny_splits.val.images[:8], tiny_splits.val.labels[:8]
        stats = searcher.arch_step(x, y)
        np.testing.assert_allclose(weight.data, weight_before)
        assert not np.allclose(searcher.supernet.theta.data, theta_before)
        assert set(stats) == {"acc_loss", "perf_loss", "resource", "total_loss"}

    def test_alpha_calibration_normalises_perf(self, searcher):
        searcher.calibrate_alpha()
        ev = searcher.hw_model.evaluate(searcher._expected_sample())
        np.testing.assert_allclose(float(ev.perf_loss.data), 1.0, rtol=1e-6)


class TestSearchLoop:
    def test_history_and_result(self, searcher):
        result = searcher.search(name="t")
        assert len(result.history) == 2
        assert result.spec.name == "t"
        assert result.theta.shape == searcher.supernet.theta.shape
        assert result.search_seconds > 0
        assert all(np.isfinite(r.train_loss) for r in result.history)

    def test_arch_warmup_skips_arch_stats(self, tiny_space, tiny_splits):
        config = EDDConfig(target="gpu", epochs=2, batch_size=8,
                           arch_start_epoch=1, seed=0)
        result = EDDSearcher(tiny_space, tiny_splits, config).search()
        assert np.isnan(result.history[0].val_acc_loss)
        assert np.isfinite(result.history[1].val_acc_loss)

    def test_temperature_anneals(self, searcher):
        result = searcher.search()
        temps = [r.temperature for r in result.history]
        assert temps[0] > temps[-1]

    def test_fpga_search_attaches_parallel_factors(self, tiny_space, tiny_splits):
        config = EDDConfig(target="fpga_recursive", epochs=2, batch_size=8,
                           arch_start_epoch=0, seed=0)
        result = EDDSearcher(tiny_space, tiny_splits, config).search()
        assert result.parallel_factors is not None
        assert len(result.parallel_factors) == tiny_space.num_blocks
        assert result.spec.metadata["block_bits"]

    def test_gpu_search_single_precision(self, tiny_space, tiny_splits):
        config = EDDConfig(target="gpu", epochs=2, batch_size=8,
                           arch_start_epoch=0, seed=0)
        result = EDDSearcher(tiny_space, tiny_splits, config).search()
        bits = result.spec.metadata["block_bits"]
        assert len(set(bits)) == 1  # global precision (Sec. 4.2)

    def test_result_serialisable(self, searcher, tmp_path):
        from repro.utils.serialization import to_json_file

        result = searcher.search()
        path = to_json_file(result.to_dict(), tmp_path / "result.json")
        assert path.exists()

    def test_deterministic_given_seed(self, tiny_space, tiny_splits):
        config = EDDConfig(target="gpu", epochs=1, batch_size=8,
                           arch_start_epoch=0, seed=9)
        a = EDDSearcher(tiny_space, tiny_splits, config).search()
        b = EDDSearcher(tiny_space, tiny_splits, config).search()
        np.testing.assert_allclose(a.theta, b.theta)
