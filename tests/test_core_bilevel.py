"""Unit tests for the second-order (DARTS-unrolled) architecture step."""

import numpy as np
import pytest

from repro.core.config import EDDConfig
from repro.core.cosearch import EDDSearcher


@pytest.fixture
def second_order_searcher(tiny_space, tiny_splits):
    config = EDDConfig(
        target="fpga_pipelined", epochs=2, batch_size=8, seed=0,
        arch_start_epoch=0, bilevel_order=2, resource_fraction=0.2,
    )
    searcher = EDDSearcher(tiny_space, tiny_splits, config)
    searcher.calibrate_alpha()
    return searcher


class TestConfig:
    def test_order_validation(self):
        with pytest.raises(ValueError, match="bilevel_order"):
            EDDConfig(bilevel_order=3)
        with pytest.raises(ValueError, match="unroll_epsilon"):
            EDDConfig(unroll_epsilon=0.0)


class TestUnrolledStep:
    def test_restores_weights_exactly(self, second_order_searcher, tiny_splits):
        searcher = second_order_searcher
        weights_before = [p.data.copy() for p in searcher.weight_optimizer.params]
        searcher.arch_step_unrolled(
            tiny_splits.val.images[:8], tiny_splits.val.labels[:8],
            tiny_splits.train.images[:8], tiny_splits.train.labels[:8],
        )
        for before, p in zip(weights_before, searcher.weight_optimizer.params):
            np.testing.assert_allclose(p.data, before)

    def test_moves_architecture(self, second_order_searcher, tiny_splits):
        searcher = second_order_searcher
        theta_before = searcher.supernet.theta.data.copy()
        stats = searcher.arch_step_unrolled(
            tiny_splits.val.images[:8], tiny_splits.val.labels[:8],
            tiny_splits.train.images[:8], tiny_splits.train.labels[:8],
        )
        assert not np.allclose(searcher.supernet.theta.data, theta_before)
        assert np.isfinite(stats["total_loss"])
        assert stats["unroll_scale"] > 0  # correction engaged

    def test_differs_from_first_order(self, tiny_space, tiny_splits):
        """With identical seeds, the two orders must produce different
        architecture parameters (the Hessian correction is non-trivial)."""
        thetas = {}
        for order in (1, 2):
            config = EDDConfig(
                target="fpga_pipelined", epochs=2, batch_size=8, seed=0,
                arch_start_epoch=0, bilevel_order=order, resource_fraction=0.2,
            )
            searcher = EDDSearcher(tiny_space, tiny_splits, config)
            searcher.search()
            thetas[order] = searcher.supernet.theta.data.copy()
        assert not np.allclose(thetas[1], thetas[2])

    def test_full_search_with_order_two(self, tiny_space, tiny_splits):
        config = EDDConfig(
            target="gpu", epochs=2, batch_size=8, seed=1,
            arch_start_epoch=0, bilevel_order=2,
        )
        result = EDDSearcher(tiny_space, tiny_splits, config).search()
        assert len(result.history) == 2
        assert np.isfinite(result.history[-1].total_loss)
