"""Unit tests for the model zoo encodings (MAC/param fidelity)."""

import pytest

from repro.baselines.model_zoo import MODEL_ZOO, PAPER_ACCURACY, get_model

# Published MAC counts (multiply-adds, 224x224 input) used as encoding checks.
PUBLISHED_MACS = {
    "MobileNet-V2": (300e6, 0.15),     # Sandler et al.: 300M
    "ResNet18": (1.8e9, 0.10),         # torchvision: 1.82G
    "VGG16": (15.5e9, 0.05),           # 15.5G
    "MnasNet-A1": (312e6, 0.15),       # Tan et al.: 312M
    "ShuffleNet-V2": (146e6, 0.20),    # Ma et al.: 146M
    "GoogleNet": (1.5e9, 0.15),        # ~1.5G
    "FBNet-C": (375e6, 0.20),          # Wu et al.: 375M
}

PUBLISHED_PARAMS = {
    "MobileNet-V2": (3.4e6, 0.15),
    "ResNet18": (11.7e6, 0.10),
    "VGG16": (138e6, 0.05),
    "MnasNet-A1": (3.9e6, 0.20),
}


class TestRegistry:
    def test_all_thirteen_models_present(self):
        assert len(MODEL_ZOO) == 13

    def test_get_model_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            get_model("AlexNet")

    def test_num_classes_plumbs_through(self):
        spec = get_model("ResNet18", num_classes=10)
        assert spec.blocks[-1].out_features == 10

    def test_paper_accuracy_covers_zoo(self):
        assert set(PAPER_ACCURACY) == set(MODEL_ZOO)
        for entry in PAPER_ACCURACY.values():
            assert 0 < entry["top5"] < entry["top1"] < 100


class TestMacFidelity:
    @pytest.mark.parametrize("name", sorted(PUBLISHED_MACS))
    def test_macs_match_published(self, name):
        target, tol = PUBLISHED_MACS[name]
        macs = get_model(name).total_macs()
        assert abs(macs - target) / target < tol, f"{name}: {macs / 1e6:.0f}M"

    @pytest.mark.parametrize("name", sorted(PUBLISHED_PARAMS))
    def test_params_match_published(self, name):
        target, tol = PUBLISHED_PARAMS[name]
        params = get_model(name).total_params()
        assert abs(params - target) / target < tol, f"{name}: {params / 1e6:.2f}M"


class TestEDDNets:
    def test_edd_nets_have_20_20_17_blocks(self):
        from repro.nas.arch_spec import MBConvBlock

        counts = {}
        for name in ("EDD-Net-1", "EDD-Net-2", "EDD-Net-3"):
            spec = get_model(name)
            counts[name] = sum(isinstance(b, MBConvBlock) for b in spec.blocks)
        assert counts["EDD-Net-1"] == 20  # N = 20 (Sec. 6)
        assert counts["EDD-Net-2"] == 20
        assert counts["EDD-Net-3"] == 17  # "shallower" (Sec. 6)

    def test_edd_nets_use_searched_precision(self):
        for name in ("EDD-Net-1", "EDD-Net-2", "EDD-Net-3"):
            assert get_model(name).weight_bits == 16

    def test_edd_net_2_favours_few_distinct_ops(self):
        """Resource sharing (Eqs. 9-10) pushes the recursive target toward
        reusing few op types; the Fig. 4 net is dominated by MB4 3x3."""
        from collections import Counter
        from repro.nas.arch_spec import MBConvBlock

        spec = get_model("EDD-Net-2")
        ops = Counter(
            (b.expansion, b.kernel) for b in spec.blocks if isinstance(b, MBConvBlock)
        )
        assert ops.most_common(1)[0][0] == (4, 3)
        assert ops.most_common(1)[0][1] >= 8

    def test_edd_net_3_wider_than_edd_net_1(self):
        """Pipelined target trades depth for width (Sec. 6 discussion)."""
        from repro.nas.arch_spec import MBConvBlock

        e1 = get_model("EDD-Net-1")
        e3 = get_model("EDD-Net-3")
        max_ch_1 = max(b.out_ch for b in e1.blocks if isinstance(b, MBConvBlock))
        mid_ch_3 = [b.out_ch for b in e3.blocks if isinstance(b, MBConvBlock)]
        assert len(mid_ch_3) < 20
        assert max(mid_ch_3) >= 256  # wider trunk

    def test_all_specs_resolve_geometry(self):
        for name in MODEL_ZOO:
            layers = get_model(name).layers()
            assert layers, name
            assert all(l.out_h >= 1 and l.out_w >= 1 for l in layers)

    def test_classifiers_end_at_1000(self):
        for name in MODEL_ZOO:
            assert get_model(name).layers()[-1].out_ch == 1000
