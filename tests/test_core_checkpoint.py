"""Unit tests for search checkpoint/resume."""

import numpy as np
import pytest

from repro.core.checkpoint import (
    CheckpointCallback,
    checkpoint_path,
    find_latest_checkpoint,
    load_checkpoint,
    restore_search_state,
    save_checkpoint,
)
from repro.core.config import EDDConfig
from repro.core.cosearch import EDDSearcher


@pytest.fixture
def searcher(tiny_space, tiny_splits):
    config = EDDConfig(target="fpga_pipelined", epochs=2, batch_size=8,
                       arch_start_epoch=0, seed=0, resource_fraction=0.5)
    return EDDSearcher(tiny_space, tiny_splits, config)


def fresh_like(searcher, tiny_space, tiny_splits):
    return EDDSearcher(tiny_space, tiny_splits, searcher.config)


class TestRoundTrip:
    def test_state_restores_exactly(self, searcher, tiny_space, tiny_splits, tmp_path):
        searcher.calibrate_alpha()
        x, y = tiny_splits.train.images[:8], tiny_splits.train.labels[:8]
        searcher.weight_step(x, y)
        searcher.arch_step(tiny_splits.val.images[:8], tiny_splits.val.labels[:8])
        path = save_checkpoint(searcher, tmp_path / "ck.npz", epoch=3)

        other = fresh_like(searcher, tiny_space, tiny_splits)
        # Perturb so the restore provably does something.
        other.supernet.theta.data += 1.0
        epoch = load_checkpoint(other, path)

        assert epoch == 3
        np.testing.assert_allclose(other.supernet.theta.data, searcher.supernet.theta.data)
        np.testing.assert_allclose(other.supernet.phi.data, searcher.supernet.phi.data)
        np.testing.assert_allclose(other.hw_model.pf.data, searcher.hw_model.pf.data)
        for a, b in zip(searcher.supernet.weight_parameters(),
                        other.supernet.weight_parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_optimizer_moments_restore(self, searcher, tiny_space, tiny_splits, tmp_path):
        searcher.calibrate_alpha()
        searcher.arch_step(tiny_splits.val.images[:8], tiny_splits.val.labels[:8])
        path = save_checkpoint(searcher, tmp_path / "ck.npz")
        other = fresh_like(searcher, tiny_space, tiny_splits)
        load_checkpoint(other, path)
        assert other.arch_optimizer._t == searcher.arch_optimizer._t
        for a, b in zip(searcher.arch_optimizer._m, other.arch_optimizer._m):
            np.testing.assert_allclose(a, b)
        for a, b in zip(searcher.weight_optimizer._velocity,
                        other.weight_optimizer._velocity):
            np.testing.assert_allclose(a, b)

    def test_alpha_restored(self, searcher, tiny_space, tiny_splits, tmp_path):
        searcher.calibrate_alpha()
        path = save_checkpoint(searcher, tmp_path / "ck.npz")
        other = fresh_like(searcher, tiny_space, tiny_splits)
        load_checkpoint(other, path)
        assert other.hw_model.alpha == pytest.approx(searcher.hw_model.alpha)
        assert other._alpha_calibrated

    def test_resumed_step_matches_original(self, searcher, tiny_space, tiny_splits, tmp_path):
        """After restore, one identical deterministic step yields identical
        parameters (sampling noise aside: we drive both with equal samples)."""
        searcher.calibrate_alpha()
        path = save_checkpoint(searcher, tmp_path / "ck.npz")
        other = fresh_like(searcher, tiny_space, tiny_splits)
        load_checkpoint(other, path)
        x, y = tiny_splits.train.images[:8], tiny_splits.train.labels[:8]
        # Same seed-derived samplers -> identical Gumbel draws.
        loss_a = searcher.weight_step(x, y)
        loss_b = other.weight_step(x, y)
        assert loss_a == pytest.approx(loss_b)


class _KillAfter(Exception):
    pass


def _kill_after(epoch):
    def callback(record):
        if record.epoch == epoch:
            raise _KillAfter
    return callback


def _search_config(epochs=4):
    return EDDConfig(target="fpga_pipelined", epochs=epochs, batch_size=8,
                     arch_start_epoch=0, seed=0, resource_fraction=0.5)


class TestResumeEquivalence:
    """A search killed after epoch k and resumed must equal the straight run."""

    @pytest.fixture(scope="class")
    def full_result(self):
        # Built from scratch (not the function-scoped fixtures) so the
        # uninterrupted reference run is computed once per class; the task
        # construction is deterministic, so fixture-built splits are equal.
        from repro.data.synthetic import SyntheticTaskConfig, make_synthetic_task
        from repro.nas.space import SearchSpaceConfig

        space = SearchSpaceConfig.tiny()
        splits = make_synthetic_task(SyntheticTaskConfig(
            num_classes=4, image_size=8, train_per_class=8,
            val_per_class=4, test_per_class=4, seed=11,
        ))
        return EDDSearcher(space, splits, _search_config()).search(name="ref")

    def _killed_checkpoint(self, tiny_space, tiny_splits, tmp_path, kill_epoch):
        searcher = EDDSearcher(tiny_space, tiny_splits, _search_config())
        callback = CheckpointCallback(searcher, tmp_path / "ck", every=1)
        with pytest.raises(_KillAfter):
            searcher.search(name="ref",
                            callbacks=[callback, _kill_after(kill_epoch)])
        return find_latest_checkpoint(tmp_path / "ck")

    @pytest.mark.parametrize("kill_epoch", [0, 2])
    def test_resume_bit_identical(self, tiny_space, tiny_splits, tmp_path,
                                  full_result, kill_epoch):
        latest = self._killed_checkpoint(
            tiny_space, tiny_splits, tmp_path, kill_epoch
        )
        assert latest is not None
        resumed = EDDSearcher(tiny_space, tiny_splits, _search_config()).resume(
            latest, name="ref"
        )
        np.testing.assert_array_equal(resumed.theta, full_result.theta)
        np.testing.assert_array_equal(resumed.phi, full_result.phi)
        np.testing.assert_equal(  # NaN-aware exact equality
            [r.to_dict() for r in resumed.history],
            [r.to_dict() for r in full_result.history],
        )
        assert resumed.spec.summary() == full_result.spec.summary()
        assert resumed.parallel_factors == full_result.parallel_factors

    def test_resume_history_covers_whole_search(self, tiny_space, tiny_splits,
                                                tmp_path, full_result):
        latest = self._killed_checkpoint(tiny_space, tiny_splits, tmp_path, 1)
        resumed = EDDSearcher(tiny_space, tiny_splits, _search_config()).resume(
            latest, name="ref"
        )
        assert [r.epoch for r in resumed.history] == [
            r.epoch for r in full_result.history
        ]

    def test_api_level_resume(self, tmp_path):
        from repro import api

        ck = str(tmp_path / "api-ck")
        full = api.search(epochs=3, blocks=2, batch_size=8, seed=1)
        # Emulate an interruption by running only the first epoch.
        api.search(api.SearchRequest(epochs=1, blocks=2, batch_size=8, seed=1,
                                     checkpoint_dir=ck))
        resumed = api.search(
            api.SearchRequest(epochs=3, blocks=2, batch_size=8, seed=1,
                              checkpoint_dir=ck, resume=True)
        )
        assert resumed.resumed_from is not None
        np.testing.assert_array_equal(resumed.result.theta, full.result.theta)
        np.testing.assert_equal(
            [r.to_dict() for r in resumed.result.history],
            [r.to_dict() for r in full.result.history],
        )


class TestCheckpointCallback:
    def test_every_controls_cadence(self, searcher, tmp_path):
        config = _search_config(epochs=4)
        searcher = EDDSearcher(searcher.space, searcher.splits, config)
        callback = CheckpointCallback(searcher, tmp_path, every=2)
        searcher.search(name="cb", callbacks=[callback])
        names = sorted(p.name for p in callback.saved)
        assert names == ["ckpt-epoch-0002.npz", "ckpt-epoch-0004.npz"]

    def test_rejects_bad_every(self, searcher, tmp_path):
        with pytest.raises(ValueError):
            CheckpointCallback(searcher, tmp_path, every=0)

    def test_find_latest(self, tmp_path):
        assert find_latest_checkpoint(tmp_path / "missing") is None
        (tmp_path / "ckpt-epoch-0002.npz").touch()
        (tmp_path / "ckpt-epoch-0010.npz").touch()
        (tmp_path / "unrelated.npz").touch()
        # Unverified listing ranks purely by epoch number...
        latest = find_latest_checkpoint(tmp_path, verify=False)
        assert latest.name == "ckpt-epoch-0010.npz"
        # ...but the default verifying path refuses truncated corpses.
        assert find_latest_checkpoint(tmp_path) is None

    def test_checkpoint_path_format(self, tmp_path):
        assert checkpoint_path(tmp_path, 7).name == "ckpt-epoch-0007.npz"


class TestRestoreSearchState:
    def test_round_trips_epoch_and_history(self, searcher, tiny_space,
                                           tiny_splits, tmp_path):
        searcher.calibrate_alpha()
        x, y = tiny_splits.train.images[:8], tiny_splits.train.labels[:8]
        searcher.weight_step(x, y)
        from repro.core.results import EpochRecord

        record = EpochRecord(epoch=0, train_loss=1.0, val_acc_loss=2.0,
                             perf_loss=0.5, resource=10.0, total_loss=2.5,
                             temperature=5.0, theta_perplexity=2.0)
        path = save_checkpoint(searcher, tmp_path / "ck.npz", epoch=1,
                               history=[record])
        other = fresh_like(searcher, tiny_space, tiny_splits)
        state = restore_search_state(other, path)
        assert state.epoch == 1
        assert len(state.history) == 1
        assert state.history[0].to_dict() == record.to_dict()


class TestDurability:
    """Atomic writes, checksums, corruption fallback and pruning."""

    def test_truncated_file_is_typed_corrupt(self, searcher, tmp_path):
        from repro.core.checkpoint import verify_checkpoint
        from repro.resilience import CorruptCheckpoint

        path = save_checkpoint(searcher, tmp_path / "ck.npz")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CorruptCheckpoint) as err:
            verify_checkpoint(path)
        assert err.value.path == str(path)
        with pytest.raises(CorruptCheckpoint):
            load_checkpoint(searcher, path)

    def test_checksum_detects_bitrot(self, searcher, tmp_path):
        from repro.core.checkpoint import verify_checkpoint
        from repro.resilience import CorruptCheckpoint

        path = save_checkpoint(searcher, tmp_path / "ck.npz")
        with np.load(path) as data:
            payload = {key: data[key].copy() for key in data.files}
        # Flip stored state without refreshing the embedded checksum — the
        # on-disk signature of silent corruption.
        payload["meta::epoch"] = np.asarray(999)
        np.savez(path, **payload)
        with pytest.raises(CorruptCheckpoint, match="checksum mismatch"):
            verify_checkpoint(path)

    def test_version2_files_still_verify_and_load(self, searcher, tiny_space,
                                                  tiny_splits, tmp_path):
        from repro.core.checkpoint import verify_checkpoint

        path = save_checkpoint(searcher, tmp_path / "ck.npz", epoch=2)
        with np.load(path) as data:
            payload = {
                key: data[key].copy()
                for key in data.files
                if key != "meta::checksum"
            }
        payload["meta::format"] = np.asarray(2)
        np.savez(path, **payload)
        assert verify_checkpoint(path) == 2
        other = fresh_like(searcher, tiny_space, tiny_splits)
        assert load_checkpoint(other, path) == 2
        np.testing.assert_array_equal(other.supernet.theta.data,
                                      searcher.supernet.theta.data)

    def test_v3_without_checksum_is_corrupt(self, searcher, tmp_path):
        from repro.core.checkpoint import verify_checkpoint
        from repro.resilience import CorruptCheckpoint

        path = save_checkpoint(searcher, tmp_path / "ck.npz")
        with np.load(path) as data:
            payload = {
                key: data[key].copy()
                for key in data.files
                if key != "meta::checksum"
            }
        np.savez(path, **payload)
        with pytest.raises(CorruptCheckpoint, match="missing its checksum"):
            verify_checkpoint(path)

    def test_find_latest_falls_back_past_corrupt_newest(self, searcher,
                                                        tmp_path):
        save_checkpoint(searcher, checkpoint_path(tmp_path, 1), epoch=1)
        good = save_checkpoint(searcher, checkpoint_path(tmp_path, 2), epoch=2)
        corpse = checkpoint_path(tmp_path, 3)
        corpse.write_bytes(good.read_bytes()[:100])  # kill -9 mid-write corpse
        assert find_latest_checkpoint(tmp_path) == good
        assert find_latest_checkpoint(tmp_path, verify=False) == corpse

    def test_save_leaves_no_temp_files(self, searcher, tmp_path):
        save_checkpoint(searcher, checkpoint_path(tmp_path, 1), epoch=1)
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name != "ckpt-epoch-0001.npz"]
        assert leftovers == []

    def test_prune_removes_corpses_and_stale_temps(self, searcher, tmp_path):
        from repro.core.checkpoint import prune_corrupt_checkpoints

        good = save_checkpoint(searcher, checkpoint_path(tmp_path, 1), epoch=1)
        corpse = checkpoint_path(tmp_path, 2)
        corpse.write_bytes(b"not a zip")
        stale = tmp_path / ".ckpt-epoch-0003.npz.tmp-12345"
        stale.write_bytes(b"partial")
        removed = prune_corrupt_checkpoints(tmp_path)
        assert sorted(removed) == sorted([corpse, stale])
        assert good.exists()
        assert not corpse.exists() and not stale.exists()

    def test_callback_prunes_corpses_on_first_save(self, tiny_space,
                                                   tiny_splits, tmp_path):
        searcher = EDDSearcher(tiny_space, tiny_splits, _search_config(epochs=1))
        ckdir = tmp_path / "ck"
        ckdir.mkdir()
        corpse = ckdir / "ckpt-epoch-0009.npz"
        corpse.write_bytes(b"crashed run corpse")
        searcher.search(name="prune",
                        callbacks=[CheckpointCallback(searcher, ckdir)])
        assert not corpse.exists()
        latest = find_latest_checkpoint(ckdir)
        assert latest is not None and latest.name == "ckpt-epoch-0001.npz"

    def test_save_now_reuses_cadence_save(self, tiny_space, tiny_splits,
                                          tmp_path):
        searcher = EDDSearcher(tiny_space, tiny_splits, _search_config(epochs=2))
        callback = CheckpointCallback(searcher, tmp_path, every=1)
        searcher.search(name="now", callbacks=[callback])
        before = list(callback.saved)
        path = callback.save_now()  # epoch-2 save just happened: no new file
        assert path == before[-1]
        assert callback.saved == before

    def test_save_now_forces_between_cadence(self, tiny_space, tiny_splits,
                                             tmp_path):
        searcher = EDDSearcher(tiny_space, tiny_splits, _search_config(epochs=3))
        callback = CheckpointCallback(searcher, tmp_path, every=2)
        searcher.search(name="now", callbacks=[callback])
        # 3 epochs, every=2: only epoch-2 saved on cadence; epoch 3 pending.
        assert [p.name for p in callback.saved] == ["ckpt-epoch-0002.npz"]
        path = callback.save_now()
        assert path.name == "ckpt-epoch-0003.npz"
        state = restore_search_state(
            EDDSearcher(tiny_space, tiny_splits, _search_config(epochs=3)), path
        )
        assert state.epoch == 3
        assert [r.epoch for r in state.history] == [0, 1, 2]


class TestValidation:
    def test_wrong_space_rejected(self, searcher, tmp_path, tiny_splits):
        from repro.nas.space import SearchSpaceConfig

        path = save_checkpoint(searcher, tmp_path / "ck.npz")
        other_space = SearchSpaceConfig.reduced(num_blocks=3, num_classes=4,
                                                input_size=8)
        other = EDDSearcher(other_space, tiny_splits, searcher.config)
        with pytest.raises((ValueError, KeyError)):
            load_checkpoint(other, path)

    def test_creates_parent_dirs(self, searcher, tmp_path):
        path = save_checkpoint(searcher, tmp_path / "deep" / "dir" / "ck.npz")
        assert path.exists()
