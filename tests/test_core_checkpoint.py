"""Unit tests for search checkpoint/resume."""

import numpy as np
import pytest

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.config import EDDConfig
from repro.core.cosearch import EDDSearcher


@pytest.fixture
def searcher(tiny_space, tiny_splits):
    config = EDDConfig(target="fpga_pipelined", epochs=2, batch_size=8,
                       arch_start_epoch=0, seed=0, resource_fraction=0.5)
    return EDDSearcher(tiny_space, tiny_splits, config)


def fresh_like(searcher, tiny_space, tiny_splits):
    return EDDSearcher(tiny_space, tiny_splits, searcher.config)


class TestRoundTrip:
    def test_state_restores_exactly(self, searcher, tiny_space, tiny_splits, tmp_path):
        searcher.calibrate_alpha()
        x, y = tiny_splits.train.images[:8], tiny_splits.train.labels[:8]
        searcher.weight_step(x, y)
        searcher.arch_step(tiny_splits.val.images[:8], tiny_splits.val.labels[:8])
        path = save_checkpoint(searcher, tmp_path / "ck.npz", epoch=3)

        other = fresh_like(searcher, tiny_space, tiny_splits)
        # Perturb so the restore provably does something.
        other.supernet.theta.data += 1.0
        epoch = load_checkpoint(other, path)

        assert epoch == 3
        np.testing.assert_allclose(other.supernet.theta.data, searcher.supernet.theta.data)
        np.testing.assert_allclose(other.supernet.phi.data, searcher.supernet.phi.data)
        np.testing.assert_allclose(other.hw_model.pf.data, searcher.hw_model.pf.data)
        for a, b in zip(searcher.supernet.weight_parameters(),
                        other.supernet.weight_parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_optimizer_moments_restore(self, searcher, tiny_space, tiny_splits, tmp_path):
        searcher.calibrate_alpha()
        searcher.arch_step(tiny_splits.val.images[:8], tiny_splits.val.labels[:8])
        path = save_checkpoint(searcher, tmp_path / "ck.npz")
        other = fresh_like(searcher, tiny_space, tiny_splits)
        load_checkpoint(other, path)
        assert other.arch_optimizer._t == searcher.arch_optimizer._t
        for a, b in zip(searcher.arch_optimizer._m, other.arch_optimizer._m):
            np.testing.assert_allclose(a, b)
        for a, b in zip(searcher.weight_optimizer._velocity,
                        other.weight_optimizer._velocity):
            np.testing.assert_allclose(a, b)

    def test_alpha_restored(self, searcher, tiny_space, tiny_splits, tmp_path):
        searcher.calibrate_alpha()
        path = save_checkpoint(searcher, tmp_path / "ck.npz")
        other = fresh_like(searcher, tiny_space, tiny_splits)
        load_checkpoint(other, path)
        assert other.hw_model.alpha == pytest.approx(searcher.hw_model.alpha)
        assert other._alpha_calibrated

    def test_resumed_step_matches_original(self, searcher, tiny_space, tiny_splits, tmp_path):
        """After restore, one identical deterministic step yields identical
        parameters (sampling noise aside: we drive both with equal samples)."""
        searcher.calibrate_alpha()
        path = save_checkpoint(searcher, tmp_path / "ck.npz")
        other = fresh_like(searcher, tiny_space, tiny_splits)
        load_checkpoint(other, path)
        x, y = tiny_splits.train.images[:8], tiny_splits.train.labels[:8]
        # Same seed-derived samplers -> identical Gumbel draws.
        loss_a = searcher.weight_step(x, y)
        loss_b = other.weight_step(x, y)
        assert loss_a == pytest.approx(loss_b)


class TestValidation:
    def test_wrong_space_rejected(self, searcher, tmp_path, tiny_splits):
        from repro.nas.space import SearchSpaceConfig

        path = save_checkpoint(searcher, tmp_path / "ck.npz")
        other_space = SearchSpaceConfig.reduced(num_blocks=3, num_classes=4,
                                                input_size=8)
        other = EDDSearcher(other_space, tiny_splits, searcher.config)
        with pytest.raises((ValueError, KeyError)):
            load_checkpoint(other, path)

    def test_creates_parent_dirs(self, searcher, tmp_path):
        path = save_checkpoint(searcher, tmp_path / "deep" / "dir" / "ck.npz")
        assert path.exists()
