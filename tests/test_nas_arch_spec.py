"""Unit tests for the ArchSpec IR: geometry resolution, MACs, rendering."""

import numpy as np
import pytest

from repro.nas.arch_spec import (
    ArchSpec,
    Branches,
    ConvBlock,
    FCBlock,
    MBConvBlock,
    PoolBlock,
    SepConvBlock,
    ShuffleUnit,
    StemBlock,
    scale_spec,
)


def simple_spec():
    return ArchSpec(
        name="t",
        blocks=[
            StemBlock(out_ch=8, kernel=3, stride=2),
            MBConvBlock(expansion=2, kernel=3, out_ch=16, stride=2),
            FCBlock(out_features=10),
        ],
        input_size=16,
        input_channels=3,
    )


class TestGeometryResolution:
    def test_stem_halves_resolution(self):
        layers = simple_spec().layers()
        assert layers[0].out_h == 8

    def test_mbconv_expands_to_three_layers(self):
        layers = simple_spec().layers()
        mb = [l for l in layers if l.block_index == 1]
        assert [l.kind for l in mb] == ["conv", "dwconv", "conv"]
        assert mb[0].out_ch == 8 * 2      # expansion
        assert mb[1].stride == 2
        assert mb[2].out_ch == 16

    def test_channels_chain_through_blocks(self):
        layers = simple_spec().layers()
        for prev, nxt in zip(layers, layers[1:]):
            assert nxt.in_ch == prev.out_ch

    def test_odd_resolution_ceil(self):
        spec = ArchSpec("odd", [StemBlock(out_ch=4, stride=2), FCBlock(out_features=2)],
                        input_size=7, input_channels=1)
        assert spec.layers()[0].out_h == 4  # ceil(7/2)

    def test_sepconv_two_layers(self):
        spec = ArchSpec("s", [SepConvBlock(kernel=3, out_ch=8), FCBlock(out_features=2)],
                        input_size=8, input_channels=4)
        kinds = [l.kind for l in spec.layers()]
        assert kinds == ["dwconv", "conv", "fc"]


class TestMacsAndParams:
    def test_conv_macs_formula(self):
        spec = ArchSpec("c", [ConvBlock(out_ch=8, kernel=3)], input_size=4, input_channels=2)
        layer = spec.layers()[0]
        assert layer.macs == 9 * 4 * 4 * 2 * 8
        assert layer.params == 9 * 2 * 8

    def test_dwconv_macs_formula(self):
        spec = ArchSpec(
            "d", [SepConvBlock(kernel=3, out_ch=4)], input_size=4, input_channels=4
        )
        dw = spec.layers()[0]
        assert dw.macs == 9 * 4 * 4 * 4

    def test_fc_flatten_vs_gap(self):
        gap = ArchSpec("g", [ConvBlock(out_ch=8), FCBlock(out_features=10)],
                       input_size=4, input_channels=3)
        flat = ArchSpec("f", [ConvBlock(out_ch=8), FCBlock(out_features=10, flatten=True)],
                        input_size=4, input_channels=3)
        assert gap.layers()[-1].macs == 8 * 10
        assert flat.layers()[-1].macs == 8 * 4 * 4 * 10

    def test_pool_and_shuffle_zero_macs(self):
        spec = ArchSpec("p", [PoolBlock(), ShuffleUnit(out_ch=8, stride=2)],
                        input_size=8, input_channels=4)
        layers = spec.layers()
        assert layers[0].macs == 0
        assert [l for l in layers if l.kind == "shuffle"][0].macs == 0

    def test_total_macs_sums(self):
        spec = simple_spec()
        assert spec.total_macs() == sum(l.macs for l in spec.layers())


class TestBranches:
    def test_concat_sums_channels(self):
        block = Branches(
            branches=(
                (ConvBlock(out_ch=4, kernel=1),),
                (ConvBlock(out_ch=6, kernel=3),),
            ),
            combine="concat",
        )
        _, ch, h, w = block.expand(3, 8, 8, 0)
        assert ch == 10

    def test_add_keeps_channels(self):
        block = Branches(
            branches=(
                (ConvBlock(out_ch=4, kernel=3),),
                (ConvBlock(out_ch=4, kernel=1),),
            ),
            combine="add",
        )
        _, ch, _, _ = block.expand(3, 8, 8, 0)
        assert ch == 4

    def test_identity_branch(self):
        block = Branches(branches=((ConvBlock(out_ch=4, kernel=3),), ()), combine="add")
        _, ch, _, _ = block.expand(4, 8, 8, 0)
        assert ch == 4

    def test_add_mismatched_channels_raises(self):
        block = Branches(
            branches=((ConvBlock(out_ch=4),), (ConvBlock(out_ch=6),)), combine="add"
        )
        with pytest.raises(ValueError, match="share channel count"):
            block.expand(3, 8, 8, 0)

    def test_resolution_mismatch_raises(self):
        block = Branches(
            branches=((ConvBlock(out_ch=4, stride=2),), (ConvBlock(out_ch=4),)),
            combine="add",
        )
        with pytest.raises(ValueError, match="resolution"):
            block.expand(3, 8, 8, 0)

    def test_bad_combine_raises(self):
        block = Branches(branches=((),), combine="multiply")
        with pytest.raises(ValueError, match="combine"):
            block.expand(3, 8, 8, 0)


class TestScaleSpec:
    def test_width_multiplier_scales_channels(self):
        spec = simple_spec()
        scaled = scale_spec(spec, width_mult=0.5, min_ch=1)
        assert scaled.blocks[0].out_ch == 4
        assert scaled.blocks[1].out_ch == 8

    def test_min_channels_floor(self):
        scaled = scale_spec(simple_spec(), width_mult=0.01, min_ch=4)
        assert scaled.blocks[0].out_ch == 4

    def test_input_size_and_classes_override(self):
        scaled = scale_spec(simple_spec(), input_size=8, num_classes=5)
        assert scaled.input_size == 8
        assert scaled.blocks[-1].out_features == 5

    def test_name_annotated(self):
        assert "w0.5" in scale_spec(simple_spec(), width_mult=0.5).name


class TestRendering:
    def test_describe_contains_blocks(self):
        text = simple_spec().describe()
        assert "MB2 3x3" in text
        assert "GAP+FC" in text

    def test_summary_keys(self):
        summary = simple_spec().summary()
        assert set(summary) == {"name", "blocks", "layers", "macs", "params"}

    def test_has_kind(self):
        spec = ArchSpec("s", [ShuffleUnit(out_ch=8, stride=2), FCBlock(out_features=2)],
                        input_size=8, input_channels=4)
        assert spec.has_kind("shuffle")
        assert not simple_spec().has_kind("shuffle")
