"""Property-based tests (hypothesis) over randomly generated architectures
and search spaces — the invariants every valid spec/space must satisfy."""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nas.arch_spec import (
    ArchSpec,
    ConvBlock,
    FCBlock,
    MBConvBlock,
    PoolBlock,
    SepConvBlock,
    StemBlock,
)
from repro.nas.space import SearchSpaceConfig

channels = st.sampled_from([4, 8, 12, 16, 24])
kernels = st.sampled_from([1, 3, 5])
strides = st.sampled_from([1, 2])


@st.composite
def spatial_blocks(draw):
    kind = draw(st.sampled_from(["conv", "mb", "sep", "pool", "stem"]))
    if kind == "conv":
        return ConvBlock(out_ch=draw(channels), kernel=draw(kernels), stride=draw(strides))
    if kind == "mb":
        return MBConvBlock(
            expansion=draw(st.sampled_from([1, 2, 4])),
            kernel=draw(st.sampled_from([3, 5])),
            out_ch=draw(channels),
            stride=draw(strides),
        )
    if kind == "sep":
        return SepConvBlock(kernel=draw(st.sampled_from([3, 5])),
                            out_ch=draw(channels), stride=draw(strides))
    if kind == "pool":
        return PoolBlock(kernel=2, stride=2, mode=draw(st.sampled_from(["max", "avg"])))
    return StemBlock(out_ch=draw(channels), kernel=3, stride=draw(strides))


@st.composite
def random_specs(draw):
    blocks = draw(st.lists(spatial_blocks(), min_size=1, max_size=5))
    blocks.append(FCBlock(out_features=draw(st.sampled_from([2, 5, 10]))))
    return ArchSpec(
        name="random",
        blocks=blocks,
        input_size=draw(st.sampled_from([16, 24, 32])),
        input_channels=draw(st.sampled_from([1, 3])),
    )


@settings(max_examples=60, deadline=None)
@given(random_specs())
def test_property_geometry_chains(spec):
    """Consecutive resolved layers agree on channels; dims stay positive."""
    layers = spec.layers()
    assert layers
    for layer in layers:
        assert layer.out_h >= 1 and layer.out_w >= 1
        assert layer.in_ch >= 1 and layer.out_ch >= 1
        assert layer.macs >= 0 and layer.params >= 0
    for prev, nxt in zip(layers, layers[1:]):
        assert nxt.in_ch == prev.out_ch


@settings(max_examples=60, deadline=None)
@given(random_specs())
def test_property_totals_are_sums(spec):
    layers = spec.layers()
    assert spec.total_macs() == sum(l.macs for l in layers)
    assert spec.total_params() == sum(l.params for l in layers)
    assert spec.num_layers() == len(layers)


@settings(max_examples=40, deadline=None)
@given(random_specs(), st.floats(min_value=0.25, max_value=3.0))
def test_property_scaling_monotone(spec, mult):
    """Width scaling with mult >= 1 never shrinks MACs; <= 1 never grows
    them beyond rounding of the channel floor."""
    from repro.nas.arch_spec import scale_spec

    scaled = scale_spec(spec, width_mult=mult, min_ch=1)
    if mult >= 1.0:
        assert scaled.total_macs() >= spec.total_macs()


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=2, max_value=8),
    st.sampled_from([8, 12, 16]),
    st.booleans(),
)
def test_property_space_consistency(num_blocks, num_classes, input_size, allow_skip):
    """Any reduced space yields consistent geometry and assembles specs for
    every candidate at every position."""
    space = dataclasses.replace(
        SearchSpaceConfig.reduced(
            num_blocks=num_blocks, num_classes=num_classes, input_size=input_size,
        ),
        allow_skip=allow_skip,
    )
    geoms = space.block_geometries()
    assert len(geoms) == space.num_blocks
    for prev, nxt in zip(geoms, geoms[1:]):
        assert nxt.in_ch == prev.out_ch
    ops = space.candidate_ops()
    assert len(ops) == space.num_ops
    for op in ops:
        spec = space.spec_for_choices([op] * space.num_blocks)
        layers = spec.layers()
        assert layers[-1].out_ch == num_classes


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=10_000),
)
def test_property_workloads_positive_and_skip_cheapest(num_blocks, seed):
    """Every candidate workload is non-negative, and where depth search is
    on, skip is never more expensive than any MBConv candidate."""
    from repro.hw.fpga import candidate_workload

    space = dataclasses.replace(
        SearchSpaceConfig.reduced(num_blocks=num_blocks), allow_skip=True
    )
    ops = space.candidate_ops()
    for geom in space.block_geometries():
        costs = [candidate_workload(geom, op) for op in ops]
        assert all(c >= 0 for c in costs)
        assert costs[-1] <= min(costs[:-1])  # skip is last


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_constant_sample_rows_one_hot(seed):
    from repro.nas.quantization import QuantizationConfig
    from repro.nas.supernet import constant_sample

    rng = np.random.default_rng(seed)
    space = SearchSpaceConfig.tiny()
    quant = QuantizationConfig.fpga("per_block_op")
    op_idx = rng.integers(0, space.num_ops, size=space.num_blocks)
    bit_idx = rng.integers(0, quant.num_levels, size=(space.num_blocks, space.num_ops))
    sample = constant_sample(space, quant, [int(i) for i in op_idx], bit_idx)
    np.testing.assert_allclose(sample.op_weights.data.sum(axis=-1), 1.0)
    np.testing.assert_allclose(sample.quant_weights.data.sum(axis=-1), 1.0)
    assert sample.op_indices == [int(i) for i in op_idx]
