"""Serving frontend: BatchingQueue coalescing and InferenceServer round-trips."""

import threading
import time

import numpy as np
import pytest

from repro import api
from repro.baselines.model_zoo import get_model
from repro.nas.arch_spec import scale_spec
from repro.runtime import BatchingQueue, Engine, InferenceServer, compile_spec


def _tiny_engine() -> Engine:
    spec = scale_spec(
        get_model("MobileNet-V2", num_classes=4), width_mult=0.1,
        input_size=16, num_classes=4,
    )
    return Engine(compile_spec(spec, seed=0))


class TestBatchingQueue:
    def test_coalesces_pending_items(self):
        q = BatchingQueue(max_batch=8, max_wait_ms=50.0)
        for i in range(3):
            q.put(i)
        assert q.get_batch() == [0, 1, 2]

    def test_respects_max_batch(self):
        q = BatchingQueue(max_batch=2, max_wait_ms=50.0)
        for i in range(5):
            q.put(i)
        assert q.get_batch() == [0, 1]
        assert q.get_batch() == [2, 3]
        assert q.get_batch() == [4]

    def test_close_unblocks(self):
        q = BatchingQueue(max_batch=4, max_wait_ms=10.0)
        q.close()
        assert q.get_batch() == []
        assert q.get_batch() == []  # stays closed

    def test_wait_window_bounds_latency(self):
        q = BatchingQueue(max_batch=16, max_wait_ms=20.0)
        q.put("only")
        start = time.perf_counter()
        batch = q.get_batch()
        elapsed = time.perf_counter() - start
        assert batch == ["only"]
        assert elapsed < 1.0  # did not wait for a full batch

    def test_rejects_bad_max_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            BatchingQueue(max_batch=0)

    def test_put_after_close_fails_fast(self):
        q = BatchingQueue()
        q.close()
        with pytest.raises(RuntimeError, match="closed"):
            q.put("late")

    def test_drain_returns_items_stranded_behind_sentinel(self):
        # A put() racing close() can enqueue *after* the shutdown sentinel
        # (the _closing check is not atomic with the queue insert); simulate
        # the interleaving by inserting into the raw queue directly.
        q = BatchingQueue(max_wait_ms=1.0)
        q.put("served")
        q.close()
        q._queue.put("stranded-1")
        q._queue.put("stranded-2")
        assert q.get_batch() == ["served"]
        assert q.get_batch() == []  # sentinel: worker would exit here
        assert q.drain() == ["stranded-1", "stranded-2"]
        assert q.drain() == []

    def test_drain_skips_sentinels(self):
        q = BatchingQueue()
        q.put("a")
        q.close()
        q.close()
        assert q.drain() == ["a"]


class TestInferenceServer:
    def test_round_trip_matches_engine(self):
        engine = _tiny_engine()
        reference_engine = _tiny_engine()
        rng = np.random.default_rng(0)
        xs = [rng.normal(size=(3, 16, 16)) for _ in range(4)]
        expected = [reference_engine.run(x) for x in xs]
        with InferenceServer(engine, max_batch=4, max_wait_ms=20.0) as server:
            handles = [server.submit(x) for x in xs]
            results = [h.result(timeout=30.0) for h in handles]
        for got, want in zip(results, expected):
            np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-6)

    def test_requests_coalesce_into_batches(self):
        engine = _tiny_engine()
        with InferenceServer(engine, max_batch=8, max_wait_ms=100.0) as server:
            barrier = threading.Barrier(5)

            def fire(x):
                barrier.wait()
                return server.infer(x, timeout=30.0)

            rng = np.random.default_rng(1)
            threads = [
                threading.Thread(target=fire, args=(rng.normal(size=(3, 16, 16)),))
                for _ in range(4)
            ]
            for t in threads:
                t.start()
            barrier.wait()
            for t in threads:
                t.join(timeout=30.0)
            stats = server.stats()
        assert stats["requests"] == 4
        assert stats["batches"] <= 4
        assert stats["max_batch"] <= 8
        assert stats["latency_ms"]["p95"] >= stats["latency_ms"]["p50"]

    def test_handles_expose_latency_and_batch(self):
        with InferenceServer(_tiny_engine(), max_batch=2) as server:
            handle = server.submit(np.zeros((3, 16, 16)))
            handle.result(timeout=30.0)
            assert handle.latency_ms > 0
            assert 1 <= handle.batch_size <= 2

    def test_rejects_wrong_request_shape(self):
        with InferenceServer(_tiny_engine()) as server:
            with pytest.raises(ValueError, match="does not match plan input"):
                server.submit(np.zeros((3, 8, 8)))

    def test_engine_error_propagates_to_waiters(self):
        engine = _tiny_engine()

        def boom(x):
            raise RuntimeError("kaboom")

        engine.run = boom
        with InferenceServer(engine, max_wait_ms=5.0) as server:
            handle = server.submit(np.zeros((3, 16, 16)))
            with pytest.raises(RuntimeError, match="kaboom"):
                handle.result(timeout=30.0)

    def test_empty_stats(self):
        with InferenceServer(_tiny_engine()) as server:
            assert server.stats() == {"requests": 0, "batches": 0}

    def test_submit_after_close_fails_fast(self):
        server = InferenceServer(_tiny_engine())
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(np.zeros((3, 16, 16)))

    def test_close_fails_stranded_requests_instead_of_hanging(self):
        # Simulate a submit that raced close() past the sentinel: its future
        # must complete with a clean RuntimeError, not hang forever.
        from repro.runtime.serve import _PendingRequest, InferenceHandle

        server = InferenceServer(_tiny_engine())
        server.queue.close()  # sentinel goes in first...
        stranded = _PendingRequest(np.zeros((3, 16, 16)))
        server.queue._queue.put(stranded)  # ...request lands behind it
        server.close()
        handle = InferenceHandle(stranded)
        with pytest.raises(RuntimeError, match="closed before serving"):
            handle.result(timeout=1.0)


class TestServePlanFacade:
    def test_serve_plan_builds_working_server(self):
        with api.serve_plan(
            "MobileNet-V2", width_mult=0.1, input_size=16, num_classes=4,
            max_batch=4, max_wait_ms=5.0,
        ) as server:
            out = server.infer(np.zeros((3, 16, 16)), timeout=30.0)
            stats = server.stats()
        assert out.shape == (4,)
        assert stats["requests"] == 1
        assert stats["engine"]["runs"] >= 1

    def test_compile_model_facade(self):
        engine = api.compile_model(
            "MobileNet-V2", width_mult=0.1, input_size=16, num_classes=4,
        )
        out = engine.run(np.zeros((2, 3, 16, 16)))
        assert out.shape == (2, 4)

    def test_predicted_vs_measured_record(self):
        from repro.hw.report import predicted_vs_measured

        spec = get_model("MobileNet-V2")
        record = predicted_vs_measured(spec, "gpu", measured_ms=5.0)
        assert record["target"] == "gpu"
        assert record["measured_ms"] == 5.0
        assert record["predicted_ms"] is not None
        assert record["measured_over_predicted"] == pytest.approx(
            5.0 / record["predicted_ms"]
        )
