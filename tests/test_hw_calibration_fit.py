"""Refitting device calibration constants from serving measurements."""

import numpy as np
import pytest

from repro.baselines.model_zoo import get_model
from repro.hw.calibration import (
    append_serving_record,
    apply_fit,
    fit_calibration_scale,
    fit_from_serving_log,
    load_serving_log,
)
from repro.hw.report import predicted_vs_measured


def _records(scale_factor: float, n: int = 3) -> list[dict]:
    """Synthetic serving records whose measurements are the analytic
    prediction scaled by ``scale_factor`` (plus mild jitter)."""
    spec = get_model("ResNet18")
    rng = np.random.default_rng(0)
    records = []
    for _ in range(n):
        base = predicted_vs_measured(spec, "gpu", measured_ms=1.0, bits=32)
        jitter = float(rng.uniform(0.98, 1.02))
        base["measured_ms"] = base["predicted_ms"] * scale_factor * jitter
        base["measured_over_predicted"] = base["measured_ms"] / base["predicted_ms"]
        records.append(base)
    return records


def test_fit_recovers_scale_factor():
    fits = fit_calibration_scale(_records(2.5))
    assert len(fits) == 1
    fit = next(iter(fits.values()))
    assert fit.records == 3
    assert fit.ratio_geomean == pytest.approx(2.5, rel=0.05)
    assert fit.fitted_scale == pytest.approx(fit.current_scale * 2.5, rel=0.05)


def test_applied_fit_closes_the_gap():
    """Re-predicting with the refit device lands on the measurements."""
    from repro.hw.analytic import gpu_latency_ms
    from repro.hw.registry import get_device

    records = _records(3.0)
    fit = next(iter(fit_calibration_scale(records).values()))
    device = apply_fit(get_device(fit.device), fit)
    spec = get_model("ResNet18")
    new_predicted = gpu_latency_ms(spec, device, weight_bits=32)
    measured_gm = float(np.exp(np.mean([np.log(r["measured_ms"]) for r in records])))
    assert new_predicted == pytest.approx(measured_gm, rel=0.05)


def test_throughput_metric_scales_inversely():
    """Pipelined-FPS records: predicted_ms ∝ 1/scale, so the fit divides."""
    spec = get_model("VGG16")
    base = predicted_vs_measured(spec, "fpga_pipelined", measured_ms=1.0, bits=16)
    assert base["metric"] == "throughput_fps"
    base["measured_ms"] = base["predicted_ms"] * 2.0
    fit = next(iter(fit_calibration_scale([base]).values()))
    assert fit.fitted_scale == pytest.approx(fit.current_scale / 2.0, rel=1e-6)


def test_unusable_records_are_skipped():
    assert fit_calibration_scale([
        {"target": "gpu", "device": "Titan RTX", "predicted_ms": None,
         "measured_ms": 1.0},
        {"target": "gpu", "device": "Titan RTX", "measured_ms": 1.0},
    ]) == {}


def test_log_round_trip(tmp_path):
    path = tmp_path / "serving.jsonl"
    for record in _records(1.5, n=2):
        append_serving_record(path, record)
    assert len(load_serving_log(path)) == 2
    fits = fit_from_serving_log(path)
    assert next(iter(fits.values())).records == 2
