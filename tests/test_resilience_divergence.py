"""Divergence detection, checkpoint rollback and the rollback budget."""

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointCallback, find_latest_checkpoint
from repro.core.config import EDDConfig
from repro.core.cosearch import EDDSearcher
from repro.core.results import EpochRecord
from repro.resilience import DivergenceError, DivergenceGuard


def _config(epochs=4):
    return EDDConfig(target="fpga_pipelined", epochs=epochs, batch_size=8,
                     arch_start_epoch=0, seed=0, resource_fraction=0.5)


def _record(train_loss=1.0, total_loss=2.0, epoch=0):
    return EpochRecord(epoch=epoch, train_loss=train_loss, val_acc_loss=1.0,
                       perf_loss=0.5, resource=10.0, total_loss=total_loss,
                       temperature=5.0, theta_perplexity=2.0)


class _Param:
    def __init__(self, data):
        self.data = np.asarray(data)


class _StubSearcher:
    """Just enough searcher for check(): a supernet with named parameters."""

    def __init__(self, values=(1.0, 2.0)):
        self._params = [("block0.w", _Param(values))]
        self.supernet = self

    def named_parameters(self):
        return list(self._params)


class TestCheck:
    def test_healthy_record_passes(self, tmp_path):
        guard = DivergenceGuard(_StubSearcher(), tmp_path)
        assert guard.check(_record()) is None

    def test_nan_train_loss_detected(self, tmp_path):
        guard = DivergenceGuard(_StubSearcher(), tmp_path)
        assert "train loss" in guard.check(_record(train_loss=float("nan")))

    def test_warmup_nan_total_loss_is_benign(self, tmp_path):
        # Warm-up epochs skip the arch phase and record a NaN placeholder
        # total loss — only arch_ran=True treats it as divergence.
        guard = DivergenceGuard(_StubSearcher(), tmp_path)
        record = _record(total_loss=float("nan"))
        assert guard.check(record, arch_ran=False) is None
        assert "total loss" in guard.check(record, arch_ran=True)

    def test_nonfinite_parameter_detected(self, tmp_path):
        guard = DivergenceGuard(_StubSearcher(values=(1.0, float("inf"))),
                                tmp_path)
        assert "block0.w" in guard.check(_record())

    def test_param_scan_can_be_disabled(self, tmp_path):
        guard = DivergenceGuard(_StubSearcher(values=(float("nan"),)),
                                tmp_path, check_params=False)
        assert guard.check(_record()) is None


class TestValidation:
    def test_rejects_negative_budget(self, tmp_path):
        with pytest.raises(ValueError, match="max_rollbacks"):
            DivergenceGuard(_StubSearcher(), tmp_path, max_rollbacks=-1)

    @pytest.mark.parametrize("scale", [0.0, 1.0, 1.5])
    def test_rejects_bad_lr_scale(self, tmp_path, scale):
        with pytest.raises(ValueError, match="lr_scale"):
            DivergenceGuard(_StubSearcher(), tmp_path, lr_scale=scale)

    def test_recover_without_checkpoint_is_typed(self, tiny_space, tiny_splits,
                                                 tmp_path):
        searcher = EDDSearcher(tiny_space, tiny_splits, _config())
        guard = DivergenceGuard(searcher, tmp_path / "empty", max_rollbacks=3)
        with pytest.raises(DivergenceError, match="no verified checkpoint"):
            guard.recover(2, "non-finite train loss (nan)")


class TestEngineRollback:
    """End-to-end: NaN injection mid-search rolls back and completes."""

    def _run_with_poison(self, tiny_space, tiny_splits, tmp_path, *,
                         max_rollbacks, poison_every_epoch=False):
        searcher = EDDSearcher(tiny_space, tiny_splits, _config(epochs=4))
        ckdir = tmp_path / "ck"
        callback = CheckpointCallback(searcher, ckdir, every=1)
        guard = DivergenceGuard(searcher, ckdir, callback=callback,
                                max_rollbacks=max_rollbacks)
        guard.prepare()
        fired = []

        def poison(record):
            # Runs *after* this epoch's checkpoint save, so the saved state
            # is healthy and the NaNs surface in the next epoch's losses.
            if poison_every_epoch or (record.epoch == 1 and not fired):
                fired.append(record.epoch)
                searcher.supernet.theta.data[:] = np.nan

        result = searcher.search(name="dg", callbacks=[callback, poison],
                                 divergence_guard=guard)
        return searcher, guard, result

    def test_single_divergence_recovers_and_completes(self, tiny_space,
                                                      tiny_splits, tmp_path):
        searcher, guard, result = self._run_with_poison(
            tiny_space, tiny_splits, tmp_path, max_rollbacks=2
        )
        assert guard.rollbacks == 1
        assert [r.epoch for r in result.history] == [0, 1, 2, 3]
        assert all(np.isfinite(r.train_loss) for r in result.history)
        assert np.all(np.isfinite(result.theta))
        (intervention,) = guard.interventions
        assert intervention["action"] == "lr_scale"
        assert intervention["epoch"] == 2
        assert intervention["rollback_to"] == 2
        assert intervention["factor"] == 0.5
        assert "train loss" in intervention["reason"]

    def test_rollback_scales_both_learning_rates(self, tiny_space, tiny_splits,
                                                 tmp_path):
        probe = EDDSearcher(tiny_space, tiny_splits, _config(epochs=4))
        lr_w, lr_a = probe.weight_optimizer.lr, probe.arch_optimizer.lr
        searcher, guard, _ = self._run_with_poison(
            tiny_space, tiny_splits, tmp_path, max_rollbacks=2
        )
        assert searcher.weight_optimizer.lr == pytest.approx(lr_w * 0.5)
        assert searcher.arch_optimizer.lr == pytest.approx(lr_a * 0.5)
        assert guard.interventions[0]["lr_weights"] == pytest.approx(lr_w * 0.5)

    def test_persistent_divergence_exhausts_budget(self, tiny_space,
                                                   tiny_splits, tmp_path):
        with pytest.raises(DivergenceError) as err:
            self._run_with_poison(tiny_space, tiny_splits, tmp_path,
                                  max_rollbacks=1, poison_every_epoch=True)
        assert err.value.rollbacks == 1
        assert len(err.value.interventions) == 1
        assert "train loss" in err.value.reason

    def test_zero_budget_fails_on_first_divergence(self, tiny_space,
                                                   tiny_splits, tmp_path):
        with pytest.raises(DivergenceError) as err:
            self._run_with_poison(tiny_space, tiny_splits, tmp_path,
                                  max_rollbacks=0)
        assert err.value.rollbacks == 0
        assert err.value.interventions == []

    def test_post_rollback_checkpoints_stay_consistent(self, tiny_space,
                                                       tiny_splits, tmp_path):
        searcher, guard, result = self._run_with_poison(
            tiny_space, tiny_splits, tmp_path, max_rollbacks=2
        )
        latest = find_latest_checkpoint(tmp_path / "ck")
        assert latest.name == "ckpt-epoch-0004.npz"
        fresh = EDDSearcher(tiny_space, tiny_splits, _config(epochs=4))
        from repro.core.checkpoint import restore_search_state

        state = restore_search_state(fresh, latest)
        assert state.epoch == 4
        assert [r.epoch for r in state.history] == [0, 1, 2, 3]


class TestPrepare:
    def test_prepare_writes_baseline_once(self, tiny_space, tiny_splits,
                                          tmp_path):
        searcher = EDDSearcher(tiny_space, tiny_splits, _config())
        guard = DivergenceGuard(searcher, tmp_path)
        guard.prepare()
        baseline = find_latest_checkpoint(tmp_path)
        assert baseline.name == "ckpt-epoch-0000.npz"
        guard.prepare()  # idempotent: the existing file is kept
        assert find_latest_checkpoint(tmp_path) == baseline


class TestApiSurface:
    def test_healthy_run_reports_no_interventions(self):
        from repro import api

        report = api.search(epochs=2, blocks=2, batch_size=8, seed=3,
                            max_rollbacks=1)
        assert report.interventions == []
        assert report.to_dict()["interventions"] == []

    def test_request_validates_knobs(self):
        from repro import api

        with pytest.raises(ValueError):
            api.search(epochs=1, blocks=2, batch_size=8, max_rollbacks=-1)
