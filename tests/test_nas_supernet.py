"""Unit tests for the single-path supernet and joint sampling."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.nas.quantization import QuantizationConfig
from repro.nas.space import SearchSpaceConfig
from repro.nas.supernet import MBConvCandidate, SuperNet, constant_sample
from repro.nn.functional import cross_entropy


@pytest.fixture
def net(tiny_space, fpga_quant_per_block):
    return SuperNet(tiny_space, quant=fpga_quant_per_block, seed=0)


@pytest.fixture
def batch(tiny_space, rng):
    x = Tensor(rng.normal(size=(4, 3, tiny_space.input_size, tiny_space.input_size)))
    y = np.arange(4) % tiny_space.num_classes
    return x, y


class TestConstruction:
    def test_parameter_partition_disjoint_and_complete(self, net):
        arch = {id(p) for p in net.arch_parameters()}
        weights = {id(p) for p in net.weight_parameters()}
        everything = {id(p) for p in net.parameters()}
        assert arch & weights == set()
        assert arch | weights == everything
        assert len(arch) == 2  # theta + phi

    def test_theta_phi_shapes(self, net, tiny_space, fpga_quant_per_block):
        assert net.theta.shape == (tiny_space.num_blocks, tiny_space.num_ops)
        assert net.phi.shape == fpga_quant_per_block.phi_shape(
            tiny_space.num_blocks, tiny_space.num_ops
        )

    def test_initial_distributions_uniform(self, net, tiny_space):
        probs = net.theta_probabilities()
        np.testing.assert_allclose(probs, 1.0 / tiny_space.num_ops)
        np.testing.assert_allclose(net.phi_probabilities().sum(axis=-1), 1.0)

    def test_deterministic_weights_by_seed(self, tiny_space, fpga_quant_per_block):
        a = SuperNet(tiny_space, fpga_quant_per_block, seed=5)
        b = SuperNet(tiny_space, fpga_quant_per_block, seed=5)
        np.testing.assert_allclose(
            a.candidate(0, 0).expand.weight.data,
            b.candidate(0, 0).expand.weight.data,
        )

    def test_candidates_differ_across_ops(self, net, tiny_space):
        ops = tiny_space.candidate_ops()
        for m, op in enumerate(ops):
            cand = net.candidate(0, m)
            assert cand.op == op
            assert cand.dw.kernel_size == op.kernel


class TestSampling:
    def test_hard_sample_one_hot_rows(self, net, sampler):
        sample = net.sample(sampler, hard=True)
        np.testing.assert_allclose(sample.op_weights.data.sum(axis=-1), 1.0)
        assert sample.hard
        assert len(sample.op_indices) == net.space.num_blocks

    def test_soft_sample_distribution_rows(self, net, sampler):
        sample = net.sample(sampler, hard=False)
        assert not sample.hard
        assert np.all(sample.op_weights.data > 0)

    def test_quant_slice_shapes(self, net, sampler, fpga_quant_per_block):
        sample = net.sample(sampler)
        q = sample.quant_slice(0, 1)
        assert q.shape == (fpga_quant_per_block.num_levels,)

    def test_quant_slice_per_op_sharing(self, tiny_space, sampler):
        quant = QuantizationConfig.fpga(sharing="per_op")
        net = SuperNet(tiny_space, quant, seed=0)
        sample = net.sample(sampler)
        a = sample.quant_slice(0, 1)
        b = sample.quant_slice(1, 1)
        np.testing.assert_allclose(a.data, b.data)  # shared across blocks

    def test_quant_indices_shape(self, net, sampler):
        sample = net.sample(sampler)
        assert sample.quant_indices().shape == net.phi.shape[:-1]


class TestForward:
    def test_forward_shapes(self, net, sampler, batch, tiny_space):
        x, _ = batch
        logits = net(x, sample=net.sample(sampler))
        assert logits.shape == (4, tiny_space.num_classes)

    def test_forward_via_sampler_argument(self, net, sampler, batch):
        x, _ = batch
        assert net(x, sampler=sampler).shape[0] == 4

    def test_forward_requires_sample_or_sampler(self, net, batch):
        with pytest.raises(ValueError, match="SampledArch"):
            net(batch[0])

    def test_hard_forward_gradients_reach_weights(self, net, sampler, batch):
        x, y = batch
        sample = net.sample(sampler, hard=True)
        loss = cross_entropy(net(x, sample=sample), y)
        loss.backward()
        m = sample.op_indices[0]
        assert net.candidate(0, m).expand.weight.grad is not None

    def test_soft_forward_gradients_reach_theta_strongly(self, net, sampler, batch):
        x, y = batch
        sample = net.sample(sampler, hard=False)
        cross_entropy(net(x, sample=sample), y).backward()
        assert np.abs(net.theta.grad).sum() > 1e-5
        assert net.phi.grad is not None

    def test_soft_and_hard_agree_at_peaked_theta(self, tiny_space, sampler, rng):
        """With near-deterministic logits both modes compute the same net."""
        quant = QuantizationConfig.fpga(sharing="per_block_op")
        net = SuperNet(tiny_space, quant, seed=1)
        net.theta.data[:, 0] = 60.0   # op 0 with overwhelming probability
        net.phi.data[..., -1] = 60.0  # 16-bit everywhere
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        net.eval()
        hard = net(x, sample=net.sample(sampler, hard=True))
        soft = net(x, sample=net.sample(sampler, hard=False))
        np.testing.assert_allclose(hard.data, soft.data, atol=1e-2)


class TestCandidate:
    def test_residual_applied_when_shapes_match(self, rng):
        from repro.nas.space import CandidateOp

        cand = MBConvCandidate(8, 8, 1, CandidateOp(3, 2), None, rng)
        assert cand.use_residual
        cand_stride = MBConvCandidate(8, 8, 2, CandidateOp(3, 2), None, rng)
        assert not cand_stride.use_residual
        cand_channels = MBConvCandidate(8, 16, 1, CandidateOp(3, 2), None, rng)
        assert not cand_channels.use_residual

    def test_candidate_output_shape(self, rng):
        from repro.nas.space import CandidateOp

        cand = MBConvCandidate(4, 6, 2, CandidateOp(5, 3), None, rng)
        out = cand(Tensor(rng.normal(size=(2, 4, 8, 8))))
        assert out.shape == (2, 6, 4, 4)

    def test_quantized_forward_differs_from_float(self, rng):
        from repro.nas.space import CandidateOp

        quant = QuantizationConfig.fpga()
        cand = MBConvCandidate(4, 4, 1, CandidateOp(3, 2), quant, rng)
        cand.eval()
        x = Tensor(rng.normal(size=(1, 4, 6, 6)))
        float_out = cand(x, quant_weights=None)
        low_bit = Tensor(np.array([1.0, 0.0, 0.0]))  # 4-bit path
        quant_out = cand(x, quant_weights=low_bit)
        assert not np.allclose(float_out.data, quant_out.data)


class TestConstantSample:
    def test_one_hot_layout(self, tiny_space, fpga_quant_per_block):
        sample = constant_sample(
            tiny_space, fpga_quant_per_block, [0] * tiny_space.num_blocks, 1
        )
        np.testing.assert_allclose(sample.op_weights.data.sum(axis=-1), 1.0)
        np.testing.assert_allclose(sample.quant_weights.data.sum(axis=-1), 1.0)
        assert sample.quant_weights.data[..., 1].min() == 1.0

    def test_no_quant_mode(self, tiny_space):
        sample = constant_sample(tiny_space, None, [0] * tiny_space.num_blocks)
        assert sample.sharing == "global"

    def test_wrong_length_raises(self, tiny_space, fpga_quant_per_block):
        with pytest.raises(ValueError, match="op indices"):
            constant_sample(tiny_space, fpga_quant_per_block, [0], 0)
