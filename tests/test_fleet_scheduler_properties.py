"""Property tests for FleetScheduler under a deterministic fake clock.

Hypothesis drives randomized submit/advance/dequeue interleavings against a
transparent mirror model of the scheduler's contract:

* **global FIFO fairness** — ``next_batch`` always serves the model whose
  head request has waited longest (ties broken by registration order,
  matching dict iteration);
* **bounded admission** — ``QueueFull`` fires exactly when a model's queue
  holds ``max_queue`` requests, never earlier, never later;
* **deadline shed ordering** — the live/shed split preserves arrival order
  and classifies each popped request exactly by ``now >= deadline``;
* **conservation** — ``accepted == completed + shed + queued`` after every
  single operation (the scheduler neither invents nor loses requests).

Time only moves when the test advances the
:class:`~repro.runtime.fleet.testing.FakeClock`, so deadline expiry is a
pure function of the generated script — every failure reproduces.
"""

import threading

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.fleet import FleetScheduler, QueueFull
from repro.runtime.fleet.requests import _FleetRequest
from repro.runtime.fleet.testing import FakeClock

MODELS = ("m0", "m1", "m2")
MAX_QUEUE = 3
MAX_BATCH = 2

_submit = st.tuples(
    st.just("submit"),
    st.integers(min_value=0, max_value=len(MODELS) - 1),
    st.one_of(
        st.none(),
        st.floats(min_value=1.0, max_value=50.0, allow_nan=False),
    ),
)
_advance = st.tuples(
    st.just("advance"),
    st.floats(min_value=0.0, max_value=0.08, allow_nan=False),
)
_dequeue = st.tuples(st.just("dequeue"))
_ops = st.lists(
    st.one_of(_submit, _advance, _dequeue), min_size=1, max_size=80
)


@given(ops=_ops)
@settings(max_examples=120, deadline=None)
def test_scheduler_contract_under_random_interleavings(ops):
    """FIFO pick, QueueFull timing, shed split and conservation all hold."""
    with FakeClock() as fake:
        scheduler = FleetScheduler(max_queue=MAX_QUEUE, max_batch=MAX_BATCH)
        for model in MODELS:
            scheduler.add_model(model)
        mirror = {model: [] for model in MODELS}  # FIFO of live requests
        accepted = completed = shed = 0
        sample = np.zeros(1)
        for op in ops:
            if op[0] == "submit":
                model = MODELS[op[1]]
                request = _FleetRequest(model, sample, deadline_ms=op[2])
                if len(mirror[model]) >= MAX_QUEUE:
                    try:
                        scheduler.submit(request)
                        raise AssertionError(
                            f"queue for {model} at {MAX_QUEUE} accepted more"
                        )
                    except QueueFull:
                        pass
                else:
                    scheduler.submit(request)
                    mirror[model].append(request)
                    accepted += 1
            elif op[0] == "advance":
                fake.advance(op[1])
            else:  # dequeue — only meaningful with work pending
                if not any(mirror.values()):
                    continue
                # Expected pick: oldest head; ties go to the model
                # registered first (dict order), mirroring the strict `<`.
                expect_model = min(
                    (m for m in MODELS if mirror[m]),
                    key=lambda m: (mirror[m][0].enqueued_at, MODELS.index(m)),
                )
                expect_pop = mirror[expect_model][:MAX_BATCH]
                now = fake.now()
                expect_live = [r for r in expect_pop if not r.expired(now)]
                expect_shed = [r for r in expect_pop if r.expired(now)]
                model, live, shed_out = scheduler.next_batch()
                assert model == expect_model
                assert live == expect_live  # arrival order preserved
                assert shed_out == expect_shed
                del mirror[model][:len(live) + len(shed_out)]
                completed += len(live)
                shed += len(shed_out)
            queued = sum(len(queue) for queue in mirror.values())
            assert accepted == completed + shed + queued
            assert scheduler.depths() == {
                m: len(mirror[m]) for m in MODELS
            }


@given(
    deadline_ms=st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
    margin=st.floats(min_value=1e-6, max_value=0.5, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_deadline_expiry_is_exact_under_fake_clock(deadline_ms, margin):
    """A request sheds iff the clock passes enqueue + deadline, exactly."""
    with FakeClock() as fake:
        request = _FleetRequest("m", np.zeros(1), deadline_ms=deadline_ms)
        assert not request.expired()
        # One tick before the deadline: still live.
        before = request.deadline_at - fake.now() - 1e-9
        if before > 0:
            fake.advance(before)
            assert not request.expired()
        fake.advance(request.deadline_at - fake.now() + margin)
        assert request.expired()


def test_scheduler_conserves_requests_under_real_concurrency():
    """Threads hammer submit while consumers drain: nothing lost/invented."""
    scheduler = FleetScheduler(max_queue=64, max_batch=4)
    for model in MODELS:
        scheduler.add_model(model)
    per_thread = 50
    accepted = []
    rejected = []
    served = []
    lock = threading.Lock()
    stop = threading.Event()

    def producer(model):
        sample = np.zeros(1)
        count = full = 0
        for _ in range(per_thread):
            try:
                scheduler.submit(_FleetRequest(model, sample))
                count += 1
            except QueueFull:
                full += 1
        with lock:
            accepted.append(count)
            rejected.append(full)

    def consumer():
        count = 0
        while not stop.is_set():
            picked = scheduler.next_batch()
            if picked is None:
                break
            _, live, shed_out = picked
            count += len(live) + len(shed_out)
        with lock:
            served.append(count)

    producers = [
        threading.Thread(target=producer, args=(model,)) for model in MODELS
    ]
    consumers = [threading.Thread(target=consumer) for _ in range(2)]
    for thread in consumers + producers:
        thread.start()
    for thread in producers:
        thread.join()
    # Let consumers drain what remains, then close to release them.
    deadline = 5.0
    import time
    end = time.monotonic() + deadline
    while sum(scheduler.depths().values()) and time.monotonic() < end:
        time.sleep(0.002)
    stop.set()
    scheduler.close()
    for thread in consumers:
        thread.join(5.0)
    leftovers = len(scheduler.drain())
    assert sum(accepted) + sum(rejected) == per_thread * len(MODELS)
    assert sum(served) + leftovers == sum(accepted)
