"""Unit tests for EDDConfig validation and the Eq. 1 loss composition."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.core.config import EDDConfig
from repro.core.loss import additive_loss, combined_loss
from repro.hw.base import HwEvaluation


def make_eval(perf=2.0, res=50.0):
    return HwEvaluation(
        perf_loss=Tensor(np.asarray(perf), requires_grad=True),
        resource=Tensor(np.asarray(res), requires_grad=True),
    )


class TestEDDConfig:
    def test_defaults_valid(self):
        cfg = EDDConfig()
        assert cfg.target == "gpu"

    @pytest.mark.parametrize(
        "target", ["gpu", "fpga_recursive", "fpga_pipelined", "accel"]
    )
    def test_all_targets_accepted(self, target):
        assert EDDConfig(target=target).target == target

    def test_invalid_target(self):
        with pytest.raises(ValueError, match="target"):
            EDDConfig(target="tpu")

    def test_invalid_epochs(self):
        with pytest.raises(ValueError, match="epochs"):
            EDDConfig(epochs=0)

    def test_invalid_resource_fraction(self):
        with pytest.raises(ValueError, match="resource_fraction"):
            EDDConfig(resource_fraction=1.5)

    def test_invalid_arch_start(self):
        with pytest.raises(ValueError, match="arch_start_epoch"):
            EDDConfig(arch_start_epoch=-1)


class TestCombinedLoss:
    def test_eq1_multiplicative_at_bound(self):
        """L = Acc*Perf + beta*C^0 at RES == RES_ub."""
        acc = Tensor(np.asarray(0.7))
        out = combined_loss(acc, make_eval(perf=2.0, res=100.0), 100.0, beta=0.5)
        np.testing.assert_allclose(float(out.data), 0.7 * 2.0 + 0.5)

    def test_no_bound_drops_penalty(self):
        acc = Tensor(np.asarray(0.7))
        out = combined_loss(acc, make_eval(perf=2.0), None)
        np.testing.assert_allclose(float(out.data), 1.4)

    def test_gradient_coupling(self):
        """The multiplicative form scales acc gradients by perf and vice versa."""
        acc = Tensor(np.asarray(0.7), requires_grad=True)
        ev = make_eval(perf=3.0, res=10.0)
        combined_loss(acc, ev, None).backward()
        np.testing.assert_allclose(acc.grad, 3.0)
        np.testing.assert_allclose(ev.perf_loss.grad, 0.7)

    def test_penalty_gradient_reaches_resource(self):
        acc = Tensor(np.asarray(0.7))
        ev = make_eval(perf=1.0, res=150.0)
        combined_loss(acc, ev, 100.0).backward()
        assert ev.resource.grad > 0

    def test_additive_variant(self):
        acc = Tensor(np.asarray(0.7))
        out = additive_loss(acc, make_eval(perf=2.0, res=100.0), 100.0,
                            perf_weight=0.1, beta=0.5)
        np.testing.assert_allclose(float(out.data), 0.7 + 0.2 + 0.5)
