"""Unit tests for the search-space configuration."""

import pytest

from repro.nas.arch_spec import MBConvBlock
from repro.nas.space import CandidateOp, SearchSpaceConfig


class TestPaperScale:
    def test_paper_dimensions(self):
        space = SearchSpaceConfig.paper_scale()
        assert space.num_blocks == 20  # N = 20 (Sec. 6)
        assert space.num_ops == 9      # M = 3 kernels x 3 expansions

    def test_candidate_menu(self):
        space = SearchSpaceConfig.paper_scale()
        ops = space.candidate_ops()
        assert len(ops) == 9
        assert CandidateOp(kernel=3, expansion=4) in ops
        assert CandidateOp(kernel=7, expansion=6) in ops
        kernels = {op.kernel for op in ops}
        expansions = {op.expansion for op in ops}
        assert kernels == {3, 5, 7}
        assert expansions == {4, 5, 6}

    def test_label(self):
        assert CandidateOp(kernel=5, expansion=4).label == "MB4 5x5"


class TestGeometry:
    def test_block_geometries_walk_strides(self):
        space = SearchSpaceConfig.reduced(num_blocks=4, input_size=16)
        geoms = space.block_geometries()
        assert len(geoms) == 4
        # Stem halves 16 -> 8; the middle block halves again.
        assert geoms[0].in_h == 8
        strided = [g for g in geoms if g.stride == 2]
        assert len(strided) == 1
        assert strided[0].out_h == 4

    def test_geometry_channels_chain(self):
        space = SearchSpaceConfig.reduced(num_blocks=3)
        geoms = space.block_geometries()
        for prev, nxt in zip(geoms, geoms[1:]):
            assert nxt.in_ch == prev.out_ch

    def test_block_input_channels(self):
        space = SearchSpaceConfig.reduced(num_blocks=3)
        inputs = space.block_input_channels()
        assert inputs[0] == space.pre_block_channels
        assert inputs[1:] == list(space.block_channels[:-1])


class TestSpecAssembly:
    def test_spec_for_choices_structure(self):
        space = SearchSpaceConfig.tiny()
        ops = space.candidate_ops()
        spec = space.spec_for_choices([ops[0]] * space.num_blocks, name="x")
        mb_blocks = [b for b in spec.blocks if isinstance(b, MBConvBlock)]
        assert len(mb_blocks) == space.num_blocks
        assert spec.blocks[0].out_ch == space.stem_channels

    def test_spec_channels_match_schedule(self):
        space = SearchSpaceConfig.tiny()
        ops = space.candidate_ops()
        spec = space.spec_for_choices([ops[1]] * space.num_blocks)
        mb_blocks = [b for b in spec.blocks if isinstance(b, MBConvBlock)]
        assert tuple(b.out_ch for b in mb_blocks) == space.block_channels

    def test_wrong_choice_count_raises(self):
        space = SearchSpaceConfig.tiny()
        with pytest.raises(ValueError, match="choices"):
            space.spec_for_choices([space.candidate_ops()[0]])


class TestValidation:
    def test_mismatched_schedules_raise(self):
        with pytest.raises(ValueError, match="same length"):
            SearchSpaceConfig(block_channels=(8, 16), block_strides=(1,))

    def test_empty_menu_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            SearchSpaceConfig(kernel_sizes=(), expansions=(4,))

    def test_reduced_is_consistent(self):
        space = SearchSpaceConfig.reduced(num_blocks=5, num_classes=7)
        assert space.num_blocks == 5
        assert space.num_classes == 7
        assert len(space.block_geometries()) == 5
