"""Unit tests for architecture derivation and network building."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.nas.derive import chosen_bitwidths, chosen_ops, derive_arch_spec
from repro.nas.network import build_network
from repro.nas.quantization import QuantizationConfig
from repro.nas.space import SearchSpaceConfig
from repro.nas.supernet import SuperNet
from repro.nn.functional import cross_entropy
from repro.nn.optim import SGD


class TestChosenOps:
    def test_argmax_selection(self, tiny_space):
        theta = np.zeros((tiny_space.num_blocks, tiny_space.num_ops))
        theta[0, 2] = 5.0
        theta[1, 1] = 5.0
        ops = chosen_ops(theta, tiny_space)
        menu = tiny_space.candidate_ops()
        assert ops[0] == menu[2]
        assert ops[1] == menu[1]

    def test_shape_mismatch_raises(self, tiny_space):
        with pytest.raises(ValueError, match="theta shape"):
            chosen_ops(np.zeros((1, 1)), tiny_space)


class TestChosenBitwidths:
    def test_per_block_op_phi(self):
        phi = np.zeros((2, 3, 3))
        phi[0, 1, 2] = 5.0  # block 0, op 1 -> index 2
        phi[1, 0, 0] = 5.0  # block 1, op 0 -> index 0
        bits = chosen_bitwidths(phi, (4, 8, 16), np.array([1, 0]))
        assert bits == [16, 4]

    def test_per_op_phi(self):
        phi = np.zeros((3, 3))
        phi[2, 1] = 5.0
        bits = chosen_bitwidths(phi, (4, 8, 16), np.array([2, 2]))
        assert bits == [8, 8]

    def test_global_phi(self):
        phi = np.array([0.0, 9.0, 0.0])
        assert chosen_bitwidths(phi, (8, 16, 32), np.array([0, 1, 2])) == [16, 16, 16]


class TestDeriveFromSupernet:
    def test_derivation_respects_theta(self, tiny_space, fpga_quant_per_block):
        net = SuperNet(tiny_space, fpga_quant_per_block, seed=0)
        net.theta.data[:, 3] = 10.0
        spec = derive_arch_spec(net, name="derived")
        menu = tiny_space.candidate_ops()
        assert all(label == menu[3].label for label in spec.metadata["op_labels"])

    def test_bits_annotated(self, tiny_space, fpga_quant_per_block):
        net = SuperNet(tiny_space, fpga_quant_per_block, seed=0)
        net.phi.data[..., 0] = 10.0  # force 4-bit
        spec = derive_arch_spec(net)
        assert spec.metadata["block_bits"] == [4] * tiny_space.num_blocks
        assert spec.metadata["activation_bits"] == 16

    def test_gpu_global_bits(self, tiny_space, gpu_quant):
        net = SuperNet(tiny_space, gpu_quant, seed=0)
        net.phi.data[1] = 10.0  # 16-bit globally
        spec = derive_arch_spec(net)
        assert spec.weight_bits == 16

    def test_no_quant_supernet(self, tiny_space):
        net = SuperNet(tiny_space, quant=None, seed=0)
        spec = derive_arch_spec(net)
        assert "block_bits" not in spec.metadata


class TestBuildNetwork:
    def test_forward_shape(self, tiny_space, sampler):
        net = SuperNet(tiny_space, QuantizationConfig.fpga(), seed=0)
        spec = derive_arch_spec(net)
        built = build_network(spec, seed=1)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 8, 8)))
        assert built(x).shape == (2, tiny_space.num_classes)

    def test_quantized_forward_differs(self, tiny_space):
        net = SuperNet(tiny_space, QuantizationConfig.fpga(), seed=0)
        spec = derive_arch_spec(net)
        built = build_network(spec, seed=1)
        built.eval()
        x = Tensor(np.random.default_rng(0).normal(size=(1, 3, 8, 8)))
        full = built(x, bits=32)
        low = built(x, bits=4)
        assert not np.allclose(full.data, low.data)

    def test_training_reduces_loss(self, tiny_space, tiny_splits):
        net = SuperNet(tiny_space, QuantizationConfig.fpga(), seed=0)
        spec = derive_arch_spec(net)
        built = build_network(spec, seed=2)
        opt = SGD(built.parameters(), lr=0.05, momentum=0.9)
        x = Tensor(tiny_splits.train.images[:16])
        y = tiny_splits.train.labels[:16]
        losses = []
        for _ in range(8):
            opt.zero_grad()
            loss = cross_entropy(built(x), y)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_zoo_spec_buildable_when_scaled(self):
        from repro.baselines.model_zoo import mobilenet_v2
        from repro.nas.arch_spec import scale_spec

        spec = scale_spec(mobilenet_v2(), width_mult=0.1, input_size=16, num_classes=4)
        built = build_network(spec, seed=0)
        x = Tensor(np.random.default_rng(1).normal(size=(1, 3, 16, 16)))
        assert built(x).shape == (1, 4)

    def test_unbuildable_block_raises(self):
        from repro.nas.arch_spec import ArchSpec, FCBlock, ShuffleUnit

        spec = ArchSpec(
            "s", [ShuffleUnit(out_ch=8, stride=2), FCBlock(out_features=2)],
            input_size=8, input_channels=4,
        )
        with pytest.raises(TypeError, match="cannot instantiate"):
            build_network(spec)  # channel shuffle has no builder unit

    def test_missing_classifier_raises(self):
        from repro.nas.arch_spec import ArchSpec, ConvBlock

        with pytest.raises(ValueError, match="FCBlock"):
            build_network(ArchSpec("x", [ConvBlock(out_ch=4)], input_size=8))

    def test_branches_and_fc_chain_families_build(self, rng):
        """ResNet (add-branches), GoogleNet (concat), VGG (FC chain) all
        instantiate and backprop after scaling."""
        from repro.baselines.model_zoo import googlenet, resnet18, vgg16
        from repro.nas.arch_spec import scale_spec

        for fn, width in ((resnet18, 0.06), (vgg16, 0.05), (googlenet, 0.05)):
            spec = scale_spec(fn(), width_mult=width, input_size=32, num_classes=4)
            net = build_network(spec, seed=0)
            out = net(Tensor(np.random.default_rng(0).normal(size=(2, 3, 32, 32))))
            assert out.shape == (2, 4)
            out.sum().backward()
            assert net.classifier.weight.grad is not None
