"""Unit tests for the regularized-evolution baseline."""

import numpy as np
import pytest

from repro.baselines.evolutionary import Genome, RegularizedEvolution
from repro.core.config import EDDConfig


@pytest.fixture
def evolution(tiny_space, tiny_splits):
    return RegularizedEvolution(
        tiny_space, tiny_splits,
        EDDConfig(target="fpga_pipelined", batch_size=8, resource_fraction=0.5),
        population_size=3, tournament_size=2, train_epochs=1, seed=0,
    )


class TestGenetics:
    def test_random_genome_in_bounds(self, evolution, tiny_space):
        g = evolution.random_genome()
        assert g.ops.shape == (tiny_space.num_blocks,)
        assert np.all((0 <= g.ops) & (g.ops < tiny_space.num_ops))
        assert np.all((0 <= g.bits) & (g.bits < evolution.quant.num_levels))

    def test_mutation_changes_exactly_one_gene(self, evolution):
        g = evolution.random_genome()
        child = evolution.mutate(g)
        diff = int(np.sum(g.ops != child.ops)) + int(np.sum(g.bits != child.bits))
        assert diff == 1

    def test_mutation_does_not_alias_parent(self, evolution):
        g = evolution.random_genome()
        child = evolution.mutate(g)
        child.ops[0] = 99
        assert g.ops[0] != 99

    def test_copy_is_deep(self):
        g = Genome(np.array([0, 1]), np.array([2, 0]))
        c = g.copy()
        c.ops[0] = 5
        assert g.ops[0] == 0


class TestEvaluation:
    def test_individual_fields(self, evolution):
        ind = evolution.evaluate(evolution.random_genome())
        assert ind.fitness > 0
        assert ind.perf_loss > 0
        assert 0 <= ind.top1_error <= 100
        assert ind.spec.metadata["op_labels"]
        assert ind.spec.metadata["block_bits"]

    def test_resource_violation_penalised(self, evolution, tiny_space):
        genome = Genome(
            ops=np.zeros(tiny_space.num_blocks, dtype=int),
            bits=np.full(tiny_space.num_blocks, 2, dtype=int),  # 16-bit
        )
        base = evolution.evaluate(genome)
        # Force an artificial violation by shrinking the bound.
        evolution.hw_model.resource_bound = base.resource / 10.0
        violated = evolution.evaluate(genome)
        assert violated.fitness > base.fitness

    def test_bit_mapping_per_sharing(self, tiny_space, tiny_splits):
        evo = RegularizedEvolution(
            tiny_space, tiny_splits,
            EDDConfig(target="fpga_recursive", batch_size=8),
            population_size=2, tournament_size=1, train_epochs=1, seed=0,
        )
        genome = evo.random_genome()
        idx = evo._bit_indices_for_sample(genome)
        assert idx.shape == (tiny_space.num_ops,)

        evo_gpu = RegularizedEvolution(
            tiny_space, tiny_splits, EDDConfig(target="gpu", batch_size=8),
            population_size=2, tournament_size=1, train_epochs=1, seed=0,
        )
        assert isinstance(evo_gpu._bit_indices_for_sample(genome), int)


class TestRun:
    def test_population_evolves(self, evolution):
        result = evolution.run(cycles=3)
        assert result.evaluations == 3 + 3  # init + cycles
        assert len(result.history) == 4
        assert result.best.fitness == min(result.history[-1], result.best.fitness)

    def test_best_fitness_never_worsens(self, evolution):
        result = evolution.run(cycles=3)
        # History tracks the population best; with aging it may fluctuate,
        # but the reported best must be the minimum seen in the final pool.
        assert result.best.fitness <= result.history[-1] + 1e-12

    def test_validation(self, tiny_space, tiny_splits):
        with pytest.raises(ValueError, match="population_size"):
            RegularizedEvolution(tiny_space, tiny_splits, population_size=1)
        with pytest.raises(ValueError, match="tournament_size"):
            RegularizedEvolution(tiny_space, tiny_splits,
                                 population_size=3, tournament_size=5)
