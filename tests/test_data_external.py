"""Unit tests for bring-your-own-data support."""

import numpy as np
import pytest

from repro.data.external import (
    load_dataset_npz,
    save_dataset_npz,
    splits_from_arrays,
    splits_from_npz,
)


@pytest.fixture
def arrays(rng):
    images = rng.normal(size=(60, 3, 8, 8))
    labels = np.repeat(np.arange(4), 15)
    return images, labels


class TestNpzRoundTrip:
    def test_save_load(self, arrays, tmp_path):
        images, labels = arrays
        path = save_dataset_npz(tmp_path / "d.npz", images, labels)
        loaded = load_dataset_npz(path)
        np.testing.assert_allclose(loaded.images, images)
        np.testing.assert_array_equal(loaded.labels, labels)

    def test_save_validates_shape(self, tmp_path):
        with pytest.raises(ValueError, match="NCHW"):
            save_dataset_npz(tmp_path / "d.npz", np.zeros((4, 8, 8)), np.zeros(4))

    def test_save_validates_lengths(self, tmp_path):
        with pytest.raises(ValueError, match="mismatch"):
            save_dataset_npz(tmp_path / "d.npz", np.zeros((4, 1, 2, 2)), np.zeros(3))

    def test_load_missing_keys(self, tmp_path):
        np.savez(tmp_path / "bad.npz", foo=np.zeros(3))
        with pytest.raises(KeyError, match="missing arrays"):
            load_dataset_npz(tmp_path / "bad.npz")


class TestSplits:
    def test_partition_covers_everything_once(self, arrays):
        images, labels = arrays
        splits = splits_from_arrays(images, labels, seed=1)
        total = len(splits.train) + len(splits.val) + len(splits.test)
        assert total == len(labels)

    def test_stratified_class_balance(self, arrays):
        images, labels = arrays
        splits = splits_from_arrays(images, labels, seed=1)
        for split in (splits.train, splits.val, splits.test):
            counts = np.bincount(split.labels, minlength=4)
            assert counts.min() >= 1
            assert counts.max() - counts.min() <= 1

    def test_fractions_respected(self, arrays):
        images, labels = arrays
        splits = splits_from_arrays(images, labels, val_fraction=0.25,
                                    test_fraction=0.25, seed=0)
        assert len(splits.val) == 16  # 4 per class out of 15
        assert len(splits.test) == 16

    def test_deterministic(self, arrays):
        images, labels = arrays
        a = splits_from_arrays(images, labels, seed=7)
        b = splits_from_arrays(images, labels, seed=7)
        np.testing.assert_array_equal(a.train.labels, b.train.labels)

    def test_unstratified_mode(self, arrays):
        images, labels = arrays
        splits = splits_from_arrays(images, labels, seed=1, stratify=False)
        assert len(splits.train) + len(splits.val) + len(splits.test) == 60

    def test_too_few_samples_per_class(self):
        images = np.zeros((4, 1, 4, 4))
        labels = np.array([0, 0, 1, 1])
        with pytest.raises(ValueError, match="too few"):
            splits_from_arrays(images, labels, val_fraction=0.4, test_fraction=0.4)

    def test_bad_fractions(self, arrays):
        images, labels = arrays
        with pytest.raises(ValueError, match="fractions"):
            splits_from_arrays(images, labels, val_fraction=0.6, test_fraction=0.6)

    def test_npz_to_splits_to_search(self, arrays, tmp_path, tiny_space):
        """External data flows through the whole pipeline."""
        from repro.core.config import EDDConfig
        from repro.core.cosearch import EDDSearcher

        images, labels = arrays
        path = save_dataset_npz(tmp_path / "task.npz", images, labels)
        splits = splits_from_npz(path, seed=0)
        config = EDDConfig(target="gpu", epochs=1, batch_size=8,
                           arch_start_epoch=0, seed=0)
        result = EDDSearcher(tiny_space, splits, config).search()
        assert result.spec.metadata["op_labels"]
