"""Unit tests for the table/figure generators and the experiment registry."""

import pytest

from repro.eval.experiments import EXPERIMENTS, run_experiment
from repro.eval.figures import figure4, render_architecture
from repro.eval.metrics import error_rates
from repro.eval.tables import TableRow, format_table, table1, table2, table3

import numpy as np


class TestTable1:
    def test_eleven_rows(self):
        rows = table1()
        assert len(rows) == 11

    def test_shufflenet_fpga_na(self):
        rows = {r.name: r for r in table1()}
        assert rows["ShuffleNet-V2"].values["FPGA ms (ours)"] is None

    def test_edd1_fastest_gpu(self):
        rows = {r.name: r for r in table1()}
        edd1 = rows["EDD-Net-1"].values["GPU ms (ours)"]
        for name in ("MnasNet-A1", "FBNet-C", "Proxyless-cpu",
                     "Proxyless-Mobile", "Proxyless-gpu", "GoogleNet",
                     "MobileNet-V2", "ShuffleNet-V2"):
            assert edd1 < rows[name].values["GPU ms (ours)"]

    def test_paper_columns_present(self):
        row = table1()[0]
        assert "GPU ms (paper)" in row.values
        assert "Top-1 err (paper)" in row.values


class TestTable2:
    def test_precision_rows_ordered(self):
        rows = table2()
        assert [r.name for r in rows] == ["32-bit", "16-bit", "8-bit"]
        ours = [r.values["Latency ms (ours)"] for r in rows]
        assert ours[0] > ours[1] > ours[2]

    def test_measured_errors_merged(self):
        rows = table2(measured_errors={16: 12.5})
        by_name = {r.name: r for r in rows}
        assert by_name["16-bit"].values["Proxy err % (ours)"] == 12.5
        assert "Proxy err % (ours)" not in by_name["32-bit"].values

    def test_latency_close_to_paper(self):
        for row in table2():
            ours = row.values["Latency ms (ours)"]
            paper = row.values["Latency ms (paper)"]
            assert abs(ours - paper) / paper < 0.05


class TestTable3:
    def test_edd3_beats_vgg(self):
        rows = {r.name: r for r in table3()}
        ratio = rows["EDD-Net-3"].values["fps (ours)"] / rows["VGG16"].values["fps (ours)"]
        assert ratio > 1.2  # paper: 1.45x

    def test_vgg_near_dnnbuilder_anchor(self):
        rows = {r.name: r for r in table3()}
        assert abs(rows["VGG16"].values["fps (ours)"] - 27.7) / 27.7 < 0.1


class TestFormatting:
    def test_format_table_renders_na(self):
        rows = [TableRow(name="x", values={"a": None, "b": 1.5})]
        text = format_table(rows, ["a", "b"], "T")
        assert "NA" in text and "1.50" in text

    def test_header_contains_columns(self):
        text = format_table([TableRow("m", {"col": 1.0})], ["col"], "title")
        assert text.splitlines()[0] == "title"
        assert "col" in text


class TestFigure4:
    def test_contains_three_edd_nets(self):
        text = figure4()
        for name in ("EDD-Net-1", "EDD-Net-2", "EDD-Net-3"):
            assert name in text

    def test_block_labels_rendered(self):
        text = figure4()
        assert "MB4 3x3" in text
        assert "/s2" in text

    def test_render_includes_annotations(self):
        from repro.baselines.model_zoo import edd_net_1

        spec = edd_net_1()
        spec.metadata["block_bits"] = [16] * 20
        text = render_architecture(spec)
        assert "weight bits" in text

    def test_extra_specs_appended(self, tiny_space):
        ops = tiny_space.candidate_ops()
        extra = tiny_space.spec_for_choices([ops[0]] * tiny_space.num_blocks,
                                            name="fresh-searched")
        assert "fresh-searched" in figure4([extra])


class TestRegistry:
    def test_all_experiments_run(self):
        for name in EXPERIMENTS:
            text = run_experiment(name)
            assert isinstance(text, str) and text

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("table9")


class TestMetrics:
    def test_error_rates(self):
        logits = np.array([[5.0, 0.0, 1.0], [4.0, 5.0, 1.0]])
        errors = error_rates(logits, np.array([0, 0]), ks=(1, 2))
        assert errors[1] == pytest.approx(50.0)
        assert errors[2] == pytest.approx(0.0)
