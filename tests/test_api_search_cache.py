"""Cross-run search result cache (api.search_many cache_dir=...)."""

import numpy as np
import pytest

from repro import api


def _batch(seeds, cache_dir, **kwargs):
    # epochs=2 so the arch phase has run and total_loss is a real number.
    return api.search_many(
        seeds, epochs=2, blocks=2, batch_size=8, cache_dir=str(cache_dir),
        **kwargs,
    )


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("search-cache")


@pytest.fixture(scope="module")
def first_batch(cache_dir):
    """Cold-cache batch over seeds [0, 1] (read-only in tests)."""
    return _batch([0, 1], cache_dir)


class TestSearchCache:
    def test_cold_run_has_no_hits(self, first_batch, cache_dir):
        assert first_batch.cached_seeds == []
        assert len(list(cache_dir.glob("search-*.pkl"))) == 2

    def test_rerun_skips_finished_seeds(self, first_batch, cache_dir):
        rerun = _batch([0, 1], cache_dir)
        assert rerun.cached_seeds == [0, 1]
        assert rerun.objective_values() == first_batch.objective_values()
        assert [r.spec_name for r in rerun.runs] == [
            r.spec_name for r in first_batch.runs
        ]
        np.testing.assert_array_equal(
            rerun.best.result.theta, first_batch.best.result.theta
        )

    def test_new_seed_runs_fresh_next_to_hits(self, first_batch, cache_dir):
        extended = _batch([0, 1, 2], cache_dir)
        assert extended.cached_seeds == [0, 1]
        assert extended.seeds == [0, 1, 2]
        assert extended.objective_values()[:2] == first_batch.objective_values()
        # Seed 2 is now cached too.
        assert _batch([2], cache_dir).cached_seeds == [2]

    def test_changed_config_misses(self, first_batch, cache_dir):
        different = api.search_many(
            [0], epochs=1, blocks=2, batch_size=8, cache_dir=str(cache_dir),
        )
        assert different.cached_seeds == []

    def test_to_dict_reports_cached_seeds(self, first_batch, cache_dir):
        payload = _batch([0, 1], cache_dir).to_dict()
        assert payload["cached_seeds"] == [0, 1]
        assert len(payload["runs"]) == 2

    def test_without_cache_dir_nothing_is_cached(self):
        multi = api.search_many([0], epochs=1, blocks=2, batch_size=8)
        assert multi.cached_seeds == []

    def test_corrupt_entry_is_a_miss_and_gets_rewritten(
        self, first_batch, cache_dir
    ):
        """A truncated pickle (run killed mid-write) must not poison reruns."""
        digest = api._request_digest(
            {"epochs": 2, "blocks": 2, "batch_size": 8}
        )
        path = api._cache_path(cache_dir, digest, 0)
        assert path.exists()
        original = path.read_bytes()
        try:
            path.write_bytes(original[: len(original) // 2])
            rerun = _batch([0, 1], cache_dir)
            assert rerun.cached_seeds == [1]  # seed 0 re-searched
            assert rerun.objective_values() == first_batch.objective_values()
            # The entry was rewritten and is a hit again.
            assert _batch([0], cache_dir).cached_seeds == [0]
        finally:
            if path.read_bytes() != original:
                path.write_bytes(original)


class TestRequestDigest:
    def test_stable_for_identical_config(self):
        a = api._request_digest({"target": "gpu", "epochs": 2})
        b = api._request_digest({"epochs": 2, "target": "gpu"})
        assert a == b

    def test_differs_across_configs(self):
        a = api._request_digest({"target": "gpu", "epochs": 2})
        b = api._request_digest({"target": "gpu", "epochs": 3})
        c = api._request_digest({"target": "fpga_pipelined", "epochs": 2})
        assert len({a, b, c}) == 3

    def test_ignores_per_run_managed_fields(self):
        # seed/checkpoint_dir are managed per run, so they never reach the
        # digest; the kwargs validation in search_many rejects them anyway.
        assert api._request_digest({}) == api._request_digest({})


class TestCliCacheFlag:
    def test_search_seeds_cache_dir(self, tmp_path, capsys):
        import json

        from repro.cli import main

        args = ["search", "--seeds", "2", "--epochs", "1", "--blocks", "2",
                "--cache-dir", str(tmp_path), "--format", "json"]
        assert main(args) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["cached_seeds"] == []
        assert main(args) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["cached_seeds"] == [0, 1]
        assert warm["aggregate"] == cold["aggregate"]
