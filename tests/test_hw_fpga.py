"""Unit tests for the differentiable FPGA model (Sec. 4.1)."""

import math

import numpy as np
import pytest

from repro.hw.device import ZC706, ZCU102
from repro.hw.fpga import (
    FPGAModel,
    mbconv_workload,
    phi_latency_calibration,
    psi_dsp,
)
from repro.nas.quantization import QuantizationConfig
from repro.nas.space import BlockGeometry, CandidateOp, SearchSpaceConfig
from repro.nas.supernet import SuperNet, constant_sample


class TestPsi:
    def test_paper_piecewise_values(self):
        """Sec. 4.1.2: Psi = 1 for 9-16 bit, 1/2 for 5-8 bit, 0 below 5."""
        assert psi_dsp(16) == 1.0
        assert psi_dsp(9) == 1.0
        assert psi_dsp(8) == 0.5
        assert psi_dsp(5) == 0.5
        assert psi_dsp(4) == 0.0
        assert psi_dsp(2) == 0.0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            psi_dsp(0)
        with pytest.raises(ValueError):
            psi_dsp(17)


class TestPhiCalibration:
    def test_linear_in_bits_normalised(self):
        """Sec. 4.1.1: Phi(q) = q, here normalised so 16-bit = 1."""
        assert phi_latency_calibration(16) == 1.0
        assert phi_latency_calibration(8) == 0.5
        assert phi_latency_calibration(4) == 0.25

    def test_invalid(self):
        with pytest.raises(ValueError):
            phi_latency_calibration(0)


class TestWorkload:
    GEOM = BlockGeometry(in_ch=8, out_ch=16, stride=2, in_h=8, in_w=8, out_h=4, out_w=4)

    def test_eq12_terms(self):
        op = CandidateOp(kernel=3, expansion=2)
        hidden = 16
        expected = (
            64 * 8 * hidden          # conv1x1 expand at input resolution
            + 9 * 16 * hidden        # dwconv at output resolution
            + 16 * hidden * 16       # conv1x1 project
            + 64 * hidden + 16 * hidden + 16 * 16  # BN/act "otherwise" terms
        )
        assert mbconv_workload(self.GEOM, op) == expected

    def test_monotone_in_kernel_and_expansion(self):
        w33 = mbconv_workload(self.GEOM, CandidateOp(3, 4))
        w55 = mbconv_workload(self.GEOM, CandidateOp(5, 4))
        w35 = mbconv_workload(self.GEOM, CandidateOp(3, 5))
        assert w55 > w33
        assert w35 > w33


@pytest.fixture
def recursive_model(tiny_space):
    return FPGAModel(
        tiny_space,
        QuantizationConfig.fpga(sharing="per_op"),
        device=ZCU102,
        architecture="recursive",
    )


@pytest.fixture
def pipelined_model(tiny_space):
    return FPGAModel(
        tiny_space,
        QuantizationConfig.fpga(sharing="per_block_op"),
        device=ZC706,
        architecture="pipelined",
    )


class TestConstruction:
    def test_sharing_mode_enforced(self, tiny_space):
        with pytest.raises(ValueError, match="per_op"):
            FPGAModel(tiny_space, QuantizationConfig.fpga("per_block_op"),
                      architecture="recursive")
        with pytest.raises(ValueError, match="per_block_op"):
            FPGAModel(tiny_space, QuantizationConfig.fpga("per_op"),
                      architecture="pipelined")

    def test_invalid_architecture(self, tiny_space):
        with pytest.raises(ValueError, match="architecture"):
            FPGAModel(tiny_space, QuantizationConfig.fpga("per_op"),
                      architecture="systolic")

    def test_pf_initialisation_recursive(self, recursive_model, tiny_space):
        """Sec. 5: pf0 = log2(RES_ub / M) for the recursive architecture."""
        expected = math.log2(ZCU102.dsp_total / tiny_space.num_ops)
        np.testing.assert_allclose(recursive_model.pf.data, expected)
        assert recursive_model.pf.shape == (tiny_space.num_ops,)

    def test_pf_initialisation_pipelined(self, pipelined_model, tiny_space):
        """Sec. 5: pf0 = log2(RES_ub / (M*N)) for the pipelined architecture."""
        expected = math.log2(ZC706.dsp_total / (tiny_space.num_ops * tiny_space.num_blocks))
        np.testing.assert_allclose(pipelined_model.pf.data, expected)
        assert pipelined_model.pf.shape == (tiny_space.num_blocks, tiny_space.num_ops)

    def test_resource_bound_fraction(self, tiny_space):
        model = FPGAModel(tiny_space, QuantizationConfig.fpga("per_op"),
                          architecture="recursive", resource_fraction=0.5)
        assert model.resource_bound == ZCU102.dsp_total * 0.5


class TestEvaluateRecursive:
    def test_eval_outputs_scalars(self, recursive_model, tiny_space):
        sample = constant_sample(
            tiny_space, recursive_model.quant, [0] * tiny_space.num_blocks, 2
        )
        out = recursive_model.evaluate(sample)
        assert out.perf_loss.shape == ()
        assert out.resource.shape == ()
        assert out.diagnostics["resource_dsp"] > 0

    def test_lower_bits_faster_and_cheaper(self, recursive_model, tiny_space):
        """Phi(q)=q and Psi(q) make low precision strictly better in hw."""
        lo = constant_sample(tiny_space, recursive_model.quant,
                             [0] * tiny_space.num_blocks, 0)  # 4-bit
        hi = constant_sample(tiny_space, recursive_model.quant,
                             [0] * tiny_space.num_blocks, 2)  # 16-bit
        out_lo = recursive_model.evaluate(lo)
        out_hi = recursive_model.evaluate(hi)
        assert float(out_lo.perf_loss.data) < float(out_hi.perf_loss.data)
        assert float(out_lo.resource.data) < float(out_hi.resource.data)

    def test_bigger_ops_cost_more(self, recursive_model, tiny_space):
        small = constant_sample(tiny_space, recursive_model.quant,
                                [0] * tiny_space.num_blocks, 2)
        big = constant_sample(tiny_space, recursive_model.quant,
                              [tiny_space.num_ops - 1] * tiny_space.num_blocks, 2)
        assert float(recursive_model.evaluate(big).perf_loss.data) > float(
            recursive_model.evaluate(small).perf_loss.data
        )

    def test_shared_resource_counts_ip_once(self, recursive_model, tiny_space):
        """All blocks choosing the same op should cost ~one IP (Eqs. 9-10)."""
        same = constant_sample(tiny_space, recursive_model.quant,
                               [0] * tiny_space.num_blocks, 2)
        res_same = float(recursive_model.evaluate(same).resource.data)
        pf = recursive_model.pf.data[0]
        single_ip = psi_dsp(16) * 2**pf
        assert res_same < 1.05 * single_ip

    def test_gradients_reach_pf(self, recursive_model, tiny_space, sampler):
        net = SuperNet(tiny_space, recursive_model.quant, seed=0)
        sample = net.sample(sampler, hard=False)
        out = recursive_model.evaluate(sample)
        (out.perf_loss + out.resource).backward()
        assert recursive_model.pf.grad is not None
        assert np.abs(recursive_model.pf.grad).sum() > 0
        assert net.theta.grad is not None
        assert net.phi.grad is not None

    def test_higher_pf_lowers_latency_raises_resource(self, recursive_model, tiny_space):
        sample = constant_sample(tiny_space, recursive_model.quant,
                                 [0] * tiny_space.num_blocks, 2)
        base = recursive_model.evaluate(sample)
        recursive_model.pf.data += 1.0
        boosted = recursive_model.evaluate(sample)
        assert float(boosted.perf_loss.data) < float(base.perf_loss.data)
        assert float(boosted.resource.data) > float(base.resource.data)

    def test_wrong_sharing_sample_rejected(self, recursive_model, tiny_space):
        bad = constant_sample(tiny_space, QuantizationConfig.fpga("per_block_op"),
                              [0] * tiny_space.num_blocks, 0)
        with pytest.raises(ValueError, match="sharing"):
            recursive_model.evaluate(bad)


class TestEvaluatePipelined:
    def test_eval_runs(self, pipelined_model, tiny_space):
        sample = constant_sample(tiny_space, pipelined_model.quant,
                                 [1] * tiny_space.num_blocks, 1)
        out = pipelined_model.evaluate(sample)
        assert float(out.perf_loss.data) > 0
        assert float(out.resource.data) > 0

    def test_perf_is_smooth_max_of_blocks(self, pipelined_model, tiny_space):
        sample = constant_sample(tiny_space, pipelined_model.quant,
                                 [0] * tiny_space.num_blocks, 2)
        out = pipelined_model.evaluate(sample)
        max_block = out.diagnostics["max_block_latency_units"]
        assert float(out.perf_loss.data) >= max_block * pipelined_model.alpha - 1e-9

    def test_resource_sums_blocks(self, pipelined_model, tiny_space):
        sample = constant_sample(tiny_space, pipelined_model.quant,
                                 [0] * tiny_space.num_blocks, 2)
        out = pipelined_model.evaluate(sample)
        pf = pipelined_model.pf.data
        expected = sum(psi_dsp(16) * 2 ** pf[i, 0] for i in range(tiny_space.num_blocks))
        np.testing.assert_allclose(float(out.resource.data), expected, rtol=1e-9)


class TestProjection:
    def test_clamps_pf_into_box(self, recursive_model):
        recursive_model.pf.data[:] = -5.0
        recursive_model.project_parameters()
        assert np.all(recursive_model.pf.data >= 0.0)
        recursive_model.pf.data[:] = 99.0
        recursive_model.project_parameters()
        assert np.all(recursive_model.pf.data <= math.log2(ZCU102.dsp_total) + 1e-9)


class TestRetune:
    def test_pipelined_retune_budget(self, pipelined_model, tiny_space):
        ops = [0] * tiny_space.num_blocks
        bits = [16] * tiny_space.num_blocks
        factors = pipelined_model.retune_parallel_factors(ops, bits)
        assert len(factors) == tiny_space.num_blocks
        assert all(f >= 1 and (f & (f - 1)) == 0 for f in factors)  # powers of 2

    def test_recursive_retune_shared_ips_get_same_factor(self, recursive_model, tiny_space):
        ops = [0] * tiny_space.num_blocks
        bits = [16] * tiny_space.num_blocks
        factors = recursive_model.retune_parallel_factors(ops, bits)
        assert len(set(factors)) == 1  # one shared IP -> one factor

    def test_retune_wrong_length(self, recursive_model):
        with pytest.raises(ValueError, match="op choices"):
            recursive_model.retune_parallel_factors([0], [16])
