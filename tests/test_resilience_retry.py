"""Unit tests for the shared bounded-retry policy."""

import pytest

from repro.resilience import RetryPolicy


class TestSchedule:
    def test_deterministic_for_equal_fields(self):
        a = RetryPolicy(max_retries=5, base_delay_s=0.1, max_delay_s=2.0, seed=3)
        b = RetryPolicy(max_retries=5, base_delay_s=0.1, max_delay_s=2.0, seed=3)
        assert a.schedule() == b.schedule()
        assert a.schedule() == a.schedule()  # re-derivation, not consumption

    def test_seed_changes_schedule(self):
        a = RetryPolicy(max_retries=5, seed=0).schedule()
        b = RetryPolicy(max_retries=5, seed=1).schedule()
        assert a[0] == b[0]  # first delay is always base
        assert a != b

    def test_length_matches_max_retries(self):
        assert len(RetryPolicy(max_retries=0).schedule()) == 0
        assert len(RetryPolicy(max_retries=4).schedule()) == 4

    def test_delays_stay_within_bounds(self):
        policy = RetryPolicy(max_retries=50, base_delay_s=0.05, max_delay_s=0.4)
        for delay in policy.schedule():
            assert 0.05 <= delay <= 0.4

    def test_first_delay_is_base(self):
        policy = RetryPolicy(max_retries=1, base_delay_s=0.25)
        assert policy.schedule() == [0.25]


class TestValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError, match="base_delay_s"):
            RetryPolicy(base_delay_s=-0.1)

    def test_max_below_base_rejected(self):
        with pytest.raises(ValueError, match="max_delay_s"):
            RetryPolicy(base_delay_s=1.0, max_delay_s=0.5)


class _Flaky:
    """Callable failing ``failures`` times before returning ``value``."""

    def __init__(self, failures, value="ok", exc=RuntimeError):
        self.failures = failures
        self.value = value
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"attempt {self.calls}")
        return self.value


class TestCall:
    def test_returns_after_transient_failures(self):
        slept = []
        fn = _Flaky(failures=2)
        policy = RetryPolicy(max_retries=2, base_delay_s=0.1)
        assert policy.call(fn, sleep=slept.append) == "ok"
        assert fn.calls == 3
        assert slept == policy.schedule()

    def test_reraises_once_budget_spent(self):
        fn = _Flaky(failures=10)
        with pytest.raises(RuntimeError, match="attempt 3"):
            RetryPolicy(max_retries=2).call(fn, sleep=lambda _: None)
        assert fn.calls == 3

    def test_zero_retries_fails_fast(self):
        fn = _Flaky(failures=1)
        with pytest.raises(RuntimeError):
            RetryPolicy(max_retries=0).call(fn)
        assert fn.calls == 1

    def test_retry_on_filters_exception_types(self):
        fn = _Flaky(failures=1, exc=KeyError)
        with pytest.raises(KeyError):
            RetryPolicy(max_retries=3).call(
                fn, retry_on=(OSError,), sleep=lambda _: None
            )
        assert fn.calls == 1

    def test_on_retry_observes_attempts(self):
        seen = []
        fn = _Flaky(failures=2)
        RetryPolicy(max_retries=2).call(
            fn,
            sleep=lambda _: None,
            on_retry=lambda attempt, err: seen.append((attempt, str(err))),
        )
        assert seen == [(1, "attempt 1"), (2, "attempt 2")]
