"""Unit tests for losses and metrics."""

import numpy as np
import pytest

from repro.autograd import gradcheck
from repro.autograd.ops_nn import log_softmax
from repro.autograd.tensor import Tensor, tensor
from repro.nn.functional import accuracy, cross_entropy, nll_loss, topk_accuracy

pytestmark = pytest.mark.usefixtures("float64_numerics")



@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        logits = rng.normal(size=(4, 3))
        targets = np.array([0, 2, 1, 0])
        loss = cross_entropy(tensor(logits), targets)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(4), targets].mean()
        np.testing.assert_allclose(float(loss.data), expected)

    def test_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss = cross_entropy(tensor(logits), np.array([0, 1]))
        assert float(loss.data) < 1e-6

    def test_uniform_logits_log_k(self):
        loss = cross_entropy(tensor(np.zeros((2, 5))), np.array([0, 1]))
        np.testing.assert_allclose(float(loss.data), np.log(5.0))

    def test_gradcheck(self, rng):
        logits = tensor(rng.normal(size=(3, 4)), requires_grad=True)
        targets = np.array([1, 0, 3])
        assert gradcheck(lambda t: cross_entropy(t, targets), [logits])

    def test_gradient_sums_to_zero_per_row(self, rng):
        logits = tensor(rng.normal(size=(3, 4)), requires_grad=True)
        cross_entropy(logits, np.array([0, 1, 2])).backward()
        np.testing.assert_allclose(logits.grad.sum(axis=1), np.zeros(3), atol=1e-12)


class TestNLL:
    def test_nll_gradcheck(self, rng):
        logits = tensor(rng.normal(size=(3, 4)), requires_grad=True)
        targets = np.array([2, 2, 0])
        assert gradcheck(lambda t: nll_loss(log_softmax(t, axis=-1), targets), [logits])


class TestAccuracy:
    def test_top1(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_topk_includes_lower_ranks(self):
        logits = np.array([[3.0, 2.0, 1.0, 0.0]])
        assert topk_accuracy(logits, np.array([2]), k=3) == 1.0
        assert topk_accuracy(logits, np.array([3]), k=3) == 0.0

    def test_k_clamped_to_classes(self):
        logits = np.array([[1.0, 0.0]])
        assert topk_accuracy(logits, np.array([1]), k=10) == 1.0

    def test_accepts_tensor_input(self):
        logits = Tensor(np.array([[1.0, 0.0]]))
        assert accuracy(logits, np.array([0])) == 1.0

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match=r"\(N, C\)"):
            topk_accuracy(np.ones(3), np.array([0]), k=1)
