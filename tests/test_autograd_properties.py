"""Property-based tests (hypothesis) for autograd invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autograd.ops_basic import add, exp, mul, round_ste, tanh
from repro.autograd.ops_nn import softmax
from repro.autograd.ops_reduce import logsumexp, sum_reduce
from repro.autograd.tensor import Tensor, tensor, unbroadcast

pytestmark = pytest.mark.usefixtures("float64_numerics")


finite_floats = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


def small_arrays(max_dims=3, max_side=4):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(max_dims=max_dims, max_side=max_side),
        elements=finite_floats,
    )


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_add_commutes(x):
    a, b = tensor(x), tensor(x[::-1].copy().reshape(x.shape))
    np.testing.assert_allclose(add(a, b).data, add(b, a).data)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_mul_by_one_is_identity(x):
    a = tensor(x)
    np.testing.assert_allclose(mul(a, tensor(np.ones_like(x))).data, x)


@settings(max_examples=50, deadline=None)
@given(small_arrays(max_dims=2))
def test_softmax_rows_are_distributions(x):
    out = softmax(tensor(x), axis=-1).data
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(out.shape[:-1]), atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(small_arrays(max_dims=1, max_side=8))
def test_lse_bounds_max(x):
    """Eq. 7's surrogate: max <= LSE <= max + log n."""
    val = float(logsumexp(tensor(x)).data)
    assert x.max() - 1e-9 <= val <= x.max() + np.log(x.size) + 1e-9


@settings(max_examples=50, deadline=None)
@given(small_arrays(max_dims=2))
def test_lse_shift_invariance(x):
    """LSE(x + c) = LSE(x) + c — the identity making Eq. 7 stable."""
    c = 7.3
    a = float(logsumexp(tensor(x)).data)
    b = float(logsumexp(tensor(x + c)).data)
    np.testing.assert_allclose(b, a + c, atol=1e-8)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_sum_linear_in_scaling(x):
    a = float(sum_reduce(tensor(2.0 * x)).data)
    b = 2.0 * float(sum_reduce(tensor(x)).data)
    np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_round_ste_within_half(x):
    out = round_ste(tensor(x)).data
    assert np.all(np.abs(out - x) <= 0.5 + 1e-12)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_tanh_odd_function(x):
    a = tanh(tensor(x)).data
    b = tanh(tensor(-x)).data
    np.testing.assert_allclose(a, -b, atol=1e-12)


@settings(max_examples=50, deadline=None)
@given(small_arrays(max_dims=2, max_side=3))
def test_exp_log_consistency(x):
    shifted = np.abs(x) + 0.5
    out = exp(tensor(np.log(shifted))).data
    np.testing.assert_allclose(out, shifted, rtol=1e-9)


@settings(max_examples=80, deadline=None)
@given(small_arrays(max_dims=3, max_side=4))
def test_unbroadcast_inverts_broadcast(x):
    """Summing a broadcast gradient recovers the original shape and scale."""
    target_shape = x.shape
    big = np.broadcast_to(x, (2,) + target_shape)
    got = unbroadcast(big.copy(), target_shape)
    np.testing.assert_allclose(got, 2.0 * x, rtol=1e-9, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_dims=2, max_side=4))
def test_gradient_of_sum_is_ones(x):
    a = Tensor(x, requires_grad=True)
    sum_reduce(a).backward()
    np.testing.assert_allclose(a.grad, np.ones_like(x))
