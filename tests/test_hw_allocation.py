"""Unit + property tests for the resource-allocation algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.allocation import (
    integer_parallel_factors,
    round_power_of_two,
    waterfill_allocation,
)


class TestWaterfill:
    def test_proportional_without_caps(self):
        alloc = waterfill_allocation([1.0, 3.0], budget=40.0, minimum=0.0)
        np.testing.assert_allclose(alloc, [10.0, 30.0])

    def test_default_floor_then_proportional(self):
        alloc = waterfill_allocation([1.0, 3.0], budget=40.0)
        np.testing.assert_allclose(alloc, [1 + 38 * 0.25, 1 + 38 * 0.75])

    def test_respects_caps_and_redistributes(self):
        alloc = waterfill_allocation([1.0, 3.0], budget=40.0, caps=[5.0, 100.0])
        assert alloc[0] == 5.0
        np.testing.assert_allclose(alloc[1], 35.0)

    def test_total_never_exceeds_budget(self):
        alloc = waterfill_allocation([2.0, 2.0, 2.0], budget=10.0)
        assert sum(alloc) <= 10.0 + 1e-9

    def test_zero_workload_gets_nothing(self):
        alloc = waterfill_allocation([0.0, 5.0], budget=10.0)
        assert alloc[0] == 0.0
        np.testing.assert_allclose(alloc[1], 10.0)

    def test_minimum_floor(self):
        alloc = waterfill_allocation([1e-9, 1.0], budget=10.0, minimum=2.0)
        assert alloc[0] >= 2.0

    def test_budget_smaller_than_floors(self):
        alloc = waterfill_allocation([1.0, 1.0], budget=1.0, minimum=1.0)
        assert sum(alloc) <= 1.0 + 1e-9

    def test_all_capped(self):
        alloc = waterfill_allocation([1.0, 1.0], budget=100.0, caps=[2.0, 2.0])
        np.testing.assert_allclose(alloc, [2.0, 2.0])

    def test_empty(self):
        assert waterfill_allocation([], budget=10.0) == []

    def test_validation(self):
        with pytest.raises(ValueError, match="budget"):
            waterfill_allocation([1.0], budget=0.0)
        with pytest.raises(ValueError, match="caps length"):
            waterfill_allocation([1.0], budget=1.0, caps=[1.0, 2.0])


class TestPowerOfTwo:
    def test_rounds_to_nearest_power(self):
        assert round_power_of_two(3.0) == 4
        assert round_power_of_two(5.0) == 4
        assert round_power_of_two(6.0) == 8

    def test_floor_at_one(self):
        assert round_power_of_two(0.3) == 1

    def test_max_exponent(self):
        assert round_power_of_two(1e9, max_exp=10) == 1024


class TestIntegerFactors:
    def test_factors_are_powers_of_two(self):
        factors = integer_parallel_factors([10.0, 20.0, 40.0], budget=64.0)
        for f in factors:
            assert f >= 1 and (f & (f - 1)) == 0

    def test_budget_repair_shrinks(self):
        factors = integer_parallel_factors([100.0] * 8, budget=16.0)
        assert sum(factors) <= 16

    def test_heavier_stage_gets_no_less(self):
        factors = integer_parallel_factors([1.0, 64.0], budget=66.0)
        assert factors[1] >= factors[0]

    def test_zero_workload_zero_factor(self):
        factors = integer_parallel_factors([0.0, 8.0], budget=8.0)
        assert factors[0] == 0


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=12),
    st.floats(min_value=1.0, max_value=1e4),
)
def test_property_waterfill_within_budget(workloads, budget):
    alloc = waterfill_allocation(workloads, budget)
    assert sum(alloc) <= budget + 1e-6
    assert all(a >= 0 for a in alloc)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=2, max_size=8),
    st.floats(min_value=10.0, max_value=1000.0),
)
def test_property_waterfill_monotone_in_workload(workloads, budget):
    """A stage with strictly larger workload never gets less allocation
    (when no caps bind)."""
    alloc = waterfill_allocation(workloads, budget)
    order = np.argsort(workloads)
    allocated = np.array(alloc)[order]
    assert all(a <= b + 1e-6 for a, b in zip(allocated, allocated[1:]))


def test_waterfill_subnormal_workload_stays_within_budget():
    """Regression: a subnormal workload made the proportional share round up
    past the remaining budget (hypothesis-found: [5e-324] with budget 1.75
    allocated 2.0)."""
    alloc = waterfill_allocation([5e-324], 1.75)
    assert sum(alloc) <= 1.75 + 1e-6
