"""Batched soft-mode supernet evaluation vs the serial oracle.

Parity tolerances are deliberate, not hopeful:

* Ops whose per-candidate arithmetic is byte-for-byte the serial
  instruction stream (stacking, slicing, per-slice quantisation,
  per-slice residual/mix terms) are asserted **bit-identical**.
* Ops where only floating-point *association* changes (one stacked GEMM
  or fused BN reduction instead of M separate ones, bucket-first term
  ordering in the block mixture) are asserted to ``1e-12`` under a
  float64 policy — measured differences are at machine epsilon
  (~1e-15); the slack covers BLAS build variation.

Everything runs under ``default_dtype(np.float64)``: the repo's float32
default would hide association-order differences (~1e-6) behind rounding
noise and make the distinction above meaningless.
"""

import dataclasses
import importlib

import numpy as np
import pytest

import repro.autograd.ops_nn as ops_nn
from repro.autograd.pool import _ENV_SWITCH as POOL_ENV
from repro.autograd.tensor import Tensor, default_dtype, tensor
from repro.nas import batched
from repro.nas.batched import (
    BATCHED_SOFT_ENV,
    batch_norm_stacked,
    batched_soft_enabled,
    soft_block_mixture,
)
from repro.nas.gumbel import GumbelSoftmax
from repro.nas.quantization import (
    QuantizationConfig,
    fake_quantize,
    fake_quantize_sliced,
    mixed_quantize,
    mixed_quantize_stacked,
)
from repro.nas.space import SearchSpaceConfig
from repro.nas.supernet import SuperNet
from repro.nn.functional import cross_entropy
from repro.nn.layers import BatchNorm2d

ASSOC_TOL = 1e-12  # float64; association-order differences only


@pytest.fixture(autouse=True)
def _float64_numerics():
    with default_dtype(np.float64):
        yield


def _run_soft_step(space, quant, batched_on, monkeypatch, batch=2, seed=0):
    monkeypatch.setenv(BATCHED_SOFT_ENV, "1" if batched_on else "0")
    net = SuperNet(space, quant=quant, seed=seed)
    net.train()
    rng = np.random.default_rng(42)
    x = rng.standard_normal((batch, 3, space.input_size, space.input_size))
    y = rng.integers(0, space.num_classes, size=batch)
    sample = net.sample(GumbelSoftmax(seed=7), hard=False)
    loss = cross_entropy(net(Tensor(x.copy()), sample=sample), y)
    loss.backward()
    return (
        float(loss.data),
        {n: None if p.grad is None else p.grad.copy()
         for n, p in net.named_parameters()},
        {n: b.copy() for n, b in net.named_buffers()},
    )


def _assert_step_parity(space, quant, monkeypatch):
    l0, g0, b0 = _run_soft_step(space, quant, False, monkeypatch)
    l1, g1, b1 = _run_soft_step(space, quant, True, monkeypatch)
    assert abs(l0 - l1) <= ASSOC_TOL
    assert set(g0) == set(g1)
    for name in g0:
        if g0[name] is None or g1[name] is None:
            assert g0[name] is None and g1[name] is None, name
            continue
        np.testing.assert_allclose(g0[name], g1[name], atol=ASSOC_TOL, err_msg=name)
    for name in b0:
        np.testing.assert_allclose(b0[name], b1[name], atol=ASSOC_TOL, err_msg=name)


# ------------------------------------------------ full-step parity matrix

@pytest.mark.parametrize("sharing", ["per_block_op", "per_op", "global"])
def test_step_parity_sharing_modes(sharing, monkeypatch):
    """Loss, every parameter grad and every BN buffer across sharing modes."""
    _assert_step_parity(
        SearchSpaceConfig.reduced(), QuantizationConfig.fpga(sharing=sharing),
        monkeypatch,
    )


def test_step_parity_no_quant(monkeypatch):
    _assert_step_parity(SearchSpaceConfig.reduced(), None, monkeypatch)


def test_step_parity_skip_candidates(monkeypatch):
    """Skip candidates always evaluate serially; mixture must still agree."""
    space = dataclasses.replace(SearchSpaceConfig.reduced(), allow_skip=True)
    _assert_step_parity(space, QuantizationConfig.fpga(), monkeypatch)


def test_step_parity_gpu_menu(monkeypatch):
    """32-bit identity path + global sharing (GPU menu)."""
    _assert_step_parity(
        SearchSpaceConfig.reduced(), QuantizationConfig.gpu(), monkeypatch,
    )


def test_reduced_space_has_stride2_block():
    """The parity matrix genuinely covers a stride-2 (non-residual) block."""
    assert 2 in SearchSpaceConfig.reduced().block_strides


def test_pool_on_off_parity_batched(monkeypatch):
    """The batched path must be byte-stable under the buffer pool toggle."""
    space = SearchSpaceConfig.reduced()
    quant = QuantizationConfig.fpga()
    monkeypatch.setenv(POOL_ENV, "1")
    on = _run_soft_step(space, quant, True, monkeypatch)
    monkeypatch.setenv(POOL_ENV, "0")
    off = _run_soft_step(space, quant, True, monkeypatch)
    assert on[0] == off[0]
    for name in on[1]:
        if on[1][name] is None:
            assert off[1][name] is None
            continue
        np.testing.assert_array_equal(on[1][name], off[1][name], err_msg=name)


# ------------------------------------------------------ dispatch behaviour

def test_kill_switch_forces_serial(monkeypatch):
    monkeypatch.setenv(BATCHED_SOFT_ENV, "0")
    assert not batched_soft_enabled()
    monkeypatch.delenv(BATCHED_SOFT_ENV)
    assert batched_soft_enabled()


def test_eval_mode_uses_serial(monkeypatch):
    """Eval-mode soft passes must not touch the batched evaluator."""
    monkeypatch.setenv(BATCHED_SOFT_ENV, "1")

    def boom(*a, **k):  # pragma: no cover - failure path
        raise AssertionError("batched path used in eval mode")

    supernet_mod = importlib.import_module("repro.nas.supernet")
    monkeypatch.setattr(supernet_mod, "soft_block_mixture", boom)
    net = SuperNet(SearchSpaceConfig.reduced(), quant=None, seed=0)
    net.eval()
    sample = net.sample(GumbelSoftmax(seed=1), hard=False)
    x = Tensor(np.random.default_rng(0).standard_normal((1, 3, 16, 16)))
    net(x, sample=sample)  # must not raise


def test_singleton_kernel_buckets_fall_back(monkeypatch):
    """One expansion per kernel -> every bucket is a singleton -> all serial."""
    monkeypatch.setenv(BATCHED_SOFT_ENV, "1")
    space = dataclasses.replace(SearchSpaceConfig.reduced(), expansions=(3,))
    net = SuperNet(space, quant=None, seed=0)
    net.train()

    def boom(*a, **k):  # pragma: no cover - failure path
        raise AssertionError("singleton buckets must not be batched")

    monkeypatch.setattr(batched, "_bucket_mixture", boom)
    sample = net.sample(GumbelSoftmax(seed=1), hard=False)
    x = Tensor(np.random.default_rng(0).standard_normal((1, 3, 16, 16)))
    net(x, sample=sample)  # must not raise


# --------------------------------------------------- fused-op unit parity

def _mbconv_like_weights(rng, sections, c_in, kernel):
    return [
        tensor(rng.standard_normal((s, c_in, 1, 1)), requires_grad=True)
        for s in sections
    ]


def test_project_candidates_matches_conv2d():
    """Ragged-group projection: forward and all grads vs per-candidate convs.

    Same GEMM shapes run in the same order, so the observed difference is
    exactly zero; asserted to ASSOC_TOL to stay robust across BLAS builds.
    """
    rng = np.random.default_rng(0)
    sections = [4, 6, 5]
    c_out, l = 3, 7
    x_np = rng.standard_normal((2, sum(sections), l, l))
    w_np = [rng.standard_normal((c_out, s, 1, 1)) for s in sections]
    g_np = rng.standard_normal((2, c_out * len(sections), l, l))

    x_f = tensor(x_np.copy(), requires_grad=True)
    ws_f = [tensor(w.copy(), requires_grad=True) for w in w_np]
    out_f = ops_nn.project_candidates(x_f, ws_f, sections)
    out_f.backward(g_np)

    x_s = tensor(x_np.copy(), requires_grad=True)
    ws_s = [tensor(w.copy(), requires_grad=True) for w in w_np]
    offsets = np.cumsum([0] + sections)
    terms = [
        ops_nn.conv2d(x_s[:, int(offsets[m]):int(offsets[m + 1])], ws_s[m])
        for m in range(len(sections))
    ]
    from repro.autograd.ops_shape import concat
    out_s = concat(terms, axis=1)
    out_s.backward(g_np)

    np.testing.assert_allclose(out_f.data, out_s.data, atol=ASSOC_TOL)
    np.testing.assert_allclose(x_f.grad, x_s.grad, atol=ASSOC_TOL)
    for wf, ws in zip(ws_f, ws_s):
        np.testing.assert_allclose(wf.grad, ws.grad, atol=ASSOC_TOL)


def test_stack_conv_weights_centres_and_routes_grads():
    """Stacking is pure data movement: bit-identical values and gradients."""
    rng = np.random.default_rng(1)
    w3 = tensor(rng.standard_normal((4, 1, 3, 3)), requires_grad=True)
    w5 = tensor(rng.standard_normal((6, 1, 5, 5)), requires_grad=True)
    stacked = ops_nn.stack_conv_weights([w3, w5])
    assert stacked.shape == (10, 1, 5, 5)
    np.testing.assert_array_equal(stacked.data[:4, :, 1:4, 1:4], w3.data)
    np.testing.assert_array_equal(stacked.data[4:], w5.data)
    assert float(np.abs(stacked.data[:4, :, 0, :]).sum()) == 0.0
    g = rng.standard_normal(stacked.shape)
    stacked.backward(g)
    np.testing.assert_array_equal(w3.grad, g[:4, :, 1:4, 1:4])
    np.testing.assert_array_equal(w5.grad, g[4:])


def test_residual_add_shared_matches_sliced_adds():
    """Each slice adds the same shortcut tensor: bit-identical."""
    rng = np.random.default_rng(2)
    c, copies = 3, 4
    x_np = rng.standard_normal((2, c * copies, 5, 5))
    s_np = rng.standard_normal((2, c, 5, 5))
    g_np = rng.standard_normal(x_np.shape)
    x = tensor(x_np.copy(), requires_grad=True)
    s = tensor(s_np.copy(), requires_grad=True)
    out = ops_nn.residual_add_shared(x, s, copies)
    out.backward(g_np)
    for m in range(copies):
        np.testing.assert_array_equal(
            out.data[:, m * c:(m + 1) * c], x_np[:, m * c:(m + 1) * c] + s_np
        )
    np.testing.assert_array_equal(x.grad, g_np)
    np.testing.assert_allclose(
        s.grad, g_np.reshape(2, copies, c, 5, 5).sum(axis=1), atol=ASSOC_TOL
    )


def test_mix_candidates_matches_weighted_sum():
    """One einsum vs the serial mul/add chain: association only (<=1e-12)."""
    rng = np.random.default_rng(3)
    c, copies = 3, 3
    x_np = rng.standard_normal((2, c * copies, 4, 4))
    w_np = rng.standard_normal(copies)
    g_np = rng.standard_normal((2, c, 4, 4))
    x = tensor(x_np.copy(), requires_grad=True)
    w = tensor(w_np.copy(), requires_grad=True)
    out = ops_nn.mix_candidates(x, w, copies)
    out.backward(g_np)
    expect = sum(
        w_np[m] * x_np[:, m * c:(m + 1) * c] for m in range(copies)
    )
    np.testing.assert_allclose(out.data, expect, atol=ASSOC_TOL)
    expect_gx = np.concatenate(
        [w_np[m] * g_np for m in range(copies)], axis=1
    )
    np.testing.assert_allclose(x.grad, expect_gx, atol=ASSOC_TOL)
    expect_gw = [
        float((g_np * x_np[:, m * c:(m + 1) * c]).sum()) for m in range(copies)
    ]
    np.testing.assert_allclose(w.grad, expect_gw, atol=ASSOC_TOL)


def test_mixed_quantize_stacked_matches_serial():
    """Per candidate slice: byte-for-byte the mixed_quantize instruction
    stream (same max_abs, same path order, same accumulation order)."""
    rng = np.random.default_rng(4)
    bits = (4, 8, 16)
    sections = [3, 5]
    ws = [
        tensor(rng.standard_normal((s, 2, 3, 3)), requires_grad=True)
        for s in sections
    ]
    qws = [
        tensor(np.abs(rng.standard_normal(3)) + 0.1, requires_grad=True)
        for _ in sections
    ]
    stacked = mixed_quantize_stacked(ws, qws, bits)
    g = rng.standard_normal(stacked.shape)
    stacked.backward(g)

    ws_ref = [tensor(w.data.copy(), requires_grad=True) for w in ws]
    qws_ref = [tensor(q.data.copy(), requires_grad=True) for q in qws]
    offset = 0
    for m, (w, qw) in enumerate(zip(ws_ref, qws_ref)):
        out = mixed_quantize(w, qw, bits)
        out.backward(g[offset:offset + sections[m]])
        np.testing.assert_array_equal(
            stacked.data[offset:offset + sections[m]], out.data
        )
        np.testing.assert_array_equal(ws[m].grad, w.grad)
        np.testing.assert_array_equal(qws[m].grad, qw.grad)
        offset += sections[m]


def test_mixed_quantize_stacked_shared_quant_weights():
    """per_op/global sharing passes the same (Q,) tensor for every
    candidate; its gradient must accumulate across the slices."""
    rng = np.random.default_rng(5)
    bits = (4, 8)
    ws = [
        tensor(rng.standard_normal((2, 2, 1, 1)), requires_grad=True)
        for _ in range(3)
    ]
    shared = tensor(np.array([0.25, 0.75]), requires_grad=True)
    out = mixed_quantize_stacked(ws, [shared] * 3, bits)
    g = rng.standard_normal(out.shape)
    out.backward(g)

    expect = np.zeros(2)
    for m in range(3):
        w_ref = tensor(ws[m].data.copy(), requires_grad=True)
        qw_ref = tensor(shared.data.copy(), requires_grad=True)
        term = mixed_quantize(w_ref, qw_ref, bits)
        term.backward(g[2 * m:2 * m + 2])
        expect += qw_ref.grad
    np.testing.assert_allclose(shared.grad, expect, atol=ASSOC_TOL)


def test_fake_quantize_sliced_matches_serial():
    """Each slice replicates fake_quantize (per-slice max_abs) bitwise."""
    rng = np.random.default_rng(6)
    c, copies = 3, 3
    x_np = rng.standard_normal((2, c * copies, 4, 4))
    x = tensor(x_np.copy(), requires_grad=True)
    out = fake_quantize_sliced(x, copies, 8)
    g_np = rng.standard_normal(x_np.shape)
    out.backward(g_np)
    for m in range(copies):
        sl = slice(m * c, (m + 1) * c)
        ref_in = tensor(x_np[:, sl].copy(), requires_grad=True)
        ref = fake_quantize(ref_in, 8)
        ref.backward(g_np[:, sl])
        np.testing.assert_array_equal(out.data[:, sl], ref.data)
        np.testing.assert_array_equal(x.grad[:, sl], ref_in.grad)


def test_batch_norm_stacked_matches_serial_modules():
    """Fused BN over the stacked tensor: outputs and running stats match the
    per-candidate modules (BN statistics are per-channel)."""
    rng = np.random.default_rng(7)
    channels = [3, 5]
    bns = [BatchNorm2d(c) for c in channels]
    refs = [BatchNorm2d(c) for c in channels]
    for bn in bns + refs:
        bn.train()
        bn.gamma.data[:] = rng.standard_normal(bn.channels)
        bn.beta.data[:] = rng.standard_normal(bn.channels)
    for bn, ref in zip(bns, refs):
        ref.gamma.data[:] = bn.gamma.data
        ref.beta.data[:] = bn.beta.data
    x_np = rng.standard_normal((4, sum(channels), 3, 3))
    out = batch_norm_stacked(bns, tensor(x_np.copy(), requires_grad=True))
    offset = 0
    for bn, ref in zip(bns, refs):
        c = bn.channels
        ref_out = ref(tensor(x_np[:, offset:offset + c].copy()))
        np.testing.assert_allclose(
            out.data[:, offset:offset + c], ref_out.data, atol=ASSOC_TOL
        )
        np.testing.assert_allclose(bn.running_mean, ref.running_mean,
                                   atol=ASSOC_TOL)
        np.testing.assert_allclose(bn.running_var, ref.running_var,
                                   atol=ASSOC_TOL)
        offset += c


def test_batch_norm_stacked_rejects_mixed_eps():
    a, b = BatchNorm2d(2), BatchNorm2d(2, eps=1e-3)
    with pytest.raises(ValueError, match="eps"):
        batch_norm_stacked([a, b], tensor(np.zeros((1, 4, 2, 2))))
