"""Fault injection against the serving fleet: crashes, hangs, close races.

Process-tier scenarios drive real child processes through the scripted
fault hooks in :mod:`repro.runtime.fleet.testing` (``fault_scripts=``);
thread-tier races are choreographed with :class:`ScriptedEngine` gates.
The common contract under test: **no client ``result()`` call ever hangs**
— every submitted request resolves with an output or a typed error, and
the metrics invariant ``accepted == completed + failed + shed + queued``
survives every scenario.
"""

import threading

import numpy as np
import pytest

from repro.nas.arch_spec import ArchSpec, FCBlock, StemBlock
from repro.runtime import compile_spec
from repro.runtime.fleet import (
    FleetClosed,
    QueueFull,
    ServingFleet,
    WorkerCrashed,
)
from repro.runtime.fleet.testing import CRASH, ERROR, HANG, ScriptedEngine, slow

# Generous guard rail: a hit means a client hung, the bug these tests exist
# to catch — never a tuning knob for slow hosts.
WAIT = 30.0


def _fault_spec(name: str = "faulty") -> ArchSpec:
    return ArchSpec(
        name,
        [StemBlock(out_ch=4, kernel=3, stride=2), FCBlock(out_features=3)],
        input_size=8,
        input_channels=3,
    )


@pytest.fixture(scope="module")
def plan():
    return compile_spec(_fault_spec(), seed=0)


@pytest.fixture
def sample():
    return np.random.default_rng(7).standard_normal((3, 8, 8))


def _assert_quiescent_invariant(stats):
    fleet_counters = stats["fleet"]
    assert fleet_counters["queue_depth"] == 0
    assert fleet_counters["accepted"] == (
        fleet_counters["completed"]
        + fleet_counters["failed"]
        + fleet_counters["shed"]
    )


class TestProcessFaults:
    def test_crash_mid_batch_fails_fast_then_respawn_serves(
        self, plan, sample
    ):
        with ServingFleet(
            {"faulty": plan},
            workers=1,
            kind="process",
            fault_scripts={0: [CRASH]},
        ) as fleet:
            handle = fleet.submit("faulty", sample)
            with pytest.raises(WorkerCrashed):
                handle.result(timeout=WAIT)
            # The respawned worker serves the very next request.
            out = fleet.infer("faulty", sample, timeout=WAIT)
            assert out.shape == (3,)
            stats = fleet.stats()
            assert stats["workers"][0]["restarts"] == 1
            assert stats["workers"][0]["crashes"] == 1
            assert stats["workers"][0]["alive"]
            _assert_quiescent_invariant(stats)

    def test_crashed_slot_retires_and_survivor_drains_queue(
        self, plan, sample
    ):
        with ServingFleet(
            {"faulty": plan},
            workers=2,
            kind="process",
            max_queue=256,
            respawn=False,
            fault_scripts={0: [CRASH]},
        ) as fleet:
            # Single-sample round trips until the doomed worker wins a
            # dequeue race and dies; every call resolves, none hangs.
            crashes = 0
            for _ in range(200):
                try:
                    fleet.infer("faulty", sample, timeout=WAIT)
                except WorkerCrashed:
                    crashes += 1
                    break
            assert crashes == 1, "scripted crash never fired"
            # Slot 0 is retired (respawn off); the survivor drains a flood.
            handles = [fleet.submit("faulty", sample) for _ in range(16)]
            for handle in handles:
                assert handle.result(timeout=WAIT).shape == (3,)
            stats = fleet.stats()
            assert not stats["workers"][0]["alive"]
            assert stats["workers"][0]["restarts"] == 0
            assert stats["workers"][1]["alive"]
            _assert_quiescent_invariant(stats)

    def test_hang_detected_via_missed_heartbeats(self, plan, sample):
        with ServingFleet(
            {"faulty": plan},
            workers=1,
            kind="process",
            heartbeat_s=0.05,
            max_missed_heartbeats=4,
            fault_scripts={0: [HANG]},
        ) as fleet:
            handle = fleet.submit("faulty", sample)
            with pytest.raises(WorkerCrashed, match="heartbeat"):
                handle.result(timeout=WAIT)
            out = fleet.infer("faulty", sample, timeout=WAIT)
            assert out.shape == (3,)
            assert fleet.stats()["workers"][0]["restarts"] == 1

    def test_slow_batch_outlives_heartbeat_budget(self, plan, sample):
        # slow(0.6) far exceeds the 0.2 s silence budget — but the child
        # keeps heartbeating, so supervision must NOT kill it.
        with ServingFleet(
            {"faulty": plan},
            workers=1,
            kind="process",
            heartbeat_s=0.05,
            max_missed_heartbeats=4,
            fault_scripts={0: [slow(0.6)]},
        ) as fleet:
            out = fleet.infer("faulty", sample, timeout=WAIT)
            assert out.shape == (3,)
            stats = fleet.stats()
            assert stats["workers"][0]["crashes"] == 0
            assert stats["workers"][0]["restarts"] == 0

    def test_engine_error_fails_batch_but_worker_survives(
        self, plan, sample
    ):
        with ServingFleet(
            {"faulty": plan},
            workers=1,
            kind="process",
            fault_scripts={0: [ERROR]},
        ) as fleet:
            handle = fleet.submit("faulty", sample)
            with pytest.raises(RuntimeError, match="injected") as excinfo:
                handle.result(timeout=WAIT)
            assert not isinstance(excinfo.value, WorkerCrashed)
            out = fleet.infer("faulty", sample, timeout=WAIT)
            assert out.shape == (3,)
            stats = fleet.stats()
            assert stats["workers"][0]["restarts"] == 0
            assert stats["workers"][0]["crashes"] == 0
            assert stats["fleet"]["failed"] == 1
            _assert_quiescent_invariant(stats)

    def test_close_during_inflight_process_batch_drains_gracefully(
        self, plan, sample
    ):
        fleet = ServingFleet(
            {"faulty": plan},
            workers=1,
            kind="process",
            fault_scripts={0: [slow(0.5)]},
        )
        try:
            handle = fleet.submit("faulty", sample)
            # Wait until the batch is dispatched (out of the queue, into
            # the slow child), then close mid-compute.
            deadline = threading.Event()
            for _ in range(2000):
                if fleet.stats()["fleet"]["queue_depth"] == 0:
                    break
                deadline.wait(0.005)
            fleet.close()
            # Graceful drain: the in-flight request was answered, not
            # abandoned.
            assert handle.result(timeout=1.0).shape == (3,)
            _assert_quiescent_invariant(fleet.stats())
        finally:
            fleet.close()


class TestThreadCloseRaces:
    @pytest.fixture
    def scripted(self, monkeypatch):
        ScriptedEngine.reset()
        monkeypatch.setattr(
            "repro.runtime.fleet.fleet.Engine", ScriptedEngine
        )
        yield ScriptedEngine
        ScriptedEngine.release()

    def test_close_races_with_blocked_batch(self, plan, sample, scripted):
        scripted.reset(["block"])
        fleet = ServingFleet({"faulty": plan}, workers=1, max_queue=8)
        try:
            blocked = fleet.submit("faulty", sample)
            for _ in range(2000):
                if scripted.instances and scripted.instances[0].run_calls:
                    break
                threading.Event().wait(0.002)
            assert scripted.instances[0].run_calls == 1
            # These land behind the frozen batch and must not be served
            # after close() — they fail with FleetClosed instead.
            queued = [fleet.submit("faulty", sample) for _ in range(2)]
            closer = threading.Thread(target=fleet.close)
            closer.start()
            closer.join(timeout=0.2)
            assert closer.is_alive(), "close() returned with a batch in flight"
            scripted.release()
            closer.join(timeout=WAIT)
            assert not closer.is_alive()
            assert blocked.result(timeout=1.0).shape == (2,)
            for handle in queued:
                with pytest.raises(FleetClosed):
                    handle.result(timeout=1.0)
            stats = fleet.stats()
            assert stats["fleet"]["accepted"] == 3
            assert stats["fleet"]["completed"] == 1
            assert stats["fleet"]["failed"] == 2
            _assert_quiescent_invariant(stats)
        finally:
            scripted.release()
            fleet.close()

    def test_submit_close_race_stress_resolves_every_handle(
        self, plan, sample, scripted
    ):
        scripted.reset()  # every batch serves "ok" instantly
        fleet = ServingFleet(
            {"faulty": plan}, workers=2, max_queue=16, max_batch=4
        )
        handles = []
        lock = threading.Lock()
        start = threading.Barrier(5)

        def submitter():
            start.wait()
            for _ in range(40):
                try:
                    handle = fleet.submit("faulty", sample)
                except (QueueFull, FleetClosed):
                    continue
                with lock:
                    handles.append(handle)

        threads = [threading.Thread(target=submitter) for _ in range(4)]
        for thread in threads:
            thread.start()
        start.wait()
        # Mid-flight snapshots may observe queued work already completed
        # (depths and counters are sampled apart), but completions can
        # never outrun acceptance.
        for _ in range(20):
            counters = fleet.stats()["fleet"]
            assert counters["accepted"] >= (
                counters["completed"] + counters["failed"] + counters["shed"]
            )
        fleet.close()
        for thread in threads:
            thread.join(WAIT)
            assert not thread.is_alive()
        resolved = failed = 0
        for handle in handles:
            try:
                handle.result(timeout=WAIT)
                resolved += 1
            except FleetClosed:
                failed += 1
        assert resolved + failed == len(handles)
        stats = fleet.stats()
        assert stats["fleet"]["completed"] == resolved
        assert stats["fleet"]["failed"] == failed
        _assert_quiescent_invariant(stats)
