"""Regenerates **Table 1**: test error + GPU latency (Titan RTX) + FPGA
latency (ZCU102, recursive/CHaiDNN-style) for all eleven networks.

The benchmark measures the cost of the full analytic evaluation sweep; the
artifact holds the regenerated table next to the paper's numbers, plus the
headline checks (EDD-Net-1 fastest NAS model on GPU; speedup vs
Proxyless-gpu in the 1.4x ballpark).
"""

from conftest import register_artifact

from repro.eval.tables import TABLE1_MODELS, format_table, table1


def _full_table1():
    return table1()


def test_table1_regeneration(benchmark):
    rows = benchmark(_full_table1)
    assert len(rows) == len(TABLE1_MODELS)

    columns = [
        "Top-1 err (paper)", "Top-5 err (paper)",
        "GPU ms (ours)", "GPU ms (paper)",
        "FPGA ms (ours)", "FPGA ms (paper)",
    ]
    text = format_table(rows, columns, "Table 1: comparisons with existing NAS solutions")

    by_name = {r.name: r for r in rows}
    edd1 = by_name["EDD-Net-1"].values["GPU ms (ours)"]
    rivals = ("MnasNet-A1", "FBNet-C", "Proxyless-cpu", "Proxyless-Mobile", "Proxyless-gpu")
    fastest = all(edd1 < by_name[n].values["GPU ms (ours)"] for n in rivals)
    speedup = by_name["Proxyless-gpu"].values["GPU ms (ours)"] / edd1

    text += (
        f"\n\nHeadline checks:"
        f"\n  EDD-Net-1 fastest among NAS models on GPU: {fastest}"
        f"\n  EDD-Net-1 speedup over Proxyless-gpu: {speedup:.2f}x (paper: 1.40x)"
        f"\n  ShuffleNet-V2 NA on recursive FPGA flow: "
        f"{by_name['ShuffleNet-V2'].values['FPGA ms (ours)'] is None}"
    )
    register_artifact("table1", text)
    assert fastest
    assert 1.1 < speedup < 1.8
