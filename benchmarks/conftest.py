"""Benchmark-suite fixtures and artifact reporting.

Benches register their regenerated tables/figures with
:func:`register_artifact`; a terminal-summary hook prints every artifact
after the pytest-benchmark timing tables, so ``pytest benchmarks/
--benchmark-only`` shows the paper comparisons without extra flags.
Artifacts are also written to ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.config import EDDConfig
from repro.data.synthetic import SyntheticTaskConfig, make_synthetic_task
from repro.nas.space import SearchSpaceConfig

RESULTS_DIR = Path(__file__).parent / "results"

_ARTIFACTS: dict[str, str] = {}


def register_artifact(name: str, text: str) -> None:
    """Record a regenerated table/figure for the session summary + disk."""
    _ARTIFACTS[name] = text
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for name in sorted(_ARTIFACTS):
        terminalreporter.write_sep("=", f"artifact: {name}")
        terminalreporter.write_line(_ARTIFACTS[name])


# -- shared reduced-scale setups ---------------------------------------------
BENCH_SEED = 2024


@pytest.fixture(scope="session")
def bench_space() -> SearchSpaceConfig:
    """Reduced search space for CPU-scale co-search benches."""
    return SearchSpaceConfig.reduced(num_blocks=3, num_classes=6, input_size=12)


@pytest.fixture(scope="session")
def bench_splits():
    return make_synthetic_task(
        SyntheticTaskConfig(
            num_classes=6, image_size=12, train_per_class=12,
            val_per_class=6, test_per_class=8, seed=BENCH_SEED,
        )
    )


def bench_config(target: str, **overrides) -> EDDConfig:
    """Canonical reduced-scale co-search configuration."""
    from repro.hw.registry import get_target

    defaults = dict(
        target=target, epochs=4, batch_size=12, seed=BENCH_SEED,
        arch_start_epoch=1,
        resource_fraction=get_target(target).default_resource_fraction,
    )
    defaults.update(overrides)
    return EDDConfig(**defaults)
