"""Regenerates **Table 2**: EDD-Net-1 accuracy and latency on a GTX 1080 Ti
under 32/16/8-bit precision.

Latency comes from the calibrated GPU model (anchored at the paper's 16-bit
measurement).  Accuracy comes from quantisation-aware retraining on the
synthetic proxy task, using a width-scaled, depth-truncated EDD-Net-1 (the
first six searched blocks + head — the full 20-block network does not train
meaningfully on a 12x12 proxy task) averaged over two seeds.  The paper's
qualitative shape is what must hold: 16-bit matches 32-bit within noise and
8-bit does not collapse.
"""

import numpy as np
from conftest import register_artifact

from repro.baselines.model_zoo import edd_net_1
from repro.core.trainer import train_from_spec
from repro.data.synthetic import SyntheticTaskConfig, make_synthetic_task
from repro.eval.tables import format_table, table2
from repro.nas.arch_spec import ArchSpec, scale_spec


def _proxy_spec(num_classes: int) -> ArchSpec:
    full = scale_spec(
        edd_net_1(), width_mult=0.2, input_size=12,
        num_classes=num_classes, min_ch=6,
    )
    return ArchSpec(
        name="EDD-Net-1-proxy",
        blocks=full.blocks[:9] + full.blocks[-2:],  # stem + 6 MBs + head
        input_size=12,
        input_channels=3,
    )


def _train_precision_sweep():
    """Proxy-task QAT at the three precisions, two seeds each."""
    splits = make_synthetic_task(
        SyntheticTaskConfig(num_classes=6, image_size=12, train_per_class=16,
                            val_per_class=6, test_per_class=12, seed=2024)
    )
    spec = _proxy_spec(6)
    errors = {}
    for bits in (32, 16, 8):
        errs = [
            train_from_spec(
                spec, splits, epochs=14, batch_size=12, lr=0.1, bits=bits, seed=s,
            ).top1_error
            for s in (1, 2)
        ]
        errors[bits] = float(np.mean(errs))
    return errors


def test_table2_regeneration(benchmark):
    errors = benchmark.pedantic(_train_precision_sweep, rounds=1, iterations=1)
    rows = table2(measured_errors=errors)
    columns = [
        "Latency ms (ours)", "Latency ms (paper)",
        "Err % (paper)", "Proxy err % (ours)",
    ]
    text = format_table(
        rows, columns, "Table 2: EDD-Net-1 on GTX 1080 Ti across precisions"
    )
    lat = {r.name: r.values["Latency ms (ours)"] for r in rows}
    text += (
        "\n\nShape checks:"
        f"\n  latency strictly decreasing with precision: "
        f"{lat['32-bit'] > lat['16-bit'] > lat['8-bit']}"
        f"\n  16-bit proxy error within 5pp of 32-bit: "
        f"{abs(errors[16] - errors[32]) <= 5.0}"
        f"\n  8-bit usable (within 10pp of 32-bit): "
        f"{errors[8] <= errors[32] + 10.0}"
    )
    register_artifact("table2", text)

    assert lat["32-bit"] > lat["16-bit"] > lat["8-bit"]
    assert abs(errors[16] - errors[32]) <= 8.0
    assert errors[8] <= errors[32] + 15.0
