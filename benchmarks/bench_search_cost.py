"""Search-cost benchmark (the paper's "12 GPU-hour search" headline).

We cannot reproduce wall-clock GPU hours on CPU; what we can reproduce is
the *cost structure* that makes differentiable co-search cheap:

* one weight step and one architecture step cost O(one minibatch) each —
  the implementation-space search adds only the Eqs. 2-10 tensor algebra,
  which is microscopic next to the DNN forward/backward;
* the hardware-model evaluation scales with N x M x Q, not with the DNN.

The timings below substantiate both claims.
"""

import pytest
from conftest import bench_config, register_artifact

from repro.core.cosearch import EDDSearcher
from repro.nas.space import SearchSpaceConfig


@pytest.fixture(scope="module")
def searcher(bench_space, bench_splits):
    s = EDDSearcher(bench_space, bench_splits, bench_config("fpga_pipelined"))
    s.calibrate_alpha()
    return s


def test_weight_step_cost(benchmark, searcher, bench_splits):
    images = bench_splits.train.images[:12]
    labels = bench_splits.train.labels[:12]
    benchmark(searcher.weight_step, images, labels)


def test_arch_step_cost(benchmark, searcher, bench_splits):
    images = bench_splits.val.images[:12]
    labels = bench_splits.val.labels[:12]
    benchmark(searcher.arch_step, images, labels)


def test_hw_model_evaluation_cost(benchmark, searcher):
    """The implementation-search overhead alone: evaluating Perf/RES."""
    sample = searcher._expected_sample()

    def evaluate():
        return searcher.hw_model.evaluate(sample)

    result = benchmark(evaluate)
    assert float(result.perf_loss.data) > 0


def test_hw_model_cost_scales_with_space_not_dnn(benchmark):
    """Paper-scale space (N=20, M=9, Q=3): the Stage 1-4 algebra stays
    sub-millisecond-ish even at full size, supporting the efficiency claim."""
    from repro.core.config import EDDConfig
    from repro.hw.registry import build_hardware_model, quantization_for_target
    from repro.nas.supernet import constant_sample

    space = SearchSpaceConfig.paper_scale()
    config = EDDConfig(target="fpga_pipelined")
    model = build_hardware_model(space, config)
    sample = constant_sample(
        space, quantization_for_target("fpga_pipelined"),
        [0] * space.num_blocks, 1,
    )
    result = benchmark(model.evaluate, sample)
    register_artifact(
        "search_cost",
        "Search-cost notes: weight/arch step timings and the paper-scale\n"
        "hardware-model evaluation cost are in the pytest-benchmark table\n"
        "above (groups: bench_search_cost).  The implementation-space terms\n"
        f"(Eqs. 2-10) at N=20, M=9, Q=3 evaluate to perf={float(result.perf_loss.data):.3f} "
        f"units / RES={float(result.resource.data):.0f} DSPs per call.",
    )
