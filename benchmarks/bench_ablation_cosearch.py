"""**Ablation A (the paper's central claim)**: simultaneous co-search vs
architecture-only NAS with a fixed implementation vs random search.

All three searchers share the search space, dataset, epochs and device model
(recursive FPGA).  After searching, every derived solution is evaluated on
the *same* un-normalised device model — expected latency units under the
solution's own (re-tuned) implementation — plus proxy-task accuracy after
identical retraining.  The co-search should dominate the hardware objective
at comparable accuracy, because only it can trade bit-widths and parallel
factors during the search.
"""

import numpy as np
from conftest import bench_config, register_artifact

from repro.baselines.fixed_impl_nas import FixedImplementationNAS
from repro.baselines.random_search import random_search
from repro.core.cosearch import EDDSearcher
from repro.hw.registry import build_hardware_model, quantization_for_target
from repro.core.trainer import train_from_spec
from repro.nas.supernet import constant_sample


def _deployment_cost(space, spec, reference_model):
    """Deployed latency of a derived spec under the shared device model.

    Both solutions are deployed the same way the paper deploys Table 1
    entries: chosen ops + chosen bit-widths, with integer parallel factors
    re-tuned to the DSP budget (4-bit units are charged a LUT-proxy quarter
    DSP, see FPGAModel.retune_parallel_factors).  Latency follows Eq. 11-12
    directly: sum_i workload[i, m_i] * Phi(q_i) / pf_i.

    Returns (latency_units, resource_used).
    """
    from repro.hw.fpga import phi_latency_calibration, psi_dsp

    labels = spec.metadata["op_labels"]
    menu = [op.label for op in space.candidate_ops()]
    op_idx = [menu.index(label) for label in labels]
    bits = spec.metadata.get("block_bits", [16] * space.num_blocks)
    pf = reference_model.retune_parallel_factors(op_idx, bits)
    latency = sum(
        reference_model.workload[i, m] * phi_latency_calibration(bits[i]) / max(pf[i], 1)
        for i, m in enumerate(op_idx)
    )
    # Resource: each distinct IP once, at its (shared) factor and precision.
    used = {}
    for i, m in enumerate(op_idx):
        used[m] = max(psi_dsp(bits[i]), 0.25) * pf[i]
    return float(latency), float(sum(used.values()))


def _run_ablation(space, splits):
    config = bench_config("fpga_recursive", resource_fraction=0.1)

    co = EDDSearcher(space, splits, config)
    co_result = co.search(name="co-search")

    fixed = FixedImplementationNAS(space, splits, bench_config(
        "fpga_recursive", resource_fraction=0.1), fixed_bits=16)
    fixed_result = fixed.search(name="fixed-impl")
    fixed_result.spec.metadata.setdefault(
        "block_bits", [16] * space.num_blocks
    )

    rand_best, _ = random_search(
        space, splits, bench_config("fpga_recursive", resource_fraction=0.1),
        num_candidates=3, train_epochs=2, seed=5,
    )

    reference = build_hardware_model(
        space, bench_config("fpga_recursive", resource_fraction=0.1)
    )
    rows = {}
    for label, spec in (
        ("EDD co-search", co_result.spec),
        ("fixed-impl NAS", fixed_result.spec),
        ("random search", rand_best.spec),
    ):
        if "block_bits" not in spec.metadata:
            spec.metadata["block_bits"] = [16] * space.num_blocks
        cost, resource = _deployment_cost(space, spec, reference)
        trained = train_from_spec(spec, splits, epochs=5, batch_size=12, lr=0.08)
        rows[label] = (cost, resource, trained.top1_error)
    return rows, reference.resource_bound


def test_ablation_cosearch_vs_fixed_impl(benchmark, bench_space, bench_splits):
    rows, budget = benchmark.pedantic(
        _run_ablation, args=(bench_space, bench_splits), rounds=1, iterations=1,
    )
    lines = [
        "Ablation A: co-search vs fixed-implementation NAS vs random search",
        "(recursive FPGA target; shared space/data/epochs; every solution",
        "deployed with its own re-tuned integer parallel factors under the",
        f"same {budget:.0f}-DSP budget; latency via Eqs. 11-12)",
        "",
        f"{'method':18s} {'latency units':>14s} {'DSP used':>10s} {'top-1 err %':>12s}",
    ]
    for label, (cost, resource, err) in rows.items():
        lines.append(f"{label:18s} {cost:14.2e} {resource:10.1f} {err:12.1f}")
    co_cost = rows["EDD co-search"][0]
    fixed_cost = rows["fixed-impl NAS"][0]
    lines.append("")
    lines.append(
        f"co-search latency advantage over fixed-impl: {fixed_cost / co_cost:.2f}x"
        "\n(the co-search exploits low-precision paths: Phi(q) latency scaling"
        "\nplus cheaper multipliers per Psi(q) — exactly the implementation"
        "\ndimensions the fixed baseline cannot see; cf. paper Sec. 1)"
    )
    register_artifact("ablation_cosearch", "\n".join(lines))

    # The central qualitative claim: searching I helps the hardware objective.
    assert co_cost <= fixed_cost * 1.05
