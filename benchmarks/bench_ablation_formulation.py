"""**Ablation B**: the formulation choices of Secs. 3.2.4-3.2.5.

1. Log-Sum-Exp (Eq. 7) vs hard max for the throughput objective — LSE feeds
   gradient to every pipeline stage, the hard max only to the bottleneck, so
   LSE balances stage latencies measurably better.
2. tanh-suppressed resource sharing (Eq. 9) vs the naive sum (Eq. 8) on the
   recursive target — the naive sum over-counts shared IPs by up to N x.
3. Multiplicative Acc x Perf coupling (Eq. 1) vs FBNet-style additive loss.
"""

import numpy as np
from conftest import bench_config, register_artifact

from repro.autograd.tensor import Tensor
from repro.core.cosearch import EDDSearcher
from repro.hw.registry import quantization_for_target
from repro.hw.perf_loss import throughput_hard_max, throughput_lse
from repro.hw.resource import shared_resource, summed_resource
from repro.nas.supernet import constant_sample


def _lse_vs_max_balancing(space, splits):
    """Descend block latencies through each surrogate; measure imbalance."""
    from repro.nn.optim import Adam

    def optimise(surrogate):
        lat = Tensor(np.array([4.0, 1.0, 0.5]), requires_grad=True)
        opt = Adam([lat], lr=0.05)
        for _ in range(150):
            opt.zero_grad()
            # A pressure term keeps total capacity fixed so the only way to
            # reduce the max is to balance.
            loss = surrogate(lat) + ((lat.sum() - 5.5) ** 2) * 10.0
            loss.backward()
            opt.step()
        return lat.data

    lse_lat = optimise(lambda t: throughput_lse(t, sharpness=0.3))
    max_lat = optimise(throughput_hard_max)
    return lse_lat, max_lat


def _sharing_overcount(space):
    quant = quantization_for_target("fpga_recursive")
    n, m = space.num_blocks, space.num_ops
    theta = np.full((n, m), 1e-6)
    theta[:, 0] = 1.0  # every block picks op 0 -> one shared IP
    theta /= theta.sum(axis=1, keepdims=True)
    op_res = np.zeros(m)
    op_res[0] = 100.0
    shared = float(shared_resource(Tensor(theta), Tensor(op_res)).data)
    naive = float(summed_resource(Tensor(theta * op_res[None, :])).data)
    return shared, naive


def test_lse_vs_hard_max(benchmark, bench_space, bench_splits):
    lse_lat, max_lat = benchmark.pedantic(
        _lse_vs_max_balancing, args=(bench_space, bench_splits),
        rounds=1, iterations=1,
    )
    lse_spread = float(lse_lat.max() - lse_lat.min())
    max_spread = float(max_lat.max() - max_lat.min())
    shared, naive = _sharing_overcount(bench_space)

    text = "\n".join([
        "Ablation B: formulation choices",
        "",
        "1) Throughput surrogate (Eq. 7 LSE vs hard max), balancing 3 stages",
        f"   under fixed total capacity:",
        f"   LSE-final stage latencies : {np.round(lse_lat, 3)} (spread {lse_spread:.3f})",
        f"   max-final stage latencies : {np.round(max_lat, 3)} (spread {max_spread:.3f})",
        f"   LSE balances better: {lse_spread < max_spread}",
        "",
        "2) Resource sharing (Eq. 9 tanh vs Eq. 8 sum), every block selecting",
        "   the same 100-DSP IP:",
        f"   shared (Eq. 9): {shared:.1f} DSPs   naive sum: {naive:.1f} DSPs",
        f"   over-count factor avoided: {naive / max(shared, 1e-9):.2f}x",
    ])
    register_artifact("ablation_formulation", text)

    assert lse_spread < max_spread
    assert shared < naive
    assert shared < 110.0  # ~one IP


def test_multiplicative_vs_additive_coupling(benchmark, bench_space, bench_splits):
    """Eq. 1's product couples the gradients: when accuracy loss is high the
    performance gradient is amplified proportionally.  We verify the scaling
    behaviour directly on the loss surface."""
    from repro.core.loss import additive_loss, combined_loss
    from repro.hw.base import HwEvaluation

    def gradient_ratio():
        ratios = []
        for acc_value in (0.5, 2.0):
            perf = Tensor(np.asarray(1.5), requires_grad=True)
            ev = HwEvaluation(perf_loss=perf, resource=Tensor(np.asarray(0.0)))
            combined_loss(Tensor(np.asarray(acc_value)), ev, None).backward()
            ratios.append(float(perf.grad))
        mult_ratio = ratios[1] / ratios[0]

        ratios_add = []
        for acc_value in (0.5, 2.0):
            perf = Tensor(np.asarray(1.5), requires_grad=True)
            ev = HwEvaluation(perf_loss=perf, resource=Tensor(np.asarray(0.0)))
            additive_loss(Tensor(np.asarray(acc_value)), ev, None).backward()
            ratios_add.append(float(perf.grad))
        add_ratio = ratios_add[1] / ratios_add[0]
        return mult_ratio, add_ratio

    mult_ratio, add_ratio = benchmark(gradient_ratio)
    # Multiplicative: perf gradient scales 4x when acc quadruples; additive: flat.
    assert mult_ratio == 4.0
    assert add_ratio == 1.0
