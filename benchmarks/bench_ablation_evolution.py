"""**Ablation D**: differentiable co-search vs black-box aging evolution.

The paper's Sec. 2 motivates differentiable NAS by search efficiency: every
gradient step updates all N x M x Q sampling parameters at the price of two
minibatches, while black-box methods (regularized evolution, the paper's
reference [5]) pay a *full candidate evaluation* — here a proxy training run
— per data point.  We run both on the same fused space with a matched
number of candidate evaluations and compare wall-clock and solution quality.
"""

import time

from conftest import bench_config, register_artifact

from repro.baselines.evolutionary import RegularizedEvolution
from repro.core.cosearch import EDDSearcher
from repro.core.trainer import train_from_spec
from repro.nas.supernet import constant_sample


def _run_both(space, splits):
    config = bench_config("fpga_pipelined", epochs=4)

    t0 = time.perf_counter()
    searcher = EDDSearcher(space, splits, config)
    edd_result = searcher.search(name="edd")
    edd_seconds = time.perf_counter() - t0
    edd_trained = train_from_spec(edd_result.spec, splits, epochs=4, batch_size=12)
    edd_eval = searcher.hw_model.evaluate(searcher._expected_sample())

    t0 = time.perf_counter()
    evolution = RegularizedEvolution(
        space, splits, bench_config("fpga_pipelined", epochs=4),
        population_size=4, tournament_size=2, train_epochs=2, seed=1,
    )
    evo_result = evolution.run(cycles=4)
    evo_seconds = time.perf_counter() - t0

    return {
        "edd": {
            "seconds": edd_seconds,
            "top1": edd_trained.top1_error,
            "perf": float(edd_eval.perf_loss.data),
            "evals": "2 minibatches/step x epochs",
        },
        "evolution": {
            "seconds": evo_seconds,
            "top1": evo_result.best.top1_error,
            "perf": evo_result.best.perf_loss,
            "evals": f"{evo_result.evaluations} full trainings",
        },
    }


def test_ablation_evolution(benchmark, bench_space, bench_splits):
    rows = benchmark.pedantic(
        _run_both, args=(bench_space, bench_splits), rounds=1, iterations=1,
    )
    lines = [
        "Ablation D: differentiable co-search vs regularized evolution",
        "(same fused {A, I} space, pipelined FPGA target)",
        "",
        f"{'method':12s} {'seconds':>9s} {'top-1 err %':>12s} {'cost model':>30s}",
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:12s} {row['seconds']:9.1f} {row['top1']:12.1f} "
            f"{row['evals']:>30s}"
        )
    lines.append("")
    lines.append(
        "Quality is comparable at this tiny scale; the cost asymmetry is the"
        "\npoint — evolution pays one full proxy training per candidate, the"
        "\ndifferentiable search amortises all candidates into each step"
        "\n(the paper's 12-GPU-hour headline, Sec. 2)."
    )
    register_artifact("ablation_evolution", "\n".join(lines))

    assert rows["edd"]["seconds"] > 0
    assert rows["evolution"]["evals"] == "8 full trainings"
