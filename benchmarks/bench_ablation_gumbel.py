"""**Ablation C**: Gumbel-Softmax single-path sampling vs weighted mixtures.

The paper motivates Gumbel sampling by memory/speed: evaluating one sampled
candidate per block instead of all M (Sec. 3.1).  We time both forward
modes, and quantify the trade-off the reproduction documents in
DESIGN.md: hard single-path steps are ~M times cheaper, while soft steps
deliver a much larger accuracy gradient to Theta (BatchNorm absorbs the
scalar straight-through gate almost completely in a single-path chain).
"""

import numpy as np
from conftest import bench_config, register_artifact

from repro.autograd.tensor import Tensor
from repro.core.cosearch import build_supernet
from repro.nas.batched import BATCHED_SOFT_ENV
from repro.nas.gumbel import GumbelSoftmax
from repro.nn.functional import cross_entropy


def _theta_grad_norm(net, sampler, images, labels, hard):
    net.zero_grad()
    sample = net.sample(sampler, hard=hard)
    loss = cross_entropy(net(Tensor(images), sample=sample), labels)
    loss.backward()
    return float(np.abs(net.theta.grad).sum())


def test_hard_forward_cost(benchmark, bench_space, bench_splits):
    net = build_supernet(bench_space, bench_config("fpga_pipelined"))
    sampler = GumbelSoftmax(seed=0)
    x = Tensor(bench_splits.train.images[:12])

    benchmark(lambda: net(x, sample=net.sample(sampler, hard=True)))


def test_soft_forward_serial_oracle_cost(benchmark, bench_space, bench_splits,
                                         monkeypatch):
    """The per-candidate serial loop (``REPRO_BATCHED_SOFT=0``): the always-on
    oracle the batched evaluator is parity-tested against."""
    monkeypatch.setenv(BATCHED_SOFT_ENV, "0")
    net = build_supernet(bench_space, bench_config("fpga_pipelined"))
    sampler = GumbelSoftmax(seed=0)
    x = Tensor(bench_splits.train.images[:12])

    benchmark(lambda: net(x, sample=net.sample(sampler, hard=False)))


def test_soft_forward_cost_and_gradient_quality(benchmark, bench_space,
                                                bench_splits, monkeypatch):
    monkeypatch.setenv(BATCHED_SOFT_ENV, "1")
    net = build_supernet(bench_space, bench_config("fpga_pipelined"))
    sampler = GumbelSoftmax(seed=0)
    x = Tensor(bench_splits.train.images[:12])

    benchmark(lambda: net(x, sample=net.sample(sampler, hard=False)))

    images = bench_splits.train.images[:12]
    labels = bench_splits.train.labels[:12]
    hard_grads = [
        _theta_grad_norm(net, sampler, images, labels, hard=True) for _ in range(3)
    ]
    soft_grads = [
        _theta_grad_norm(net, sampler, images, labels, hard=False) for _ in range(3)
    ]
    text = "\n".join([
        "Ablation C: Gumbel single-path (hard) vs weighted mixture (soft)",
        "",
        f"theta accuracy-gradient |sum|, hard sampling: {np.mean(hard_grads):.2e}",
        f"theta accuracy-gradient |sum|, soft sampling: {np.mean(soft_grads):.2e}",
        f"soft/hard gradient ratio: {np.mean(soft_grads) / max(np.mean(hard_grads), 1e-30):.1e}",
        "",
        "Forward-pass timings are in the pytest-benchmark table (the hard",
        "single-path forward evaluates 1 of M candidates per block — the",
        "paper's memory/speed argument; M = "
        f"{bench_space.num_ops} here).  Soft timings appear twice: the",
        "fused batched evaluator (default) and the serial per-candidate",
        "oracle (REPRO_BATCHED_SOFT=0); both share the direct depthwise",
        "kernel, so the gap is dispatch/stacking overhead only.",
    ])
    register_artifact("ablation_gumbel", text)

    # Soft sampling must deliver a dramatically larger accuracy gradient.
    assert np.mean(soft_grads) > 10.0 * np.mean(hard_grads)
