"""Regenerates **Figure 4**: the three EDD-Net architectures.

The paper's figure shows the ImageNet-scale searched networks; we render
those (transcribed into the model zoo) and, to demonstrate that the release
actually *searches*, run the three reduced-scale co-searches (GPU target,
recursive FPGA, pipelined FPGA) and append the freshly derived architectures.
"""

from conftest import bench_config, bench_splits, bench_space, register_artifact

from repro.core.cosearch import EDDSearcher
from repro.eval.figures import figure4


def _three_searches(space, splits):
    specs = []
    for target, name in (
        ("gpu", "searched-gpu"),
        ("fpga_recursive", "searched-fpga-recursive"),
        ("fpga_pipelined", "searched-fpga-pipelined"),
    ):
        result = EDDSearcher(space, splits, bench_config(target)).search(name=name)
        specs.append(result.spec)
    return specs


def test_figure4_regeneration(benchmark, bench_space, bench_splits):
    specs = benchmark.pedantic(
        _three_searches, args=(bench_space, bench_splits), rounds=1, iterations=1,
    )
    text = figure4(extra_specs=specs)
    header = (
        "Figure 4: EDD-Net architectures (paper-scale transcriptions) followed\n"
        "by the three reduced-scale searches run by this benchmark.\n"
    )
    register_artifact("figure4", header + text)

    assert len(specs) == 3
    for spec in specs:
        assert spec.metadata["op_labels"], spec.name
    # The FPGA searches annotate per-block bit-widths; the GPU search one
    # network-wide precision (Sec. 4.2).
    gpu_bits = specs[0].metadata["block_bits"]
    assert len(set(gpu_bits)) == 1
    assert "block_bits" in specs[1].metadata
    assert specs[2].metadata["parallel_factors"]
