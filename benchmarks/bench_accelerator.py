"""**Extension (Sec. 4.3)**: EDD on a dedicated bit-serial accelerator.

The paper sketches the formulation (latency/energy proportional to operand
precisions, Loom-style) and defers the experiment to future work; this bench
runs it.  Expected behaviour: the latency x energy product objective pushes
the quantisation distribution hard toward the lowest bit-width the accuracy
term tolerates, and mixed per-block precision appears (unlike the GPU's
global constraint).
"""

import numpy as np
from conftest import bench_config, register_artifact

from repro.core.cosearch import EDDSearcher
from repro.eval.figures import render_architecture


def _accel_search(space, splits):
    searcher = EDDSearcher(space, splits, bench_config("accel", epochs=5))
    result = searcher.search(name="searched-accel")
    return searcher, result


def test_accelerator_cosearch(benchmark, bench_space, bench_splits):
    searcher, result = benchmark.pedantic(
        _accel_search, args=(bench_space, bench_splits), rounds=1, iterations=1,
    )
    bits = result.spec.metadata["block_bits"]
    phi_probs = searcher.supernet.phi_probabilities()
    # Average probability mass per bit-width across all (block, op) rows.
    mass = phi_probs.reshape(-1, phi_probs.shape[-1]).mean(axis=0)

    text = "\n".join([
        "Extension: dedicated bit-serial accelerator co-search (Sec. 4.3)",
        "",
        render_architecture(result.spec),
        "",
        f"derived per-block weight bits: {bits}",
        f"mean probability mass over (4, 8, 16)-bit: {np.round(mass, 3)}",
        f"lowest-precision mass exceeds uniform prior: {mass[0] > 1 / 3}",
        f"history final total loss: {result.history[-1].total_loss:.3f}",
    ])
    register_artifact("accelerator_extension", text)

    # Latency*energy ~ q^2 strongly rewards low precision on this objective.
    assert mass[0] > 1.0 / 3.0
    assert len(bits) == bench_space.num_blocks
