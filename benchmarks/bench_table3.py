"""Regenerates **Table 3**: EDD-Net-3 vs VGG16/DNNBuilder throughput on a
ZC706 (900 DSPs, 16-bit, pipelined accelerator).

Also reports the pipeline diagnosis: EDD-Net-3 is bottlenecked by a
depthwise stage while VGG16 is compute-bound on dense convolutions — the
mechanism behind the paper's "shallower but wider" observation for the
pipelined target.
"""

from conftest import register_artifact

from repro.eval.tables import format_table, table3
from repro.hw.analytic import fpga_pipelined_report
from repro.hw.device import ZC706
from repro.baselines.model_zoo import get_model


def _regenerate():
    rows = table3()
    reports = {
        name: fpga_pipelined_report(get_model(name), ZC706, 16)
        for name in ("VGG16", "EDD-Net-3")
    }
    return rows, reports


def test_table3_regeneration(benchmark):
    rows, reports = benchmark(_regenerate)
    columns = ["Top-1 err (paper)", "Top-5 err (paper)", "fps (ours)", "fps (paper)"]
    text = format_table(rows, columns, "Table 3: EDD-Net-3 vs DNNBuilder on ZC706")

    by_name = {r.name: r for r in rows}
    ratio = (
        by_name["EDD-Net-3"].values["fps (ours)"] / by_name["VGG16"].values["fps (ours)"]
    )
    text += f"\n\nThroughput ratio: {ratio:.2f}x (paper: 1.45x)"
    for name, report in reports.items():
        text += (
            f"\n{name}: bottleneck stage = {report.bottleneck_kind}"
            f"{report.bottleneck_kernel} "
            f"({report.stage_us[report.bottleneck_index]:.1f} us/frame, "
            f"{report.allocations[report.bottleneck_index]:.0f} DSPs)"
        )
    register_artifact("table3", text)

    assert ratio > 1.2
    assert reports["EDD-Net-3"].bottleneck_kind == "dwconv"
    assert reports["VGG16"].bottleneck_kind == "conv"
