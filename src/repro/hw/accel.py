"""Dedicated bit-serial accelerator model (Sec. 4.3 — the paper's future work).

Stripes/Loom/Bit-Fusion-style accelerators execute multiplications serially
over bit planes: convolution latency and energy scale (almost) proportionally
with the operand precisions.  The paper sketches how EDD extends to them —
"formulate the latency and energy of an operation proportionally to data
precision" — and defers the experiment to future work; we implement it.

Model (Loom-like): for operation ``op`` with weight precision ``q_w`` and a
fixed activation precision ``q_a``,

* ``latency^q  ∝ (q_w * q_a / 16^2) * workload / lanes``
* ``energy^q   ∝ (q_w * q_a / 16^2) * workload``

and the combined objective is the *product* of latency and energy losses
(Sec. 3.2.4 multi-objective rule).  Quantisation may vary per block/op
(dedicated accelerators handle mixed precision natively), and the only
implementation variable beyond ``Phi`` is the number of parallel lanes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.autograd.ops_basic import exp
from repro.autograd.tensor import Tensor
from repro.hw.base import HardwareModel, HwEvaluation
from repro.hw.device import AccelDevice, BIT_SERIAL_EDGE
from repro.hw.fpga import WORKLOAD_UNIT, candidate_workload
from repro.hw.perf_loss import latency_sum, multi_objective
from repro.nas.quantization import QuantizationConfig
from repro.nas.space import SearchSpaceConfig
from repro.nas.supernet import SampledArch
from repro.nn.module import Parameter

LN2 = math.log(2.0)


def bit_serial_latency_ms(spec, device: AccelDevice = BIT_SERIAL_EDGE,
                          weight_bits: int = 8) -> float:
    """Analytic bit-serial latency for a complete :class:`ArchSpec` network.

    The non-differentiable counterpart of :class:`BitSerialAccelModel`, used
    by the batch estimator (``repro.api.estimate``): every compute layer's
    MACs are retired across the device's lanes at a rate proportional to
    ``q_w * q_a / 16^2`` — the paper's Sec. 4.3 proportional-precision rule.
    """
    cycles_per_mac = weight_bits * device.activation_bits / 256.0
    total_macs = sum(
        layer.macs for layer in spec.layers()
        if layer.kind not in ("pool", "shuffle")
    )
    seconds = total_macs * cycles_per_mac / device.lanes / device.clock_hz
    return seconds * 1e3 * device.calibration_scale


class BitSerialAccelModel(HardwareModel):
    """Loom-style dedicated accelerator: perf/energy proportional to precision."""

    expected_sharing = "per_block_op"

    def __init__(
        self,
        space: SearchSpaceConfig,
        quant: QuantizationConfig,
        lanes_budget: int = 4096,
        alpha: float = 1.0,
        energy_weight: float = 1.0,
    ) -> None:
        if quant.sharing != "per_block_op":
            raise ValueError(
                "dedicated accelerators support per-op mixed precision; use "
                f"per_block_op sharing (got {quant.sharing!r})"
            )
        self.space = space
        self.quant = quant
        self.alpha = alpha
        self.energy_weight = energy_weight
        self.resource_bound = float(lanes_budget)

        geometries = space.block_geometries()
        ops = space.candidate_ops()
        n, m = space.num_blocks, space.num_ops
        workload = np.empty((n, m))
        for i, geom in enumerate(geometries):
            for j, op in enumerate(ops):
                workload[i, j] = candidate_workload(geom, op) / WORKLOAD_UNIT
        self.workload = workload
        # Bit-serial scaling: latency and energy ∝ q_w * q_a / 16^2.
        scale = np.array(
            [b * quant.activation_bits / 256.0 for b in quant.bitwidths]
        )
        self._qscale_t = Tensor(workload[:, :, None] * scale[None, None, :])
        # Parallel lanes per block (log2 parameterisation, like FPGA pf).
        pf0 = math.log2(max(lanes_budget / n, 1.0))
        self.pf = Parameter(np.full((n,), pf0))
        self._pf_max = math.log2(max(lanes_budget, 2.0))

    def implementation_parameters(self) -> list[Parameter]:
        return [self.pf]

    def project_parameters(self) -> None:
        np.clip(self.pf.data, 0.0, self._pf_max, out=self.pf.data)

    def evaluate(self, sample: SampledArch) -> HwEvaluation:
        self.validate_sample(sample)
        theta_w = sample.op_weights       # (N, M)
        phi_w = sample.quant_weights      # (N, M, Q)
        scaled = (phi_w * self._qscale_t).sum(axis=2)       # (N, M)
        block_energy = (theta_w * scaled).sum(axis=1)       # (N,)
        inv_lanes = exp(self.pf * (-LN2))                   # (N,)
        block_latency = block_energy * inv_lanes            # (N,)

        latency_loss = latency_sum(block_latency, alpha=self.alpha)
        energy_loss = latency_sum(block_energy, alpha=self.energy_weight)
        perf = multi_objective([latency_loss, energy_loss])
        res = exp(self.pf * LN2).sum()                      # total lanes
        return HwEvaluation(
            perf_loss=perf,
            resource=res,
            diagnostics={
                "latency_units": float(block_latency.data.sum()),
                "energy_units": float(block_energy.data.sum()),
                "lanes": float(res.data),
            },
        )
