"""Device descriptors for the boards and GPUs used in the paper's evaluation.

The analytic constants (efficiency factors, per-kernel overheads, calibration
scales) were fitted once against the paper's published anchor measurements
and are frozen here — see :mod:`repro.hw.calibration` for the anchor registry
and EXPERIMENTS.md for the fit narrative.  They play the same role as the
paper's own "normalized latency from directly measured values" (Sec. 4.2):
fixed per-device constants inside the formulation.

GPU model shape (batch 1):
    layer time = precision_scale(bits) * (kernel_floor + max(compute, memory))
where ``kernel_floor`` captures launch latency + occupancy floor per layer
kind — the reason deep thin networks (FBNet-C, Proxyless-cpu) measure slower
than ResNet18 on a Titan RTX despite having ~4x fewer MACs.

FPGA models:
* recursive (CHaiDNN-like): layers run sequentially on shared IPs holding the
  whole DSP budget; per-kind efficiency + a per-layer invocation overhead.
* pipelined (DNNBuilder-like): each conv layer is a pipeline stage; DSPs are
  allocated proportionally to nominal MACs; dense kxk (k>1) convolutions get
  the dual-MAC/kernel-reuse bonus that DNNBuilder exploits, depthwise stages
  do not — making them the usual bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GPUDevice:
    """An Nvidia GPU modelled at batch size 1 (the paper's GPU setting).

    ``kind_efficiency`` is the large-layer fraction of peak MAC throughput;
    ``kind_overhead_us`` is the per-kernel floor (launch + occupancy ramp).
    ``precision_scale`` multiplies whole-layer time per weight bit-width: the
    Titan RTX values reflect Turing's fast fp16/int8 paths; the GTX 1080 Ti
    values are the measured ratios of the paper's Table 2 (2.83/2.29/1.74 ms
    at 32/16/8 bit — Pascal gains come from memory traffic only).
    """

    name: str
    peak_fp32_tflops: float
    mem_bandwidth_gbps: float
    kind_efficiency: dict[str, float] = field(
        default_factory=lambda: {
            "conv": 0.12,
            "conv1x1": 0.05,
            "dwconv": 0.01,
            "fc": 0.09,
        }
    )
    kind_overhead_us: dict[str, float] = field(
        default_factory=lambda: {
            "conv": 60.0,
            "conv1x1": 60.0,
            "dwconv": 110.0,
            "fc": 60.0,
        }
    )
    pool_overhead_us: float = 15.0
    shuffle_overhead_us: float = 180.0
    precision_scale: dict[int, float] = field(
        default_factory=lambda: {32: 1.0, 16: 0.58, 8: 0.42}
    )
    calibration_scale: float = 1.0

    @property
    def peak_macs_per_s(self) -> float:
        # 1 MAC = 2 FLOPs.
        return self.peak_fp32_tflops * 1e12 / 2.0

    def precision_factor(self, bits: int) -> float:
        if bits not in self.precision_scale:
            raise ValueError(
                f"{self.name} has no precision entry for {bits}-bit "
                f"(available: {sorted(self.precision_scale)})"
            )
        return self.precision_scale[bits]


@dataclass(frozen=True)
class FPGADevice:
    """A Xilinx FPGA board with both accelerator-flow constant sets.

    ``macs_per_dsp`` per bit-width follows the paper's Psi reasoning: one
    DSP48 per 9..16-bit multiply, two 5..8-bit multiplies per DSP, and 4-bit
    multiplies in LUTs (modelled as 4 effective MACs per DSP-equivalent).
    ``dense_kernel_bonus`` is the extra MACs/DSP/cycle that dense kxk (k>1)
    convolutions achieve in DNNBuilder-style pipelines via kernel-level reuse
    — calibrated on the VGG16/ZC706 throughput anchor (27.7 fps).
    """

    name: str
    dsp_total: int
    clock_mhz: float = 200.0
    # -- recursive (CHaiDNN-like) flow --------------------------------------
    recursive_efficiency: dict[str, float] = field(
        default_factory=lambda: {
            "conv": 0.47,
            "conv1x1": 0.61,
            "dwconv": 0.082,
            "fc": 0.30,
        }
    )
    per_layer_overhead_us: float = 132.0
    # -- pipelined (DNNBuilder-like) flow -----------------------------------
    pipelined_efficiency: dict[str, float] = field(
        default_factory=lambda: {
            "conv": 0.90,
            "conv1x1": 0.55,
            "dwconv": 0.12,
            "fc": 0.30,
        }
    )
    dense_kernel_bonus: float = 2.6
    # -- shared --------------------------------------------------------------
    macs_per_dsp: dict[int, float] = field(
        default_factory=lambda: {16: 1.0, 8: 2.0, 4: 4.0}
    )
    calibration_scale: float = 1.0

    @property
    def clock_hz(self) -> float:
        return self.clock_mhz * 1e6

    def macs_per_cycle(self, bits: int) -> float:
        menu = sorted(self.macs_per_dsp)
        for candidate in menu:
            if bits <= candidate:
                return self.macs_per_dsp[candidate]
        widest = menu[-1]
        return self.macs_per_dsp[widest] * widest / bits


def layer_kind_key(kind: str, kernel: int) -> str:
    """Map a resolved layer onto an efficiency-table key."""
    if kind == "conv" and kernel == 1:
        return "conv1x1"
    if kind in ("conv", "dwconv", "fc"):
        return kind
    return "conv"  # pool/shuffle never reach the efficiency table


# -- the boards/GPUs of the paper's evaluation --------------------------------
# calibration_scale anchors (see repro/hw/calibration.py):
#   Titan RTX  -> ResNet18 @32-bit = 9.71 ms   (Table 1)
#   GTX 1080Ti -> EDD-Net-1 @16-bit = 2.29 ms  (Table 2)
#   ZC706      -> VGG16 pipelined = 27.7 fps   (Table 3, via dense_kernel_bonus)
#   ZCU102     -> ResNet18 recursive = 10.15 ms (Table 1, via recursive constants)

TITAN_RTX = GPUDevice(
    name="Titan RTX",
    peak_fp32_tflops=16.3,
    mem_bandwidth_gbps=672.0,
    precision_scale={32: 1.0, 16: 0.58, 8: 0.42},
    calibration_scale=3.067,
)

GTX_1080TI = GPUDevice(
    name="GTX 1080 Ti",
    peak_fp32_tflops=11.3,
    mem_bandwidth_gbps=484.0,
    precision_scale={32: 1.0, 16: 0.81, 8: 0.61},
    calibration_scale=0.3605,
)

P100 = GPUDevice(
    name="P100",
    peak_fp32_tflops=9.3,
    mem_bandwidth_gbps=732.0,
    precision_scale={32: 1.0, 16: 0.60, 8: 0.60},
    calibration_scale=3.0,
)

ZCU102 = FPGADevice(name="ZCU102", dsp_total=2520, clock_mhz=200.0)

ZC706 = FPGADevice(name="ZC706", dsp_total=900, clock_mhz=200.0)


@dataclass(frozen=True)
class AccelDevice:
    """A dedicated bit-serial accelerator (Stripes/Loom/Bit-Fusion family).

    ``lanes`` is the number of parallel bit-serial multiply lanes; one lane
    retires one MAC every ``q_w * q_a / 16^2`` normalised cycles (Sec. 4.3's
    proportional-precision rule), so latency scales with both operand
    precisions.
    """

    name: str
    lanes: int = 4096
    clock_mhz: float = 500.0
    activation_bits: int = 16
    calibration_scale: float = 1.0

    @property
    def clock_hz(self) -> float:
        return self.clock_mhz * 1e6


BIT_SERIAL_EDGE = AccelDevice(name="Bit-Serial Edge", lanes=4096, clock_mhz=500.0)

GPU_DEVICES = {d.name: d for d in (TITAN_RTX, GTX_1080TI, P100)}
FPGA_DEVICES = {d.name: d for d in (ZCU102, ZC706)}
ACCEL_DEVICES = {d.name: d for d in (BIT_SERIAL_EDGE,)}
