"""Stage-3 -> Stage-4 resource composition (Eqs. 8-10) and the Eq. 1 barrier.

Two aggregation modes:

* ``summed_resource`` — Eq. 8, pipelined accelerators: every block owns its
  hardware, total = sum.
* ``shared_resource`` — Eqs. 9-10, recursive (IP-reuse) accelerators: one IP
  per candidate operation is shared by every block that selects it, so its
  resource must be counted once.  ``tanh`` of the summed selection
  expectation suppresses multiple counting while remaining differentiable.

``resource_penalty`` is the exponential barrier ``beta * C^(RES - RES_ub)``
of Eq. 1, implemented with a normalised exponent so it neither overflows nor
vanishes for realistic DSP counts.
"""

from __future__ import annotations

import math

from repro.autograd.ops_basic import clip_ste, exp, tanh
from repro.autograd.tensor import Tensor

#: Exponent clamp keeping the barrier finite for absurd overshoots (exp(600)
#: ~ 1e260); the search never operates out there, but optimisers must not see
#: inf/nan if an early step wanders.
_MAX_EXPONENT = 600.0


def summed_resource(block_resources: Tensor) -> Tensor:
    """Eq. 8: ``RES = sum_i Res_i`` (no sharing)."""
    return block_resources.sum()


def shared_resource(theta_weights: Tensor, op_resources: Tensor) -> Tensor:
    """Eqs. 9-10: resource with cross-block IP sharing.

    Parameters
    ----------
    theta_weights:
        (N, M) Gumbel-Softmax selection weights ``GS(theta_i,m | theta_i)``.
    op_resources:
        (M,) per-candidate-IP resource ``Res(op^m)`` (already the Stage-2
        expectation over quantisation).

    For each op ``m``, ``tanh(sum_i GS(theta))`` saturates at 1 no matter how
    many blocks select the op, so the shared IP is counted at most once; ops
    selected nowhere contribute ~0.
    """
    if theta_weights.ndim != 2:
        raise ValueError(f"theta_weights must be (N, M), got {theta_weights.shape}")
    if op_resources.shape != (theta_weights.shape[1],):
        raise ValueError(
            f"op_resources shape {op_resources.shape} does not match "
            f"M={theta_weights.shape[1]}"
        )
    usage = tanh(theta_weights.sum(axis=0))  # (M,) in [0, 1)
    return (usage * op_resources).sum()


def resource_penalty(
    res: Tensor,
    res_ub: float,
    beta: float = 1.0,
    base: float = math.e,
    normalise: bool = True,
) -> Tensor:
    """Eq. 1 barrier term ``beta * C^(RES - RES_ub)``.

    With ``normalise=True`` the exponent is ``(RES - RES_ub) / RES_ub`` so a
    10% overshoot costs ``beta * C^0.1`` regardless of whether the bound is
    900 or 2520 DSPs — the paper leaves the exponent units unspecified, and
    raw DSP differences in the exponent would overflow ``C^1000``-style.
    """
    if res_ub <= 0:
        raise ValueError(f"res_ub must be positive, got {res_ub}")
    if base <= 1.0:
        raise ValueError(f"base must exceed 1 for a barrier, got {base}")
    excess = res - res_ub
    if normalise:
        excess = excess * (1.0 / res_ub)
    exponent = clip_ste(excess * math.log(base), -_MAX_EXPONENT, _MAX_EXPONENT)
    return exp(exponent) * beta
