"""Differentiable GPU latency model (Sec. 4.2 of the paper).

On GPUs the paper uses *measured, normalised* per-precision latencies as the
``Perf^q`` constants — the implementation variables reduce to the single
network-wide precision choice (TensorRT supports 8/16/32-bit but not mixed
precision), so ``phi_{i,m,q} = phi_q`` is shared globally.  Resource is fixed
for a given GPU (RES term drops out of Eq. 1).

Offline we substitute a roofline-style analytic table for the measurements:
``lat(op) = sum_layers max(compute, memory) + launch overhead``, scaled by
the per-precision factors derived from the paper's own Table 2 ratios.  Like
the paper's measurements, the table is a constant with respect to the search
— only the Gumbel weights over Theta/Phi are differentiable inputs.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.hw.base import HardwareModel, HwEvaluation
from repro.hw.device import GPUDevice, TITAN_RTX, layer_kind_key
from repro.hw.perf_loss import latency_sum
from repro.nas.quantization import QuantizationConfig
from repro.nas.space import BlockGeometry, CandidateOp, SearchSpaceConfig
from repro.nas.supernet import SampledArch

def mbconv_gpu_latency_us(
    geom: BlockGeometry, op: CandidateOp, device: GPUDevice, weight_bits: int
) -> float:
    """Latency (microseconds) of one MBConv candidate at batch 1.

    Same model shape as :func:`repro.hw.analytic.gpu_latency_ms`: three conv
    layers, each ``kernel floor + max(compute, memory)``, the whole op scaled
    by the device's per-precision factor (the paper's normalised measured
    latency under ``q``-bit) and calibration scale.  BN/activation are
    treated as fused into the convolutions.
    """
    hidden = geom.in_ch * op.expansion
    in_px = geom.in_h * geom.in_w
    out_px = geom.out_h * geom.out_w
    weight_bytes = weight_bits / 8.0
    act_bytes = 4.0 if weight_bits >= 32 else 2.0

    layers = (
        # (kind key, macs, weight params, in acts, out acts)
        ("conv1x1", in_px * geom.in_ch * hidden, geom.in_ch * hidden,
         in_px * geom.in_ch, in_px * hidden),
        ("dwconv", op.kernel**2 * out_px * hidden, op.kernel**2 * hidden,
         in_px * hidden, out_px * hidden),
        ("conv1x1", out_px * hidden * geom.out_ch, hidden * geom.out_ch,
         out_px * hidden, out_px * geom.out_ch),
    )
    total_us = 0.0
    for kind, macs, params, in_act, out_act in layers:
        eff = device.kind_efficiency[kind]
        compute_s = macs / (device.peak_macs_per_s * eff)
        bytes_moved = params * weight_bytes + (in_act + out_act) * act_bytes
        memory_s = bytes_moved / (device.mem_bandwidth_gbps * 1e9)
        total_us += device.kind_overhead_us[kind] + max(compute_s, memory_s) * 1e6
    return total_us * device.precision_factor(weight_bits) * device.calibration_scale


def skip_gpu_latency_us(
    geom: BlockGeometry, device: GPUDevice, weight_bits: int
) -> float:
    """Latency of the depth-search skip candidate on GPU.

    An identity skip fuses away entirely (zero cost); a shape-changing skip
    is one pointwise convolution kernel.
    """
    if geom.stride == 1 and geom.in_ch == geom.out_ch:
        return 0.0
    out_px = geom.out_h * geom.out_w
    macs = out_px * geom.in_ch * geom.out_ch
    params = geom.in_ch * geom.out_ch
    act_bytes = 4.0 if weight_bits >= 32 else 2.0
    eff = device.kind_efficiency["conv1x1"]
    compute_s = macs / (device.peak_macs_per_s * eff)
    bytes_moved = (
        params * (weight_bits / 8.0)
        + (geom.in_h * geom.in_w * geom.in_ch + out_px * geom.out_ch) * act_bytes
    )
    memory_s = bytes_moved / (device.mem_bandwidth_gbps * 1e9)
    total_us = device.kind_overhead_us["conv1x1"] + max(compute_s, memory_s) * 1e6
    return total_us * device.precision_factor(weight_bits) * device.calibration_scale


def candidate_gpu_latency_us(
    geom: BlockGeometry, op: CandidateOp, device: GPUDevice, weight_bits: int
) -> float:
    """Dispatch the per-op latency table over the candidate menu."""
    if op.is_skip:
        return skip_gpu_latency_us(geom, device, weight_bits)
    return mbconv_gpu_latency_us(geom, op, device, weight_bits)


class GPUModel(HardwareModel):
    """GPU latency objective with a single network-wide precision choice."""

    expected_sharing = "global"
    resource_bound = None

    def __init__(
        self,
        space: SearchSpaceConfig,
        quant: QuantizationConfig,
        device: GPUDevice = TITAN_RTX,
        alpha: float = 1.0,
    ) -> None:
        if quant.sharing != "global":
            raise ValueError(
                "GPU implementation search requires globally shared precision "
                f"(Sec. 4.2); got sharing={quant.sharing!r}"
            )
        self.space = space
        self.quant = quant
        self.device = device
        self.alpha = alpha

        geometries = space.block_geometries()
        ops = space.candidate_ops()
        n, m, q_levels = space.num_blocks, space.num_ops, quant.num_levels
        table = np.empty((n, m, q_levels))
        for i, geom in enumerate(geometries):
            for j, op in enumerate(ops):
                for k, bits in enumerate(quant.bitwidths):
                    table[i, j, k] = candidate_gpu_latency_us(geom, op, device, bits)
        #: (N, M, Q) measured-latency substitute table in microseconds.
        self.latency_table_us = table
        self._table_t = Tensor(table / 1e3)  # milliseconds for O(1) losses

    def evaluate(self, sample: SampledArch) -> HwEvaluation:
        self.validate_sample(sample)
        theta_w = sample.op_weights      # (N, M)
        phi_w = sample.quant_weights     # (Q,) global precision weights
        per_op = (self._table_t * phi_w).sum(axis=2)   # (N, M)
        block_perf = (theta_w * per_op).sum(axis=1)    # (N,)
        perf = latency_sum(block_perf, alpha=self.alpha)
        res = Tensor(0.0)  # GPU resource is fixed (Sec. 4.2)
        return HwEvaluation(
            perf_loss=perf,
            resource=res,
            diagnostics={
                "expected_latency_ms": float(block_perf.data.sum()),
                "precision_probs": 0.0,
            },
        )
