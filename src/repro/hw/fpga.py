"""Differentiable FPGA performance/resource model (Sec. 4.1 of the paper).

Implements the IP-based accelerator formulation:

* **Stage-1** (Eqs. 11-13): an operation ``op_i^m`` with parallel factor
  ``pf`` under ``q``-bit quantisation has latency
  ``Perf^q = Phi(q) * 2^-pf * workload`` where the workload sums the Eq. 12
  terms of its layers (conv / dwconv / "otherwise"), and resource
  ``Res^q = Psi(q) * 2^pf`` DSPs with the paper's piecewise ``Psi``.
* **Stage-2/3** (Eqs. 2-5): Gumbel-Softmax expectations over quantisation
  (``Phi``) and operation choice (``Theta``).
* **Stage-4**: recursive architecture -> latency sum (Eq. 6) with shared
  resource (Eqs. 9-10); pipelined architecture -> Log-Sum-Exp smooth-max
  (Eq. 7) with summed resource (Eq. 8).

Parallel factors are continuous during the search (``2^pf`` through
``exp``), initialised per Sec. 5 (``pf0 = log2(RES_ub / M)`` recursive,
``log2(RES_ub / (M*N))`` pipelined) and re-tuned to integers after
derivation via :mod:`repro.hw.allocation`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.autograd.ops_basic import exp
from repro.autograd.tensor import Tensor
from repro.hw.base import HardwareModel, HwEvaluation
from repro.hw.device import FPGADevice, ZCU102
from repro.hw.perf_loss import latency_sum, throughput_lse
from repro.hw.resource import shared_resource, summed_resource
from repro.nas.quantization import QuantizationConfig
from repro.nas.space import BlockGeometry, CandidateOp, SearchSpaceConfig
from repro.nas.supernet import SampledArch
from repro.nn.module import Parameter

ARCHITECTURES = ("recursive", "pipelined")

#: Workloads are expressed in mega-operations so losses are O(1)-magnitude.
WORKLOAD_UNIT = 1e6

LN2 = math.log(2.0)


def psi_dsp(bits: int) -> float:
    """The paper's piecewise DSP calibration Psi(q) (Sec. 4.1.2).

    One DSP48 per 9..16-bit multiply, half a DSP per 5..8-bit multiply
    (two MACs share one DSP), and zero DSPs below 5 bits (LUT arithmetic).
    """
    if bits <= 0:
        raise ValueError(f"invalid bit-width {bits}")
    if bits <= 4:
        return 0.0
    if bits <= 8:
        return 0.5
    if bits <= 16:
        return 1.0
    raise ValueError(f"FPGA model supports up to 16-bit weights, got {bits}")


def phi_latency_calibration(bits: int) -> float:
    """The paper's latency calibration Phi(q) = q, normalised to 16-bit = 1."""
    if bits <= 0:
        raise ValueError(f"invalid bit-width {bits}")
    return bits / 16.0


def mbconv_workload(geom: BlockGeometry, op: CandidateOp) -> float:
    """Eq. 12 workload of one MBConv candidate, in raw operations.

    Sums the three conv layers (conv-1x1 expand, dwconv-kxk, conv-1x1
    project) plus the "otherwise" terms (BN/activation passes after each
    conv) exactly as Eq. 11 sums over the layers of an operation.
    """
    hidden = geom.in_ch * op.expansion
    k2 = op.kernel * op.kernel
    in_px = geom.in_h * geom.in_w
    out_px = geom.out_h * geom.out_w
    conv_expand = in_px * geom.in_ch * hidden
    dw = k2 * out_px * hidden
    conv_project = out_px * hidden * geom.out_ch
    other = in_px * hidden + out_px * hidden + out_px * geom.out_ch
    return float(conv_expand + dw + conv_project + other)


def skip_workload(geom: BlockGeometry) -> float:
    """Workload of the depth-search skip candidate.

    A pure identity costs nothing; where the block must change shape the
    skip is a pointwise projection (conv-1x1 + BN 'otherwise' term).
    """
    if geom.stride == 1 and geom.in_ch == geom.out_ch:
        return 0.0
    out_px = geom.out_h * geom.out_w
    return float(out_px * geom.in_ch * geom.out_ch + out_px * geom.out_ch)


def candidate_workload(geom: BlockGeometry, op: CandidateOp) -> float:
    """Dispatch Eq. 12 over the candidate menu (MBConv or skip)."""
    if op.is_skip:
        return skip_workload(geom)
    return mbconv_workload(geom, op)


def candidate_uses_multipliers(geom: BlockGeometry, op: CandidateOp) -> bool:
    """Whether the candidate instantiates a multiplier IP at all.

    Identity skips are wiring, not hardware: they must not be charged
    ``Res^q = Psi(q) * 2^pf``.
    """
    return not (op.is_skip and geom.stride == 1 and geom.in_ch == geom.out_ch)


class FPGAModel(HardwareModel):
    """Differentiable FPGA model for either accelerator architecture.

    Parameters
    ----------
    space, quant:
        The search space and quantisation menu (must use ``per_op`` sharing
        for the recursive architecture — blocks sharing an IP share its
        implementation variables — and ``per_block_op`` for pipelined).
    device:
        Board descriptor providing the DSP budget RES_ub.
    architecture:
        ``"recursive"`` (latency objective, IP sharing) or ``"pipelined"``
        (throughput objective, per-block IPs).
    alpha:
        Perf-loss scale of Eqs. 6-7; tune so Perf_loss is commensurate with
        Acc_loss (the searcher can auto-scale, see core.cosearch).
    lse_sharpness:
        Tau of the smooth maximum (pipelined only).
    """

    def __init__(
        self,
        space: SearchSpaceConfig,
        quant: QuantizationConfig,
        device: FPGADevice = ZCU102,
        architecture: str = "recursive",
        alpha: float = 1.0,
        lse_sharpness: float = 1.0,
        resource_fraction: float = 1.0,
    ) -> None:
        if architecture not in ARCHITECTURES:
            raise ValueError(
                f"architecture must be one of {ARCHITECTURES}, got {architecture!r}"
            )
        expected = "per_op" if architecture == "recursive" else "per_block_op"
        if quant.sharing != expected:
            raise ValueError(
                f"{architecture} FPGA accelerator requires quantisation sharing "
                f"{expected!r} (got {quant.sharing!r}); see Sec. 3.2.5"
            )
        self.space = space
        self.quant = quant
        self.device = device
        self.architecture = architecture
        self.alpha = alpha
        self.lse_sharpness = lse_sharpness
        self.expected_sharing = expected
        self.resource_bound = device.dsp_total * resource_fraction

        n, m, q_levels = space.num_blocks, space.num_ops, quant.num_levels
        geometries = space.block_geometries()
        ops = space.candidate_ops()

        # Stage-1 constants.
        workload = np.empty((n, m))
        uses_mults = np.empty((n, m))
        for i, geom in enumerate(geometries):
            for j, op in enumerate(ops):
                workload[i, j] = candidate_workload(geom, op) / WORKLOAD_UNIT
                uses_mults[i, j] = float(candidate_uses_multipliers(geom, op))
        self.workload = workload
        #: (N, M) mask: identity skips carry no multiplier IP (no Res^q).
        self.uses_multipliers = uses_mults
        self.phi_q = np.array([phi_latency_calibration(b) for b in quant.bitwidths])
        self.psi_q = np.array([psi_dsp(b) for b in quant.bitwidths])
        # (N, M, Q) latency constants before the 2^-pf factor.
        self._qlat = workload[:, :, None] * self.phi_q[None, None, :]
        self._qlat_t = Tensor(self._qlat)
        self._psi_t = Tensor(self.psi_q)
        # Resource masks per aggregation mode: shared IPs exist if any block
        # would instantiate them; per-block IPs mask exactly per position.
        self._res_mask_op = Tensor(uses_mults.max(axis=0))   # (M,)
        self._res_mask_block_op = Tensor(uses_mults)          # (N, M)

        # Parallel factors (Sec. 5 initialisation).
        if architecture == "recursive":
            pf0 = math.log2(max(self.resource_bound / m, 1.0))
            self.pf = Parameter(np.full((m,), pf0))
        else:
            pf0 = math.log2(max(self.resource_bound / (m * n), 1.0))
            self.pf = Parameter(np.full((n, m), pf0))
        self._pf_max = math.log2(max(self.resource_bound, 2.0))

    # -- HardwareModel interface ------------------------------------------------
    def implementation_parameters(self) -> list[Parameter]:
        return [self.pf]

    def project_parameters(self) -> None:
        """Clamp pf into [0, log2(RES_ub)] after an optimiser step."""
        np.clip(self.pf.data, 0.0, self._pf_max, out=self.pf.data)

    def evaluate(self, sample: SampledArch) -> HwEvaluation:
        self.validate_sample(sample)
        if self.architecture == "recursive":
            return self._evaluate_recursive(sample)
        return self._evaluate_pipelined(sample)

    # -- recursive: Eq. 6 latency + Eq. 9/10 shared resource ---------------------
    def _evaluate_recursive(self, sample: SampledArch) -> HwEvaluation:
        theta_w = sample.op_weights          # (N, M)
        phi_w = sample.quant_weights         # (M, Q)
        inv_parallel = exp(self.pf * (-LN2))  # (M,) = 2^-pf
        # Stage-2: expectation over quantisation, still per (block, op).
        per_op = (phi_w * self._qlat_t).sum(axis=2)      # (N, M): Sum_q GS*qlat
        per_op = per_op * inv_parallel                   # broadcast (M,)
        # Stage-3: expectation over op choice.
        block_perf = (theta_w * per_op).sum(axis=1)      # (N,)
        perf = latency_sum(block_perf, alpha=self.alpha)

        # Resource: per shared IP, expectation over quantisation * 2^pf
        # (identity skips are wiring — masked out of Res).
        parallel = exp(self.pf * LN2)                    # (M,)
        op_res = (phi_w * self._psi_t).sum(axis=1) * parallel * self._res_mask_op
        res = shared_resource(theta_w, op_res)

        return HwEvaluation(
            perf_loss=perf,
            resource=res,
            diagnostics={
                "sum_block_latency_units": float(block_perf.data.sum()),
                "max_block_latency_units": float(block_perf.data.max()),
                "resource_dsp": float(res.data),
            },
        )

    # -- pipelined: Eq. 7 smooth-max + Eq. 8 summed resource ----------------------
    def _evaluate_pipelined(self, sample: SampledArch) -> HwEvaluation:
        theta_w = sample.op_weights          # (N, M)
        phi_w = sample.quant_weights         # (N, M, Q)
        inv_parallel = exp(self.pf * (-LN2))  # (N, M)
        per_op = (phi_w * self._qlat_t).sum(axis=2) * inv_parallel  # (N, M)
        block_perf = (theta_w * per_op).sum(axis=1)                 # (N,)
        perf = throughput_lse(block_perf, alpha=self.alpha, sharpness=self.lse_sharpness)

        parallel = exp(self.pf * LN2)                               # (N, M)
        op_res = (
            (phi_w * self._psi_t).sum(axis=2) * parallel * self._res_mask_block_op
        )                                                           # (N, M)
        block_res = (theta_w * op_res).sum(axis=1)                  # (N,)
        res = summed_resource(block_res)

        return HwEvaluation(
            perf_loss=perf,
            resource=res,
            diagnostics={
                "sum_block_latency_units": float(block_perf.data.sum()),
                "max_block_latency_units": float(block_perf.data.max()),
                "resource_dsp": float(res.data),
            },
        )

    # -- post-search re-tuning (Sec. 5 final step) ---------------------------------
    def retune_parallel_factors(
        self, op_indices: list[int], bitwidths: list[int]
    ) -> list[int]:
        """Integer parallelism for the derived network under the DSP budget.

        For the pipelined architecture each block gets its own factor; for
        the recursive architecture factors are per *used IP* (unique op) and
        the budget covers each IP once.

        Psi(q) = 0 below 5 bits (LUT arithmetic); for allocation purposes we
        charge those units a quarter DSP-equivalent as a LUT-budget proxy so
        the parallelism stays bounded on a real device.
        """
        from repro.hw.allocation import integer_parallel_factors

        if len(op_indices) != self.space.num_blocks:
            raise ValueError(
                f"need {self.space.num_blocks} op choices, got {len(op_indices)}"
            )
        dsp_per_unit = [max(psi_dsp(b), 0.25) for b in bitwidths]
        if self.architecture == "pipelined":
            workloads = [
                self.workload[i, m] * phi_latency_calibration(bitwidths[i])
                for i, m in enumerate(op_indices)
            ]
            unit_budget = self.resource_bound / max(
                sum(dsp_per_unit) / len(dsp_per_unit), 1e-3
            )
            return integer_parallel_factors(workloads, unit_budget)
        # Recursive: one IP per distinct op; its workload is the sum over the
        # blocks that use it.
        used = sorted(set(op_indices))
        ip_workload = {m: 0.0 for m in used}
        for i, m in enumerate(op_indices):
            ip_workload[m] += self.workload[i, m] * phi_latency_calibration(bitwidths[i])
        avg_dsp = sum(dsp_per_unit) / len(dsp_per_unit)
        unit_budget = self.resource_bound / max(avg_dsp, 1e-3)
        factors = integer_parallel_factors([ip_workload[m] for m in used], unit_budget)
        by_ip = dict(zip(used, factors))
        return [by_ip[m] for m in op_indices]
