"""Calibration anchor registry.

The analytic device models contain constants that the paper obtained by
measuring real hardware.  We fitted them once against the paper's published
numbers and froze them in :mod:`repro.hw.device`; this module records which
paper numbers served as anchors so tests can verify the anchors still hold
(and so readers can audit exactly what was fitted versus predicted).

Everything *not* listed as an anchor is a genuine prediction of the models.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.baselines.model_zoo import get_model
from repro.hw.analytic import (
    fpga_pipelined_throughput_fps,
    fpga_recursive_latency_ms,
    gpu_latency_ms,
)
from repro.hw.device import GTX_1080TI, TITAN_RTX, ZC706, ZCU102


@dataclass(frozen=True)
class Anchor:
    """One paper measurement used to pin a calibration constant."""

    experiment: str
    model: str
    device: str
    metric: str
    paper_value: float
    weight_bits: int
    tolerance: float  # relative tolerance the tests enforce

    def measured(self) -> float:
        spec = get_model(self.model)
        if self.metric == "gpu_latency_ms":
            device = TITAN_RTX if self.device == "Titan RTX" else GTX_1080TI
            return gpu_latency_ms(spec, device, weight_bits=self.weight_bits)
        if self.metric == "fpga_recursive_latency_ms":
            return fpga_recursive_latency_ms(spec, ZCU102, weight_bits=self.weight_bits)
        if self.metric == "fpga_pipelined_fps":
            return fpga_pipelined_throughput_fps(spec, ZC706, weight_bits=self.weight_bits)
        raise ValueError(f"unknown metric {self.metric!r}")

    def holds(self) -> bool:
        measured = self.measured()
        return abs(measured - self.paper_value) <= self.tolerance * self.paper_value


#: The four calibration anchors (one per device/flow).
ANCHORS: tuple[Anchor, ...] = (
    Anchor(
        experiment="Table 1",
        model="ResNet18",
        device="Titan RTX",
        metric="gpu_latency_ms",
        paper_value=9.71,
        weight_bits=32,
        tolerance=0.05,
    ),
    Anchor(
        experiment="Table 2",
        model="EDD-Net-1",
        device="GTX 1080 Ti",
        metric="gpu_latency_ms",
        paper_value=2.29,
        weight_bits=16,
        tolerance=0.05,
    ),
    Anchor(
        experiment="Table 1",
        model="ResNet18",
        device="ZCU102",
        metric="fpga_recursive_latency_ms",
        paper_value=10.15,
        weight_bits=16,
        tolerance=0.10,
    ),
    Anchor(
        experiment="Table 3",
        model="VGG16",
        device="ZC706",
        metric="fpga_pipelined_fps",
        paper_value=27.7,
        weight_bits=16,
        tolerance=0.10,
    ),
)


def verify_anchors() -> dict[str, tuple[float, float, bool]]:
    """Measured-vs-paper for every anchor: {key: (measured, paper, holds)}."""
    return {
        f"{a.model}@{a.device}": (a.measured(), a.paper_value, a.holds())
        for a in ANCHORS
    }


# ---------------------------------------------------------------- live refit
#
# The anchors above pin the device constants to the *paper's* hardware.  The
# compiled runtime produces a second source of truth: real latencies measured
# by Engine / InferenceServer on whatever machine is serving
# (``repro serve --calibration-log`` appends one ``predicted_vs_measured``
# record per run).  ``fit_calibration_scale`` closes the loop — it refits each
# device's ``calibration_scale`` so the analytic model predicts the serving
# log instead of the paper, which is exactly how the paper's constants were
# obtained in the first place.


@dataclass(frozen=True)
class CalibrationFit:
    """Refitted ``calibration_scale`` for one (target, device) pair.

    ``ratio_geomean`` is the geometric-mean measured/predicted latency ratio
    over the log's records; ``fitted_scale`` is the device constant that
    would bring the analytic prediction onto the measurements (latency flows
    scale linearly with ``calibration_scale``; the pipelined-throughput flow
    scales inversely, which :func:`fit_calibration_scale` accounts for).
    """

    target: str
    device: str
    metric: str
    records: int
    ratio_geomean: float
    current_scale: float
    fitted_scale: float

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (one row of ``repro``'s calibration report)."""
        return dataclasses.asdict(self)


def append_serving_record(path: str | Path, record: dict[str, Any]) -> Path:
    """Append one ``predicted_vs_measured`` record to a JSONL serving log."""
    path = Path(path)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record) + "\n")
    return path


def load_serving_log(path: str | Path) -> list[dict[str, Any]]:
    """Read a JSONL serving log written by :func:`append_serving_record`."""
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def fit_calibration_scale(
    records: Iterable[dict[str, Any]],
) -> dict[tuple[str, str], CalibrationFit]:
    """Fit per-device calibration scales from serving measurements.

    Args:
        records: ``predicted_vs_measured`` dicts (as produced by
            :func:`repro.hw.report.predicted_vs_measured` and logged by
            ``repro serve --calibration-log``).  Records without a usable
            prediction (unsupported target/bits combination) are skipped.

    Returns:
        ``{(target, device): CalibrationFit}``.  An empty dict if no record
        carried both a prediction and a measurement.
    """
    from repro.hw.registry import get_device

    grouped: dict[tuple[str, str], list[dict[str, Any]]] = {}
    for record in records:
        if not record.get("predicted_ms") or not record.get("measured_ms"):
            continue
        key = (record["target"], record["device"])
        grouped.setdefault(key, []).append(record)
    fits: dict[tuple[str, str], CalibrationFit] = {}
    for (target, device_name), group in grouped.items():
        log_ratio = sum(
            math.log(r["measured_ms"] / r["predicted_ms"]) for r in group
        ) / len(group)
        ratio = math.exp(log_ratio)
        device = get_device(device_name)
        current = float(device.calibration_scale)
        metric = group[0].get("metric", "latency_ms")
        # latency flows: predicted_ms ∝ scale.  pipelined throughput:
        # fps ∝ scale, so predicted_ms ∝ 1/scale.
        fitted = current / ratio if metric == "throughput_fps" else current * ratio
        fits[(target, device_name)] = CalibrationFit(
            target=target,
            device=device_name,
            metric=metric,
            records=len(group),
            ratio_geomean=ratio,
            current_scale=current,
            fitted_scale=fitted,
        )
    return fits


def fit_from_serving_log(path: str | Path) -> dict[tuple[str, str], CalibrationFit]:
    """Convenience wrapper: :func:`load_serving_log` + :func:`fit_calibration_scale`."""
    return fit_calibration_scale(load_serving_log(path))


def records_from_profile(profile: dict[str, Any]) -> list[dict[str, Any]]:
    """Per-op profile payload -> ``predicted_vs_measured``-shaped records.

    ``profile`` is the JSON written by ``repro infer --profile
    --profile-out`` (see :func:`repro.obs.profile_report`): it must carry
    ``target``/``device`` and per-op rows joining ``predicted_ms`` against
    the measured ``mean_ms``.  Each joined row becomes one calibration
    record (the ``model`` field names the op, e.g. ``net#op3:conv3x3dw``),
    so :func:`fit_calibration_scale` refits at op granularity — every op is
    an independent predicted/measured pair instead of one whole-model p50.

    Raises:
        ValueError: When the payload names no target/device (profile was
            taken without ``--target``) or joins no rows.
    """
    target = profile.get("target")
    device = profile.get("device")
    if not target or not device:
        raise ValueError(
            "profile payload has no target/device — run "
            "`repro infer --profile --target <t>` so rows carry predictions"
        )
    records: list[dict[str, Any]] = []
    for row in profile.get("rows", []):
        predicted = row.get("predicted_ms")
        measured = row.get("mean_ms")
        if not predicted or not measured:
            continue
        records.append({
            "model": (
                f"{profile.get('model', '?')}#op{row.get('index')}:"
                f"{row.get('label', row.get('kind', '?'))}"
            ),
            "target": target,
            "device": device,
            "bits": profile.get("bits"),
            "metric": "latency_ms",
            "predicted_ms": float(predicted),
            "measured_ms": float(measured),
        })
    if not records:
        raise ValueError(
            "profile payload joins no per-op rows (no op has both a "
            "prediction and a measured mean)"
        )
    return records


def fit_from_profile(path: str | Path) -> dict[tuple[str, str], CalibrationFit]:
    """Fit calibration scales from a per-op profile JSON file.

    The op-granular counterpart of :func:`fit_from_serving_log`, backing
    ``repro calibrate --per-op``.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return fit_calibration_scale(records_from_profile(payload))


def apply_fit(device, fit: CalibrationFit):
    """A copy of ``device`` with the refitted ``calibration_scale``.

    Devices are frozen dataclasses; the analytic estimators take the device
    as an argument, so predictions through the returned copy reproduce the
    serving log's latencies (up to the per-record spread around the geomean).
    """
    return dataclasses.replace(device, calibration_scale=fit.fitted_scale)
