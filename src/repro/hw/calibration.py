"""Calibration anchor registry.

The analytic device models contain constants that the paper obtained by
measuring real hardware.  We fitted them once against the paper's published
numbers and froze them in :mod:`repro.hw.device`; this module records which
paper numbers served as anchors so tests can verify the anchors still hold
(and so readers can audit exactly what was fitted versus predicted).

Everything *not* listed as an anchor is a genuine prediction of the models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.model_zoo import get_model
from repro.hw.analytic import (
    fpga_pipelined_throughput_fps,
    fpga_recursive_latency_ms,
    gpu_latency_ms,
)
from repro.hw.device import GTX_1080TI, TITAN_RTX, ZC706, ZCU102


@dataclass(frozen=True)
class Anchor:
    """One paper measurement used to pin a calibration constant."""

    experiment: str
    model: str
    device: str
    metric: str
    paper_value: float
    weight_bits: int
    tolerance: float  # relative tolerance the tests enforce

    def measured(self) -> float:
        spec = get_model(self.model)
        if self.metric == "gpu_latency_ms":
            device = TITAN_RTX if self.device == "Titan RTX" else GTX_1080TI
            return gpu_latency_ms(spec, device, weight_bits=self.weight_bits)
        if self.metric == "fpga_recursive_latency_ms":
            return fpga_recursive_latency_ms(spec, ZCU102, weight_bits=self.weight_bits)
        if self.metric == "fpga_pipelined_fps":
            return fpga_pipelined_throughput_fps(spec, ZC706, weight_bits=self.weight_bits)
        raise ValueError(f"unknown metric {self.metric!r}")

    def holds(self) -> bool:
        measured = self.measured()
        return abs(measured - self.paper_value) <= self.tolerance * self.paper_value


#: The four calibration anchors (one per device/flow).
ANCHORS: tuple[Anchor, ...] = (
    Anchor(
        experiment="Table 1",
        model="ResNet18",
        device="Titan RTX",
        metric="gpu_latency_ms",
        paper_value=9.71,
        weight_bits=32,
        tolerance=0.05,
    ),
    Anchor(
        experiment="Table 2",
        model="EDD-Net-1",
        device="GTX 1080 Ti",
        metric="gpu_latency_ms",
        paper_value=2.29,
        weight_bits=16,
        tolerance=0.05,
    ),
    Anchor(
        experiment="Table 1",
        model="ResNet18",
        device="ZCU102",
        metric="fpga_recursive_latency_ms",
        paper_value=10.15,
        weight_bits=16,
        tolerance=0.10,
    ),
    Anchor(
        experiment="Table 3",
        model="VGG16",
        device="ZC706",
        metric="fpga_pipelined_fps",
        paper_value=27.7,
        weight_bits=16,
        tolerance=0.10,
    ),
)


def verify_anchors() -> dict[str, tuple[float, float, bool]]:
    """Measured-vs-paper for every anchor: {key: (measured, paper, holds)}."""
    return {
        f"{a.model}@{a.device}": (a.measured(), a.paper_value, a.holds())
        for a in ANCHORS
    }
