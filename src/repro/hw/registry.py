"""The single target/device dispatch point of the reproduction.

EDD's formulation retargets to a new device by swapping the ``Perf_loss`` /
``RES`` model and the quantisation menu (Secs. 4-6); this module makes that
swap a *registration* instead of an edit to every call site.  Each hardware
target registers a :class:`TargetSpec` via the :func:`register_target`
decorator, bundling

* the :class:`~repro.nas.quantization.QuantizationConfig` factory (the
  per-device bit-width menu and Phi sharing mode),
* the differentiable :class:`~repro.hw.base.HardwareModel` factory used by
  the co-search,
* the named devices the target can deploy to (see :data:`DEVICES`) and its
  default one,
* the deployable weight bit-widths (used to clamp estimate requests with an
  explicit note instead of silently),
* the analytic estimator that maps a complete
  :class:`~repro.nas.arch_spec.ArchSpec` to a latency/throughput number, and
* the deployment-plan flow (``repro.hw.report``) if the target has one.

Everything else in the repo — the co-search, the CLI, the baselines, the
batch ``repro.api`` facade — resolves target strings here and only here, so
adding a device is one ``@register_target`` block plus a
:func:`register_device` call.  Unknown names raise a ``ValueError`` listing
the known ones.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.hw.accel import BitSerialAccelModel, bit_serial_latency_ms
from repro.hw.analytic import (
    UnsupportedNetworkError,
    fpga_pipelined_report,
    fpga_recursive_latency_ms,
    gpu_latency_ms,
)
from repro.hw.base import HardwareModel
from repro.hw.device import (
    BIT_SERIAL_EDGE,
    GTX_1080TI,
    P100,
    TITAN_RTX,
    ZC706,
    ZCU102,
    AccelDevice,
    FPGADevice,
    GPUDevice,
)
from repro.hw.energy import gpu_energy_mj
from repro.hw.fpga import FPGAModel
from repro.hw.gpu import GPUModel
from repro.nas.quantization import QuantizationConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports us)
    from repro.core.config import EDDConfig
    from repro.nas.arch_spec import ArchSpec
    from repro.nas.space import SearchSpaceConfig

Device = GPUDevice | FPGADevice | AccelDevice


def _norm(name: str) -> str:
    """Canonical registry key: lower-case, dashes for spaces/underscores."""
    return name.strip().lower().replace("_", "-").replace(" ", "-")


class Registry:
    """Name -> item store with duplicate rejection and helpful lookup errors."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._items: dict[str, Any] = {}
        self._display: dict[str, str] = {}  # normalised key -> registered name

    def register(self, name: str, item: Any) -> Any:
        key = _norm(name)
        if key in self._items:
            raise ValueError(f"{self.kind} {name!r} is already registered")
        self._items[key] = item
        self._display[key] = name
        return item

    def get(self, name: str) -> Any:
        key = _norm(name)
        if key not in self._items:
            raise ValueError(
                f"unknown {self.kind} {name!r}, known: {self.names()}"
            )
        return self._items[key]

    def names(self) -> list[str]:
        """The registered (display) names, e.g. ``fpga_recursive``."""
        return sorted(self._display.values())

    def items(self) -> list[tuple[str, Any]]:
        return sorted(
            (self._display[key], item) for key, item in self._items.items()
        )

    def __contains__(self, name: str) -> bool:
        return _norm(name) in self._items

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._items)


@dataclass(frozen=True)
class EstimateOutcome:
    """Result of one analytic target estimate for a complete network."""

    metric: str                      # "latency_ms" | "throughput_fps"
    value: float | None
    supported: bool = True
    note: str = ""
    extras: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class TargetSpec:
    """Everything the rest of the repo needs to know about one target."""

    name: str
    description: str
    quantization: Callable[[], QuantizationConfig]
    model_factory: Callable[..., HardwareModel]
    default_device: str
    devices: tuple[str, ...]
    deploy_bits: tuple[int, ...]
    default_deploy_bits: int
    default_resource_fraction: float = 1.0
    plan_flow: str | None = None
    estimator: Callable[["ArchSpec", Device, int], EstimateOutcome] | None = None

    def quant(self) -> QuantizationConfig:
        """The target's quantisation menu (bit-widths + Phi sharing)."""
        return self.quantization()

    def clamp_bits(self, bits: int) -> tuple[int, bool]:
        """Map a requested deploy bit-width onto the target's menu.

        Returns ``(effective_bits, clamped)``: the widest supported width not
        exceeding the request (or the narrowest supported width if the
        request undershoots the whole menu), and whether it differs from the
        request.  Callers surface ``clamped`` to the user — never silently.
        """
        if bits in self.deploy_bits:
            return bits, False
        below = [b for b in self.deploy_bits if b <= bits]
        effective = max(below) if below else min(self.deploy_bits)
        return effective, True

    def clamp_note(self, requested: int, effective: int) -> str:
        """The user-facing sentence explaining a bit-width clamp."""
        menu = "/".join(str(b) for b in self.deploy_bits)
        return (
            f"requested {requested}-bit clamped to {effective}-bit "
            f"({self.name} supports {menu})"
        )

    def resolve_device(self, device: str | Device | None = None) -> Device:
        """Default / named / already-constructed device -> device object."""
        if device is None:
            return DEVICES.get(self.default_device)
        if isinstance(device, str):
            key = _norm(device)
            allowed = tuple(_norm(d) for d in self.devices)
            if key not in allowed:
                raise ValueError(
                    f"device {device!r} is not registered for target "
                    f"{self.name!r}, known: {sorted(allowed)}"
                )
            return DEVICES.get(key)
        return device

    def build_model(
        self,
        space: "SearchSpaceConfig",
        config: "EDDConfig",
        device: str | Device | None = None,
    ) -> HardwareModel:
        """Instantiate the differentiable device model for the co-search."""
        return self.model_factory(
            space, self.quant(), config, self.resolve_device(device)
        )

    def estimate(
        self, spec: "ArchSpec", device: str | Device | None, bits: int
    ) -> EstimateOutcome:
        """Analytic estimate of ``spec`` deployed on this target."""
        if self.estimator is None:
            return EstimateOutcome(
                metric="latency_ms", value=None, supported=False,
                note=f"target {self.name!r} has no analytic estimator",
            )
        return self.estimator(spec, self.resolve_device(device), bits)


#: Named devices — CLI/configs refer to hardware by these strings.
DEVICES = Registry("device")

#: Registered hardware targets (one TargetSpec each).
TARGETS = Registry("target")


def register_device(name: str, device: Device) -> Device:
    """Add a named device; returns it so the call can double as assignment."""
    return DEVICES.register(name, device)


def register_target(**kwargs: Any) -> Callable[[Callable[..., HardwareModel]],
                                               Callable[..., HardwareModel]]:
    """Decorator: register the decorated hardware-model factory as a target.

    The decorated callable receives ``(space, quant, config, device)`` and
    returns a :class:`HardwareModel`; every other field of
    :class:`TargetSpec` is passed as a keyword argument to the decorator.
    """

    def wrap(factory: Callable[..., HardwareModel]) -> Callable[..., HardwareModel]:
        spec = TargetSpec(model_factory=factory, **kwargs)
        for dev in (spec.default_device, *spec.devices):
            if dev not in DEVICES:
                raise ValueError(
                    f"target {spec.name!r} references unregistered device "
                    f"{dev!r}, known: {DEVICES.names()}"
                )
        TARGETS.register(spec.name, spec)
        return factory

    return wrap


# -- module-level conveniences (the names the rest of the repo uses) ----------
def get_target(name: str) -> TargetSpec:
    """Look up a registered target; raises listing known names otherwise."""
    return TARGETS.get(name)


def get_device(name: str) -> Device:
    """Look up a registered device by its canonical name (case-insensitive)."""
    return DEVICES.get(name)


def target_names() -> list[str]:
    """Sorted names of every registered hardware target."""
    return TARGETS.names()


def device_names() -> list[str]:
    """Sorted names of every registered device."""
    return DEVICES.names()


def quantization_for_target(target: str) -> QuantizationConfig:
    """The per-device quantisation menus of Sec. 6, resolved via the registry."""
    return get_target(target).quant()


def build_hardware_model(
    space: "SearchSpaceConfig",
    config: "EDDConfig",
    device: str | Device | None = None,
) -> HardwareModel:
    """Instantiate the device model matching ``config.target``.

    The canonical build site: unknown targets raise here with the list of
    registered names, and the device defaults to the target's registered
    default board/GPU.
    """
    return get_target(config.target).build_model(space, config, device=device)


# -- the paper's devices ------------------------------------------------------
register_device("titan-rtx", TITAN_RTX)
register_device("gtx-1080ti", GTX_1080TI)
register_device("p100", P100)
register_device("zcu102", ZCU102)
register_device("zc706", ZC706)
register_device("bit-serial-edge", BIT_SERIAL_EDGE)


# -- the paper's targets ------------------------------------------------------
def _estimate_gpu(spec: "ArchSpec", device: Device, bits: int) -> EstimateOutcome:
    return EstimateOutcome(
        metric="latency_ms",
        value=gpu_latency_ms(spec, device, weight_bits=bits),
        extras={"energy_mj": gpu_energy_mj(spec, device, weight_bits=bits)},
    )


def _estimate_fpga_recursive(
    spec: "ArchSpec", device: Device, bits: int
) -> EstimateOutcome:
    try:
        value = fpga_recursive_latency_ms(spec, device, weight_bits=bits)
    except UnsupportedNetworkError as err:
        return EstimateOutcome(
            metric="latency_ms", value=None, supported=False, note=str(err)
        )
    return EstimateOutcome(metric="latency_ms", value=value)


def _estimate_fpga_pipelined(
    spec: "ArchSpec", device: Device, bits: int
) -> EstimateOutcome:
    try:
        report = fpga_pipelined_report(spec, device, weight_bits=bits)
    except UnsupportedNetworkError as err:
        return EstimateOutcome(
            metric="throughput_fps", value=None, supported=False, note=str(err)
        )
    return EstimateOutcome(
        metric="throughput_fps",
        value=report.fps,
        extras={
            "bottleneck_index": float(report.bottleneck_index),
            "dsp_allocated": float(sum(report.allocations)),
        },
        note=f"bottleneck {report.bottleneck_kind}{report.bottleneck_kernel}",
    )


def _estimate_accel(spec: "ArchSpec", device: Device, bits: int) -> EstimateOutcome:
    return EstimateOutcome(
        metric="latency_ms",
        value=bit_serial_latency_ms(spec, device, weight_bits=bits),
    )


@register_target(
    name="gpu",
    description="GPU latency target (Sec. 4.2): global precision via TensorRT",
    quantization=QuantizationConfig.gpu,
    default_device="titan-rtx",
    devices=("titan-rtx", "gtx-1080ti", "p100"),
    deploy_bits=(8, 16, 32),
    default_deploy_bits=32,
    default_resource_fraction=1.0,
    plan_flow="gpu",
    estimator=_estimate_gpu,
)
def _build_gpu(space, quant, config, device) -> HardwareModel:
    return GPUModel(space, quant, device=device)


@register_target(
    name="fpga_recursive",
    description="Recursive FPGA accelerator (CHaiDNN-like, Sec. 4.1): "
                "end-to-end latency with per-op IP sharing",
    quantization=lambda: QuantizationConfig.fpga(sharing="per_op"),
    default_device="zcu102",
    devices=("zcu102", "zc706"),
    deploy_bits=(4, 8, 16),
    default_deploy_bits=16,
    default_resource_fraction=0.05,
    plan_flow="recursive",
    estimator=_estimate_fpga_recursive,
)
def _build_fpga_recursive(space, quant, config, device) -> HardwareModel:
    return FPGAModel(
        space, quant, device=device, architecture="recursive",
        resource_fraction=config.resource_fraction,
    )


@register_target(
    name="fpga_pipelined",
    description="Pipelined FPGA accelerator (DNNBuilder-like, Sec. 4.1): "
                "throughput with per-stage resources and mixed precision",
    quantization=lambda: QuantizationConfig.fpga(sharing="per_block_op"),
    default_device="zc706",
    devices=("zc706", "zcu102"),
    deploy_bits=(4, 8, 16),
    default_deploy_bits=16,
    default_resource_fraction=0.05,
    plan_flow="pipelined",
    estimator=_estimate_fpga_pipelined,
)
def _build_fpga_pipelined(space, quant, config, device) -> HardwareModel:
    return FPGAModel(
        space, quant, device=device, architecture="pipelined",
        lse_sharpness=config.lse_sharpness,
        resource_fraction=config.resource_fraction,
    )


@register_target(
    name="accel",
    description="Dedicated bit-serial accelerator (Sec. 4.3): latency x "
                "energy proportional to operand precision",
    quantization=lambda: QuantizationConfig.fpga(sharing="per_block_op"),
    default_device="bit-serial-edge",
    devices=("bit-serial-edge",),
    deploy_bits=(4, 8, 16),
    default_deploy_bits=8,
    default_resource_fraction=1.0,
    plan_flow=None,
    estimator=_estimate_accel,
)
def _build_accel(space, quant, config, device) -> HardwareModel:
    return BitSerialAccelModel(space, quant, lanes_budget=device.lanes)
