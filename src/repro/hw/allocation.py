"""Integer resource-allocation algorithms shared by the analytic evaluators
and the post-search parallel-factor re-tuning (Sec. 5's final step).

The core routine is capacity-capped proportional allocation ("water
filling"): distribute a budget of compute units across stages proportionally
to their workloads, never exceeding a stage's usable cap, and re-distribute
the slack.  For a pipelined accelerator this equalises stage latencies
(maximises throughput); for a recursive accelerator it minimises total
latency across the reused IPs.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def waterfill_allocation(
    workloads: Sequence[float],
    budget: float,
    caps: Sequence[float] | None = None,
    minimum: float = 1.0,
) -> list[float]:
    """Allocate ``budget`` units over stages proportionally to ``workloads``.

    Every stage with non-zero workload receives at least ``minimum``; no
    stage exceeds its cap.  Slack from capped stages is re-distributed among
    the uncapped ones (iteratively, since re-distribution can hit new caps).

    Returns a list of continuous allocations summing to <= budget.
    """
    n = len(workloads)
    if n == 0:
        return []
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    caps = list(caps) if caps is not None else [math.inf] * n
    if len(caps) != n:
        raise ValueError(f"caps length {len(caps)} != workloads length {n}")

    active = [i for i in range(n) if workloads[i] > 0]
    alloc = [0.0] * n
    # Give every active stage its floor first.
    floor_total = minimum * len(active)
    remaining = budget - floor_total
    if remaining < 0:
        # Budget cannot even cover the floors: split it proportionally.
        for i in active:
            alloc[i] = min(budget * workloads[i] / sum(workloads[j] for j in active), caps[i])
        return alloc
    for i in active:
        alloc[i] = min(minimum, caps[i])

    unfixed = set(active)
    while remaining > 1e-12 and unfixed:
        total_w = sum(workloads[i] for i in unfixed)
        if total_w <= 0:
            break
        newly_capped = []
        distributed = 0.0
        for i in list(unfixed):
            share = remaining * workloads[i] / total_w
            headroom = caps[i] - alloc[i]
            # The third bound keeps the round's total at `remaining` even
            # when the proportional share rounds up (subnormal workloads
            # make remaining * w / total_w exceed remaining), so the sum
            # can never escape the budget.
            take = min(share, headroom, remaining - distributed)
            alloc[i] += take
            distributed += take
            if alloc[i] >= caps[i] - 1e-12:
                newly_capped.append(i)
        for i in newly_capped:
            unfixed.discard(i)
        if distributed <= 1e-12:
            break
        remaining -= distributed
    return alloc


def round_power_of_two(value: float, min_exp: int = 0, max_exp: int = 16) -> int:
    """Round an allocation to the nearest power of two (FPGA parallelism
    granularity, Sec. 4.1: parallelism increases as 64, 128, 256, ...)."""
    if value <= 1.0:
        return 2**min_exp
    exp = int(round(math.log2(value)))
    exp = max(min_exp, min(max_exp, exp))
    return 2**exp


def integer_parallel_factors(
    workloads: Sequence[float],
    budget: float,
    caps: Sequence[float] | None = None,
) -> list[int]:
    """Power-of-two parallelism per stage fitting (approximately) the budget.

    Rounds the water-filled allocation to powers of two, then greedily halves
    the least-utilised stages until the budget is respected.
    """
    continuous = waterfill_allocation(workloads, budget, caps=caps)
    factors = [round_power_of_two(a) if w > 0 else 0 for a, w in zip(continuous, workloads)]

    def total() -> int:
        return sum(factors)

    # Greedy repair: shrink the stage whose halving costs the least latency.
    while total() > budget:
        candidates = [i for i, f in enumerate(factors) if f > 1]
        if not candidates:
            break
        # Cost of halving stage i ~ workload_i / new_parallelism.
        best = min(candidates, key=lambda i: workloads[i] / (factors[i] / 2))
        factors[best] //= 2
    return factors
