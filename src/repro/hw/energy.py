"""GPU energy/power formulation — the paper's stated future work.

The conclusion lists "GPU power and resource formulation" as future work;
this module implements a first-order version so the multi-objective rule of
Sec. 3.2.4 (product of non-conflicting losses) can be exercised on GPUs:

* dynamic energy of an op ~ utilisation-weighted peak power x compute time;
* static (idle) energy ~ idle power x latency;
* ``Perf_loss = latency_loss * energy_loss`` via :func:`multi_objective`.

Energy favours *fewer, better-utilised* kernels even more strongly than
latency does (idle power burns during every launch gap), so energy-aware
searches lean further toward shallow networks — a testable qualitative
prediction.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.hw.base import HwEvaluation
from repro.hw.device import GPUDevice, TITAN_RTX
from repro.hw.gpu import GPUModel, mbconv_gpu_latency_us
from repro.hw.perf_loss import latency_sum, multi_objective
from repro.nas.quantization import QuantizationConfig
from repro.nas.space import BlockGeometry, CandidateOp, SearchSpaceConfig
from repro.nas.supernet import SampledArch

#: Board-power assumptions (W); calibration-free, used for relative energy.
PEAK_POWER_W = {"Titan RTX": 280.0, "GTX 1080 Ti": 250.0, "P100": 250.0}
IDLE_POWER_W = {"Titan RTX": 60.0, "GTX 1080 Ti": 55.0, "P100": 50.0}


def mbconv_gpu_energy_mj(
    geom: BlockGeometry, op: CandidateOp, device: GPUDevice, weight_bits: int
) -> float:
    """Energy (millijoules) of one MBConv op at batch 1.

    ``E = P_idle * t_total + (P_peak - P_idle) * utilisation * t_total``
    with utilisation approximated by the op's compute efficiency.  Lower
    precision reduces both time and switched capacitance (folded into the
    precision factor already applied to the latency).
    """
    latency_us = mbconv_gpu_latency_us(geom, op, device, weight_bits)
    peak = PEAK_POWER_W.get(device.name, 250.0)
    idle = IDLE_POWER_W.get(device.name, 50.0)
    # Depthwise-heavy ops run at low utilisation: approximate by the mean
    # kind efficiency normalised to the dense-conv efficiency.
    mean_eff = (
        2 * device.kind_efficiency["conv1x1"] + device.kind_efficiency["dwconv"]
    ) / 3.0
    utilisation = min(mean_eff / device.kind_efficiency["conv"], 1.0)
    power = idle + (peak - idle) * utilisation
    return power * latency_us * 1e-6 * 1e3  # W * s -> J -> mJ


class GPUEnergyModel(GPUModel):
    """GPU target optimising the latency x energy product (Sec. 3.2.4).

    Drop-in replacement for :class:`GPUModel` as the ``hw_model`` argument of
    :class:`~repro.core.cosearch.EDDSearcher`.
    """

    def __init__(
        self,
        space: SearchSpaceConfig,
        quant: QuantizationConfig,
        device: GPUDevice = TITAN_RTX,
        alpha: float = 1.0,
        energy_weight: float = 1.0,
    ) -> None:
        super().__init__(space, quant, device=device, alpha=alpha)
        self.energy_weight = energy_weight
        geometries = space.block_geometries()
        ops = space.candidate_ops()
        table = np.empty_like(self.latency_table_us)
        for i, geom in enumerate(geometries):
            for j, op in enumerate(ops):
                for k, bits in enumerate(quant.bitwidths):
                    table[i, j, k] = mbconv_gpu_energy_mj(geom, op, device, bits)
        #: (N, M, Q) per-op energy table in millijoules.
        self.energy_table_mj = table
        self._energy_t = Tensor(table)

    def evaluate(self, sample: SampledArch) -> HwEvaluation:
        self.validate_sample(sample)
        theta_w = sample.op_weights
        phi_w = sample.quant_weights
        lat_per_op = (self._table_t * phi_w).sum(axis=2)
        energy_per_op = (self._energy_t * phi_w).sum(axis=2)
        block_latency = (theta_w * lat_per_op).sum(axis=1)
        block_energy = (theta_w * energy_per_op).sum(axis=1)
        latency_loss = latency_sum(block_latency, alpha=self.alpha)
        energy_loss = latency_sum(block_energy, alpha=self.energy_weight)
        perf = multi_objective([latency_loss, energy_loss])
        return HwEvaluation(
            perf_loss=perf,
            resource=Tensor(0.0),
            diagnostics={
                "expected_latency_ms": float(block_latency.data.sum()),
                "expected_energy_mj": float(block_energy.data.sum()),
            },
        )


def gpu_energy_mj(spec, device: GPUDevice = TITAN_RTX, weight_bits: int = 32) -> float:
    """Analytic whole-network energy estimate (millijoules) for an ArchSpec."""
    from repro.hw.analytic import _gpu_layer_us
    from repro.hw.device import layer_kind_key

    peak = PEAK_POWER_W.get(device.name, 250.0)
    idle = IDLE_POWER_W.get(device.name, 50.0)
    total_mj = 0.0
    for layer in spec.layers():
        latency_us = _gpu_layer_us(layer, device, weight_bits) * device.calibration_scale
        if layer.kind in ("pool", "shuffle"):
            utilisation = 0.05
        else:
            kind = layer_kind_key(layer.kind, layer.kernel)
            utilisation = min(
                device.kind_efficiency[kind] / device.kind_efficiency["conv"], 1.0
            )
        power = idle + (peak - idle) * utilisation
        total_mj += power * latency_us * 1e-6 * 1e3
    return total_mj
