"""Per-layer deployment plans — the implementation artefact a hardware
engineer would take from the co-search.

Given any :class:`ArchSpec` and a device, render the layer-by-layer
implementation table the analytic models compute internally:

* **pipelined plan** — stage DSP allocations, per-stage time, bottleneck;
* **recursive plan** — per-layer cycles on the shared IPs plus invocation
  overheads;
* **gpu plan** — per-kernel time split into floor / compute / memory terms.

Exposed on the CLI as ``python -m repro explore --model X --plan <flow>``.
"""

from __future__ import annotations

from repro.hw.analytic import (
    _gpu_layer_us,
    fpga_pipelined_report,
)
from repro.hw.device import FPGADevice, GPUDevice, layer_kind_key
from repro.nas.arch_spec import ArchSpec, ResolvedLayer


def _layer_name(layer: ResolvedLayer) -> str:
    if layer.kind == "conv" and layer.kernel == 1:
        return "conv1x1"
    if layer.kind in ("conv", "dwconv"):
        return f"{layer.kind}{layer.kernel}x{layer.kernel}"
    return layer.kind


def _shape(layer: ResolvedLayer) -> str:
    return f"{layer.in_ch}x{layer.in_h}x{layer.in_w}->{layer.out_ch}x{layer.out_h}x{layer.out_w}"


def pipelined_plan(spec: ArchSpec, device: FPGADevice, weight_bits: int = 16) -> str:
    """DNNBuilder-style stage map: allocation, time, bottleneck marker."""
    report = fpga_pipelined_report(spec, device, weight_bits)
    stages = [l for l in spec.layers() if l.macs > 0 and l.kind != "fc"]
    lines = [
        f"Pipelined deployment plan: {spec.name} on {device.name} "
        f"({device.dsp_total} DSPs, {weight_bits}-bit)",
        f"{'#':>3s} {'stage':10s} {'shape':>28s} {'MACs':>9s} "
        f"{'DSPs':>7s} {'us/frame':>9s}",
    ]
    for i, (layer, alloc, us) in enumerate(
        zip(stages, report.allocations, report.stage_us)
    ):
        marker = "  <-- bottleneck" if i == report.bottleneck_index else ""
        lines.append(
            f"{i:3d} {_layer_name(layer):10s} {_shape(layer):>28s} "
            f"{layer.macs / 1e6:8.2f}M {alloc:7.1f} {us:9.1f}{marker}"
        )
    lines.append(
        f"\nthroughput: {report.fps:.1f} fps "
        f"(bottleneck: {report.bottleneck_kind}{report.bottleneck_kernel}); "
        f"DSPs allocated: {sum(report.allocations):.0f} / {device.dsp_total}"
    )
    return "\n".join(lines)


def recursive_plan(spec: ArchSpec, device: FPGADevice, weight_bits: int = 16) -> str:
    """CHaiDNN-style sequential schedule on shared IPs."""
    macs_per_cycle = device.macs_per_cycle(weight_bits)
    lines = [
        f"Recursive deployment plan: {spec.name} on {device.name} "
        f"({device.dsp_total} DSPs shared, {weight_bits}-bit)",
        f"{'#':>3s} {'layer':10s} {'shape':>28s} {'MACs':>9s} "
        f"{'compute us':>11s} {'overhead us':>12s}",
    ]
    total_us = 0.0
    index = 0
    for layer in spec.layers():
        if layer.kind in ("pool", "shuffle"):
            continue
        kind = layer_kind_key(layer.kind, layer.kernel)
        eff = device.recursive_efficiency[kind]
        compute_us = (
            layer.macs / (device.dsp_total * macs_per_cycle * eff)
            / device.clock_hz * 1e6
        )
        total_us += compute_us + device.per_layer_overhead_us
        lines.append(
            f"{index:3d} {_layer_name(layer):10s} {_shape(layer):>28s} "
            f"{layer.macs / 1e6:8.2f}M {compute_us:11.1f} "
            f"{device.per_layer_overhead_us:12.1f}"
        )
        index += 1
    lines.append(
        f"\nend-to-end latency: {total_us / 1e3 * device.calibration_scale:.2f} ms "
        f"({index} IP invocations)"
    )
    return "\n".join(lines)


def gpu_plan(spec: ArchSpec, device: GPUDevice, weight_bits: int = 32) -> str:
    """Per-kernel GPU time budget."""
    lines = [
        f"GPU deployment plan: {spec.name} on {device.name} ({weight_bits}-bit)",
        f"{'#':>3s} {'kernel':10s} {'shape':>28s} {'MACs':>9s} {'us':>8s}",
    ]
    total_us = 0.0
    for i, layer in enumerate(spec.layers()):
        us = _gpu_layer_us(layer, device, weight_bits)
        total_us += us
        lines.append(
            f"{i:3d} {_layer_name(layer):10s} {_shape(layer):>28s} "
            f"{layer.macs / 1e6:8.2f}M {us:8.1f}"
        )
    lines.append(
        f"\nbatch-1 latency: {total_us / 1e3 * device.calibration_scale:.2f} ms "
        f"({len(spec.layers())} kernels)"
    )
    return "\n".join(lines)


def predicted_vs_measured(
    spec: ArchSpec,
    target: str,
    measured_ms: float,
    device: str | None = None,
    bits: int | None = None,
) -> dict:
    """Analytic latency prediction next to a measured runtime latency.

    Resolves ``target``/``device`` through :mod:`repro.hw.registry`, converts
    throughput metrics to per-frame milliseconds, and returns a
    JSON-serialisable record with the measured/predicted ratio.  Used by the
    serving frontend (``repro serve``) to report how the compiled engine's
    per-request latency compares with the device models' estimate for the
    same spec — the paper's predicted-vs-implemented gap, live.
    """
    from repro.hw import registry

    tspec = registry.get_target(target)
    dev = tspec.resolve_device(device)
    requested = tspec.default_deploy_bits if bits is None else bits
    effective, clamped = tspec.clamp_bits(requested)
    outcome = tspec.estimate(spec, dev, effective)
    predicted_ms: float | None = None
    if outcome.supported and outcome.value:
        if outcome.metric == "latency_ms":
            predicted_ms = float(outcome.value)
        elif outcome.metric == "throughput_fps":
            predicted_ms = 1e3 / float(outcome.value)
    return {
        "model": spec.name,
        "target": tspec.name,
        "device": dev.name,
        "bits": effective,
        "clamped": clamped,
        "metric": outcome.metric,
        "predicted_ms": predicted_ms,
        "measured_ms": float(measured_ms),
        "measured_over_predicted": (
            float(measured_ms) / predicted_ms if predicted_ms else None
        ),
    }


def deployment_plan(
    spec: ArchSpec,
    flow: str,
    device: GPUDevice | FPGADevice,
    weight_bits: int | None = None,
) -> str:
    """Dispatch over the three implementation flows."""
    if flow == "pipelined":
        return pipelined_plan(spec, device, weight_bits or 16)
    if flow == "recursive":
        return recursive_plan(spec, device, weight_bits or 16)
    if flow == "gpu":
        return gpu_plan(spec, device, weight_bits or 32)
    raise ValueError(f"unknown flow {flow!r}; expected gpu/recursive/pipelined")
