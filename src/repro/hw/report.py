"""Per-layer deployment plans — the implementation artefact a hardware
engineer would take from the co-search.

Given any :class:`ArchSpec` and a device, render the layer-by-layer
implementation table the analytic models compute internally:

* **pipelined plan** — stage DSP allocations, per-stage time, bottleneck;
* **recursive plan** — per-layer cycles on the shared IPs plus invocation
  overheads;
* **gpu plan** — per-kernel time split into floor / compute / memory terms.

Exposed on the CLI as ``python -m repro explore --model X --plan <flow>``.
"""

from __future__ import annotations

from repro.hw.analytic import (
    _gpu_layer_us,
    fpga_pipelined_report,
)
from repro.hw.device import FPGADevice, GPUDevice, layer_kind_key
from repro.nas.arch_spec import ArchSpec, ResolvedLayer


def _layer_name(layer: ResolvedLayer) -> str:
    if layer.kind == "conv" and layer.kernel == 1:
        return "conv1x1"
    if layer.kind in ("conv", "dwconv"):
        return f"{layer.kind}{layer.kernel}x{layer.kernel}"
    return layer.kind


def _shape(layer: ResolvedLayer) -> str:
    return f"{layer.in_ch}x{layer.in_h}x{layer.in_w}->{layer.out_ch}x{layer.out_h}x{layer.out_w}"


def pipelined_plan(spec: ArchSpec, device: FPGADevice, weight_bits: int = 16) -> str:
    """DNNBuilder-style stage map: allocation, time, bottleneck marker."""
    report = fpga_pipelined_report(spec, device, weight_bits)
    stages = [l for l in spec.layers() if l.macs > 0 and l.kind != "fc"]
    lines = [
        f"Pipelined deployment plan: {spec.name} on {device.name} "
        f"({device.dsp_total} DSPs, {weight_bits}-bit)",
        f"{'#':>3s} {'stage':10s} {'shape':>28s} {'MACs':>9s} "
        f"{'DSPs':>7s} {'us/frame':>9s}",
    ]
    for i, (layer, alloc, us) in enumerate(
        zip(stages, report.allocations, report.stage_us)
    ):
        marker = "  <-- bottleneck" if i == report.bottleneck_index else ""
        lines.append(
            f"{i:3d} {_layer_name(layer):10s} {_shape(layer):>28s} "
            f"{layer.macs / 1e6:8.2f}M {alloc:7.1f} {us:9.1f}{marker}"
        )
    lines.append(
        f"\nthroughput: {report.fps:.1f} fps "
        f"(bottleneck: {report.bottleneck_kind}{report.bottleneck_kernel}); "
        f"DSPs allocated: {sum(report.allocations):.0f} / {device.dsp_total}"
    )
    return "\n".join(lines)


def recursive_plan(spec: ArchSpec, device: FPGADevice, weight_bits: int = 16) -> str:
    """CHaiDNN-style sequential schedule on shared IPs."""
    macs_per_cycle = device.macs_per_cycle(weight_bits)
    lines = [
        f"Recursive deployment plan: {spec.name} on {device.name} "
        f"({device.dsp_total} DSPs shared, {weight_bits}-bit)",
        f"{'#':>3s} {'layer':10s} {'shape':>28s} {'MACs':>9s} "
        f"{'compute us':>11s} {'overhead us':>12s}",
    ]
    total_us = 0.0
    index = 0
    for layer in spec.layers():
        if layer.kind in ("pool", "shuffle"):
            continue
        kind = layer_kind_key(layer.kind, layer.kernel)
        eff = device.recursive_efficiency[kind]
        compute_us = (
            layer.macs / (device.dsp_total * macs_per_cycle * eff)
            / device.clock_hz * 1e6
        )
        total_us += compute_us + device.per_layer_overhead_us
        lines.append(
            f"{index:3d} {_layer_name(layer):10s} {_shape(layer):>28s} "
            f"{layer.macs / 1e6:8.2f}M {compute_us:11.1f} "
            f"{device.per_layer_overhead_us:12.1f}"
        )
        index += 1
    lines.append(
        f"\nend-to-end latency: {total_us / 1e3 * device.calibration_scale:.2f} ms "
        f"({index} IP invocations)"
    )
    return "\n".join(lines)


def gpu_plan(spec: ArchSpec, device: GPUDevice, weight_bits: int = 32) -> str:
    """Per-kernel GPU time budget."""
    lines = [
        f"GPU deployment plan: {spec.name} on {device.name} ({weight_bits}-bit)",
        f"{'#':>3s} {'kernel':10s} {'shape':>28s} {'MACs':>9s} {'us':>8s}",
    ]
    total_us = 0.0
    for i, layer in enumerate(spec.layers()):
        us = _gpu_layer_us(layer, device, weight_bits)
        total_us += us
        lines.append(
            f"{i:3d} {_layer_name(layer):10s} {_shape(layer):>28s} "
            f"{layer.macs / 1e6:8.2f}M {us:8.1f}"
        )
    lines.append(
        f"\nbatch-1 latency: {total_us / 1e3 * device.calibration_scale:.2f} ms "
        f"({len(spec.layers())} kernels)"
    )
    return "\n".join(lines)


def predicted_vs_measured(
    spec: ArchSpec,
    target: str,
    measured_ms: float,
    device: str | None = None,
    bits: int | None = None,
) -> dict:
    """Analytic latency prediction next to a measured runtime latency.

    Resolves ``target``/``device`` through :mod:`repro.hw.registry`, converts
    throughput metrics to per-frame milliseconds, and returns a
    JSON-serialisable record with the measured/predicted ratio.  Used by the
    serving frontend (``repro serve``) to report how the compiled engine's
    per-request latency compares with the device models' estimate for the
    same spec — the paper's predicted-vs-implemented gap, live.
    """
    from repro.hw import registry

    tspec = registry.get_target(target)
    dev = tspec.resolve_device(device)
    requested = tspec.default_deploy_bits if bits is None else bits
    effective, clamped = tspec.clamp_bits(requested)
    outcome = tspec.estimate(spec, dev, effective)
    predicted_ms: float | None = None
    if outcome.supported and outcome.value:
        if outcome.metric == "latency_ms":
            predicted_ms = float(outcome.value)
        elif outcome.metric == "throughput_fps":
            predicted_ms = 1e3 / float(outcome.value)
    return {
        "model": spec.name,
        "target": tspec.name,
        "device": dev.name,
        "bits": effective,
        "clamped": clamped,
        "metric": outcome.metric,
        "predicted_ms": predicted_ms,
        "measured_ms": float(measured_ms),
        "measured_over_predicted": (
            float(measured_ms) / predicted_ms if predicted_ms else None
        ),
    }


def plan_op_layer(plan, op) -> ResolvedLayer | None:
    """Reconstruct the analytic-layer view of one compiled plan op.

    The executable plan (:class:`repro.runtime.plan.ExecutionPlan`) has lost
    the :class:`ArchSpec` layer list — geometry lives in buffer shapes, baked
    weight arrays and op attrs.  This rebuilds a :class:`ResolvedLayer` for
    the ops the analytic device models know how to price (conv / dwconv /
    fc / pool); data-movement ops (flatten, add, concat) return ``None``.

    Fused ops keep the convolution's geometry: the MAC count only depends on
    the output extent and the weight shape, so residual-add or pool fusion
    does not change the compute term.
    """
    out_shape = plan.buffer(op.output).shape
    in_shape = plan.buffer(op.inputs[0]).shape if op.inputs else ()
    if op.kind == "conv" and op.weight is not None:
        out_ch, in_per_group, kernel, _ = op.weight.shape
        groups = int(op.attrs.get("groups", 1))
        in_ch = in_per_group * groups
        kind = "dwconv" if groups == in_ch and groups > 1 else "conv"
        out_h, out_w = (out_shape[1], out_shape[2]) if len(out_shape) == 3 else (1, 1)
        in_h, in_w = (in_shape[1], in_shape[2]) if len(in_shape) == 3 else (out_h, out_w)
        return ResolvedLayer(
            kind=kind, kernel=int(kernel), stride=int(op.attrs.get("stride", 1)),
            in_ch=int(in_ch), out_ch=int(out_ch), groups=groups,
            in_h=int(in_h), in_w=int(in_w), out_h=int(out_h), out_w=int(out_w),
        )
    if op.kind == "linear" and op.weight is not None:
        out_features, in_features = op.weight.shape
        return ResolvedLayer(
            kind="fc", kernel=1, stride=1,
            in_ch=int(in_features), out_ch=int(out_features), groups=1,
            in_h=1, in_w=1, out_h=1, out_w=1,
        )
    if op.kind in ("maxpool", "avgpool", "gap"):
        if len(in_shape) != 3:
            return None
        in_ch, in_h, in_w = in_shape
        if len(out_shape) == 3:
            out_ch, out_h, out_w = out_shape
        else:
            out_ch, out_h, out_w = in_ch, 1, 1
        kernel = int(op.attrs.get("kernel", in_h))
        return ResolvedLayer(
            kind="pool", kernel=kernel, stride=int(op.attrs.get("stride", kernel)),
            in_ch=int(in_ch), out_ch=int(out_ch), groups=1,
            in_h=int(in_h), in_w=int(in_w), out_h=int(out_h), out_w=int(out_w),
        )
    return None


def per_op_predicted_ms(
    plan,
    target: str,
    device: str | None = None,
    bits: int | None = None,
) -> dict:
    """Analytic per-op latency decomposition of a compiled plan.

    Returns a JSON-serialisable dict with ``per_op`` — one predicted
    millisecond figure (or ``None``) per plan op, aligned by op index — plus
    the resolved ``target``/``device``/``bits`` and a ``supported`` flag.
    Only the additive flows decompose: the GPU roofline (per-kernel) and the
    recursive FPGA schedule (per-IP-invocation; pools are free there, like in
    :func:`repro.hw.analytic.fpga_recursive_latency_ms`).  The pipelined
    flow's throughput is set by its bottleneck stage, not a sum, so it — and
    targets with no analytic estimator — report ``supported: False``.

    The ``measured_over_predicted`` ratio of each joined row feeds
    :func:`repro.hw.calibration.fit_calibration_scale` at op granularity via
    ``repro calibrate --per-op``.
    """
    from repro.hw import registry

    tspec = registry.get_target(target)
    dev = tspec.resolve_device(device)
    requested = tspec.default_deploy_bits if bits is None else bits
    effective, clamped = tspec.clamp_bits(requested)
    result: dict = {
        "target": tspec.name,
        "device": dev.name,
        "bits": effective,
        "clamped": clamped,
        "metric": "latency_ms",
        "supported": False,
        "note": "",
        "per_op": [None] * len(plan.ops),
    }
    per_op = result["per_op"]
    if tspec.plan_flow == "gpu" and isinstance(dev, GPUDevice):
        for index, op in enumerate(plan.ops):
            layer = plan_op_layer(plan, op)
            if layer is None:
                continue
            try:
                us = _gpu_layer_us(layer, dev, effective)
            except KeyError:
                continue
            per_op[index] = us / 1e3 * dev.calibration_scale
        result["supported"] = True
        return result
    if tspec.plan_flow == "recursive" and isinstance(dev, FPGADevice):
        macs_per_cycle = dev.macs_per_cycle(effective)
        for index, op in enumerate(plan.ops):
            layer = plan_op_layer(plan, op)
            if layer is None or layer.kind == "pool":
                continue
            try:
                eff = dev.recursive_efficiency[layer_kind_key(layer.kind, layer.kernel)]
            except KeyError:
                continue
            seconds = (
                layer.macs / (dev.dsp_total * macs_per_cycle * eff) / dev.clock_hz
            )
            per_op[index] = (
                (seconds * 1e6 + dev.per_layer_overhead_us)
                / 1e3 * dev.calibration_scale
            )
        result["supported"] = True
        return result
    if tspec.plan_flow == "pipelined":
        result["note"] = (
            "pipelined throughput is set by the bottleneck stage and does not "
            "decompose into additive per-op latencies"
        )
    else:
        result["note"] = (
            f"target {tspec.name!r} has no per-op latency decomposition"
        )
    return result


def deployment_plan(
    spec: ArchSpec,
    flow: str,
    device: GPUDevice | FPGADevice,
    weight_bits: int | None = None,
) -> str:
    """Dispatch over the three implementation flows."""
    if flow == "pipelined":
        return pipelined_plan(spec, device, weight_bits or 16)
    if flow == "recursive":
        return recursive_plan(spec, device, weight_bits or 16)
    if flow == "gpu":
        return gpu_plan(spec, device, weight_bits or 32)
    raise ValueError(f"unknown flow {flow!r}; expected gpu/recursive/pipelined")
