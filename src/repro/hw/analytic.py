"""Analytic (non-differentiable) device evaluators for complete networks.

These regenerate the paper's comparison tables: given any
:class:`~repro.nas.arch_spec.ArchSpec` (baseline or searched), estimate

* GPU latency at batch 1 (Table 1 "GPU Latency", Table 2 precision sweep),
* recursive-FPGA latency a la CHaiDNN on ZCU102 (Table 1 "FPGA Latency"),
* pipelined-FPGA throughput a la DNNBuilder on ZC706 (Table 3).

The models are rooflines with per-layer-kind efficiency/overhead constants
fitted against the paper's published anchor numbers (frozen in
``repro.hw.device``; anchors registered in ``repro.hw.calibration``).  The
*relative* comparisons between architectures are what the reproduction
relies on; absolute deviations are reported in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.allocation import waterfill_allocation
from repro.hw.device import FPGADevice, GPUDevice, layer_kind_key
from repro.nas.arch_spec import ArchSpec, ResolvedLayer

ACTIVATION_BYTES_FP32 = 4.0
ACTIVATION_BYTES_FP16 = 2.0


class UnsupportedNetworkError(ValueError):
    """Raised when a device flow cannot map a network (e.g. CHaiDNN has no
    channel-shuffle support — the "NA" entry of Table 1)."""


# --------------------------------------------------------------------------- GPU
def _gpu_layer_us(layer: ResolvedLayer, device: GPUDevice, weight_bits: int) -> float:
    """One layer at batch 1: per-kind kernel floor + max(compute, memory).

    The whole layer scales with the device's precision factor — reduced
    precision shrinks compute, traffic *and* the occupancy floor (smaller
    tensors ramp faster), matching the Table 2 measurements.
    """
    act_bytes = ACTIVATION_BYTES_FP32 if weight_bits >= 32 else ACTIVATION_BYTES_FP16
    prec = device.precision_factor(weight_bits)
    traffic = (layer.input_activations + layer.output_activations) * act_bytes
    if layer.kind == "shuffle":
        # Split + shuffle + concat: pure data movement with a big kernel floor.
        mem_us = traffic / (device.mem_bandwidth_gbps * 1e9) * 1e6
        return prec * (device.shuffle_overhead_us + mem_us)
    if layer.kind == "pool":
        mem_us = traffic / (device.mem_bandwidth_gbps * 1e9) * 1e6
        return prec * (device.pool_overhead_us + mem_us)
    kind = layer_kind_key(layer.kind, layer.kernel)
    compute_s = layer.macs / (device.peak_macs_per_s * device.kind_efficiency[kind])
    bytes_moved = layer.params * (weight_bits / 8.0) + traffic
    memory_s = bytes_moved / (device.mem_bandwidth_gbps * 1e9)
    return prec * (device.kind_overhead_us[kind] + max(compute_s, memory_s) * 1e6)


def gpu_latency_ms(spec: ArchSpec, device: GPUDevice, weight_bits: int = 32) -> float:
    """Batch-1 inference latency estimate in milliseconds.

    ``weight_bits`` is the deployed precision: baselines in Table 1 run at
    32-bit, while the EDD-Nets deploy their co-searched precision (16-bit).
    """
    total_us = sum(_gpu_layer_us(layer, device, weight_bits) for layer in spec.layers())
    return total_us / 1e3 * device.calibration_scale


# ----------------------------------------------------------------- recursive FPGA
def fpga_recursive_latency_ms(
    spec: ArchSpec, device: FPGADevice, weight_bits: int = 16
) -> float:
    """CHaiDNN-style recursive accelerator latency.

    Layers run sequentially on shared IPs holding the full DSP budget, with a
    per-layer invocation overhead (weight/feature DDR round-trips dominate
    for thin layers, which is why a 0.3-GMAC MobileNetV2 and a 1.8-GMAC
    ResNet18 land within 10% of each other in Table 1).

    Raises :class:`UnsupportedNetworkError` for networks containing channel
    shuffles, mirroring CHaiDNN's missing ShuffleNet support ("NA").
    """
    if spec.has_kind("shuffle"):
        raise UnsupportedNetworkError(
            f"{spec.name}: channel shuffle is not supported by the recursive "
            f"FPGA flow (CHaiDNN), reported as NA in Table 1"
        )
    macs_per_cycle = device.macs_per_cycle(weight_bits)
    total_us = 0.0
    for layer in spec.layers():
        if layer.kind in ("pool", "shuffle"):
            continue
        kind = layer_kind_key(layer.kind, layer.kernel)
        eff = device.recursive_efficiency[kind]
        seconds = layer.macs / (device.dsp_total * macs_per_cycle * eff) / device.clock_hz
        total_us += seconds * 1e6 + device.per_layer_overhead_us
    return total_us / 1e3 * device.calibration_scale


# ----------------------------------------------------------------- pipelined FPGA
@dataclass
class PipelineReport:
    """Detailed result of the pipelined mapping (used by benches/tests)."""

    fps: float
    bottleneck_index: int
    bottleneck_kind: str
    bottleneck_kernel: int
    stage_us: list[float]
    allocations: list[float]


def _pipeline_stages(spec: ArchSpec) -> list[ResolvedLayer]:
    """Compute layers mapped to pipeline stages.

    FC heads are excluded: DNNBuilder streams them through a separate
    bandwidth-bound engine overlapped with the conv pipeline, so they do not
    gate steady-state throughput.
    """
    return [layer for layer in spec.layers() if layer.macs > 0 and layer.kind != "fc"]


def _stage_cap(layer: ResolvedLayer) -> float:
    """Maximum multipliers a stage can keep busy (channel/kernel parallelism)."""
    if layer.kind == "dwconv":
        return layer.in_ch * layer.kernel * layer.kernel
    return layer.out_ch * min(layer.in_ch // layer.groups, 64)


def fpga_pipelined_report(
    spec: ArchSpec, device: FPGADevice, weight_bits: int = 16
) -> PipelineReport:
    """Map every conv layer onto its own pipeline stage (DNNBuilder style).

    DSPs are water-filled proportionally to *nominal* MACs (the allocator is
    blind to runtime efficiency); each stage then runs at its kind's
    efficiency, with dense kxk (k>1) stages enjoying the kernel-reuse
    MAC/DSP bonus.  Throughput is set by the slowest stage — typically a
    depthwise stage, the effect that pushes the pipelined co-search
    (EDD-Net-3) toward shallower, wider networks.
    """
    stages = _pipeline_stages(spec)
    if not stages:
        raise UnsupportedNetworkError(f"{spec.name}: no compute layers to map")
    base_mpd = device.macs_per_cycle(weight_bits)

    raw = [float(layer.macs) for layer in stages]
    caps = [_stage_cap(layer) for layer in stages]
    allocations = waterfill_allocation(raw, device.dsp_total, caps=caps)

    stage_us = []
    for layer, macs, alloc in zip(stages, raw, allocations):
        kind = layer_kind_key(layer.kind, layer.kernel)
        eff = device.pipelined_efficiency[kind]
        mpd = base_mpd * (
            device.dense_kernel_bonus if layer.kind == "conv" and layer.kernel > 1 else 1.0
        )
        seconds = macs / (eff * max(alloc, 1e-6) * mpd) / device.clock_hz
        stage_us.append(seconds * 1e6)
    bottleneck = int(np.argmax(stage_us))
    fps = 1e6 / stage_us[bottleneck] * device.calibration_scale
    return PipelineReport(
        fps=fps,
        bottleneck_index=bottleneck,
        bottleneck_kind=stages[bottleneck].kind,
        bottleneck_kernel=stages[bottleneck].kernel,
        stage_us=stage_us,
        allocations=allocations,
    )


def fpga_pipelined_throughput_fps(
    spec: ArchSpec, device: FPGADevice, weight_bits: int = 16
) -> float:
    """Steady-state frames/second of the pipelined mapping."""
    return fpga_pipelined_report(spec, device, weight_bits).fps
