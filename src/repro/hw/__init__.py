"""Hardware implementation models (the red half of the paper's Fig. 1).

Two families live here:

* **Differentiable search models** (:mod:`repro.hw.fpga`, :mod:`repro.hw.gpu`,
  :mod:`repro.hw.accel`) — implement Stage-1..4 of Sec. 3.2: per-op
  ``Perf^q``/``Res^q`` under the device's implementation variables (parallel
  factors ``pf``, quantisation ``q``), composed through Gumbel-Softmax
  expectations into the scalar ``Perf_loss`` and ``RES`` tensors of Eq. 1.
* **Analytic evaluators** (:mod:`repro.hw.analytic`) — non-differentiable
  latency/throughput estimates for complete :class:`ArchSpec` networks, used
  to regenerate the paper's comparison tables for both baselines and
  searched models.
"""

from repro.hw.device import (
    ACCEL_DEVICES,
    GPU_DEVICES,
    FPGA_DEVICES,
    AccelDevice,
    BIT_SERIAL_EDGE,
    FPGADevice,
    GPUDevice,
    GTX_1080TI,
    P100,
    TITAN_RTX,
    ZC706,
    ZCU102,
)
from repro.hw.perf_loss import latency_sum, multi_objective, throughput_lse
from repro.hw.resource import resource_penalty, shared_resource, summed_resource
from repro.hw.fpga import FPGAModel, phi_latency_calibration, psi_dsp
from repro.hw.gpu import GPUModel
from repro.hw.accel import BitSerialAccelModel
from repro.hw.energy import GPUEnergyModel, gpu_energy_mj
from repro.hw.report import deployment_plan
from repro.hw.analytic import (
    fpga_pipelined_throughput_fps,
    fpga_recursive_latency_ms,
    gpu_latency_ms,
)
from repro.hw.accel import bit_serial_latency_ms
from repro.hw.registry import (
    DEVICES,
    TARGETS,
    EstimateOutcome,
    TargetSpec,
    build_hardware_model,
    device_names,
    get_device,
    get_target,
    quantization_for_target,
    register_device,
    register_target,
    target_names,
)

__all__ = [
    "ACCEL_DEVICES",
    "AccelDevice",
    "BIT_SERIAL_EDGE",
    "DEVICES",
    "EstimateOutcome",
    "TARGETS",
    "TargetSpec",
    "bit_serial_latency_ms",
    "build_hardware_model",
    "device_names",
    "get_device",
    "get_target",
    "quantization_for_target",
    "register_device",
    "register_target",
    "target_names",
    "BitSerialAccelModel",
    "GPUEnergyModel",
    "deployment_plan",
    "gpu_energy_mj",
    "FPGADevice",
    "FPGAModel",
    "FPGA_DEVICES",
    "GPUDevice",
    "GPUModel",
    "GPU_DEVICES",
    "GTX_1080TI",
    "P100",
    "TITAN_RTX",
    "ZC706",
    "ZCU102",
    "fpga_pipelined_throughput_fps",
    "fpga_recursive_latency_ms",
    "gpu_latency_ms",
    "latency_sum",
    "multi_objective",
    "phi_latency_calibration",
    "psi_dsp",
    "resource_penalty",
    "shared_resource",
    "summed_resource",
    "throughput_lse",
]
