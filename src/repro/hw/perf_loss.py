"""Stage-3 -> Stage-4 performance reducers (Eqs. 6-7 of the paper).

``latency_sum``   — Eq. 6: overall latency/energy/model-size objectives are
the sum of per-block performances.
``throughput_lse`` — Eq. 7: throughput is limited by the slowest pipeline
stage; the non-differentiable ``max`` is replaced by the Log-Sum-Exp smooth
maximum.
``multi_objective`` — the paper's suggestion for combining non-conflicting
objectives: the product of their losses.
"""

from __future__ import annotations

from repro.autograd.ops_reduce import logsumexp, max_reduce
from repro.autograd.tensor import Tensor


def latency_sum(block_perfs: Tensor, alpha: float = 1.0) -> Tensor:
    """Eq. 6: ``alpha * sum_i Perf_i`` over the (N,) block performances."""
    return block_perfs.sum() * alpha


def throughput_lse(block_perfs: Tensor, alpha: float = 1.0, sharpness: float = 1.0) -> Tensor:
    """Eq. 7: smooth-max of block latencies via Log-Sum-Exp.

    ``sharpness`` (tau) trades smoothness for tightness:
    ``LSE_tau(x) = tau * log sum exp(x / tau)`` satisfies
    ``max(x) <= LSE_tau(x) <= max(x) + tau * log N``.  The paper uses plain
    LSE (tau = 1); expose tau because block latencies in normalised units can
    sit close together, where a sharper smooth-max tracks the true bottleneck
    better (see benchmarks/bench_ablation_formulation.py).
    """
    if sharpness <= 0:
        raise ValueError(f"sharpness must be positive, got {sharpness}")
    scaled = block_perfs * (1.0 / sharpness)
    return logsumexp(scaled) * (sharpness * alpha)


def throughput_hard_max(block_perfs: Tensor, alpha: float = 1.0) -> Tensor:
    """Non-smooth variant of Eq. 7 (subgradient flows only to the argmax).

    Kept for the LSE-vs-max ablation; the paper argues LSE is preferable
    because the hard max starves all non-bottleneck blocks of gradient.
    """
    return max_reduce(block_perfs) * alpha


def multi_objective(losses: list[Tensor]) -> Tensor:
    """Product combination of non-conflicting objectives (Sec. 3.2.4).

    e.g. ``multi_objective([latency_loss, energy_loss])``.
    """
    if not losses:
        raise ValueError("multi_objective needs at least one loss")
    out = losses[0]
    for loss in losses[1:]:
        out = out * loss
    return out
