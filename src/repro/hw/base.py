"""Common interface for the differentiable device models."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.autograd.tensor import Tensor
from repro.nas.supernet import SampledArch
from repro.nn.module import Parameter


@dataclass
class HwEvaluation:
    """One evaluation of the implementation objective under a sampled arch.

    ``perf_loss`` and ``resource`` are graph-connected tensors (scalars);
    ``diagnostics`` holds plain floats for logging.
    """

    perf_loss: Tensor
    resource: Tensor
    diagnostics: dict[str, float] = field(default_factory=dict)


class HardwareModel:
    """Base class: owns the device-oriented implementation variables.

    Subclasses implement :meth:`evaluate`, mapping a :class:`SampledArch`
    (the Gumbel draws of Theta/Phi) plus their own parameters (e.g. parallel
    factors) onto the ``Perf_loss(I)`` and ``RES(I)`` terms of Eq. 1.
    """

    #: Quantisation sharing mode this device requires (see Sec. 3.2.5 / 4.2).
    expected_sharing: str = "per_block_op"
    #: Resource upper bound RES_ub (device units, e.g. DSPs); None = unbounded.
    resource_bound: float | None = None

    def implementation_parameters(self) -> list[Parameter]:
        """Differentiable implementation variables beyond Theta/Phi (e.g. pf)."""
        return []

    def evaluate(self, sample: SampledArch) -> HwEvaluation:
        raise NotImplementedError

    def project_parameters(self) -> None:
        """Clamp implementation variables into their feasible box (no-op default)."""

    def validate_sample(self, sample: SampledArch) -> None:
        if sample.sharing != self.expected_sharing:
            raise ValueError(
                f"{type(self).__name__} expects quantisation sharing "
                f"{self.expected_sharing!r} but the sample uses {sample.sharing!r}; "
                f"construct the supernet with the matching QuantizationConfig"
            )
