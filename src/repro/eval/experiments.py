"""Experiment registry: one entry per paper table/figure and per ablation.

``run_experiment("table1")`` etc. return the printable artefact;
``experiment_dict("table1")`` returns the same content as plain
JSON-serialisable data (what ``python -m repro tables --format json``
prints).  The benchmark files are thin wrappers over these so everything is
reproducible from Python as well as from pytest.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.eval.figures import figure4
from repro.eval.tables import TableRow, format_table, table1, table2, table3


@dataclass(frozen=True)
class Experiment:
    """One regenerable artefact: structured rows plus a text rendering."""

    name: str
    title: str
    columns: tuple[str, ...] | None          # None = free-form text artefact
    rows: Callable[[], list[TableRow]] | None
    text: Callable[[], str] | None = None    # override for text artefacts

    def render(self) -> str:
        if self.rows is not None and self.columns is not None:
            return format_table(self.rows(), list(self.columns), self.title)
        assert self.text is not None
        return self.text()

    def data(self) -> dict[str, Any]:
        if self.rows is not None and self.columns is not None:
            return {
                "name": self.name,
                "title": self.title,
                "columns": list(self.columns),
                "rows": [
                    {"name": row.name, "values": row.values}
                    for row in self.rows()
                ],
            }
        assert self.text is not None
        return {"name": self.name, "title": self.title, "text": self.text()}


EXPERIMENTS: dict[str, Experiment] = {
    exp.name: exp
    for exp in (
        Experiment(
            name="table1",
            title="Table 1: comparison with existing NAS solutions",
            columns=(
                "Top-1 err (paper)", "Top-5 err (paper)",
                "GPU ms (ours)", "GPU ms (paper)",
                "FPGA ms (ours)", "FPGA ms (paper)",
            ),
            rows=table1,
        ),
        Experiment(
            name="table2",
            title="Table 2: EDD-Net-1 on GTX 1080 Ti across precisions",
            columns=("Latency ms (ours)", "Latency ms (paper)", "Err % (paper)"),
            rows=table2,
        ),
        Experiment(
            name="table3",
            title="Table 3: EDD-Net-3 vs DNNBuilder (ZC706)",
            columns=(
                "Top-1 err (paper)", "Top-5 err (paper)",
                "fps (ours)", "fps (paper)",
            ),
            rows=table3,
        ),
        Experiment(
            name="figure4",
            title="Figure 4: the searched EDD-Net architectures",
            columns=None,
            rows=None,
            text=figure4,
        ),
    )
}


def run_experiment(name: str) -> str:
    """Regenerate one registered experiment artefact by id (text form)."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[name].render()


def experiment_dict(name: str) -> dict[str, Any]:
    """Regenerate one experiment as JSON-serialisable data."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[name].data()
