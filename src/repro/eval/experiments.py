"""Experiment registry: one entry per paper table/figure and per ablation.

``run_experiment("table1")`` etc. return the printable artefact; the
benchmark files are thin wrappers over these so everything is reproducible
from Python as well as from pytest.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.eval.figures import figure4
from repro.eval.tables import format_table, table1, table2, table3


def _table1_text() -> str:
    rows = table1()
    columns = [
        "Top-1 err (paper)", "Top-5 err (paper)",
        "GPU ms (ours)", "GPU ms (paper)",
        "FPGA ms (ours)", "FPGA ms (paper)",
    ]
    return format_table(rows, columns, "Table 1: comparison with existing NAS solutions")


def _table2_text() -> str:
    rows = table2()
    columns = ["Latency ms (ours)", "Latency ms (paper)", "Err % (paper)"]
    return format_table(rows, columns, "Table 2: EDD-Net-1 on GTX 1080 Ti across precisions")


def _table3_text() -> str:
    rows = table3()
    columns = ["Top-1 err (paper)", "Top-5 err (paper)", "fps (ours)", "fps (paper)"]
    return format_table(rows, columns, "Table 3: EDD-Net-3 vs DNNBuilder (ZC706)")


EXPERIMENTS: dict[str, Callable[[], str]] = {
    "table1": _table1_text,
    "table2": _table2_text,
    "table3": _table3_text,
    "figure4": figure4,
}


def run_experiment(name: str) -> str:
    """Regenerate one registered experiment artefact by id."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[name]()
