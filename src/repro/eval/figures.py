"""Figure 4 renderer: the three EDD-Net architectures as block diagrams.

The paper's Fig. 4 draws each searched network as a chain of labelled blocks
(op type, expansion, kernel, channels, stride markers).  We render the same
information as fixed-width text so the benchmark output and EXPERIMENTS.md
can embed it; the renderer works for any :class:`ArchSpec`, including nets
freshly derived by the co-search.
"""

from __future__ import annotations

from repro.baselines.model_zoo import edd_net_1, edd_net_2, edd_net_3
from repro.nas.arch_spec import (
    ArchSpec,
    ConvBlock,
    FCBlock,
    MBConvBlock,
    SepConvBlock,
    StemBlock,
)


def _block_label(block) -> str:
    if isinstance(block, StemBlock):
        return f"Conv{block.kernel}x{block.kernel}"
    if isinstance(block, MBConvBlock):
        return f"MB{block.expansion} {block.kernel}x{block.kernel}"
    if isinstance(block, SepConvBlock):
        return f"Sep {block.kernel}x{block.kernel}"
    if isinstance(block, ConvBlock):
        return f"Conv{block.kernel}x{block.kernel}"
    if isinstance(block, FCBlock):
        return "FC"
    return type(block).__name__


def render_architecture(spec: ArchSpec, width: int = 100) -> str:
    """Render one network as wrapped ``label(channels)[/s2]`` chains."""
    tokens = ["Input"]
    for block in spec.blocks:
        label = _block_label(block)
        channels = getattr(block, "out_ch", getattr(block, "out_features", ""))
        stride = getattr(block, "stride", 1)
        marker = "/s2" if stride == 2 else ""
        tokens.append(f"{label}({channels}){marker}")
    lines = [f"{spec.name}  [{spec.total_macs() / 1e6:.0f}M MACs, "
             f"{spec.total_params() / 1e6:.2f}M params]"]
    current = "  "
    for token in tokens:
        piece = token + " -> "
        if len(current) + len(piece) > width:
            lines.append(current.rstrip())
            current = "  "
        current += piece
    lines.append(current.rstrip().rstrip("->").rstrip())
    if "block_bits" in spec.metadata:
        lines.append(f"  per-block weight bits: {spec.metadata['block_bits']}")
    if "parallel_factors" in spec.metadata:
        lines.append(f"  parallel factors: {spec.metadata['parallel_factors']}")
    return "\n".join(lines)


def figure4(extra_specs: list[ArchSpec] | None = None) -> str:
    """The paper's Fig. 4: EDD-Net-1/2/3 (plus any freshly searched specs)."""
    specs = [edd_net_1(), edd_net_2(), edd_net_3()]
    specs.extend(extra_specs or [])
    sections = [render_architecture(spec) for spec in specs]
    return ("\n" + "-" * 100 + "\n").join(sections)
