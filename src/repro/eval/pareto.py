"""Accuracy/performance trade-off sweeps (Pareto analysis).

Hardware-aware NAS methods are usually judged by the trade-off curve they
trace as the performance pressure varies.  EDD exposes that pressure through
``alpha_target`` (how large Perf_loss is relative to Acc_loss in Eq. 1);
sweeping it yields an accuracy-vs-latency curve per device target.  This
module runs the sweep at reduced scale and extracts the non-dominated
(Pareto) front.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.config import EDDConfig
from repro.core.cosearch import EDDSearcher
from repro.core.trainer import train_from_spec
from repro.data.synthetic import DatasetSplits
from repro.nas.arch_spec import ArchSpec
from repro.nas.space import SearchSpaceConfig


@dataclass(frozen=True)
class TradeoffPoint:
    """One searched solution on the accuracy/performance plane."""

    alpha_target: float
    top1_error: float
    perf_units: float      # un-normalised device-model performance
    resource: float
    spec_name: str

    def dominates(self, other: "TradeoffPoint") -> bool:
        """Strictly better in one objective, no worse in the other."""
        better_err = self.top1_error <= other.top1_error
        better_perf = self.perf_units <= other.perf_units
        strictly = (
            self.top1_error < other.top1_error or self.perf_units < other.perf_units
        )
        return better_err and better_perf and strictly


def tradeoff_sweep(
    space: SearchSpaceConfig,
    splits: DatasetSplits,
    base_config: EDDConfig,
    alpha_targets: tuple[float, ...] = (0.25, 1.0, 4.0),
    train_epochs: int = 6,
) -> list[TradeoffPoint]:
    """One co-search per alpha target; returns measured trade-off points.

    ``alpha_target`` scales how loudly the hardware objective speaks: small
    values approximate accuracy-only NAS, large values squeeze the
    implementation hard.
    """
    points: list[TradeoffPoint] = []
    for alpha in alpha_targets:
        config = dataclasses.replace(base_config, alpha_target=alpha)
        searcher = EDDSearcher(space, splits, config)
        result = searcher.search(name=f"tradeoff-a{alpha:g}")
        evaluation = searcher.hw_model.evaluate(searcher._expected_sample())
        raw_alpha = getattr(searcher.hw_model, "alpha", 1.0)
        perf_units = float(evaluation.perf_loss.data) / max(raw_alpha, 1e-12)
        trained = train_from_spec(
            result.spec, splits, epochs=train_epochs,
            batch_size=base_config.batch_size, seed=base_config.seed,
        )
        points.append(
            TradeoffPoint(
                alpha_target=alpha,
                top1_error=trained.top1_error,
                perf_units=perf_units,
                resource=float(evaluation.resource.data),
                spec_name=result.spec.name,
            )
        )
    return points


def pareto_front(points: list[TradeoffPoint]) -> list[TradeoffPoint]:
    """The non-dominated subset, sorted by performance."""
    front = [
        p for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    return sorted(front, key=lambda p: p.perf_units)


def format_tradeoff(points: list[TradeoffPoint]) -> str:
    """Fixed-width rendering with Pareto markers."""
    front = set(id(p) for p in pareto_front(points))
    lines = [
        f"{'alpha':>8s} {'top-1 err %':>12s} {'perf units':>12s} "
        f"{'resource':>10s}  pareto",
    ]
    for p in sorted(points, key=lambda p: p.alpha_target):
        marker = "*" if id(p) in front else ""
        lines.append(
            f"{p.alpha_target:8.2f} {p.top1_error:12.1f} {p.perf_units:12.4f} "
            f"{p.resource:10.1f}  {marker}"
        )
    return "\n".join(lines)
