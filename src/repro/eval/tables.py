"""Generators for the paper's Tables 1-3.

Each function returns structured rows (and a formatted string) holding the
paper-reported values next to our model-measured values, so benchmark runs
can print the comparison and EXPERIMENTS.md can cite it.

Accuracy columns: ImageNet training is out of scope offline, so test errors
are the paper-reported numbers (clearly labelled); the proxy-task accuracy
pipeline (`repro.core.trainer`) provides measured accuracy comparisons at
reduced scale where they matter (Table 2's precision sweep, the co-search
ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.baselines.model_zoo import PAPER_ACCURACY, get_model
from repro.hw.analytic import (
    UnsupportedNetworkError,
    fpga_pipelined_throughput_fps,
    fpga_recursive_latency_ms,
    gpu_latency_ms,
)
from repro.hw.device import GTX_1080TI, TITAN_RTX, ZC706, ZCU102

#: Paper-reported Table 1 latencies (ms) for reference columns.
PAPER_TABLE1_GPU_MS = {
    "GoogleNet": 27.75, "MobileNet-V2": 17.87, "ShuffleNet-V2": 21.91,
    "ResNet18": 9.71, "MnasNet-A1": 17.94, "FBNet-C": 22.54,
    "Proxyless-cpu": 21.34, "Proxyless-Mobile": 21.23, "Proxyless-gpu": 15.72,
    "EDD-Net-1": 11.17, "EDD-Net-2": 13.00,
}
PAPER_TABLE1_FPGA_MS = {
    "GoogleNet": 13.25, "MobileNet-V2": 10.85, "ShuffleNet-V2": None,
    "ResNet18": 10.15, "MnasNet-A1": 8.78, "FBNet-C": 12.21,
    "Proxyless-cpu": 10.81, "Proxyless-Mobile": 10.78, "Proxyless-gpu": 10.79,
    "EDD-Net-1": 11.15, "EDD-Net-2": 7.96,
}
PAPER_TABLE2_MS = {32: 2.83, 16: 2.29, 8: 1.74}
PAPER_TABLE2_ERR = {32: 25.5, 16: 25.3, 8: 26.4}
PAPER_TABLE3_FPS = {"VGG16": 27.7, "EDD-Net-3": 40.2}

#: EDD-Nets deploy their co-searched precision; baselines deploy fp32 on GPU.
GPU_DEPLOY_BITS = {"EDD-Net-1": 16, "EDD-Net-2": 16}


@dataclass
class TableRow:
    """One row of a regenerated table: name + ordered column values."""

    name: str
    values: dict[str, Any] = field(default_factory=dict)


def format_table(rows: list[TableRow], columns: list[str], title: str) -> str:
    """Fixed-width text rendering of a table (what the benches print)."""
    widths = {c: max(len(c), 10) for c in columns}
    name_w = max([len(r.name) for r in rows] + [len("Model")])
    header = "Model".ljust(name_w) + "  " + "  ".join(c.rjust(widths[c]) for c in columns)
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for row in rows:
        cells = []
        for c in columns:
            v = row.values.get(c)
            if v is None:
                cells.append("NA".rjust(widths[c]))
            elif isinstance(v, float):
                cells.append(f"{v:.2f}".rjust(widths[c]))
            else:
                cells.append(str(v).rjust(widths[c]))
        lines.append(row.name.ljust(name_w) + "  " + "  ".join(cells))
    return "\n".join(lines)


TABLE1_MODELS = (
    "GoogleNet", "MobileNet-V2", "ShuffleNet-V2", "ResNet18",
    "MnasNet-A1", "FBNet-C", "Proxyless-cpu", "Proxyless-Mobile",
    "Proxyless-gpu", "EDD-Net-1", "EDD-Net-2",
)


def table1() -> list[TableRow]:
    """Table 1: test error + GPU latency (Titan RTX) + FPGA latency (ZCU102).

    GPU column: baselines at 32-bit, EDD-Nets at their co-searched 16-bit.
    FPGA column: every network at 16-bit on the recursive (CHaiDNN-style)
    accelerator; ShuffleNet is NA (channel shuffle unsupported).
    """
    rows = []
    for name in TABLE1_MODELS:
        spec = get_model(name)
        bits = GPU_DEPLOY_BITS.get(name, 32)
        gpu_ms = gpu_latency_ms(spec, TITAN_RTX, weight_bits=bits)
        try:
            fpga_ms = fpga_recursive_latency_ms(spec, ZCU102, weight_bits=16)
        except UnsupportedNetworkError:
            fpga_ms = None
        rows.append(
            TableRow(
                name=name,
                values={
                    "Top-1 err (paper)": PAPER_ACCURACY[name]["top1"],
                    "Top-5 err (paper)": PAPER_ACCURACY[name]["top5"],
                    "GPU ms (ours)": gpu_ms,
                    "GPU ms (paper)": PAPER_TABLE1_GPU_MS[name],
                    "FPGA ms (ours)": fpga_ms,
                    "FPGA ms (paper)": PAPER_TABLE1_FPGA_MS[name],
                },
            )
        )
    return rows


def table2(measured_errors: dict[int, float] | None = None) -> list[TableRow]:
    """Table 2: EDD-Net-1 accuracy/latency on GTX 1080 Ti at 32/16/8-bit.

    ``measured_errors`` (optional) are proxy-task errors from
    quantisation-aware retraining (see benchmarks/bench_table2.py); the
    paper's ImageNet errors are always included for reference.
    """
    spec = get_model("EDD-Net-1")
    rows = []
    for bits in (32, 16, 8):
        values = {
            "Latency ms (ours)": gpu_latency_ms(spec, GTX_1080TI, weight_bits=bits),
            "Latency ms (paper)": PAPER_TABLE2_MS[bits],
            "Err % (paper)": PAPER_TABLE2_ERR[bits],
        }
        if measured_errors and bits in measured_errors:
            values["Proxy err % (ours)"] = measured_errors[bits]
        rows.append(TableRow(name=f"{bits}-bit", values=values))
    return rows


def table3() -> list[TableRow]:
    """Table 3: EDD-Net-3 vs VGG16 (DNNBuilder) throughput on ZC706, 16-bit."""
    rows = []
    for name in ("VGG16", "EDD-Net-3"):
        spec = get_model(name)
        rows.append(
            TableRow(
                name=name,
                values={
                    "Top-1 err (paper)": PAPER_ACCURACY[name]["top1"],
                    "Top-5 err (paper)": PAPER_ACCURACY[name]["top5"],
                    "fps (ours)": fpga_pipelined_throughput_fps(spec, ZC706, weight_bits=16),
                    "fps (paper)": PAPER_TABLE3_FPS[name],
                },
            )
        )
    return rows
