"""Evaluation harness: regenerates every table and figure of the paper."""

from repro.eval.metrics import error_rates
from repro.eval.tables import (
    TableRow,
    format_table,
    table1,
    table2,
    table3,
)
from repro.eval.figures import figure4, render_architecture
from repro.eval.pareto import TradeoffPoint, format_tradeoff, pareto_front, tradeoff_sweep
from repro.eval.trajectory import ConvergenceSummary, ascii_chart, render_trajectory, summarize
from repro.eval.experiments import (
    EXPERIMENTS,
    Experiment,
    experiment_dict,
    run_experiment,
)

__all__ = [
    "ConvergenceSummary",
    "EXPERIMENTS",
    "Experiment",
    "experiment_dict",
    "TradeoffPoint",
    "ascii_chart",
    "format_tradeoff",
    "pareto_front",
    "render_trajectory",
    "summarize",
    "tradeoff_sweep",
    "TableRow",
    "error_rates",
    "figure4",
    "format_table",
    "render_architecture",
    "run_experiment",
    "table1",
    "table2",
    "table3",
]
