"""Classification metrics shared by the evaluation harness."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.functional import topk_accuracy


def error_rates(
    logits: Tensor | np.ndarray, targets: np.ndarray, ks: tuple[int, ...] = (1, 5)
) -> dict[int, float]:
    """Top-k error percentages (the unit Tables 1-3 report)."""
    return {k: (1.0 - topk_accuracy(logits, targets, k)) * 100.0 for k in ks}
