"""Search-trajectory analysis and terminal plotting.

The co-search produces per-epoch telemetry (`EpochRecord`): losses,
performance, resource, Gumbel temperature and the perplexity of the Theta
distribution.  This module turns that history into convergence diagnostics
and fixed-width ASCII charts, so examples and benchmark artifacts can show
*how* a search converged, not just where it ended.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.results import EpochRecord


@dataclass(frozen=True)
class ConvergenceSummary:
    """Aggregate statistics of one search run."""

    epochs: int
    train_loss_drop: float           # first-epoch minus last-epoch train loss
    final_val_loss: float
    final_perf_loss: float
    final_resource: float
    final_theta_perplexity: float
    perplexity_drop: float           # how much the op distribution sharpened
    resource_trend: float            # last minus first finite resource

    def converged(self, perplexity_threshold: float | None = None) -> bool:
        """Loose convergence check: training improved and Theta sharpened.

        ``perplexity_threshold``: consider the op choice decided when the
        effective number of live candidates falls below this (default:
        half-way between 1 and the initial perplexity).
        """
        if not math.isfinite(self.final_theta_perplexity):
            return False
        if perplexity_threshold is None:
            initial = self.final_theta_perplexity + self.perplexity_drop
            perplexity_threshold = 1.0 + 0.75 * (initial - 1.0)
        return (
            self.train_loss_drop > 0.0
            and self.final_theta_perplexity <= perplexity_threshold
        )


def _finite(values: list[float]) -> list[float]:
    return [v for v in values if math.isfinite(v)]


def summarize(history: list[EpochRecord]) -> ConvergenceSummary:
    """Reduce a search history to a :class:`ConvergenceSummary`."""
    if not history:
        raise ValueError("history is empty")
    train = [r.train_loss for r in history]
    perplexities = [r.theta_perplexity for r in history]
    resources = _finite([r.resource for r in history])
    val = _finite([r.val_acc_loss for r in history])
    perf = _finite([r.perf_loss for r in history])
    return ConvergenceSummary(
        epochs=len(history),
        train_loss_drop=train[0] - train[-1],
        final_val_loss=val[-1] if val else float("nan"),
        final_perf_loss=perf[-1] if perf else float("nan"),
        final_resource=resources[-1] if resources else float("nan"),
        final_theta_perplexity=perplexities[-1],
        perplexity_drop=perplexities[0] - perplexities[-1],
        resource_trend=(resources[-1] - resources[0]) if len(resources) >= 2 else 0.0,
    )


def ascii_chart(
    values: list[float],
    title: str = "",
    width: int = 60,
    height: int = 8,
    y_format: str = "{:8.3f}",
) -> str:
    """A dependency-free line chart over epochs.

    Non-finite entries (e.g. warm-up epochs before the architecture update
    starts) are skipped on the x-axis.
    """
    points = [(i, v) for i, v in enumerate(values) if math.isfinite(v)]
    if not points:
        return f"{title}\n  (no finite data)"
    xs = [p[0] for p in points]
    ys = np.array([p[1] for p in points])
    lo, hi = float(ys.min()), float(ys.max())
    span = hi - lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    n = len(points)
    for j, y in enumerate(ys):
        col = int(round(j * (width - 1) / max(n - 1, 1)))
        row = int(round((hi - y) / span * (height - 1)))
        grid[row][col] = "*"
    lines = [title] if title else []
    for r, row in enumerate(grid):
        label = y_format.format(hi - r * span / (height - 1)) if height > 1 else ""
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"epoch {xs[0]} .. {xs[-1]}")
    return "\n".join(lines)


def render_trajectory(history: list[EpochRecord], width: int = 60) -> str:
    """Multi-panel ASCII rendering of one search run."""
    panels = [
        ascii_chart([r.train_loss for r in history],
                    "train loss (weight steps)", width=width),
        ascii_chart([r.val_acc_loss for r in history],
                    "validation accuracy loss (arch steps)", width=width),
        ascii_chart([r.perf_loss for r in history],
                    "Perf_loss (alpha-normalised)", width=width),
        ascii_chart([r.theta_perplexity for r in history],
                    "Theta perplexity (effective live candidates)", width=width),
    ]
    resources = _finite([r.resource for r in history])
    if resources and max(resources) > 0:
        panels.append(
            ascii_chart([r.resource for r in history], "RES (device units)", width=width)
        )
    return ("\n" + "\n").join(panels)
