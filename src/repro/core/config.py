"""Configuration of one EDD co-search run.

Valid ``target`` names come from :data:`repro.hw.registry.TARGETS` — the
single dispatch point for hardware targets — so plugging in a new device via
``@register_target`` makes it immediately usable here, in the CLI and in
``repro.api`` without touching this module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def _known_targets() -> tuple[str, ...]:
    # Late import: repro.hw.registry is independent of repro.core, but the
    # lazy lookup keeps this config module importable on its own and picks up
    # targets registered after import time.
    from repro.hw.registry import target_names

    return tuple(target_names())


def __getattr__(name: str):  # pragma: no cover - back-compat module attr
    if name == "TARGETS":
        return _known_targets()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class EDDConfig:
    """All knobs of the co-search (paper Secs. 5-6 defaults where given).

    Attributes
    ----------
    target:
        Which device formulation drives ``Perf_loss``/``RES``:
        ``gpu`` (latency, Sec. 4.2), ``fpga_recursive`` (latency + shared
        resource), ``fpga_pipelined`` (throughput + summed resource), or
        ``accel`` (bit-serial dedicated accelerator, Sec. 4.3).
    epochs:
        Search epochs (the paper runs a fixed 50; reduced-scale experiments
        use fewer).
    alpha_target:
        ``alpha`` in Eqs. 6-7 scales Perf_loss "to the same magnitude as
        Acc_loss"; we implement that literally by auto-scaling alpha so the
        initial Perf_loss equals ``alpha_target``.
    beta, penalty_base:
        The Eq. 1 resource barrier ``beta * C^((RES - RES_ub)/RES_ub)``.
    resource_fraction:
        Fraction of the device's DSPs available as RES_ub.
    arch_start_epoch:
        Warm-up epochs where only DNN weights are updated before the
        architecture variables join (standard DNAS practice to avoid
        collapsing onto under-trained candidates).
    hard_weight_step / hard_arch_step:
        Gumbel sampling mode per phase — hard single-path (paper's
        memory-efficient mode) or soft weighted mixture (full gradient).
    bilevel_order:
        1 = first-order approximation (architecture gradient at the current
        weights; the common DNAS default).  2 = DARTS-style unrolled step:
        the architecture gradient is taken at the virtually-updated weights
        ``w' = w - lr * grad_w L_train`` with the finite-difference
        Hessian-vector correction (Liu et al. 2019, the paper's ref [18]).
    unroll_epsilon:
        Finite-difference scale of the second-order correction.
    """

    target: str = "gpu"
    epochs: int = 8
    batch_size: int = 16
    lr_weights: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    lr_arch: float = 0.05
    alpha_target: float = 1.0
    beta: float = 1.0
    penalty_base: float = math.e
    resource_fraction: float = 1.0
    lse_sharpness: float = 1.0
    temperature_initial: float = 5.0
    temperature_min: float = 0.3
    temperature_decay: float = 0.9
    arch_start_epoch: int = 1
    hard_weight_step: bool = True
    hard_arch_step: bool = False
    bilevel_order: int = 1
    unroll_epsilon: float = 1e-2
    grad_clip: float | None = 5.0
    seed: int = 0
    log_every: int = 0  # epochs between log lines; 0 = silent

    def __post_init__(self) -> None:
        if self.target not in _known_targets():
            raise ValueError(
                f"target must be one of {_known_targets()}, got {self.target!r}"
            )
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if not 0.0 < self.resource_fraction <= 1.0:
            raise ValueError(
                f"resource_fraction must be in (0, 1], got {self.resource_fraction}"
            )
        if self.arch_start_epoch < 0:
            raise ValueError("arch_start_epoch must be >= 0")
        if self.bilevel_order not in (1, 2):
            raise ValueError(
                f"bilevel_order must be 1 or 2, got {self.bilevel_order}"
            )
        if self.unroll_epsilon <= 0:
            raise ValueError("unroll_epsilon must be positive")
        if self.grad_clip is not None and self.grad_clip <= 0:
            raise ValueError("grad_clip must be positive or None")
