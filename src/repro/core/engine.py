"""Reusable epoch-driven search/training engine.

Every training-style loop in the repo — the bilevel co-search, the
architecture-only baselines and plain from-scratch training — is the same
skeleton: *anneal* a schedule, run *weight* steps over the training loader,
optionally run *arch* steps over the validation loader, record an epoch
summary, and finally *derive* a result.  :class:`SearchEngine` owns that
skeleton exactly once; callers plug in phase callbacks and receive an
:class:`EngineRun` with the epoch history and wall-clock accounting per
phase.

Drivers
-------
* :meth:`repro.core.cosearch.EDDSearcher.search` — full co-search (all four
  phases; second-order arch steps reach the epoch's training batches through
  the :class:`EpochContext`).
* :class:`repro.baselines.fixed_impl_nas.FixedImplementationNAS` — inherits
  the searcher's engine wiring.
* :func:`repro.core.trainer.train_from_spec` — weight phase only, with the
  LR schedule as the (end-of-epoch) anneal hook; the random-search baseline
  drives the engine through it for every candidate it scores.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.autograd.pool import buffer_pool
from repro.core.results import EpochRecord
from repro.obs.tracer import get_tracer

PHASES = ("anneal", "weight", "arch", "derive")

Batch = tuple[np.ndarray, np.ndarray]


@dataclass
class EpochContext:
    """What an arch step may see of the epoch it runs in.

    ``train_batches`` holds the epoch's materialised training batches so
    second-order (unrolled) architecture steps can take virtual weight steps
    on real training data; ``step`` is the index of the current validation
    batch.
    """

    epoch: int
    temperature: float = float("nan")
    step: int = 0
    train_batches: list[Batch] = field(default_factory=list)


@dataclass
class EngineRun:
    """Outcome of :meth:`SearchEngine.run`."""

    history: list[EpochRecord]
    phase_seconds: dict[str, float]
    phase_calls: dict[str, int]
    wall_seconds: float
    derived: Any = None

    def timing_summary(self) -> dict[str, Any]:
        """JSON-friendly per-phase accounting (seconds, calls, share)."""
        total = self.wall_seconds or 1.0
        return {
            phase: {
                "seconds": self.phase_seconds[phase],
                "calls": self.phase_calls[phase],
                "share": self.phase_seconds[phase] / total,
            }
            for phase in PHASES
        }


WeightStep = Callable[[np.ndarray, np.ndarray], float]
ArchStep = Callable[[np.ndarray, np.ndarray, EpochContext], dict[str, float]]
EpochCallback = Callable[[EpochRecord], None]

# Keys an arch step must report; they populate the EpochRecord telemetry.
_ARCH_STAT_KEYS = ("acc_loss", "perf_loss", "resource", "total_loss")


class SearchEngine:
    """Drives epochs of ``anneal -> weight -> arch`` plus a final ``derive``.

    Parameters
    ----------
    epochs:
        Number of epochs to run (0 is allowed: no steps, straight to derive).
    weight_step:
        ``(images, labels) -> loss`` — the inner-level update.
    arch_step:
        Optional ``(images, labels, ctx) -> stats dict`` run over the
        validation loader from ``arch_start_epoch`` on; the stats dict must
        contain ``acc_loss``/``perf_loss``/``resource``/``total_loss``.
    anneal:
        Optional ``epoch -> scalar`` schedule hook (Gumbel temperature for
        the co-search, learning rate for plain training); its return value is
        recorded as the epoch's ``temperature``.  ``anneal_at`` selects
        whether it fires before the epoch's steps (``"start"``, the
        temperature-annealing convention) or after (``"end"``, the LR-decay
        convention).
    derive:
        Optional zero-argument finaliser whose return value lands in
        :attr:`EngineRun.derived`.
    perplexity_fn:
        Optional probe recorded as ``theta_perplexity`` per epoch.
    buffer_train_batches:
        Materialise each epoch's training batches into
        :attr:`EpochContext.train_batches`.  Only second-order (unrolled)
        architecture steps read them, so the default is off and the training
        loader streams; a driver that needs the batches (bilevel order 2)
        switches this on.
    use_buffer_pool:
        Enable the :mod:`repro.autograd.pool` scratch-buffer pool for the
        duration of :meth:`run` (default on; ``REPRO_BUFFER_POOL=0`` in the
        environment overrides).  Step results are bit-identical either way —
        the pool only changes where the hot path's arrays come from.
    callbacks:
        Called with every completed :class:`EpochRecord` (logging, live
        trajectory plots, checkpoint triggers, ...).
    divergence_guard:
        Optional recovery policy (see :class:`repro.resilience.
        DivergenceGuard`, or any object with the same two methods).  After
        each epoch the engine calls ``check(record, arch_ran=...)``; a
        non-``None`` reason means the epoch went non-finite, and the
        engine then calls ``recover(epoch, reason)`` — which restores
        rolled-back state and returns the epoch index to resume from (or
        raises a typed error once its budget is spent).  The diverged
        record is discarded, history is truncated to the resume point and
        the loop replays from there; callbacks never see diverged epochs.
    """

    def __init__(
        self,
        *,
        epochs: int,
        weight_step: WeightStep,
        arch_step: ArchStep | None = None,
        arch_start_epoch: int = 0,
        anneal: Callable[[int], float] | None = None,
        anneal_at: str = "start",
        derive: Callable[[], Any] | None = None,
        perplexity_fn: Callable[[], float] | None = None,
        buffer_train_batches: bool = False,
        use_buffer_pool: bool = True,
        callbacks: Sequence[EpochCallback] = (),
        divergence_guard: Any = None,
    ) -> None:
        if epochs < 0:
            raise ValueError(f"epochs must be >= 0, got {epochs}")
        if anneal_at not in ("start", "end"):
            raise ValueError(f"anneal_at must be 'start' or 'end', got {anneal_at!r}")
        self.epochs = epochs
        self.weight_step = weight_step
        self.arch_step = arch_step
        self.arch_start_epoch = arch_start_epoch
        self.anneal = anneal
        self.anneal_at = anneal_at
        self.derive = derive
        self.perplexity_fn = perplexity_fn
        self.buffer_train_batches = buffer_train_batches
        self.use_buffer_pool = use_buffer_pool
        self.callbacks = list(callbacks)
        self.divergence_guard = divergence_guard
        self.phase_seconds: dict[str, float] = dict.fromkeys(PHASES, 0.0)
        self.phase_calls: dict[str, int] = dict.fromkeys(PHASES, 0)

    # -- timing ----------------------------------------------------------------
    def _timed(self, phase: str, fn: Callable[[], Any]) -> Any:
        tracer = get_tracer()
        start = time.perf_counter()
        try:
            if tracer.enabled:
                with tracer.span(f"search.{phase}", cat="search"):
                    return fn()
            return fn()
        finally:
            self.phase_seconds[phase] += time.perf_counter() - start
            self.phase_calls[phase] += 1

    # -- main loop -------------------------------------------------------------
    def run(
        self,
        train_loader: Iterable[Batch],
        val_loader: Iterable[Batch] | None = None,
        *,
        start_epoch: int = 0,
        initial_history: Sequence[EpochRecord] = (),
    ) -> EngineRun:
        """Run epochs ``start_epoch .. epochs-1`` plus derive; returns the record.

        Args:
            train_loader: Batch iterable consumed once per epoch (weight phase).
            val_loader: Optional batch iterable for the arch phase.
            start_epoch: First epoch index to execute.  Non-zero values resume
                a checkpointed run: the caller must have restored all mutable
                state (weights, optimiser moments, RNG streams) to exactly what
                it was after epoch ``start_epoch - 1`` completed — see
                :class:`repro.core.checkpoint.CheckpointCallback`.
            initial_history: Epoch records of the already-completed epochs, so
                the returned :class:`EngineRun` covers the full search even
                after a resume.  Callbacks fire only for newly run epochs.

        Returns:
            :class:`EngineRun` with the (prefixed) history, per-phase timing
            for this call only, and the derive phase's return value.

        Raises:
            ValueError: If ``start_epoch`` is outside ``[0, epochs]`` or does
                not line up with ``len(initial_history)``.
        """
        if not 0 <= start_epoch <= self.epochs:
            raise ValueError(
                f"start_epoch must be in [0, {self.epochs}], got {start_epoch}"
            )
        if initial_history and len(initial_history) != start_epoch:
            raise ValueError(
                f"initial_history has {len(initial_history)} records but "
                f"start_epoch is {start_epoch}"
            )
        start = time.perf_counter()
        # Fresh accounting per run: an engine may be re-run (e.g. resumed),
        # and the returned telemetry must cover this run only.
        self.phase_seconds = dict.fromkeys(PHASES, 0.0)
        self.phase_calls = dict.fromkeys(PHASES, 0)
        history: list[EpochRecord] = list(initial_history)
        # The buffer pool turns the steps' per-op scratch allocations into
        # checkout/checkin on persistent free lists — epoch k+1 trains in
        # the arrays epoch k allocated (see repro.autograd.pool).
        with buffer_pool(self.use_buffer_pool) as pool:
            # A while-loop rather than range(): the divergence guard may
            # roll the epoch counter *backwards* to replay from the last
            # good checkpoint.
            epoch = start_epoch
            while epoch < self.epochs:
                tracer = get_tracer()
                epoch_start = tracer.clock() if tracer.enabled else 0.0
                ctx = EpochContext(epoch=epoch)
                if self.anneal is not None and self.anneal_at == "start":
                    ctx.temperature = float(
                        self._timed("anneal", lambda: self.anneal(epoch))
                    )

                if self.buffer_train_batches and self.arch_step is not None:
                    ctx.train_batches = list(train_loader)
                    train_losses = self._timed(
                        "weight",
                        lambda: [self.weight_step(x, y) for x, y in ctx.train_batches],
                    )
                else:
                    # Stream the loader instead of holding a full epoch of data
                    # in memory; only unrolled arch steps need the batch list.
                    train_losses = self._timed(
                        "weight",
                        lambda: [self.weight_step(x, y) for x, y in train_loader],
                    )

                arch_stats: list[dict[str, float]] = []
                if (
                    self.arch_step is not None
                    and val_loader is not None
                    and epoch >= self.arch_start_epoch
                ):
                    def _arch_epoch() -> list[dict[str, float]]:
                        stats = []
                        for i, (x, y) in enumerate(val_loader):
                            ctx.step = i
                            stats.append(self.arch_step(x, y, ctx))
                        return stats

                    arch_stats = self._timed("arch", _arch_epoch)

                if self.anneal is not None and self.anneal_at == "end":
                    ctx.temperature = float(
                        self._timed("anneal", lambda: self.anneal(epoch))
                    )

                def _mean(key: str) -> float:
                    if not arch_stats:
                        return float("nan")
                    return float(np.mean([s[key] for s in arch_stats]))

                record = EpochRecord(
                    epoch=epoch,
                    train_loss=float(np.mean(train_losses)) if train_losses else float("nan"),
                    val_acc_loss=_mean("acc_loss"),
                    perf_loss=_mean("perf_loss"),
                    resource=_mean("resource"),
                    total_loss=_mean("total_loss"),
                    temperature=ctx.temperature,
                    theta_perplexity=(
                        float(self.perplexity_fn())
                        if self.perplexity_fn is not None
                        else float("nan")
                    ),
                )
                if self.divergence_guard is not None:
                    reason = self.divergence_guard.check(
                        record, arch_ran=bool(arch_stats)
                    )
                    if reason is not None:
                        # Diverged: drop the poisoned record, restore from
                        # the last good checkpoint and replay.  recover()
                        # raises once its rollback budget is spent.
                        resume_epoch = int(
                            self.divergence_guard.recover(epoch, reason)
                        )
                        del history[resume_epoch:]
                        if tracer.enabled:
                            tracer.add_span(
                                "search.rollback", epoch_start,
                                tracer.clock() - epoch_start, cat="search",
                                args={"epoch": epoch, "reason": reason,
                                      "resume_epoch": resume_epoch},
                            )
                        pool.sweep()
                        epoch = resume_epoch
                        continue

                history.append(record)
                if tracer.enabled:
                    tracer.add_span(
                        "search.epoch", epoch_start,
                        tracer.clock() - epoch_start, cat="search",
                        args={"epoch": epoch},
                    )
                    # Counters skip non-finite values (pre-arch epochs report
                    # NaN losses) inside Tracer.counter.
                    tracer.counter("search.train_loss", record.train_loss,
                                   cat="search")
                    tracer.counter("search.total_loss", record.total_loss,
                                   cat="search")
                    tracer.counter("search.temperature", record.temperature,
                                   cat="search")
                for callback in self.callbacks:
                    callback(record)
                # Safety valve: buffers stranded by graphs that never ran
                # backward (exception paths, eval forwards missing no_grad)
                # rejoin the free lists once their graphs are collected.
                pool.sweep()
                epoch += 1

            derived = None
            if self.derive is not None:
                derived = self._timed("derive", self.derive)
        return EngineRun(
            history=history,
            phase_seconds=dict(self.phase_seconds),
            phase_calls=dict(self.phase_calls),
            wall_seconds=time.perf_counter() - start,
            derived=derived,
        )
