"""The fused objective of Eq. 1.

``L = Acc_loss(A, I) * Perf_loss(I) + beta * C^(RES(I) - RES_ub)``

The multiplicative coupling is the paper's central design choice: unlike the
additive penalties of FBNet/ProxylessNAS, the gradient of the accuracy term
is scaled by the current performance loss (and vice versa), so neither
objective can be optimised while ignoring the other.  See
``benchmarks/bench_ablation_formulation.py`` for the multiplicative-vs-
additive comparison.
"""

from __future__ import annotations

from repro.autograd.tensor import Tensor
from repro.hw.base import HwEvaluation
from repro.hw.resource import resource_penalty


def combined_loss(
    acc_loss: Tensor,
    hw_eval: HwEvaluation,
    resource_bound: float | None,
    beta: float = 1.0,
    penalty_base: float = 2.718281828459045,
) -> Tensor:
    """Assemble Eq. 1 from the accuracy loss and a hardware evaluation."""
    total = acc_loss * hw_eval.perf_loss
    if resource_bound is not None:
        total = total + resource_penalty(
            hw_eval.resource, resource_bound, beta=beta, base=penalty_base
        )
    return total


def additive_loss(
    acc_loss: Tensor,
    hw_eval: HwEvaluation,
    resource_bound: float | None,
    perf_weight: float = 1.0,
    beta: float = 1.0,
    penalty_base: float = 2.718281828459045,
) -> Tensor:
    """FBNet-style additive alternative ``Acc + w * Perf`` (ablation only)."""
    total = acc_loss + hw_eval.perf_loss * perf_weight
    if resource_bound is not None:
        total = total + resource_penalty(
            hw_eval.resource, resource_bound, beta=beta, base=penalty_base
        )
    return total
