"""EDD co-search core: the Eq. 1 objective and the bilevel search loop."""

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.config import EDDConfig
from repro.core.engine import EngineRun, EpochContext, SearchEngine
from repro.core.loss import combined_loss
from repro.core.cosearch import EDDSearcher, build_hardware_model, build_supernet
from repro.core.results import EpochRecord, SearchResult, TrainResult
from repro.core.trainer import evaluate_network, train_from_spec

__all__ = [
    "EDDConfig",
    "EngineRun",
    "EpochContext",
    "SearchEngine",
    "load_checkpoint",
    "save_checkpoint",
    "EDDSearcher",
    "EpochRecord",
    "SearchResult",
    "TrainResult",
    "build_hardware_model",
    "build_supernet",
    "combined_loss",
    "evaluate_network",
    "train_from_spec",
]
