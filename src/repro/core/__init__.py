"""EDD co-search core: the Eq. 1 objective and the bilevel search loop."""

from repro.core.checkpoint import (
    CheckpointCallback,
    SearchCheckpoint,
    find_latest_checkpoint,
    load_checkpoint,
    restore_search_state,
    save_checkpoint,
)
from repro.core.config import EDDConfig
from repro.core.engine import EngineRun, EpochContext, SearchEngine
from repro.core.loss import combined_loss
from repro.core.cosearch import EDDSearcher, build_hardware_model, build_supernet
from repro.core.parallel import ParallelEvaluator, evaluate_parallel
from repro.core.results import (
    EpochRecord,
    MultiSearchResult,
    SearchResult,
    TrainResult,
)
from repro.core.trainer import evaluate_network, train_from_spec

__all__ = [
    "CheckpointCallback",
    "EDDConfig",
    "EngineRun",
    "EpochContext",
    "MultiSearchResult",
    "ParallelEvaluator",
    "SearchCheckpoint",
    "SearchEngine",
    "evaluate_parallel",
    "find_latest_checkpoint",
    "load_checkpoint",
    "restore_search_state",
    "save_checkpoint",
    "EDDSearcher",
    "EpochRecord",
    "SearchResult",
    "TrainResult",
    "build_hardware_model",
    "build_supernet",
    "combined_loss",
    "evaluate_network",
    "train_from_spec",
]
