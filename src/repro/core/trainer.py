"""Train derived (or zoo) networks from scratch on the proxy task.

The paper's final step (Sec. 5): after derivation "the searched DNN needs to
be trained from scratch on the target dataset".  Offline that dataset is the
synthetic proxy, which is sufficient to compare architectures and precision
settings against each other (the role accuracy plays in Tables 1-3).
"""

from __future__ import annotations

from repro.autograd.tensor import Tensor, no_grad
from repro.core.engine import SearchEngine
from repro.core.results import TrainResult
from repro.data.loader import DataLoader
from repro.data.synthetic import Dataset, DatasetSplits
from repro.nas.arch_spec import ArchSpec
from repro.nas.network import BuiltNetwork, build_network
from repro.nn.functional import cross_entropy, topk_accuracy
from repro.nn.optim import SGD, CosineSchedule, clip_grad_norm


def evaluate_network(
    net: BuiltNetwork,
    dataset: Dataset,
    batch_size: int = 64,
    bits: int | None = None,
    topk: tuple[int, ...] = (1, 5),
) -> dict[int, float]:
    """Top-k accuracies of ``net`` on ``dataset`` (eval mode, no grad)."""
    net.eval()
    loader = DataLoader(dataset, batch_size, shuffle=False)
    correct = {k: 0.0 for k in topk}
    total = 0
    with no_grad():
        for images, labels in loader:
            logits = net(Tensor(images), bits=bits)
            for k in topk:
                correct[k] += topk_accuracy(logits, labels, k=k) * len(labels)
            total += len(labels)
    net.train()
    return {k: correct[k] / max(total, 1) for k in topk}


def train_from_spec(
    spec: ArchSpec,
    splits: DatasetSplits,
    epochs: int = 10,
    batch_size: int = 16,
    lr: float = 0.05,
    momentum: float = 0.9,
    weight_decay: float = 1e-4,
    bits: int | None = None,
    seed: int = 0,
    warm_start_from=None,
    grad_clip: float | None = 5.0,
) -> TrainResult:
    """Train ``spec`` from scratch and report test-set errors.

    ``bits`` fake-quantises weights during both training and evaluation
    (quantisation-aware training); ``None`` uses the spec's own annotation,
    falling back to full precision.  ``warm_start_from`` accepts the supernet
    that derived this spec: its trained weights seed the child (see
    :mod:`repro.nas.warmstart`), typically cutting the retraining budget.
    """
    net = build_network(spec, seed=seed)
    if warm_start_from is not None:
        from repro.nas.warmstart import inherit_weights

        inherit_weights(warm_start_from, net)
    optimizer = SGD(net.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay)
    loader = DataLoader(splits.train, batch_size, shuffle=True, seed=seed + 1)
    schedule = CosineSchedule(optimizer, total_steps=max(epochs, 1))

    def weight_step(images, labels) -> float:
        optimizer.zero_grad()
        logits = net(Tensor(images), bits=bits)
        loss = cross_entropy(logits, labels)
        loss.backward()
        if grad_clip is not None:
            clip_grad_norm(optimizer.params, grad_clip)
        optimizer.step()
        return loss.item()

    # Weight phase only: the LR schedule is the anneal hook, stepped at epoch
    # end (cosine-decay convention — epoch 0 trains at the full base LR).
    engine = SearchEngine(
        epochs=epochs,
        weight_step=weight_step,
        anneal=lambda epoch: schedule.step(),
        anneal_at="end",
    )
    run = engine.run(loader)
    losses = [record.train_loss for record in run.history]
    metrics = evaluate_network(net, splits.test, batch_size=batch_size, bits=bits)
    top5 = metrics.get(5, metrics[max(metrics)])
    return TrainResult(
        name=spec.name,
        top1_error=(1.0 - metrics[1]) * 100.0,
        top5_error=(1.0 - top5) * 100.0,
        train_losses=losses,
        epochs=epochs,
        weight_bits=bits if bits is not None else spec.weight_bits,
    )
