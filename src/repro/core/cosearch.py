"""The EDD co-search (Sec. 5 "Overall Algorithm").

Bilevel stochastic gradient descent over the fused space ``{A, I}``:

1. initialise Theta/Phi uniform, parallel factors per the device rule;
2. each epoch, (a) update DNN weights ``w`` on the training split by
   minimising ``Acc_loss`` under sampled architectures, then (b) update
   ``{Theta, Phi, pf}`` on the validation split by descending Eq. 1;
3. anneal the Gumbel temperature;
4. derive the argmax architecture, re-tune integer parallel factors, and
   hand the spec to the trainer for training from scratch.

Target dispatch note: ``quantization_for_target`` and
``build_hardware_model`` here are deprecated thin wrappers kept for
backwards compatibility — targets/devices are registered and resolved in
:mod:`repro.hw.registry`, and the supported high-level entry point is
:mod:`repro.api`.
"""

from __future__ import annotations

import time
import warnings

import numpy as np

from repro.autograd.tensor import Tensor
from repro.core.config import EDDConfig
from repro.core.engine import EpochContext, SearchEngine
from repro.core.loss import combined_loss
from repro.core.results import EpochRecord, SearchResult
from repro.data.loader import DataLoader
from repro.data.synthetic import DatasetSplits
from repro.hw import registry as hw_registry
from repro.hw.base import HardwareModel
from repro.hw.fpga import FPGAModel
from repro.nas.derive import derive_arch_spec
from repro.nas.gumbel import GumbelSoftmax, TemperatureSchedule, perplexity
from repro.nas.quantization import QuantizationConfig
from repro.nas.space import SearchSpaceConfig
from repro.nas.supernet import SampledArch, SuperNet
from repro.nn.functional import cross_entropy
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.utils.log import get_logger

logger = get_logger("core.cosearch")


def quantization_for_target(target: str) -> QuantizationConfig:
    """The paper's per-device quantisation menus (Sec. 6).

    .. deprecated::
        Thin wrapper kept for backwards compatibility; new code should call
        :func:`repro.hw.registry.quantization_for_target` (or go through
        ``repro.api``), where every target is registered exactly once.
    """
    warnings.warn(
        "repro.core.cosearch.quantization_for_target is deprecated; use "
        "repro.hw.registry.quantization_for_target instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return hw_registry.quantization_for_target(target)


def build_supernet(space: SearchSpaceConfig, config: EDDConfig) -> SuperNet:
    return SuperNet(
        space,
        quant=hw_registry.quantization_for_target(config.target),
        seed=config.seed,
    )


def build_hardware_model(
    space: SearchSpaceConfig,
    config: EDDConfig,
    device: str | hw_registry.Device | None = None,
) -> HardwareModel:
    """Instantiate the device model matching ``config.target``.

    .. deprecated::
        Thin wrapper kept for backwards compatibility; new code should call
        :func:`repro.hw.registry.build_hardware_model` (or go through
        ``repro.api``).  Unknown targets raise ``ValueError`` listing the
        registered names.
    """
    warnings.warn(
        "repro.core.cosearch.build_hardware_model is deprecated; use "
        "repro.hw.registry.build_hardware_model instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return hw_registry.build_hardware_model(space, config, device=device)


class EDDSearcher:
    """Runs one co-search over a search space, dataset and device model."""

    def __init__(
        self,
        space: SearchSpaceConfig,
        splits: DatasetSplits,
        config: EDDConfig | None = None,
        hw_model: HardwareModel | None = None,
        supernet: SuperNet | None = None,
    ) -> None:
        self.config = config or EDDConfig()
        self.space = space
        self.splits = splits
        self.supernet = supernet or build_supernet(space, self.config)
        self.hw_model = hw_model or hw_registry.build_hardware_model(
            space, self.config
        )
        self.sampler = GumbelSoftmax(
            schedule=TemperatureSchedule(
                t_initial=self.config.temperature_initial,
                t_min=self.config.temperature_min,
                decay=self.config.temperature_decay,
            ),
            seed=self.config.seed + 1,
        )
        self.weight_optimizer = SGD(
            self.supernet.weight_parameters(),
            lr=self.config.lr_weights,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )
        arch_params = (
            self.supernet.arch_parameters()
            + self.hw_model.implementation_parameters()
        )
        self.arch_optimizer = Adam(arch_params, lr=self.config.lr_arch)
        self._alpha_calibrated = False
        # Loaders live on the searcher (not inside search()) so checkpoints
        # can capture their shuffle streams and resume() can rewind them.
        self.train_loader = DataLoader(
            self.splits.train, self.config.batch_size, shuffle=True,
            seed=self.config.seed + 2,
        )
        self.val_loader = DataLoader(
            self.splits.val, self.config.batch_size, shuffle=True,
            seed=self.config.seed + 3,
        )

    # -- helpers -------------------------------------------------------------
    def _expected_sample(self) -> SampledArch:
        """Noise-free expectation sample (softmax of current logits)."""
        net = self.supernet
        op_weights = self.sampler.expected(net.theta, axis=-1)
        if net.quant is not None:
            quant_weights = self.sampler.expected(net.phi, axis=-1)
            sharing = net.quant.sharing
        else:
            quant_weights = Tensor(np.ones((1,)))
            sharing = "global"
        return SampledArch(
            op_weights=op_weights,
            quant_weights=quant_weights,
            op_indices=[int(i) for i in op_weights.data.argmax(axis=-1)],
            sharing=sharing,
            hard=False,
        )

    def calibrate_alpha(self) -> float:
        """Scale alpha so the initial Perf_loss matches ``alpha_target``.

        This realises the paper's instruction that "alpha scales Perf_loss to
        the same magnitude as Acc_loss" without manual tuning per device.
        """
        evaluation = self.hw_model.evaluate(self._expected_sample())
        perf0 = float(evaluation.perf_loss.data)
        if perf0 > 0:
            scale = self.config.alpha_target / perf0
            self.hw_model.alpha = getattr(self.hw_model, "alpha", 1.0) * scale
        self._alpha_calibrated = True
        return getattr(self.hw_model, "alpha", 1.0)

    # -- steps ------------------------------------------------------------------
    def weight_step(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Inner-level update of DNN weights on a training batch."""
        self.weight_optimizer.zero_grad()
        self.arch_optimizer.zero_grad()
        sample = self.supernet.sample(self.sampler, hard=self.config.hard_weight_step)
        logits = self.supernet(Tensor(images), sample=sample)
        loss = cross_entropy(logits, labels)
        loss.backward()
        if self.config.grad_clip is not None:
            clip_grad_norm(self.weight_optimizer.params, self.config.grad_clip)
        self.weight_optimizer.step()
        return loss.item()

    def arch_step(self, images: np.ndarray, labels: np.ndarray) -> dict[str, float]:
        """Outer-level update of {Theta, Phi, pf} on a validation batch (Eq. 1)."""
        self.weight_optimizer.zero_grad()
        self.arch_optimizer.zero_grad()
        sample = self.supernet.sample(self.sampler, hard=self.config.hard_arch_step)
        logits = self.supernet(Tensor(images), sample=sample)
        acc_loss = cross_entropy(logits, labels)
        hw_eval = self.hw_model.evaluate(sample)
        total = combined_loss(
            acc_loss,
            hw_eval,
            self.hw_model.resource_bound,
            beta=self.config.beta,
            penalty_base=self.config.penalty_base,
        )
        total.backward()
        if self.config.grad_clip is not None:
            clip_grad_norm(self.arch_optimizer.params, self.config.grad_clip)
        self.arch_optimizer.step()
        self.hw_model.project_parameters()
        return {
            "acc_loss": acc_loss.item(),
            "perf_loss": float(hw_eval.perf_loss.data),
            "resource": float(hw_eval.resource.data),
            "total_loss": total.item(),
        }

    # -- second-order (DARTS) architecture step -----------------------------------
    def _weight_grads(self, images: np.ndarray, labels: np.ndarray,
                      sample: SampledArch) -> list[np.ndarray]:
        """``grad_w L_train`` under a fixed sample (arch grads discarded)."""
        self.weight_optimizer.zero_grad()
        self.arch_optimizer.zero_grad()
        loss = cross_entropy(self.supernet(Tensor(images), sample=sample), labels)
        loss.backward()
        return [
            p.grad.copy() if p.grad is not None else np.zeros_like(p.data)
            for p in self.weight_optimizer.params
        ]

    def _arch_grads(self, images: np.ndarray, labels: np.ndarray,
                    sample: SampledArch) -> list[np.ndarray]:
        """``grad_alpha L_train`` at the current weights (weights untouched)."""
        self.weight_optimizer.zero_grad()
        self.arch_optimizer.zero_grad()
        loss = cross_entropy(self.supernet(Tensor(images), sample=sample), labels)
        loss.backward()
        return [
            p.grad.copy() if p.grad is not None else np.zeros_like(p.data)
            for p in self.arch_optimizer.params
        ]

    def arch_step_unrolled(
        self,
        val_images: np.ndarray,
        val_labels: np.ndarray,
        train_images: np.ndarray,
        train_labels: np.ndarray,
    ) -> dict[str, float]:
        """DARTS second-order architecture update (paper ref [18]).

        1. virtual step: ``w' = w - xi * grad_w L_train(w)``;
        2. evaluate Eq. 1 at ``w'`` -> arch gradients and ``grad_w' L_val``;
        3. finite-difference Hessian-vector correction:
           ``- xi * (grad_a L_train(w+) - grad_a L_train(w-)) / (2 eps)``
           with ``w± = w ± eps * grad_w' L_val``;
        4. apply the corrected gradient with the arch optimiser.
        """
        xi = self.config.lr_weights
        sample = self.supernet.sample(self.sampler, hard=self.config.hard_arch_step)
        weights = self.weight_optimizer.params

        originals = [p.data.copy() for p in weights]
        g_train = self._weight_grads(train_images, train_labels, sample)
        for p, g in zip(weights, g_train):
            p.data = p.data - xi * g

        # Full Eq. 1 at the virtual weights.
        self.weight_optimizer.zero_grad()
        self.arch_optimizer.zero_grad()
        logits = self.supernet(Tensor(val_images), sample=sample)
        acc_loss = cross_entropy(logits, val_labels)
        hw_eval = self.hw_model.evaluate(sample)
        total = combined_loss(
            acc_loss, hw_eval, self.hw_model.resource_bound,
            beta=self.config.beta, penalty_base=self.config.penalty_base,
        )
        total.backward()
        arch_grads = [
            p.grad.copy() if p.grad is not None else np.zeros_like(p.data)
            for p in self.arch_optimizer.params
        ]
        val_weight_grads = [
            p.grad.copy() if p.grad is not None else np.zeros_like(p.data)
            for p in weights
        ]

        # Finite-difference correction around the *original* weights.
        norm = float(np.sqrt(sum(float((g * g).sum()) for g in val_weight_grads)))
        stats_extra = 0.0
        if norm > 1e-12:
            eps = self.config.unroll_epsilon / norm
            for p, orig, g in zip(weights, originals, val_weight_grads):
                p.data = orig + eps * g
            g_plus = self._arch_grads(train_images, train_labels, sample)
            for p, orig, g in zip(weights, originals, val_weight_grads):
                p.data = orig - eps * g
            g_minus = self._arch_grads(train_images, train_labels, sample)
            correction_scale = xi / (2.0 * eps)
            for i in range(len(arch_grads)):
                arch_grads[i] = arch_grads[i] - correction_scale * (
                    g_plus[i] - g_minus[i]
                )
            stats_extra = correction_scale
        for p, orig in zip(weights, originals):
            p.data = orig

        # Install corrected gradients and step the arch optimiser.
        self.weight_optimizer.zero_grad()
        self.arch_optimizer.zero_grad()
        for p, g in zip(self.arch_optimizer.params, arch_grads):
            p.grad = g
        if self.config.grad_clip is not None:
            clip_grad_norm(self.arch_optimizer.params, self.config.grad_clip)
        self.arch_optimizer.step()
        self.hw_model.project_parameters()
        return {
            "acc_loss": acc_loss.item(),
            "perf_loss": float(hw_eval.perf_loss.data),
            "resource": float(hw_eval.resource.data),
            "total_loss": total.item(),
            "unroll_scale": stats_extra,
        }

    # -- engine plumbing ---------------------------------------------------------
    def _engine_arch_step(
        self, images: np.ndarray, labels: np.ndarray, ctx: EpochContext
    ) -> dict[str, float]:
        """Engine adapter: first- or second-order arch step per config."""
        if self.config.bilevel_order == 2:
            train_x, train_y = ctx.train_batches[ctx.step % len(ctx.train_batches)]
            return self.arch_step_unrolled(images, labels, train_x, train_y)
        return self.arch_step(images, labels)

    def _derive(self, name: str) -> tuple:
        """Derive phase: argmax spec plus FPGA parallel-factor retuning."""
        spec = derive_arch_spec(self.supernet, name=name)
        spec.metadata["target"] = self.config.target
        parallel_factors = None
        if isinstance(self.hw_model, FPGAModel):
            theta_idx = [int(i) for i in self.supernet.theta.data.argmax(axis=-1)]
            bits = spec.metadata.get(
                "block_bits", [16] * self.space.num_blocks
            )
            parallel_factors = self.hw_model.retune_parallel_factors(theta_idx, bits)
            spec.metadata["parallel_factors"] = parallel_factors
        return spec, parallel_factors

    def _log_epoch(self, record: EpochRecord) -> None:
        if self.config.log_every and record.epoch % self.config.log_every == 0:
            logger.info(
                "epoch %d train=%.3f val=%.3f perf=%.3f res=%.1f T=%.2f",
                record.epoch, record.train_loss, record.val_acc_loss,
                record.perf_loss, record.resource, record.temperature,
            )

    def build_engine(
        self,
        name: str = "EDD-searched",
        extra_callbacks: tuple | list = (),
        divergence_guard=None,
    ) -> SearchEngine:
        """The :class:`~repro.core.engine.SearchEngine` behind :meth:`search`.

        Args:
            name: Name given to the derived :class:`~repro.nas.arch_spec.ArchSpec`.
            extra_callbacks: Additional per-epoch callbacks (e.g. a
                :class:`~repro.core.checkpoint.CheckpointCallback`) appended
                after the built-in logging callback.
            divergence_guard: Optional :class:`repro.resilience.
                DivergenceGuard` giving the engine rollback-and-retry
                recovery from non-finite epochs.

        Returns:
            A configured engine; ``engine.run(...)`` executes the search.
        """
        return SearchEngine(
            epochs=self.config.epochs,
            weight_step=self.weight_step,
            arch_step=self._engine_arch_step,
            arch_start_epoch=self.config.arch_start_epoch,
            anneal=self.sampler.set_epoch,
            derive=lambda: self._derive(name),
            perplexity_fn=lambda: float(
                np.mean(perplexity(self.supernet.theta.data))
            ),
            # Only the DARTS-style unrolled arch step reads the epoch's
            # training batches.
            buffer_train_batches=self.config.bilevel_order == 2,
            callbacks=[self._log_epoch, *extra_callbacks],
            divergence_guard=divergence_guard,
        )

    # -- main loop --------------------------------------------------------------
    def search(
        self,
        name: str = "EDD-searched",
        callbacks: tuple | list = (),
        start_epoch: int = 0,
        initial_history: tuple | list = (),
        divergence_guard=None,
    ) -> SearchResult:
        """Run the bilevel co-search and derive the final architecture.

        Args:
            name: Name for the derived spec.
            callbacks: Extra per-epoch callbacks (checkpointing, live plots).
            start_epoch: First epoch to execute — non-zero only when resuming
                from a checkpoint that restored all mutable state (use
                :meth:`resume` rather than passing this by hand).
            initial_history: Records of the already-completed epochs on a
                resume; they are prepended to the result's history.
            divergence_guard: Optional :class:`repro.resilience.
                DivergenceGuard` — non-finite epochs roll back to the last
                good checkpoint and replay with a scaled-down LR instead
                of poisoning the result.

        Returns:
            The :class:`~repro.core.results.SearchResult`.  On a resumed run
            ``search_seconds``/``phase_seconds`` cover only the resumed
            portion, while ``history`` covers the whole search.
        """
        config = self.config
        start = time.perf_counter()  # includes alpha calibration, as before
        if not self._alpha_calibrated:
            self.calibrate_alpha()
        run = self.build_engine(
            name, extra_callbacks=callbacks, divergence_guard=divergence_guard
        ).run(
            self.train_loader,
            self.val_loader,
            start_epoch=start_epoch,
            initial_history=tuple(initial_history),
        )
        spec, parallel_factors = run.derived
        return SearchResult(
            spec=spec,
            history=run.history,
            theta=self.supernet.theta.data.copy(),
            phi=self.supernet.phi.data.copy(),
            parallel_factors=parallel_factors,
            search_seconds=time.perf_counter() - start,
            config=config,
            phase_seconds=dict(run.phase_seconds),
        )

    def resume(
        self,
        path,
        name: str = "EDD-searched",
        callbacks: tuple | list = (),
    ) -> SearchResult:
        """Restore a checkpoint and finish the search from where it stopped.

        The searcher must be freshly constructed with the same space, splits
        and config as the checkpointed run.  With a version-2 checkpoint the
        remaining epochs replay bit-identically, so the returned result's
        arrays equal those of an uninterrupted run.

        Args:
            path: Checkpoint file written by
                :class:`~repro.core.checkpoint.CheckpointCallback` or
                :func:`~repro.core.checkpoint.save_checkpoint`.
            name: Name for the derived spec.
            callbacks: Extra per-epoch callbacks for the resumed portion; a
                fresh :class:`~repro.core.checkpoint.CheckpointCallback`
                passed here should be seeded with the restored history.

        Returns:
            The full-search :class:`~repro.core.results.SearchResult`.
        """
        from repro.core.checkpoint import restore_search_state

        state = restore_search_state(self, path)
        return self.search(
            name=name,
            callbacks=callbacks,
            start_epoch=state.epoch,
            initial_history=state.history,
        )
