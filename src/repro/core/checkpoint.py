"""Checkpoint / resume for long co-search runs.

The paper's searches run 12 GPU-hours; a production release must survive
interruption.  A checkpoint captures everything the bilevel loop needs to
continue bit-exactly *except* the optimiser RNG streams (Gumbel noise
resumes from the epoch seed, so trajectories after resume are equivalent in
distribution; the test-suite verifies state round-trips exactly).

Format: a single ``.npz`` holding the supernet weights, Theta/Phi, the
device model's implementation parameters, both optimisers' moment buffers
and the epoch counter.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.cosearch import EDDSearcher

_PREFIX_WEIGHTS = "w::"
_PREFIX_IMPL = "impl::"
_PREFIX_VEL = "vel::"
_PREFIX_ADAM_M = "adam_m::"
_PREFIX_ADAM_V = "adam_v::"


def save_checkpoint(searcher: EDDSearcher, path: str | Path, epoch: int = 0) -> Path:
    """Serialise the searcher's mutable state to ``path`` (.npz)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, np.ndarray] = {}
    for name, param in searcher.supernet.named_parameters():
        payload[_PREFIX_WEIGHTS + name] = param.data
    for i, param in enumerate(searcher.hw_model.implementation_parameters()):
        payload[f"{_PREFIX_IMPL}{i}"] = param.data
    for i, velocity in enumerate(searcher.weight_optimizer._velocity):
        payload[f"{_PREFIX_VEL}{i}"] = velocity
    for i, m in enumerate(searcher.arch_optimizer._m):
        payload[f"{_PREFIX_ADAM_M}{i}"] = m
    for i, v in enumerate(searcher.arch_optimizer._v):
        payload[f"{_PREFIX_ADAM_V}{i}"] = v
    payload["meta::epoch"] = np.asarray(epoch)
    payload["meta::adam_t"] = np.asarray(searcher.arch_optimizer._t)
    payload["meta::alpha"] = np.asarray(getattr(searcher.hw_model, "alpha", 1.0))
    np.savez(path, **payload)
    return path


def load_checkpoint(searcher: EDDSearcher, path: str | Path) -> int:
    """Restore state saved by :func:`save_checkpoint`; returns the epoch.

    The searcher must have been constructed with the same space/config
    (shapes are validated parameter by parameter).
    """
    with np.load(Path(path)) as data:
        named = dict(searcher.supernet.named_parameters())
        for key in data.files:
            if not key.startswith(_PREFIX_WEIGHTS):
                continue
            name = key[len(_PREFIX_WEIGHTS):]
            if name not in named:
                raise KeyError(f"checkpoint has unknown parameter {name!r}")
            if named[name].shape != data[key].shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{named[name].shape} vs {data[key].shape}"
                )
            named[name].data = data[key].copy()
        impl = searcher.hw_model.implementation_parameters()
        for i, param in enumerate(impl):
            param.data = data[f"{_PREFIX_IMPL}{i}"].copy()
        for i in range(len(searcher.weight_optimizer._velocity)):
            searcher.weight_optimizer._velocity[i] = data[f"{_PREFIX_VEL}{i}"].copy()
        for i in range(len(searcher.arch_optimizer._m)):
            searcher.arch_optimizer._m[i] = data[f"{_PREFIX_ADAM_M}{i}"].copy()
            searcher.arch_optimizer._v[i] = data[f"{_PREFIX_ADAM_V}{i}"].copy()
        searcher.arch_optimizer._t = int(data["meta::adam_t"])
        if hasattr(searcher.hw_model, "alpha"):
            searcher.hw_model.alpha = float(data["meta::alpha"])
            searcher._alpha_calibrated = True
        return int(data["meta::epoch"])
