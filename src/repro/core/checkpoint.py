"""Checkpoint / resume for long co-search runs.

The paper's searches run 12 GPU-hours; a production release must survive
interruption.  A checkpoint captures *everything* the bilevel loop needs to
continue bit-exactly: supernet weights and buffers, Theta/Phi, the device
model's implementation parameters, both optimisers' moment buffers, the
Gumbel sampler's RNG stream, both data-loader shuffle streams, the epoch
counter and the per-epoch history so far.  A search resumed from epoch ``k``
therefore produces the same final :class:`~repro.core.results.SearchResult`
arrays as the uninterrupted run (``tests/test_core_checkpoint.py`` asserts
exact equality).

Format: a single ``.npz`` (version 2).  Version-1 files (pre-RNG/history)
still load; they restore parameters and optimiser state only, so resumed
trajectories from v1 files are equivalent in distribution rather than
bit-identical.

Typical use goes through :func:`repro.api.search` (``checkpoint_dir=...`` /
``resume=True``) or the CLI's ``repro search --checkpoint-dir ... --resume``;
the pieces here are the building blocks:

* :class:`CheckpointCallback` — a :class:`~repro.core.engine.SearchEngine`
  epoch callback that snapshots the searcher every N epochs;
* :func:`restore_search_state` — rehydrate a searcher and get the epoch /
  history needed to call ``search(start_epoch=..., initial_history=...)``;
* :meth:`repro.core.cosearch.EDDSearcher.resume` — the one-call wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.results import EpochRecord
from repro.utils.rng import capture_rng_state, restore_rng_state

if TYPE_CHECKING:  # import cycle: cosearch drives the engine that calls us
    from repro.core.cosearch import EDDSearcher

_PREFIX_WEIGHTS = "w::"
_PREFIX_BUFFERS = "buf::"
_PREFIX_IMPL = "impl::"
_PREFIX_VEL = "vel::"
_PREFIX_ADAM_M = "adam_m::"
_PREFIX_ADAM_V = "adam_v::"

#: Column order of the ``hist::records`` array (one row per epoch).
EPOCH_RECORD_FIELDS = (
    "epoch",
    "train_loss",
    "val_acc_loss",
    "perf_loss",
    "resource",
    "total_loss",
    "temperature",
    "theta_perplexity",
)

CHECKPOINT_FORMAT_VERSION = 2


def _history_to_array(history: list[EpochRecord]) -> np.ndarray:
    rows = [
        [float(getattr(record, name)) for name in EPOCH_RECORD_FIELDS]
        for record in history
    ]
    return np.asarray(rows, dtype=np.float64).reshape(len(history), len(EPOCH_RECORD_FIELDS))


def _history_from_array(rows: np.ndarray) -> list[EpochRecord]:
    records = []
    for row in np.atleast_2d(rows):
        values = dict(zip(EPOCH_RECORD_FIELDS, (float(v) for v in row)))
        values["epoch"] = int(values["epoch"])
        records.append(EpochRecord(**values))
    return records


def save_checkpoint(
    searcher: EDDSearcher,
    path: str | Path,
    epoch: int = 0,
    history: list[EpochRecord] | tuple[EpochRecord, ...] = (),
) -> Path:
    """Serialise the searcher's complete mutable state to ``path`` (.npz).

    Args:
        searcher: The :class:`~repro.core.cosearch.EDDSearcher` to snapshot.
        epoch: Number of *completed* epochs — the epoch index a resumed run
            starts from.
        history: Epoch records of the completed epochs; stored so a resumed
            run's final history covers the whole search.

    Returns:
        The written path (parent directories are created as needed).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, np.ndarray] = {}
    for name, param in searcher.supernet.named_parameters():
        payload[_PREFIX_WEIGHTS + name] = param.data
    for name, value in searcher.supernet.named_buffers():
        payload[_PREFIX_BUFFERS + name] = np.asarray(value)
    for i, param in enumerate(searcher.hw_model.implementation_parameters()):
        payload[f"{_PREFIX_IMPL}{i}"] = param.data
    for i, velocity in enumerate(searcher.weight_optimizer._velocity):
        payload[f"{_PREFIX_VEL}{i}"] = velocity
    for i, m in enumerate(searcher.arch_optimizer._m):
        payload[f"{_PREFIX_ADAM_M}{i}"] = m
    for i, v in enumerate(searcher.arch_optimizer._v):
        payload[f"{_PREFIX_ADAM_V}{i}"] = v
    payload["meta::epoch"] = np.asarray(epoch)
    payload["meta::adam_t"] = np.asarray(searcher.arch_optimizer._t)
    payload["meta::alpha"] = np.asarray(getattr(searcher.hw_model, "alpha", 1.0))
    payload["meta::format"] = np.asarray(CHECKPOINT_FORMAT_VERSION)
    payload["meta::temperature"] = np.asarray(searcher.sampler.temperature)
    payload["rng::sampler"] = capture_rng_state(searcher.sampler.rng)
    payload["rng::train_loader"] = searcher.train_loader.rng_state()
    payload["rng::val_loader"] = searcher.val_loader.rng_state()
    payload["hist::records"] = _history_to_array(list(history))
    np.savez(path, **payload)
    return path


def load_checkpoint(searcher: EDDSearcher, path: str | Path) -> int:
    """Restore state saved by :func:`save_checkpoint`; returns the epoch.

    The searcher must have been constructed with the same space/config
    (shapes are validated parameter by parameter).  Version-2 checkpoints
    additionally restore supernet buffers, the Gumbel sampler's RNG stream
    and both loader shuffle streams, which is what makes a resumed search
    bit-identical; version-1 files restore parameters and optimiser moments
    only.

    Args:
        searcher: Freshly constructed searcher matching the checkpointed one.
        path: ``.npz`` file written by :func:`save_checkpoint`.

    Returns:
        The number of completed epochs stored in the checkpoint.

    Raises:
        KeyError: If the checkpoint names a parameter the searcher lacks.
        ValueError: If a stored array's shape does not match its parameter.
    """
    with np.load(Path(path)) as data:
        named = dict(searcher.supernet.named_parameters())
        for key in data.files:
            if not key.startswith(_PREFIX_WEIGHTS):
                continue
            name = key[len(_PREFIX_WEIGHTS):]
            if name not in named:
                raise KeyError(f"checkpoint has unknown parameter {name!r}")
            if named[name].shape != data[key].shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{named[name].shape} vs {data[key].shape}"
                )
            named[name].data = data[key].copy()
        buffers = {
            key[len(_PREFIX_BUFFERS):]: data[key]
            for key in data.files
            if key.startswith(_PREFIX_BUFFERS)
        }
        if buffers:
            searcher.supernet.load_buffers_dict(buffers)
        impl = searcher.hw_model.implementation_parameters()
        for i, param in enumerate(impl):
            param.data = data[f"{_PREFIX_IMPL}{i}"].copy()
        for i in range(len(searcher.weight_optimizer._velocity)):
            searcher.weight_optimizer._velocity[i] = data[f"{_PREFIX_VEL}{i}"].copy()
        for i in range(len(searcher.arch_optimizer._m)):
            searcher.arch_optimizer._m[i] = data[f"{_PREFIX_ADAM_M}{i}"].copy()
            searcher.arch_optimizer._v[i] = data[f"{_PREFIX_ADAM_V}{i}"].copy()
        searcher.arch_optimizer._t = int(data["meta::adam_t"])
        if hasattr(searcher.hw_model, "alpha"):
            searcher.hw_model.alpha = float(data["meta::alpha"])
            searcher._alpha_calibrated = True
        if "meta::temperature" in data.files:
            searcher.sampler.temperature = float(data["meta::temperature"])
        if "rng::sampler" in data.files:
            restore_rng_state(searcher.sampler.rng, data["rng::sampler"])
        if "rng::train_loader" in data.files:
            searcher.train_loader.set_rng_state(data["rng::train_loader"])
        if "rng::val_loader" in data.files:
            searcher.val_loader.set_rng_state(data["rng::val_loader"])
        return int(data["meta::epoch"])


@dataclass
class SearchCheckpoint:
    """What :func:`restore_search_state` hands back for a resume.

    Attributes:
        path: The checkpoint file that was loaded.
        epoch: Completed-epoch count — pass as ``start_epoch``.
        history: The completed epochs' records — pass as ``initial_history``.
    """

    path: Path
    epoch: int
    history: list[EpochRecord] = field(default_factory=list)


def restore_search_state(searcher: EDDSearcher, path: str | Path) -> SearchCheckpoint:
    """Rehydrate ``searcher`` from ``path`` and return the resume position.

    Args:
        searcher: Freshly constructed searcher with the same space/config as
            the checkpointed run.
        path: Checkpoint written by :func:`save_checkpoint` (directly or via
            :class:`CheckpointCallback`).

    Returns:
        A :class:`SearchCheckpoint`; feed its ``epoch``/``history`` into
        :meth:`EDDSearcher.search <repro.core.cosearch.EDDSearcher.search>` —
        or use :meth:`EDDSearcher.resume
        <repro.core.cosearch.EDDSearcher.resume>`, which does both steps.
    """
    path = Path(path)
    epoch = load_checkpoint(searcher, path)
    with np.load(path) as data:
        rows = data["hist::records"] if "hist::records" in data.files else None
    history = _history_from_array(rows) if rows is not None and rows.size else []
    return SearchCheckpoint(path=path, epoch=epoch, history=history)


def checkpoint_path(directory: str | Path, epoch: int, prefix: str = "ckpt") -> Path:
    """Canonical file name for the checkpoint written after ``epoch`` epochs."""
    return Path(directory) / f"{prefix}-epoch-{epoch:04d}.npz"


def find_latest_checkpoint(directory: str | Path, prefix: str = "ckpt") -> Path | None:
    """Newest checkpoint in ``directory`` by completed-epoch count.

    Args:
        directory: Directory that :class:`CheckpointCallback` wrote into.
        prefix: File-name prefix used when saving.

    Returns:
        The path with the highest epoch number, or ``None`` if the directory
        holds no matching files (or does not exist).
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    best: tuple[int, Path] | None = None
    for candidate in directory.glob(f"{prefix}-epoch-*.npz"):
        stem = candidate.stem  # ckpt-epoch-0007
        try:
            epoch = int(stem.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            continue
        if best is None or epoch > best[0]:
            best = (epoch, candidate)
    return best[1] if best else None


class CheckpointCallback:
    """Engine callback that snapshots a searcher every ``every`` epochs.

    Attach to :meth:`EDDSearcher.search
    <repro.core.cosearch.EDDSearcher.search>` (``callbacks=[cb]``); after each
    completed epoch it appends the epoch record to its running history and —
    every ``every`` epochs — writes ``<prefix>-epoch-NNNN.npz`` into
    ``directory`` via :func:`save_checkpoint`.  Because the snapshot is taken
    *after* the epoch's weight/arch steps and RNG draws, resuming from it
    reproduces the remaining epochs bit-identically.

    Args:
        searcher: The searcher whose state is snapshotted.
        directory: Where checkpoint files are written (created on first save).
        every: Snapshot period in epochs (``1`` = every epoch).
        prefix: File-name prefix (see :func:`checkpoint_path`).
        history: Pre-existing epoch records when the run itself is a resume,
            so follow-up checkpoints carry the full history.

    Raises:
        ValueError: If ``every < 1``.
    """

    def __init__(
        self,
        searcher: EDDSearcher,
        directory: str | Path,
        every: int = 1,
        prefix: str = "ckpt",
        history: list[EpochRecord] | tuple[EpochRecord, ...] = (),
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.searcher = searcher
        self.directory = Path(directory)
        self.every = every
        self.prefix = prefix
        self.history: list[EpochRecord] = list(history)
        #: Paths written so far, oldest first.
        self.saved: list[Path] = []

    def __call__(self, record: EpochRecord) -> None:
        """Record ``record`` and checkpoint if its epoch completes a period."""
        self.history.append(record)
        completed = record.epoch + 1
        if completed % self.every == 0:
            path = checkpoint_path(self.directory, completed, self.prefix)
            save_checkpoint(
                self.searcher, path, epoch=completed, history=self.history
            )
            self.saved.append(path)
