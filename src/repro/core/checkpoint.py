"""Checkpoint / resume for long co-search runs.

The paper's searches run 12 GPU-hours; a production release must survive
interruption.  A checkpoint captures *everything* the bilevel loop needs to
continue bit-exactly: supernet weights and buffers, Theta/Phi, the device
model's implementation parameters, both optimisers' moment buffers, the
Gumbel sampler's RNG stream, both data-loader shuffle streams, the epoch
counter and the per-epoch history so far.  A search resumed from epoch ``k``
therefore produces the same final :class:`~repro.core.results.SearchResult`
arrays as the uninterrupted run (``tests/test_core_checkpoint.py`` asserts
exact equality).

Format: a single ``.npz`` (version 3).  Saves are **durable**: the payload
is written to a temp file in the same directory, fsynced, and atomically
``os.replace``d into place, so a ``kill -9`` at any instant leaves either
the old checkpoint or the new one — never a half-written corpse shadowing
good state.  Each file embeds a SHA-256 content checksum
(``meta::checksum``); :func:`verify_checkpoint`/:func:`load_checkpoint`
raise a typed :class:`~repro.resilience.errors.CorruptCheckpoint` on
truncation or bit-rot, and :func:`find_latest_checkpoint` skips corrupt
files (with a warning) and falls back to the previous good epoch.
Version-2 files (pre-checksum) still load and resume bit-identically;
version-1 files (pre-RNG/history) restore parameters and optimiser state
only, so their resumed trajectories are equivalent in distribution rather
than bit-identical.

Typical use goes through :func:`repro.api.search` (``checkpoint_dir=...`` /
``resume=True``) or the CLI's ``repro search --checkpoint-dir ... --resume``;
the pieces here are the building blocks:

* :class:`CheckpointCallback` — a :class:`~repro.core.engine.SearchEngine`
  epoch callback that snapshots the searcher every N epochs;
* :func:`restore_search_state` — rehydrate a searcher and get the epoch /
  history needed to call ``search(start_epoch=..., initial_history=...)``;
* :meth:`repro.core.cosearch.EDDSearcher.resume` — the one-call wrapper.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.results import EpochRecord
from repro.resilience.errors import CorruptCheckpoint
from repro.utils.log import get_logger
from repro.utils.rng import capture_rng_state, restore_rng_state

logger = get_logger("checkpoint")

if TYPE_CHECKING:  # import cycle: cosearch drives the engine that calls us
    from repro.core.cosearch import EDDSearcher

_PREFIX_WEIGHTS = "w::"
_PREFIX_BUFFERS = "buf::"
_PREFIX_IMPL = "impl::"
_PREFIX_VEL = "vel::"
_PREFIX_ADAM_M = "adam_m::"
_PREFIX_ADAM_V = "adam_v::"

#: Column order of the ``hist::records`` array (one row per epoch).
EPOCH_RECORD_FIELDS = (
    "epoch",
    "train_loss",
    "val_acc_loss",
    "perf_loss",
    "resource",
    "total_loss",
    "temperature",
    "theta_perplexity",
)

CHECKPOINT_FORMAT_VERSION = 3

_CHECKSUM_KEY = "meta::checksum"


def _content_checksum(arrays: dict[str, np.ndarray]) -> np.ndarray:
    """SHA-256 over every array's name, dtype, shape and bytes (sorted by name)."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        arr = np.asarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(arr.dtype.str.encode("ascii"))
        digest.update(repr(arr.shape).encode("ascii"))
        digest.update(np.ascontiguousarray(arr).tobytes())
    return np.frombuffer(digest.digest(), dtype=np.uint8).copy()


def _history_to_array(history: list[EpochRecord]) -> np.ndarray:
    rows = [
        [float(getattr(record, name)) for name in EPOCH_RECORD_FIELDS]
        for record in history
    ]
    return np.asarray(rows, dtype=np.float64).reshape(len(history), len(EPOCH_RECORD_FIELDS))


def _history_from_array(rows: np.ndarray) -> list[EpochRecord]:
    records = []
    for row in np.atleast_2d(rows):
        values = dict(zip(EPOCH_RECORD_FIELDS, (float(v) for v in row)))
        values["epoch"] = int(values["epoch"])
        records.append(EpochRecord(**values))
    return records


def save_checkpoint(
    searcher: EDDSearcher,
    path: str | Path,
    epoch: int = 0,
    history: list[EpochRecord] | tuple[EpochRecord, ...] = (),
) -> Path:
    """Serialise the searcher's complete mutable state to ``path`` (.npz).

    Args:
        searcher: The :class:`~repro.core.cosearch.EDDSearcher` to snapshot.
        epoch: Number of *completed* epochs — the epoch index a resumed run
            starts from.
        history: Epoch records of the completed epochs; stored so a resumed
            run's final history covers the whole search.

    Returns:
        The written path (parent directories are created as needed).

    The write is atomic: the payload goes to a same-directory temp file
    (fsynced), then ``os.replace`` publishes it — a crash at any instant
    leaves either the previous file or the complete new one.  The payload
    embeds a SHA-256 content checksum so later readers can detect
    corruption that atomicity cannot prevent (bit-rot, truncation by
    other tools).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, np.ndarray] = {}
    for name, param in searcher.supernet.named_parameters():
        payload[_PREFIX_WEIGHTS + name] = param.data
    for name, value in searcher.supernet.named_buffers():
        payload[_PREFIX_BUFFERS + name] = np.asarray(value)
    for i, param in enumerate(searcher.hw_model.implementation_parameters()):
        payload[f"{_PREFIX_IMPL}{i}"] = param.data
    for i, velocity in enumerate(searcher.weight_optimizer._velocity):
        payload[f"{_PREFIX_VEL}{i}"] = velocity
    for i, m in enumerate(searcher.arch_optimizer._m):
        payload[f"{_PREFIX_ADAM_M}{i}"] = m
    for i, v in enumerate(searcher.arch_optimizer._v):
        payload[f"{_PREFIX_ADAM_V}{i}"] = v
    payload["meta::epoch"] = np.asarray(epoch)
    payload["meta::adam_t"] = np.asarray(searcher.arch_optimizer._t)
    payload["meta::alpha"] = np.asarray(getattr(searcher.hw_model, "alpha", 1.0))
    payload["meta::format"] = np.asarray(CHECKPOINT_FORMAT_VERSION)
    payload["meta::temperature"] = np.asarray(searcher.sampler.temperature)
    payload["rng::sampler"] = capture_rng_state(searcher.sampler.rng)
    payload["rng::train_loader"] = searcher.train_loader.rng_state()
    payload["rng::val_loader"] = searcher.val_loader.rng_state()
    payload["hist::records"] = _history_to_array(list(history))
    payload[_CHECKSUM_KEY] = _content_checksum(payload)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def verify_checkpoint(path: str | Path) -> int:
    """Verify a checkpoint's structure and content checksum.

    Args:
        path: ``.npz`` file written by :func:`save_checkpoint`.

    Returns:
        The checkpoint's format version.

    Raises:
        CorruptCheckpoint: If the file is unreadable/truncated, lacks its
            metadata, or the embedded SHA-256 does not match the stored
            arrays.  Pre-checksum (version < 3) files pass on structural
            integrity alone.
    """
    path = Path(path)
    try:
        with np.load(path) as data:
            files = set(data.files)
            if "meta::format" not in files:
                raise CorruptCheckpoint(str(path), "missing meta::format")
            version = int(data["meta::format"])
            if _CHECKSUM_KEY in files:
                stored = np.asarray(data[_CHECKSUM_KEY]).tobytes()
                arrays = {key: data[key] for key in files if key != _CHECKSUM_KEY}
                if stored != _content_checksum(arrays).tobytes():
                    raise CorruptCheckpoint(str(path), "content checksum mismatch")
            elif version >= 3:
                raise CorruptCheckpoint(
                    str(path), f"version {version} file missing its checksum"
                )
            return version
    except CorruptCheckpoint:
        raise
    except Exception as err:  # BadZipFile / OSError / EOFError / pickle noise
        raise CorruptCheckpoint(str(path), f"{type(err).__name__}: {err}") from err


def load_checkpoint(searcher: EDDSearcher, path: str | Path) -> int:
    """Restore state saved by :func:`save_checkpoint`; returns the epoch.

    The searcher must have been constructed with the same space/config
    (shapes are validated parameter by parameter).  Version-2 checkpoints
    additionally restore supernet buffers, the Gumbel sampler's RNG stream
    and both loader shuffle streams, which is what makes a resumed search
    bit-identical; version-1 files restore parameters and optimiser moments
    only.

    Args:
        searcher: Freshly constructed searcher matching the checkpointed one.
        path: ``.npz`` file written by :func:`save_checkpoint`.

    Returns:
        The number of completed epochs stored in the checkpoint.

    Raises:
        CorruptCheckpoint: If the file fails :func:`verify_checkpoint`
            (truncated, unreadable, or checksum mismatch).
        KeyError: If the checkpoint names a parameter the searcher lacks.
        ValueError: If a stored array's shape does not match its parameter.
    """
    verify_checkpoint(path)
    with np.load(Path(path)) as data:
        named = dict(searcher.supernet.named_parameters())
        for key in data.files:
            if not key.startswith(_PREFIX_WEIGHTS):
                continue
            name = key[len(_PREFIX_WEIGHTS):]
            if name not in named:
                raise KeyError(f"checkpoint has unknown parameter {name!r}")
            if named[name].shape != data[key].shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{named[name].shape} vs {data[key].shape}"
                )
            named[name].data = data[key].copy()
        buffers = {
            key[len(_PREFIX_BUFFERS):]: data[key]
            for key in data.files
            if key.startswith(_PREFIX_BUFFERS)
        }
        if buffers:
            searcher.supernet.load_buffers_dict(buffers)
        impl = searcher.hw_model.implementation_parameters()
        for i, param in enumerate(impl):
            param.data = data[f"{_PREFIX_IMPL}{i}"].copy()
        for i in range(len(searcher.weight_optimizer._velocity)):
            searcher.weight_optimizer._velocity[i] = data[f"{_PREFIX_VEL}{i}"].copy()
        for i in range(len(searcher.arch_optimizer._m)):
            searcher.arch_optimizer._m[i] = data[f"{_PREFIX_ADAM_M}{i}"].copy()
            searcher.arch_optimizer._v[i] = data[f"{_PREFIX_ADAM_V}{i}"].copy()
        searcher.arch_optimizer._t = int(data["meta::adam_t"])
        if hasattr(searcher.hw_model, "alpha"):
            searcher.hw_model.alpha = float(data["meta::alpha"])
            searcher._alpha_calibrated = True
        if "meta::temperature" in data.files:
            searcher.sampler.temperature = float(data["meta::temperature"])
        if "rng::sampler" in data.files:
            restore_rng_state(searcher.sampler.rng, data["rng::sampler"])
        if "rng::train_loader" in data.files:
            searcher.train_loader.set_rng_state(data["rng::train_loader"])
        if "rng::val_loader" in data.files:
            searcher.val_loader.set_rng_state(data["rng::val_loader"])
        return int(data["meta::epoch"])


@dataclass
class SearchCheckpoint:
    """What :func:`restore_search_state` hands back for a resume.

    Attributes:
        path: The checkpoint file that was loaded.
        epoch: Completed-epoch count — pass as ``start_epoch``.
        history: The completed epochs' records — pass as ``initial_history``.
    """

    path: Path
    epoch: int
    history: list[EpochRecord] = field(default_factory=list)


def restore_search_state(searcher: EDDSearcher, path: str | Path) -> SearchCheckpoint:
    """Rehydrate ``searcher`` from ``path`` and return the resume position.

    Args:
        searcher: Freshly constructed searcher with the same space/config as
            the checkpointed run.
        path: Checkpoint written by :func:`save_checkpoint` (directly or via
            :class:`CheckpointCallback`).

    Returns:
        A :class:`SearchCheckpoint`; feed its ``epoch``/``history`` into
        :meth:`EDDSearcher.search <repro.core.cosearch.EDDSearcher.search>` —
        or use :meth:`EDDSearcher.resume
        <repro.core.cosearch.EDDSearcher.resume>`, which does both steps.
    """
    path = Path(path)
    epoch = load_checkpoint(searcher, path)
    with np.load(path) as data:
        rows = data["hist::records"] if "hist::records" in data.files else None
    history = _history_from_array(rows) if rows is not None and rows.size else []
    return SearchCheckpoint(path=path, epoch=epoch, history=history)


def checkpoint_path(directory: str | Path, epoch: int, prefix: str = "ckpt") -> Path:
    """Canonical file name for the checkpoint written after ``epoch`` epochs."""
    return Path(directory) / f"{prefix}-epoch-{epoch:04d}.npz"


def _checkpoint_epoch(path: Path) -> int | None:
    """Epoch number embedded in a ``<prefix>-epoch-NNNN.npz`` name, or ``None``."""
    try:
        return int(path.stem.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return None


def find_latest_checkpoint(
    directory: str | Path, prefix: str = "ckpt", verify: bool = True
) -> Path | None:
    """Newest *verified* checkpoint in ``directory`` by completed-epoch count.

    Args:
        directory: Directory that :class:`CheckpointCallback` wrote into.
        prefix: File-name prefix used when saving.
        verify: Run :func:`verify_checkpoint` on each candidate, newest
            first, skipping corrupt/truncated files with a warning and
            falling back to the previous good epoch.  This is what makes
            ``kill -9`` mid-write survivable: a half-written newest file
            never shadows the older good state.

    Returns:
        The verified path with the highest epoch number, or ``None`` if no
        matching (valid) file exists.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates: list[tuple[int, Path]] = []
    for candidate in directory.glob(f"{prefix}-epoch-*.npz"):
        epoch = _checkpoint_epoch(candidate)
        if epoch is not None:
            candidates.append((epoch, candidate))
    for epoch, candidate in sorted(candidates, reverse=True):
        if not verify:
            return candidate
        try:
            verify_checkpoint(candidate)
            return candidate
        except CorruptCheckpoint as err:
            logger.warning(
                "skipping corrupt checkpoint %s (%s); falling back to an "
                "earlier epoch",
                candidate,
                err.reason,
            )
    return None


def prune_corrupt_checkpoints(
    directory: str | Path, prefix: str = "ckpt"
) -> list[Path]:
    """Delete corrupt checkpoints and stale temp files from ``directory``.

    Every ``<prefix>-epoch-*.npz`` failing :func:`verify_checkpoint` is
    removed with a logged warning (it would otherwise shadow older good
    checkpoints for naive listers), along with leftover
    ``.<name>.tmp-<pid>`` files from interrupted atomic writes.

    Returns:
        The removed paths, sorted.
    """
    directory = Path(directory)
    removed: list[Path] = []
    if not directory.is_dir():
        return removed
    for candidate in sorted(directory.glob(f"{prefix}-epoch-*.npz")):
        try:
            verify_checkpoint(candidate)
        except CorruptCheckpoint as err:
            logger.warning(
                "pruning corrupt checkpoint %s (%s)", candidate, err.reason
            )
            candidate.unlink(missing_ok=True)
            removed.append(candidate)
    for stale in sorted(directory.glob(f".{prefix}-epoch-*.npz.tmp-*")):
        logger.warning("pruning stale checkpoint temp file %s", stale)
        stale.unlink(missing_ok=True)
        removed.append(stale)
    return removed


class CheckpointCallback:
    """Engine callback that snapshots a searcher every ``every`` epochs.

    Attach to :meth:`EDDSearcher.search
    <repro.core.cosearch.EDDSearcher.search>` (``callbacks=[cb]``); after each
    completed epoch it appends the epoch record to its running history and —
    every ``every`` epochs — writes ``<prefix>-epoch-NNNN.npz`` into
    ``directory`` via :func:`save_checkpoint`.  Because the snapshot is taken
    *after* the epoch's weight/arch steps and RNG draws, resuming from it
    reproduces the remaining epochs bit-identically.

    Args:
        searcher: The searcher whose state is snapshotted.
        directory: Where checkpoint files are written (created on first save).
        every: Snapshot period in epochs (``1`` = every epoch).
        prefix: File-name prefix (see :func:`checkpoint_path`).
        history: Pre-existing epoch records when the run itself is a resume,
            so follow-up checkpoints carry the full history.

    Raises:
        ValueError: If ``every < 1``.
    """

    def __init__(
        self,
        searcher: EDDSearcher,
        directory: str | Path,
        every: int = 1,
        prefix: str = "ckpt",
        history: list[EpochRecord] | tuple[EpochRecord, ...] = (),
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.searcher = searcher
        self.directory = Path(directory)
        self.every = every
        self.prefix = prefix
        self.history: list[EpochRecord] = list(history)
        #: Paths written so far, oldest first.
        self.saved: list[Path] = []
        self._pruned = False

    def _save(self, completed: int) -> Path:
        if not self._pruned:
            # One-time sweep: corpses from an earlier crashed run must not
            # shadow the files this run is about to write.
            prune_corrupt_checkpoints(self.directory, self.prefix)
            self._pruned = True
        path = checkpoint_path(self.directory, completed, self.prefix)
        save_checkpoint(self.searcher, path, epoch=completed, history=self.history)
        self.saved.append(path)
        return path

    def __call__(self, record: EpochRecord) -> None:
        """Record ``record`` and checkpoint if its epoch completes a period."""
        self.history.append(record)
        completed = record.epoch + 1
        if completed % self.every == 0:
            self._save(completed)

    def save_now(self) -> Path:
        """Checkpoint the current state regardless of the ``every`` cadence.

        Used by the preemption path (checkpoint-then-exit): returns the
        existing file when this epoch's cadence save already happened,
        otherwise force-writes one for ``len(self.history)`` completed
        epochs.
        """
        completed = len(self.history)
        path = checkpoint_path(self.directory, completed, self.prefix)
        if self.saved and self.saved[-1] == path:
            return path
        return self._save(completed)

    def rollback(self, state: SearchCheckpoint) -> None:
        """Rewind internal history to a restored checkpoint's position.

        Called by :class:`repro.resilience.DivergenceGuard` after it
        restores the searcher from ``state``: records past the restored
        epoch are dropped so post-recovery saves carry a consistent
        history, and bookkeeping for newer files is discarded.
        """
        self.history = list(state.history)
        self.saved = [
            p
            for p in self.saved
            if (_checkpoint_epoch(p) or 0) <= state.epoch
        ]
