"""Result records produced by the co-search and the trainer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.nas.arch_spec import ArchSpec


@dataclass
class EpochRecord:
    """Per-epoch telemetry of the bilevel search."""

    epoch: int
    train_loss: float
    val_acc_loss: float
    perf_loss: float
    resource: float
    total_loss: float
    temperature: float
    theta_perplexity: float

    def to_dict(self) -> dict[str, float]:
        return {
            "epoch": self.epoch,
            "train_loss": self.train_loss,
            "val_acc_loss": self.val_acc_loss,
            "perf_loss": self.perf_loss,
            "resource": self.resource,
            "total_loss": self.total_loss,
            "temperature": self.temperature,
            "theta_perplexity": self.theta_perplexity,
        }


@dataclass
class SearchResult:
    """Everything a co-search run produces."""

    spec: ArchSpec
    history: list[EpochRecord]
    theta: np.ndarray
    phi: np.ndarray
    parallel_factors: list[int] | None
    search_seconds: float
    config: Any = None
    #: Wall-clock seconds per engine phase (anneal/weight/arch/derive), from
    #: :class:`repro.core.engine.SearchEngine`.
    phase_seconds: dict[str, float] | None = None

    @property
    def op_labels(self) -> list[str]:
        return list(self.spec.metadata.get("op_labels", []))

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.summary(),
            "op_labels": self.op_labels,
            "block_bits": self.spec.metadata.get("block_bits"),
            "parallel_factors": self.parallel_factors,
            "history": [r.to_dict() for r in self.history],
            "search_seconds": self.search_seconds,
            "phase_seconds": self.phase_seconds,
        }


@dataclass
class TrainResult:
    """Metrics from training a derived/zoo network from scratch."""

    name: str
    top1_error: float
    top5_error: float
    train_losses: list[float] = field(default_factory=list)
    epochs: int = 0
    weight_bits: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "top1_error": self.top1_error,
            "top5_error": self.top5_error,
            "epochs": self.epochs,
            "weight_bits": self.weight_bits,
            "final_train_loss": self.train_losses[-1] if self.train_losses else None,
        }
