"""Result records produced by the co-search and the trainer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.nas.arch_spec import ArchSpec


@dataclass
class EpochRecord:
    """Per-epoch telemetry of the bilevel search."""

    epoch: int
    train_loss: float
    val_acc_loss: float
    perf_loss: float
    resource: float
    total_loss: float
    temperature: float
    theta_perplexity: float

    def to_dict(self) -> dict[str, float]:
        """Plain-JSON form of this epoch's telemetry."""
        return {
            "epoch": self.epoch,
            "train_loss": self.train_loss,
            "val_acc_loss": self.val_acc_loss,
            "perf_loss": self.perf_loss,
            "resource": self.resource,
            "total_loss": self.total_loss,
            "temperature": self.temperature,
            "theta_perplexity": self.theta_perplexity,
        }


@dataclass
class SearchResult:
    """Everything a co-search run produces."""

    spec: ArchSpec
    history: list[EpochRecord]
    theta: np.ndarray
    phi: np.ndarray
    parallel_factors: list[int] | None
    search_seconds: float
    config: Any = None
    #: Wall-clock seconds per engine phase (anneal/weight/arch/derive), from
    #: :class:`repro.core.engine.SearchEngine`.
    phase_seconds: dict[str, float] | None = None

    @property
    def op_labels(self) -> list[str]:
        """Human-readable label of the chosen op per block."""
        return list(self.spec.metadata.get("op_labels", []))

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form of the full search outcome."""
        return {
            "spec": self.spec.summary(),
            "op_labels": self.op_labels,
            "block_bits": self.spec.metadata.get("block_bits"),
            "parallel_factors": self.parallel_factors,
            "history": [r.to_dict() for r in self.history],
            "search_seconds": self.search_seconds,
            "phase_seconds": self.phase_seconds,
        }


#: Objective keys accepted by :meth:`MultiSearchResult` aggregation — each
#: names an :class:`EpochRecord` field whose *final-epoch* value is minimised.
MULTI_SEARCH_OBJECTIVES = ("total_loss", "val_acc_loss", "perf_loss", "resource")


@dataclass
class MultiSearchResult:
    """Outcome of a batched multi-seed search (:func:`repro.api.search_many`).

    Holds one per-seed run report plus the aggregate selection: the run whose
    final-epoch ``objective`` value is lowest.  ``runs[i]`` corresponds to
    ``seeds[i]``; each run is a :class:`repro.api.SearchReport` (anything with
    a ``result`` holding a :class:`SearchResult` and a ``to_dict()`` works).

    Attributes:
        seeds: The seed of each run, in execution order.
        runs: Per-seed reports, aligned with ``seeds``.
        objective: The :class:`EpochRecord` field used for selection.
        best_index: Index into ``runs``/``seeds`` of the winning run.
        workers: Worker-process count the batch ran with (1 = serial).
        wall_seconds: End-to-end wall clock for the whole batch.
        cached_seeds: Seeds whose reports were loaded from a cross-run
            result cache instead of being searched (see
            :func:`repro.api.search_many`'s ``cache_dir``).
        early_stopped_seeds: Seeds whose runs were killed at the probe stage
            as dominated (see :func:`repro.api.search_many`'s
            ``early_stop_after``); their reports cover only the probe epochs
            and are never selected as ``best``.
    """

    seeds: list[int]
    runs: list[Any]
    objective: str
    best_index: int
    workers: int = 1
    wall_seconds: float = 0.0
    cached_seeds: list[int] = field(default_factory=list)
    early_stopped_seeds: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.seeds) != len(self.runs):
            raise ValueError(
                f"{len(self.seeds)} seeds but {len(self.runs)} runs"
            )
        if not self.runs:
            raise ValueError("MultiSearchResult needs at least one run")
        if not 0 <= self.best_index < len(self.runs):
            raise ValueError(f"best_index {self.best_index} out of range")

    @classmethod
    def from_runs(
        cls,
        seeds: list[int],
        runs: list[Any],
        objective: str,
        workers: int = 1,
        wall_seconds: float = 0.0,
        cached_seeds: list[int] | tuple[int, ...] = (),
        early_stopped_seeds: list[int] | tuple[int, ...] = (),
    ) -> "MultiSearchResult":
        """Build the result with the canonical NaN-aware best selection.

        The winning run minimises the final-epoch ``objective``; runs whose
        objective is NaN (e.g. ``total_loss`` before the arch phase starts)
        or whose history is empty can never beat a real value, and neither
        can runs whose seed is in ``early_stopped_seeds`` (their histories
        cover only the probe epochs — comparing them against full runs would
        be apples-to-oranges).  This is the single selection rule —
        :func:`repro.api.search_many` and any custom driver construct
        through here so ``best_index`` always agrees with
        :meth:`objective_values`.

        Raises:
            ValueError: If ``objective`` is not in
                :data:`MULTI_SEARCH_OBJECTIVES` or seeds/runs mismatch.
        """
        if objective not in MULTI_SEARCH_OBJECTIVES:
            raise ValueError(
                f"unknown objective {objective!r}, known: {MULTI_SEARCH_OBJECTIVES}"
            )
        dominated = set(early_stopped_seeds)
        ranked = []
        for seed, run in zip(seeds, runs):
            history = run.result.history
            value = float(getattr(history[-1], objective)) if history else float("nan")
            if seed in dominated or value != value:
                value = float("inf")
            ranked.append(value)
        best_index = min(range(len(runs)), key=ranked.__getitem__) if runs else 0
        return cls(
            seeds=seeds, runs=runs, objective=objective,
            best_index=best_index, workers=workers, wall_seconds=wall_seconds,
            cached_seeds=list(cached_seeds),
            early_stopped_seeds=sorted(dominated),
        )

    @property
    def best(self) -> Any:
        """The winning per-seed report."""
        return self.runs[self.best_index]

    @property
    def best_seed(self) -> int:
        """Seed of the winning run."""
        return self.seeds[self.best_index]

    def objective_values(self) -> list[float]:
        """Final-epoch objective value per run (``nan`` if no history)."""
        values = []
        for run in self.runs:
            history = run.result.history
            values.append(
                float(getattr(history[-1], self.objective))
                if history else float("nan")
            )
        return values

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form: one record per seed plus the aggregate."""
        values = self.objective_values()
        return {
            "seeds": list(self.seeds),
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "cached_seeds": list(self.cached_seeds),
            "early_stopped_seeds": list(self.early_stopped_seeds),
            "runs": [run.to_dict() for run in self.runs],
            "aggregate": {
                "objective": self.objective,
                "objective_values": values,
                "best_index": self.best_index,
                "best_seed": self.best_seed,
                "best_objective_value": values[self.best_index],
                "best_spec_name": self.best.result.spec.name,
            },
        }


@dataclass
class TrainResult:
    """Metrics from training a derived/zoo network from scratch."""

    name: str
    top1_error: float
    top5_error: float
    train_losses: list[float] = field(default_factory=list)
    epochs: int = 0
    weight_bits: int | None = None

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form of the training metrics."""
        return {
            "name": self.name,
            "top1_error": self.top1_error,
            "top5_error": self.top5_error,
            "epochs": self.epochs,
            "weight_bits": self.weight_bits,
            "final_train_loss": self.train_losses[-1] if self.train_losses else None,
        }
