"""Deterministic parallel fan-out of candidate evaluations.

The black-box baselines (random search, regularized evolution) and the
multi-seed front door (:func:`repro.api.search_many`) all have the same
shape: N independent, CPU-bound evaluations whose inputs are pure data and
whose outputs must not depend on scheduling.  :class:`ParallelEvaluator`
wraps ``concurrent.futures`` with the three properties that make that safe:

* **submission-order results** — ``map`` returns results in the order the
  payloads were given, never completion order, so rankings are stable;
* **per-payload seeding** — every payload carries its own seed (the callers
  construct payloads sequentially from one parent RNG), so ``workers=1`` and
  ``workers=8`` produce bit-identical outputs;
* **module-level workers** — evaluation functions must be importable
  (picklable by qualified name), which keeps payloads plain data and the
  workers free of shared mutable state.

``workers <= 1`` short-circuits to a plain in-process loop — no executor, no
pickling — so the serial path stays the reference semantics and the parallel
path is a pure speed-up.

The evaluator is also the search tier's **fault boundary**: with a
:class:`repro.resilience.RetryPolicy` and/or ``task_timeout`` it retries
failed tasks with deterministic decorrelated-jitter backoff, kills and
rebuilds the pool on worker crashes (``BrokenProcessPool``) or per-task
timeouts, and quarantines a task that keeps failing as a typed
:class:`~repro.resilience.errors.PoisonTask` instead of wedging the map.
Because results are keyed by submission order and every payload carries its
own seed, none of this changes *values*: a run with injected crashes,
hangs and flaky errors returns bit-identical results (hence rankings) to
the fault-free run — asserted by ``tests/test_core_parallel_faults.py``
via the :mod:`repro.resilience.testing` harness.

Bulk context crosses the process boundary once per worker via the executor
initializer; when it is the synthetic task's :class:`DatasetSplits`, the
arrays additionally travel as a tempfile ``np.memmap``
(:func:`pack_splits_memmap`) rather than a pickle, so spawn-platform workers
map the same pages instead of each materialising a private copy.
"""

from __future__ import annotations

import os
import tempfile
import time
from collections.abc import Callable, Sequence
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass
from typing import Any, TypeVar

import numpy as np

from repro.obs.tracer import get_tracer
from repro.resilience.errors import PoisonTask
from repro.resilience.retry import RetryPolicy
from repro.utils.log import get_logger

logger = get_logger("parallel")

# Sentinel marking a task whose result has not settled yet.
_PENDING = object()

_P = TypeVar("_P")
_R = TypeVar("_R")

#: Executor kinds accepted by :class:`ParallelEvaluator`.
EXECUTOR_KINDS = ("process", "thread")

# Per-worker slot for bulk read-only context (e.g. the dataset splits every
# candidate trains on).  Installed once per worker via the executor
# initializer instead of being pickled into every payload.
_SHARED: Any = None


@dataclass(frozen=True)
class MemmapSplits:
    """Picklable descriptor of :class:`~repro.data.synthetic.DatasetSplits`
    arrays parked in one tempfile.

    Shipping the descriptor instead of the arrays means a spawn-platform
    worker pays a few hundred bytes of pickle plus a page-faulted ``mmap``
    instead of re-pickling (and copying) the whole synthetic task per
    worker; fork platforms get the same file-backed sharing without relying
    on copy-on-write.  ``restore`` rebuilds a ``DatasetSplits`` whose arrays
    are read-only ``np.memmap`` views of the file.
    """

    path: str
    config: Any
    #: (split, field, dtype str, shape, byte offset) per array.
    fields: tuple[tuple[str, str, str, tuple[int, ...], int], ...]

    def restore(self) -> Any:
        """Worker-side rebuild: memmap-backed ``DatasetSplits``."""
        from repro.data.synthetic import Dataset, DatasetSplits

        arrays: dict[tuple[str, str], np.ndarray] = {}
        for split, field, dtype, shape, offset in self.fields:
            arrays[(split, field)] = np.memmap(
                self.path, dtype=np.dtype(dtype), mode="r",
                offset=offset, shape=tuple(shape),
            )
        return DatasetSplits(
            train=Dataset(arrays[("train", "images")], arrays[("train", "labels")]),
            val=Dataset(arrays[("val", "images")], arrays[("val", "labels")]),
            test=Dataset(arrays[("test", "images")], arrays[("test", "labels")]),
            config=self.config,
        )


def pack_splits_memmap(splits: Any) -> MemmapSplits:
    """Write a ``DatasetSplits``'s arrays into one tempfile for memmapping.

    The caller owns the file and should ``os.unlink`` it once the consuming
    workers are done (on POSIX, live memmaps keep the data reachable after
    the unlink).
    """
    fd, path = tempfile.mkstemp(prefix="repro-splits-", suffix=".bin")
    fields: list[tuple[str, str, str, tuple[int, ...], int]] = []
    offset = 0
    with os.fdopen(fd, "wb") as handle:
        for split in ("train", "val", "test"):
            dataset = getattr(splits, split)
            for field in ("images", "labels"):
                array = np.ascontiguousarray(getattr(dataset, field))
                fields.append(
                    (split, field, array.dtype.str, array.shape, offset)
                )
                handle.write(array.tobytes())
                offset += array.nbytes
    return MemmapSplits(
        path=path, config=getattr(splits, "config", None), fields=tuple(fields)
    )


def _is_dataset_splits(value: Any) -> bool:
    """Cheap type probe without importing the data package eagerly."""
    return type(value).__name__ == "DatasetSplits"


def _install_shared(value: Any) -> None:
    global _SHARED
    if isinstance(value, MemmapSplits):
        value = value.restore()
    _SHARED = value


def get_shared() -> Any:
    """Worker-side accessor for the object passed as ``map(..., shared=...)``.

    Returns:
        Whatever the driving process handed to :meth:`ParallelEvaluator.map`
        via ``shared`` (``None`` when nothing was shared).  Treat it as
        read-only: process workers each hold their own copy, thread workers
        and the serial path all see the caller's object.
    """
    return _SHARED


class ParallelEvaluator:
    """Orders-preserving parallel ``map`` over worker processes (or threads).

    Args:
        workers: Worker count.  ``<= 1`` evaluates serially in-process (the
            reference path); ``> 1`` fans out over an executor.
        kind: ``"process"`` (default; true CPU parallelism, payloads and
            results must pickle) or ``"thread"`` (shared memory; useful when
            the work releases the GIL or for tests that must not fork).
        task_timeout: Optional per-task wall-clock budget in seconds.  A
            task exceeding it has its (process-kind) pool terminated and
            rebuilt, the hung attempt counted as a failure, and — budget
            permitting — is resubmitted.  Thread workers cannot be killed:
            the timeout still fires, but the wedged thread leaks until its
            work returns, so hang-prone work belongs on process workers.
        retry: Optional :class:`repro.resilience.RetryPolicy` granting each
            task ``max_retries`` extra attempts (crash, timeout, or raise)
            with deterministic decorrelated-jitter backoff.  ``None`` keeps
            the historical fail-fast behaviour.
        quarantine_after: Optional hard cap on failed attempts per task
            before it is quarantined as a :class:`~repro.resilience.errors.
            PoisonTask`, even if ``retry`` would allow more.

    Raises:
        ValueError: If ``workers < 1``, ``kind`` is unknown, or a
            non-positive ``task_timeout``/``quarantine_after`` is given.
    """

    def __init__(
        self,
        workers: int = 1,
        kind: str = "process",
        *,
        task_timeout: float | None = None,
        retry: RetryPolicy | None = None,
        quarantine_after: int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if kind not in EXECUTOR_KINDS:
            raise ValueError(f"kind must be one of {EXECUTOR_KINDS}, got {kind!r}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {task_timeout}")
        if quarantine_after is not None and quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {quarantine_after}"
            )
        self.workers = workers
        self.kind = kind
        self.task_timeout = task_timeout
        self.retry = retry
        self.quarantine_after = quarantine_after

    @property
    def _resilient(self) -> bool:
        return (
            self.task_timeout is not None
            or self.retry is not None
            or self.quarantine_after is not None
        )

    def _attempt_budget(self) -> int:
        budget = (self.retry.max_retries if self.retry else 0) + 1
        if self.quarantine_after is not None:
            budget = min(budget, self.quarantine_after)
        return budget

    def _backoff(self, schedule: list[float], attempt_failures: int) -> None:
        if not schedule:
            return
        delay = schedule[min(attempt_failures - 1, len(schedule) - 1)]
        if delay > 0:
            time.sleep(delay)

    def _make_executor(self, tasks: int, shared: Any) -> Executor:
        size = min(self.workers, tasks)
        if self.kind == "thread":
            return ThreadPoolExecutor(
                max_workers=size, initializer=_install_shared, initargs=(shared,)
            )
        return ProcessPoolExecutor(
            max_workers=size, initializer=_install_shared, initargs=(shared,)
        )

    def map(
        self,
        fn: Callable[[_P], _R],
        payloads: Sequence[_P],
        shared: Any = None,
    ) -> list[_R]:
        """Evaluate ``fn`` over ``payloads``; results in payload order.

        Args:
            fn: Module-level callable (must be picklable for process workers).
            payloads: The inputs, each self-contained (carrying its own seed).
            shared: Optional bulk read-only context, shipped to each worker
                once (executor initializer) instead of once per payload;
                ``fn`` reads it back through :func:`get_shared`.

        Returns:
            ``[fn(p) for p in payloads]`` — same values and order as the
            serial loop, regardless of worker count or completion order.

        Raises:
            PoisonTask: When resilience is configured (``retry`` /
                ``task_timeout`` / ``quarantine_after``) and one task
                exhausted its attempt budget.
            Exception: Without resilience, the first payload's exception
                (by submission order) is re-raised; later results are
                discarded.
        """
        payloads = list(payloads)
        previous = get_shared()
        if self.workers <= 1 or len(payloads) <= 1:
            _install_shared(shared)
            try:
                if not self._resilient:
                    return [fn(p) for p in payloads]
                return [
                    self._call_serial(fn, p, i) for i, p in enumerate(payloads)
                ]
            finally:
                _install_shared(previous)
        pack: MemmapSplits | None = None
        if self.kind == "process" and _is_dataset_splits(shared):
            # Ship the synthetic-task arrays through one tempfile np.memmap
            # instead of pickling them into every worker (spawn platforms
            # re-build the arrays per worker otherwise; fork platforms drop
            # the reliance on copy-on-write).  Workers reconstruct a real
            # DatasetSplits in _install_shared, so fn sees the same object
            # type either way.
            pack = pack_splits_memmap(shared)
            shared = pack
        try:
            if self._resilient:
                return self._map_resilient(fn, payloads, shared)
            with self._make_executor(len(payloads), shared) as executor:
                futures = [executor.submit(fn, p) for p in payloads]
                return [future.result() for future in futures]
        finally:
            # Thread workers share this process's slot; restore it so one
            # map() cannot leak its context into the next.
            _install_shared(previous)
            if pack is not None:
                # Workers are gone (executor shut down); drop the tempfile.
                try:
                    os.unlink(pack.path)
                except OSError:
                    pass

    # -- fault-tolerant path ---------------------------------------------------
    def _call_serial(self, fn: Callable[[_P], _R], payload: _P, index: int) -> _R:
        """Serial-path evaluation with the same retry/quarantine budget."""
        budget = self._attempt_budget()
        schedule = self.retry.schedule() if self.retry else []
        failures: list[str] = []
        while True:
            try:
                return fn(payload)
            except Exception as err:
                failures.append(f"{type(err).__name__}: {err}")
                if len(failures) >= budget:
                    raise PoisonTask(index, failures) from err
                self._backoff(schedule, len(failures))

    def _rebuild(
        self, executor: Executor, tasks: int, shared: Any, kill: bool
    ) -> Executor:
        """Tear an executor down (terminating its workers if asked) and replace it."""
        if kill:
            # A hung worker never returns on its own; SIGTERM the pool's
            # children before abandoning it (process kind only — threads
            # cannot be killed and simply leak until their work returns).
            processes = getattr(executor, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:  # pragma: no cover - already-dead race
                    pass
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - broken pools may refuse
            pass
        return self._make_executor(tasks, shared)

    def _map_resilient(
        self, fn: Callable[[_P], _R], payloads: list[_P], shared: Any
    ) -> list[_R]:
        """Order-preserving map with retries, timeouts and pool rebuilds.

        Results settle in submission order; a pool rebuild resubmits every
        task without a settled result, but only the task that actually
        crashed/timed out has the failure counted against its budget —
        innocent tasks get their re-run for free, and since every payload
        is self-seeded the values (and any ranking built on them) stay
        bit-identical to a fault-free run.
        """
        tracer = get_tracer()
        budget = self._attempt_budget()
        schedule = self.retry.schedule() if self.retry else []
        n = len(payloads)
        executor = self._make_executor(n, shared)
        futures = [executor.submit(fn, p) for p in payloads]
        results: list[Any] = [_PENDING] * n
        failures: list[list[str]] = [[] for _ in range(n)]
        totals = {"retries": 0, "timeouts": 0, "rebuilds": 0}
        clean_exit = False
        try:
            for i in range(n):
                while results[i] is _PENDING:
                    try:
                        results[i] = futures[i].result(timeout=self.task_timeout)
                        continue
                    except BrokenExecutor as err:
                        kind, caught = "crash", err
                        failures[i].append(
                            f"worker crashed ({type(err).__name__})"
                        )
                    except FuturesTimeout as err:
                        # In 3.11+ futures.TimeoutError is the builtin
                        # TimeoutError, so a task *raising* TimeoutError
                        # lands here too — done() tells the cases apart.
                        if futures[i].done():
                            kind, caught = "error", err
                            failures[i].append(f"{type(err).__name__}: {err}")
                        else:
                            kind, caught = "timeout", err
                            totals["timeouts"] += 1
                            failures[i].append(
                                f"timeout after {self.task_timeout}s"
                            )
                    except Exception as err:
                        kind, caught = "error", err
                        failures[i].append(f"{type(err).__name__}: {err}")

                    retryable = len(failures[i]) < budget
                    logger.warning(
                        "task %d attempt %d failed (%s): %s%s",
                        i, len(failures[i]), kind, failures[i][-1],
                        "; retrying" if retryable else "; quarantining",
                    )
                    if kind in ("crash", "timeout"):
                        # The pool is unusable (broken, or its workers were
                        # just terminated): rebuild it and resubmit every
                        # task whose result has not settled.
                        totals["rebuilds"] += 1
                        executor = self._rebuild(
                            executor, n, shared, kill=kind == "timeout"
                        )
                        if tracer.enabled:
                            tracer.counter(
                                "parallel.pool_rebuilds",
                                float(totals["rebuilds"]), cat="parallel",
                            )
                        for j in range(i, n):
                            if results[j] is not _PENDING:
                                continue
                            future = futures[j]
                            settled_ok = future.done() and (
                                future.exception() is None
                            )
                            if j == i:
                                if retryable:
                                    futures[j] = executor.submit(
                                        fn, payloads[j]
                                    )
                            elif not settled_ok:
                                futures[j] = executor.submit(fn, payloads[j])
                    elif retryable:
                        futures[i] = executor.submit(fn, payloads[i])

                    if not retryable:
                        raise PoisonTask(i, failures[i]) from caught
                    totals["retries"] += 1
                    if tracer.enabled:
                        tracer.counter(
                            "parallel.retries", float(totals["retries"]),
                            cat="parallel",
                        )
                        if kind == "timeout":
                            tracer.counter(
                                "parallel.timeouts", float(totals["timeouts"]),
                                cat="parallel",
                            )
                    self._backoff(schedule, len(failures[i]))
            clean_exit = True
            return results
        finally:
            executor.shutdown(wait=clean_exit, cancel_futures=not clean_exit)


def evaluate_parallel(
    fn: Callable[[_P], _R],
    payloads: Sequence[_P],
    workers: int = 1,
    kind: str = "process",
    shared: Any = None,
    task_timeout: float | None = None,
    retry: RetryPolicy | None = None,
) -> list[_R]:
    """One-shot convenience wrapper around :meth:`ParallelEvaluator.map`.

    Args:
        fn: Module-level callable applied to each payload.
        payloads: Self-contained inputs.
        workers: Worker count (``<= 1`` = serial reference path).
        kind: ``"process"`` or ``"thread"``.
        shared: Bulk read-only context for :func:`get_shared`.
        task_timeout: Optional per-task timeout in seconds (see
            :class:`ParallelEvaluator`).
        retry: Optional :class:`repro.resilience.RetryPolicy` for bounded
            retries with backoff.

    Returns:
        Results in payload order.
    """
    return ParallelEvaluator(
        workers=workers, kind=kind, task_timeout=task_timeout, retry=retry
    ).map(fn, payloads, shared=shared)


def train_spec_payload(spec: Any, epochs: int, batch_size: int, seed: int) -> tuple:
    """Build the payload :func:`train_spec_worker` expects.

    The dataset splits are deliberately *not* part of the payload — pass
    them as ``map(..., shared=splits)`` so they cross the process boundary
    once per worker rather than once per candidate.
    """
    return (spec, epochs, batch_size, seed)


def train_spec_worker(payload: tuple) -> Any:
    """Proxy-train one candidate spec (the shared worker of both baselines).

    Args:
        payload: ``(spec, epochs, batch_size, seed)`` from
            :func:`train_spec_payload`; the dataset comes from
            :func:`get_shared`.

    Returns:
        The :class:`repro.core.results.TrainResult`.

    Raises:
        RuntimeError: If no dataset splits were passed via ``shared``.
    """
    from repro.core.trainer import train_from_spec

    spec, epochs, batch_size, seed = payload
    splits = get_shared()
    if splits is None:
        raise RuntimeError(
            "train_spec_worker needs the dataset splits via map(..., shared=splits)"
        )
    return train_from_spec(
        spec, splits, epochs=epochs, batch_size=batch_size, seed=seed
    )
