"""Deterministic parallel fan-out of candidate evaluations.

The black-box baselines (random search, regularized evolution) and the
multi-seed front door (:func:`repro.api.search_many`) all have the same
shape: N independent, CPU-bound evaluations whose inputs are pure data and
whose outputs must not depend on scheduling.  :class:`ParallelEvaluator`
wraps ``concurrent.futures`` with the three properties that make that safe:

* **submission-order results** — ``map`` returns results in the order the
  payloads were given, never completion order, so rankings are stable;
* **per-payload seeding** — every payload carries its own seed (the callers
  construct payloads sequentially from one parent RNG), so ``workers=1`` and
  ``workers=8`` produce bit-identical outputs;
* **module-level workers** — evaluation functions must be importable
  (picklable by qualified name), which keeps payloads plain data and the
  workers free of shared mutable state.

``workers <= 1`` short-circuits to a plain in-process loop — no executor, no
pickling — so the serial path stays the reference semantics and the parallel
path is a pure speed-up.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, TypeVar

_P = TypeVar("_P")
_R = TypeVar("_R")

#: Executor kinds accepted by :class:`ParallelEvaluator`.
EXECUTOR_KINDS = ("process", "thread")

# Per-worker slot for bulk read-only context (e.g. the dataset splits every
# candidate trains on).  Installed once per worker via the executor
# initializer instead of being pickled into every payload.
_SHARED: Any = None


def _install_shared(value: Any) -> None:
    global _SHARED
    _SHARED = value


def get_shared() -> Any:
    """Worker-side accessor for the object passed as ``map(..., shared=...)``.

    Returns:
        Whatever the driving process handed to :meth:`ParallelEvaluator.map`
        via ``shared`` (``None`` when nothing was shared).  Treat it as
        read-only: process workers each hold their own copy, thread workers
        and the serial path all see the caller's object.
    """
    return _SHARED


class ParallelEvaluator:
    """Orders-preserving parallel ``map`` over worker processes (or threads).

    Args:
        workers: Worker count.  ``<= 1`` evaluates serially in-process (the
            reference path); ``> 1`` fans out over an executor.
        kind: ``"process"`` (default; true CPU parallelism, payloads and
            results must pickle) or ``"thread"`` (shared memory; useful when
            the work releases the GIL or for tests that must not fork).

    Raises:
        ValueError: If ``workers < 1`` or ``kind`` is unknown.
    """

    def __init__(self, workers: int = 1, kind: str = "process") -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if kind not in EXECUTOR_KINDS:
            raise ValueError(f"kind must be one of {EXECUTOR_KINDS}, got {kind!r}")
        self.workers = workers
        self.kind = kind

    def _make_executor(self, tasks: int, shared: Any) -> Executor:
        size = min(self.workers, tasks)
        if self.kind == "thread":
            return ThreadPoolExecutor(
                max_workers=size, initializer=_install_shared, initargs=(shared,)
            )
        return ProcessPoolExecutor(
            max_workers=size, initializer=_install_shared, initargs=(shared,)
        )

    def map(
        self,
        fn: Callable[[_P], _R],
        payloads: Sequence[_P],
        shared: Any = None,
    ) -> list[_R]:
        """Evaluate ``fn`` over ``payloads``; results in payload order.

        Args:
            fn: Module-level callable (must be picklable for process workers).
            payloads: The inputs, each self-contained (carrying its own seed).
            shared: Optional bulk read-only context, shipped to each worker
                once (executor initializer) instead of once per payload;
                ``fn`` reads it back through :func:`get_shared`.

        Returns:
            ``[fn(p) for p in payloads]`` — same values and order as the
            serial loop, regardless of worker count or completion order.

        Raises:
            Exception: The first payload's exception (by submission order) is
                re-raised; later results are discarded.
        """
        payloads = list(payloads)
        previous = get_shared()
        if self.workers <= 1 or len(payloads) <= 1:
            _install_shared(shared)
            try:
                return [fn(p) for p in payloads]
            finally:
                _install_shared(previous)
        try:
            with self._make_executor(len(payloads), shared) as executor:
                futures = [executor.submit(fn, p) for p in payloads]
                return [future.result() for future in futures]
        finally:
            # Thread workers share this process's slot; restore it so one
            # map() cannot leak its context into the next.
            _install_shared(previous)


def evaluate_parallel(
    fn: Callable[[_P], _R],
    payloads: Sequence[_P],
    workers: int = 1,
    kind: str = "process",
    shared: Any = None,
) -> list[_R]:
    """One-shot convenience wrapper around :meth:`ParallelEvaluator.map`.

    Args:
        fn: Module-level callable applied to each payload.
        payloads: Self-contained inputs.
        workers: Worker count (``<= 1`` = serial reference path).
        kind: ``"process"`` or ``"thread"``.
        shared: Bulk read-only context for :func:`get_shared`.

    Returns:
        Results in payload order.
    """
    return ParallelEvaluator(workers=workers, kind=kind).map(
        fn, payloads, shared=shared
    )


def train_spec_payload(spec: Any, epochs: int, batch_size: int, seed: int) -> tuple:
    """Build the payload :func:`train_spec_worker` expects.

    The dataset splits are deliberately *not* part of the payload — pass
    them as ``map(..., shared=splits)`` so they cross the process boundary
    once per worker rather than once per candidate.
    """
    return (spec, epochs, batch_size, seed)


def train_spec_worker(payload: tuple) -> Any:
    """Proxy-train one candidate spec (the shared worker of both baselines).

    Args:
        payload: ``(spec, epochs, batch_size, seed)`` from
            :func:`train_spec_payload`; the dataset comes from
            :func:`get_shared`.

    Returns:
        The :class:`repro.core.results.TrainResult`.

    Raises:
        RuntimeError: If no dataset splits were passed via ``shared``.
    """
    from repro.core.trainer import train_from_spec

    spec, epochs, batch_size, seed = payload
    splits = get_shared()
    if splits is None:
        raise RuntimeError(
            "train_spec_worker needs the dataset splits via map(..., shared=splits)"
        )
    return train_from_spec(
        spec, splits, epochs=epochs, batch_size=batch_size, seed=seed
    )
