"""EDD reproduction: differentiable DNN architecture/implementation co-search.

The supported programmatic entry point is :mod:`repro.api` (imported lazily
so ``import repro`` stays cheap); hardware targets and devices are registered
in :mod:`repro.hw.registry`.
"""

__version__ = "0.3.0"

__all__ = ["api", "__version__"]


def __getattr__(name: str):
    if name == "api":
        import repro.api as api

        return api
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
