"""Autograd-free plan executor over a preallocated arena.

:class:`Engine` runs an :class:`~repro.runtime.plan.ExecutionPlan` with the
out-buffer inference kernels of :mod:`repro.autograd.ops_nn`: every op reads
and writes slices of one arena array, so a steady-state ``run`` call performs
no per-op allocation — the headroom ROADMAP attributes to
``BuiltNetwork.forward`` (graph construction + fresh arrays per op) is gone.

Because every buffer scales linearly with the batch, the per-sample arena
layout is valid for any batch size: offsets are just multiplied by ``N``.
Arenas are cached per batch size, so a serving loop alternating between
coalesced batch sizes pays each allocation once.
"""

from __future__ import annotations

import time

import numpy as np

from repro.autograd import ops_nn
from repro.obs.tracer import get_tracer
from repro.runtime.arena import ArenaLayout, plan_arena
from repro.runtime.plan import ExecutionPlan, PlanOp


class Engine:
    """Executes a compiled plan; numerically matches the source network.

    Construction plans the arena (unless a prebuilt
    :class:`~repro.runtime.arena.ArenaLayout` is supplied) and validates its
    invariants.  ``run`` accepts one sample ``(C, H, W)`` or a batch
    ``(N, C, H, W)`` and returns the logits as a fresh array (the arena is
    reused by the next call).
    """

    def __init__(self, plan: ExecutionPlan, layout: ArenaLayout | None = None) -> None:
        self.plan = plan
        self.layout = layout if layout is not None else plan_arena(plan)
        self.layout.validate(plan)
        self._arenas: dict[int, np.ndarray] = {}
        self._views: dict[int, dict[int, np.ndarray]] = {}
        self.run_count = 0
        self.total_ms = 0.0
        self.last_ms = 0.0
        self.profiled_runs = 0
        self._op_total_ms = [0.0] * len(plan.ops)
        self._op_calls = [0] * len(plan.ops)

    # -- memory -------------------------------------------------------------
    def arena_bytes(self, batch: int = 1) -> int:
        """Arena footprint in bytes for a given batch size."""
        return self.layout.arena_elems * batch * self.plan.dtype.itemsize

    def _views_for(self, batch: int) -> dict[int, np.ndarray]:
        views = self._views.get(batch)
        if views is None:
            arena = np.empty(
                self.layout.arena_elems * batch, dtype=self.plan.dtype
            )
            self._arenas[batch] = arena
            views = {}
            for buf in self.plan.buffers:
                offset = self.layout.offsets[buf.id] * batch
                views[buf.id] = arena[offset:offset + buf.elems * batch].reshape(
                    (batch,) + buf.shape
                )
            self._views[batch] = views
        return views

    # -- execution ----------------------------------------------------------
    def run(self, x: np.ndarray, profile: bool = False) -> np.ndarray:
        """Execute the plan on ``x``; returns the logits.

        ``x`` may be one sample (no batch axis) or a batch; the output keeps
        the same convention.  Input is cast to the plan dtype.

        With ``profile=True`` each op is timed individually into the per-op
        table returned by :meth:`op_profile` (one extra clock read per op —
        leave it off on the serving hot path).  When the global tracer
        (:func:`repro.obs.get_tracer`) is enabled, every call also emits one
        ``engine.run`` span; when it is disabled the only cost is a single
        attribute check.
        """
        x = np.asarray(x, dtype=self.plan.dtype)
        single = x.ndim == len(self.plan.input_shape)
        if single:
            x = x[None]
        if x.shape[1:] != self.plan.input_shape:
            raise ValueError(
                f"input shape {x.shape[1:]} does not match plan input "
                f"{self.plan.input_shape}"
            )
        tracer = get_tracer()
        traced = tracer.enabled
        if traced:
            trace_start = tracer.clock()
        start = time.perf_counter()
        views = self._views_for(x.shape[0])
        np.copyto(views[self.plan.input_buffer], x)
        if profile:
            op_ms = self._op_total_ms
            op_calls = self._op_calls
            for index, op in enumerate(self.plan.ops):
                op_start = time.perf_counter()
                _OP_TABLE[op.kind](op, views)
                op_ms[index] += (time.perf_counter() - op_start) * 1e3
                op_calls[index] += 1
            self.profiled_runs += 1
        else:
            for op in self.plan.ops:
                _OP_TABLE[op.kind](op, views)
        out = views[self.plan.output_buffer].copy()
        self.last_ms = (time.perf_counter() - start) * 1e3
        self.total_ms += self.last_ms
        self.run_count += 1
        if traced:
            tracer.add_span(
                "engine.run", trace_start, tracer.clock() - trace_start,
                cat="runtime",
                args={"plan": self.plan.name, "batch": int(x.shape[0])},
            )
        return out[0] if single else out

    def stats(self) -> dict[str, float]:
        """Run counters: calls, total/mean/last wall-clock milliseconds."""
        return {
            "runs": self.run_count,
            "total_ms": self.total_ms,
            "mean_ms": self.total_ms / self.run_count if self.run_count else 0.0,
            "last_ms": self.last_ms,
        }

    # -- profiling ----------------------------------------------------------
    def op_profile(self) -> list[dict]:
        """Per-op timing table accumulated by ``run(..., profile=True)`` calls.

        One row per plan op (aligned by index, including ops never profiled):
        ``{index, label, kind, calls, total_ms, mean_ms}`` with ``mean_ms``
        being milliseconds per profiled call (``None`` before any profiled
        run).  Join against the analytic estimate with
        :func:`repro.obs.profile_report`.
        """
        rows = []
        for index, op in enumerate(self.plan.ops):
            calls = self._op_calls[index]
            total = self._op_total_ms[index]
            rows.append({
                "index": index,
                "label": op.label or op.kind,
                "kind": op.kind,
                "calls": calls,
                "total_ms": total,
                "mean_ms": total / calls if calls else None,
            })
        return rows

    def reset_profile(self) -> None:
        """Zero the per-op profile accumulators."""
        self.profiled_runs = 0
        self._op_total_ms = [0.0] * len(self.plan.ops)
        self._op_calls = [0] * len(self.plan.ops)


# -- op implementations -----------------------------------------------------
def _exec_conv(op: PlanOp, views: dict[int, np.ndarray]) -> None:
    attrs = op.attrs
    pad_buf = attrs["pad_buf"]
    col_buf = attrs["col_buf"]
    add_buf = attrs.get("add_buf")
    ops_nn.conv2d_into(
        views[op.inputs[0]], op.weight,
        stride=attrs["stride"], padding=attrs["padding"],
        groups=attrs["groups"], bias=op.bias, act=op.act,
        out=views[op.output],
        pad_buf=views[pad_buf] if pad_buf is not None else None,
        cols=views[col_buf] if col_buf is not None else None,
        residual=views[add_buf] if add_buf is not None else None,
    )


def _exec_linear(op: PlanOp, views: dict[int, np.ndarray]) -> None:
    ops_nn.linear_into(
        views[op.inputs[0]], op.weight, bias=op.bias, act=op.act,
        out=views[op.output],
    )


def _exec_maxpool(op: PlanOp, views: dict[int, np.ndarray]) -> None:
    attrs = op.attrs
    pad_buf = attrs["pad_buf"]
    ops_nn.max_pool2d_into(
        views[op.inputs[0]], attrs["kernel"], stride=attrs["stride"],
        padding=attrs["padding"], out=views[op.output],
        pad_buf=views[pad_buf] if pad_buf is not None else None,
    )


def _exec_avgpool(op: PlanOp, views: dict[int, np.ndarray]) -> None:
    ops_nn.avg_pool2d_into(
        views[op.inputs[0]], op.attrs["kernel"], out=views[op.output]
    )


def _exec_gap(op: PlanOp, views: dict[int, np.ndarray]) -> None:
    ops_nn.global_avg_pool2d_into(views[op.inputs[0]], out=views[op.output])


def _exec_flatten(op: PlanOp, views: dict[int, np.ndarray]) -> None:
    src = views[op.inputs[0]]
    np.copyto(views[op.output], src.reshape(src.shape[0], -1))


def _exec_add(op: PlanOp, views: dict[int, np.ndarray]) -> None:
    out = views[op.output]
    np.add(views[op.inputs[0]], views[op.inputs[1]], out=out)
    for extra in op.inputs[2:]:
        out += views[extra]


def _exec_concat(op: PlanOp, views: dict[int, np.ndarray]) -> None:
    out = views[op.output]
    offset = 0
    for buf, channels in zip(op.inputs, op.attrs["channels"]):
        out[:, offset:offset + channels] = views[buf]
        offset += channels


_OP_TABLE = {
    "conv": _exec_conv,
    "linear": _exec_linear,
    "maxpool": _exec_maxpool,
    "avgpool": _exec_avgpool,
    "gap": _exec_gap,
    "flatten": _exec_flatten,
    "add": _exec_add,
    "concat": _exec_concat,
}
