"""Injectable monotonic time source for the serving fleet.

Request deadlines, global-FIFO age comparisons and latency stamps all read
the clock through :func:`now` instead of calling ``time.perf_counter``
directly.  In production the two are the same function; in tests,
:class:`repro.runtime.fleet.testing.FakeClock` swaps in a manually-advanced
source via :func:`set_time_source`, which makes deadline expiry and queue
ageing *deterministic* — a property test can submit a request, advance the
clock past its deadline, and know (not hope) the scheduler sheds it.

Heartbeat/crash detection in :mod:`repro.runtime.fleet.worker` deliberately
does **not** use this clock: it watches real child processes, so it keeps
real ``time.monotonic`` semantics even while a fake clock is installed.
"""

from __future__ import annotations

import time
from typing import Callable

_source: Callable[[], float] = time.perf_counter


def now() -> float:
    """Current fleet time in seconds (monotonic, arbitrary epoch)."""
    return _source()


def set_time_source(source: Callable[[], float] | None = None) -> None:
    """Install ``source`` as the fleet clock; ``None`` restores real time."""
    global _source
    _source = time.perf_counter if source is None else source


def time_source() -> Callable[[], float]:
    """The currently-installed time source (for save/restore in tests)."""
    return _source
