"""Request objects and admission-control exceptions of the serving fleet.

A submitted sample becomes a :class:`_FleetRequest` (the fleet's internal
record) wrapped in a :class:`FleetHandle` (the caller-side future).  The
exception vocabulary is explicit so clients can route on it:

* :class:`QueueFull` — admission control rejected the request (bounded
  per-model queue at capacity); the client should back off or shed load.
* :class:`DeadlineExceeded` — the request's deadline passed while it was
  still queued; the fleet shed it *before* spending compute on it.
* :class:`FleetClosed` — submitted to a fleet that is shutting down (or a
  request was still queued when shutdown drained the queues).
* :class:`WorkerCrashed` — the process worker holding this request's batch
  died (dead pipe) or went silent (missed heartbeats); the fleet failed the
  batch fast instead of letting its waiters hang.
"""

from __future__ import annotations

import itertools
import threading

import numpy as np

from repro.runtime.fleet import clock

#: Monotonic request ids — stable join key between a request's lifecycle
#: spans (``request`` / ``request.queued`` / ``request.compute`` share the
#: same ``req`` arg in the trace).
_REQUEST_IDS = itertools.count(1)


class QueueFull(RuntimeError):
    """Admission control rejected the request: the model's queue is full."""


class DeadlineExceeded(RuntimeError):
    """The request's deadline expired while queued; it was shed unserved."""


class FleetClosed(RuntimeError):
    """The fleet is shut down (or shut down before serving this request)."""


class WorkerCrashed(RuntimeError):
    """A process worker died or went silent while holding this request.

    Raised to waiters when crash detection (dead pipe, process exit, or
    ``max_missed_heartbeats`` silent intervals) fires while their batch was
    in flight.  ``delivered`` records whether the batch was ever handed to
    the worker: ``False`` means the control frame never left the parent, so
    the fleet may safely retry the batch on a fresh worker; ``True`` means
    the worker may have started computing and a retry could double-serve.
    """

    def __init__(self, message: str, delivered: bool = True) -> None:
        super().__init__(message)
        self.delivered = delivered


class _FleetRequest:
    """One in-flight sample: payload, deadline, and its completion event."""

    __slots__ = (
        "model", "x", "event", "output", "error", "enqueued_at",
        "dispatched_at", "deadline_at", "batch_size", "latency_ms", "req_id",
    )

    def __init__(
        self, model: str, x: np.ndarray, deadline_ms: float | None = None
    ) -> None:
        self.model = model
        self.x = x
        self.event = threading.Event()
        self.output: np.ndarray | None = None
        self.error: BaseException | None = None
        self.req_id = next(_REQUEST_IDS)
        self.enqueued_at = clock.now()
        # Stamped by the scheduler when a worker pops the request; the
        # enqueue→dispatch gap is the queue wait the trace layer reports.
        self.dispatched_at = self.enqueued_at
        self.deadline_at = (
            self.enqueued_at + deadline_ms / 1e3
            if deadline_ms is not None else None
        )
        self.batch_size = 0
        self.latency_ms = 0.0

    def expired(self, now: float | None = None) -> bool:
        """True once the deadline (if any) has passed."""
        if self.deadline_at is None:
            return False
        return (clock.now() if now is None else now) >= self.deadline_at

    def fail(self, error: BaseException) -> None:
        """Complete the request exceptionally and wake the waiter."""
        self.error = error
        self.event.set()

    def complete(self, output: np.ndarray, batch_size: int) -> None:
        """Complete the request with its logits and wake the waiter."""
        self.latency_ms = (clock.now() - self.enqueued_at) * 1e3
        self.output = output
        self.batch_size = batch_size
        self.event.set()


class FleetHandle:
    """Caller-side future for a request submitted to a :class:`ServingFleet`.

    ``result`` blocks until the fleet answers; shed and shutdown outcomes
    surface as :class:`DeadlineExceeded` / :class:`FleetClosed` so callers
    can distinguish them from engine failures.
    """

    __slots__ = ("_request",)

    def __init__(self, request: _FleetRequest) -> None:
        self._request = request

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block until served; returns the logits.

        Raises:
            TimeoutError: If the fleet does not answer within ``timeout``.
            DeadlineExceeded: If the request was shed on deadline.
            FleetClosed: If the fleet shut down before serving it.
            Exception: Any engine-side error, re-raised.
        """
        if not self._request.event.wait(timeout):
            raise TimeoutError(
                f"fleet request for {self._request.model!r} timed out"
            )
        if self._request.error is not None:
            raise self._request.error
        assert self._request.output is not None
        return self._request.output

    def done(self) -> bool:
        """True once the request completed (successfully or not)."""
        return self._request.event.is_set()

    @property
    def model(self) -> str:
        """Name of the model this request was routed to."""
        return self._request.model

    @property
    def latency_ms(self) -> float:
        """Enqueue-to-completion latency (valid once served)."""
        return self._request.latency_ms

    @property
    def batch_size(self) -> int:
        """Size of the coalesced batch this request rode in."""
        return self._request.batch_size
