"""Serving metrics: per-model and fleet-wide counters behind one lock.

Every admission decision and every served batch is recorded here, so
``fleet.stats()`` can answer the operational questions a serving tier gets
asked: how much traffic is each model taking, how much was rejected or shed,
what are the tail latencies, how well is batching coalescing, and how busy
are the workers.  The invariant the tests pin down::

    accepted == completed + failed + shed + still-queued

holds per model and fleet-wide at every quiescent point.
"""

from __future__ import annotations

import threading
import time
from typing import Any

import numpy as np


def latency_percentiles(samples_ms) -> dict[str, float]:
    """Mean/p50/p95/p99/max summary of a latency sample list (ms).

    The serving-tier shape (p99 included) of
    :func:`repro.runtime.serve.latency_summary`.
    """
    arr = np.asarray(list(samples_ms), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("latency_percentiles needs at least one sample")
    return {
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }


class _ModelCounters:
    """Mutable per-model tallies (guarded by the owning metrics lock)."""

    __slots__ = (
        "accepted", "rejected", "shed", "completed", "failed",
        "latencies_ms", "batch_sizes",
    )

    def __init__(self) -> None:
        self.accepted = 0
        self.rejected = 0
        self.shed = 0
        self.completed = 0
        self.failed = 0
        self.latencies_ms: list[float] = []
        self.batch_sizes: list[int] = []

    def snapshot(self, queue_depth: int) -> dict[str, Any]:
        out: dict[str, Any] = {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "shed": self.shed,
            "completed": self.completed,
            "failed": self.failed,
            "queue_depth": queue_depth,
        }
        if self.latencies_ms:
            out["latency_ms"] = latency_percentiles(self.latencies_ms)
        if self.batch_sizes:
            hist: dict[str, int] = {}
            for size in self.batch_sizes:
                hist[str(size)] = hist.get(str(size), 0) + 1
            out["batches"] = len(self.batch_sizes)
            out["mean_batch"] = float(np.mean(self.batch_sizes))
            out["batch_hist"] = hist
        return out


class ServingMetrics:
    """Thread-safe counters for one fleet: admission, latency, utilisation.

    Workers and the submit path record into it concurrently; ``snapshot``
    returns a JSON-serialisable dict (per-model blocks plus a fleet-wide
    aggregate).  Worker busy-time is reported as utilisation — busy seconds
    over wall seconds since the fleet started.
    """

    def __init__(self, workers: int) -> None:
        self._lock = threading.Lock()
        self._models: dict[str, _ModelCounters] = {}
        self._worker_busy_s = [0.0] * workers
        self._worker_batches = [0] * workers
        self._worker_crashes = [0] * workers
        self.started_at = time.perf_counter()

    def _model(self, model: str) -> _ModelCounters:
        counters = self._models.get(model)
        if counters is None:
            counters = self._models[model] = _ModelCounters()
        return counters

    # -- admission ----------------------------------------------------------
    def record_accepted(self, model: str) -> None:
        """One request admitted to ``model``'s queue."""
        with self._lock:
            self._model(model).accepted += 1

    def record_rejected(self, model: str) -> None:
        """One request rejected by admission control (queue full/closed)."""
        with self._lock:
            self._model(model).rejected += 1

    def record_unaccepted(self, model: str) -> None:
        """Atomically reclassify one accepted request as rejected.

        The submit path records acceptance *before* enqueueing so the
        ``accepted >= completed + failed + shed`` invariant holds at every
        instant (a worker can serve a request the moment it is queued); when
        the enqueue itself then fails (queue full, fleet closed), this moves
        the head-start count over to ``rejected`` in one locked step.
        """
        with self._lock:
            counters = self._model(model)
            counters.accepted -= 1
            counters.rejected += 1

    # -- serving ------------------------------------------------------------
    def record_shed(self, model: str, count: int = 1) -> None:
        """``count`` queued requests shed on deadline before compute."""
        with self._lock:
            self._model(model).shed += count

    def record_failed(self, model: str, count: int = 1) -> None:
        """``count`` requests failed by an engine-side error."""
        with self._lock:
            self._model(model).failed += count

    def record_batch(
        self,
        model: str,
        latencies_ms: list[float],
        worker: int,
        busy_s: float,
    ) -> None:
        """One served batch: per-request latencies plus worker busy time."""
        with self._lock:
            counters = self._model(model)
            counters.completed += len(latencies_ms)
            counters.latencies_ms.extend(latencies_ms)
            counters.batch_sizes.append(len(latencies_ms))
            self._worker_busy_s[worker] += busy_s
            self._worker_batches[worker] += 1

    def record_worker_busy(self, worker: int, busy_s: float) -> None:
        """Busy time that served no batch (e.g. a shed-only dequeue)."""
        with self._lock:
            self._worker_busy_s[worker] += busy_s

    def record_crash(self, worker: int) -> None:
        """One crash (dead pipe / dead process / missed heartbeats)."""
        with self._lock:
            self._worker_crashes[worker] += 1

    # -- reporting ----------------------------------------------------------
    def snapshot(self, queue_depths: dict[str, int] | None = None) -> dict[str, Any]:
        """JSON-serialisable state: per-model blocks + fleet aggregate."""
        depths = queue_depths or {}
        with self._lock:
            wall_s = max(time.perf_counter() - self.started_at, 1e-9)
            per_model = {
                name: counters.snapshot(depths.get(name, 0))
                for name, counters in sorted(self._models.items())
            }
            workers = [
                {
                    "busy_s": busy,
                    "batches": batches,
                    "crashes": crashes,
                    "utilization": busy / wall_s,
                }
                for busy, batches, crashes in zip(
                    self._worker_busy_s,
                    self._worker_batches,
                    self._worker_crashes,
                )
            ]
            all_latencies = [
                lat
                for counters in self._models.values()
                for lat in counters.latencies_ms
            ]
        fleet = {
            key: sum(block[key] for block in per_model.values())
            for key in ("accepted", "rejected", "shed", "completed", "failed")
        }
        fleet["queue_depth"] = sum(depths.values())
        if all_latencies:
            fleet["latency_ms"] = latency_percentiles(all_latencies)
        return {
            "uptime_s": wall_s,
            "fleet": fleet,
            "models": per_model,
            "workers": workers,
        }
