"""Serving metrics: per-model and fleet-wide counters behind one lock.

Every admission decision and every served batch is recorded here, so
``fleet.stats()`` can answer the operational questions a serving tier gets
asked: how much traffic is each model taking, how much was rejected or shed,
what are the tail latencies, how well is batching coalescing, and how busy
are the workers.  The invariant the tests pin down::

    accepted == completed + failed + shed + still-queued

holds per model and fleet-wide at every quiescent point.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any

import numpy as np

#: Default reservoir capacity for latency samples.  2048 points keep the
#: p99 estimate within a fraction of a percentile rank of the exact value
#: while bounding a long-running fleet's memory at O(capacity) per model.
LATENCY_RESERVOIR = 2048


def latency_percentiles(samples_ms) -> dict[str, float]:
    """Mean/p50/p95/p99/max summary of a latency sample list (ms).

    The serving-tier shape (p99 included) of
    :func:`repro.runtime.serve.latency_summary`.
    """
    arr = np.asarray(list(samples_ms), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("latency_percentiles needs at least one sample")
    return {
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }


class ReservoirSample:
    """Bounded uniform sample (Algorithm R) with exact count/mean/max.

    Replaces the unbounded per-model latency lists: a long-running fleet
    records millions of latencies, but percentile estimates only need a
    uniform sample.  Count, sum (hence mean) and max stay exact; the
    percentiles in :meth:`summary` come from the reservoir, which holds a
    uniform random subset of everything ever added.  Deterministically
    seeded so metrics snapshots are reproducible in tests.
    """

    __slots__ = ("capacity", "count", "total", "max_value", "_values", "_rng")

    def __init__(self, capacity: int = LATENCY_RESERVOIR, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.count = 0
        self.total = 0.0
        self.max_value = float("-inf")
        self._values: list[float] = []
        self._rng = random.Random(0x5EED ^ seed)

    def add(self, value: float) -> None:
        """Record one observation (kept with probability capacity/count)."""
        value = float(value)
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value
        if len(self._values) < self.capacity:
            self._values.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._values[slot] = value

    def extend(self, values) -> None:
        """Record every observation in ``values``."""
        for value in values:
            self.add(value)

    def values(self) -> list[float]:
        """Copy of the current reservoir contents (unordered)."""
        return list(self._values)

    def __len__(self) -> int:
        return self.count

    def summary(self) -> dict[str, float]:
        """Exact mean/max plus reservoir-estimated p50/p95/p99.

        Matches the :func:`latency_percentiles` schema.  Raises
        ``ValueError`` when empty, like :func:`latency_percentiles`.
        """
        if self.count == 0:
            raise ValueError("ReservoirSample.summary needs at least one sample")
        arr = np.asarray(self._values, dtype=np.float64)
        return {
            "mean": self.total / self.count,
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99)),
            "max": self.max_value,
        }


class _ModelCounters:
    """Mutable per-model tallies (guarded by the owning metrics lock).

    Latencies live in a bounded :class:`ReservoirSample`; batch sizes are
    tallied straight into a histogram.  Memory per model is O(reservoir
    capacity) no matter how long the fleet serves, and a snapshot costs one
    percentile pass over the reservoir instead of a full re-sort of every
    latency ever recorded.
    """

    __slots__ = (
        "accepted", "rejected", "shed", "completed", "failed",
        "latency_sample", "batches", "batch_total", "batch_hist",
    )

    def __init__(self, seed: int = 0) -> None:
        self.accepted = 0
        self.rejected = 0
        self.shed = 0
        self.completed = 0
        self.failed = 0
        self.latency_sample = ReservoirSample(seed=seed)
        self.batches = 0
        self.batch_total = 0
        self.batch_hist: dict[str, int] = {}

    def record_batch_size(self, size: int) -> None:
        self.batches += 1
        self.batch_total += size
        key = str(size)
        self.batch_hist[key] = self.batch_hist.get(key, 0) + 1

    def snapshot(self, queue_depth: int) -> dict[str, Any]:
        out: dict[str, Any] = {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "shed": self.shed,
            "completed": self.completed,
            "failed": self.failed,
            "queue_depth": queue_depth,
        }
        if self.latency_sample.count:
            out["latency_ms"] = self.latency_sample.summary()
        if self.batches:
            out["batches"] = self.batches
            out["mean_batch"] = self.batch_total / self.batches
            out["batch_hist"] = dict(self.batch_hist)
        return out


class ServingMetrics:
    """Thread-safe counters for one fleet: admission, latency, utilisation.

    Workers and the submit path record into it concurrently; ``snapshot``
    returns a JSON-serialisable dict (per-model blocks plus a fleet-wide
    aggregate).  Worker busy-time is reported as utilisation — busy seconds
    over wall seconds since the fleet started.
    """

    def __init__(self, workers: int) -> None:
        self._lock = threading.Lock()
        self._models: dict[str, _ModelCounters] = {}
        self._worker_busy_s = [0.0] * workers
        self._worker_batches = [0] * workers
        self._worker_crashes = [0] * workers
        self.started_at = time.perf_counter()

    def _model(self, model: str) -> _ModelCounters:
        counters = self._models.get(model)
        if counters is None:
            counters = self._models[model] = _ModelCounters(
                seed=len(self._models)
            )
        return counters

    # -- admission ----------------------------------------------------------
    def record_accepted(self, model: str) -> None:
        """One request admitted to ``model``'s queue."""
        with self._lock:
            self._model(model).accepted += 1

    def record_rejected(self, model: str) -> None:
        """One request rejected by admission control (queue full/closed)."""
        with self._lock:
            self._model(model).rejected += 1

    def record_unaccepted(self, model: str) -> None:
        """Atomically reclassify one accepted request as rejected.

        The submit path records acceptance *before* enqueueing so the
        ``accepted >= completed + failed + shed`` invariant holds at every
        instant (a worker can serve a request the moment it is queued); when
        the enqueue itself then fails (queue full, fleet closed), this moves
        the head-start count over to ``rejected`` in one locked step.
        """
        with self._lock:
            counters = self._model(model)
            counters.accepted -= 1
            counters.rejected += 1

    # -- serving ------------------------------------------------------------
    def record_shed(self, model: str, count: int = 1) -> None:
        """``count`` queued requests shed on deadline before compute."""
        with self._lock:
            self._model(model).shed += count

    def record_failed(self, model: str, count: int = 1) -> None:
        """``count`` requests failed by an engine-side error."""
        with self._lock:
            self._model(model).failed += count

    def record_batch(
        self,
        model: str,
        latencies_ms: list[float],
        worker: int,
        busy_s: float,
    ) -> None:
        """One served batch: per-request latencies plus worker busy time."""
        with self._lock:
            counters = self._model(model)
            counters.completed += len(latencies_ms)
            counters.latency_sample.extend(latencies_ms)
            counters.record_batch_size(len(latencies_ms))
            self._worker_busy_s[worker] += busy_s
            self._worker_batches[worker] += 1

    def record_worker_busy(self, worker: int, busy_s: float) -> None:
        """Busy time that served no batch (e.g. a shed-only dequeue)."""
        with self._lock:
            self._worker_busy_s[worker] += busy_s

    def record_crash(self, worker: int) -> None:
        """One crash (dead pipe / dead process / missed heartbeats)."""
        with self._lock:
            self._worker_crashes[worker] += 1

    # -- reporting ----------------------------------------------------------
    def snapshot(self, queue_depths: dict[str, int] | None = None) -> dict[str, Any]:
        """JSON-serialisable state: per-model blocks + fleet aggregate."""
        depths = queue_depths or {}
        with self._lock:
            wall_s = max(time.perf_counter() - self.started_at, 1e-9)
            per_model = {
                name: counters.snapshot(depths.get(name, 0))
                for name, counters in sorted(self._models.items())
            }
            workers = [
                {
                    "busy_s": busy,
                    "batches": batches,
                    "crashes": crashes,
                    "utilization": busy / wall_s,
                }
                for busy, batches, crashes in zip(
                    self._worker_busy_s,
                    self._worker_batches,
                    self._worker_crashes,
                )
            ]
            # Fleet-wide latency: count/mean/max are exact (merged from the
            # per-model exact tallies); percentiles are estimated over the
            # pooled reservoirs.
            pooled: list[float] = []
            lat_count = 0
            lat_total = 0.0
            lat_max = float("-inf")
            for counters in self._models.values():
                sample = counters.latency_sample
                if sample.count:
                    pooled.extend(sample.values())
                    lat_count += sample.count
                    lat_total += sample.total
                    lat_max = max(lat_max, sample.max_value)
        fleet = {
            key: sum(block[key] for block in per_model.values())
            for key in ("accepted", "rejected", "shed", "completed", "failed")
        }
        fleet["queue_depth"] = sum(depths.values())
        if lat_count:
            arr = np.asarray(pooled, dtype=np.float64)
            fleet["latency_ms"] = {
                "mean": lat_total / lat_count,
                "p50": float(np.percentile(arr, 50)),
                "p95": float(np.percentile(arr, 95)),
                "p99": float(np.percentile(arr, 99)),
                "max": lat_max,
            }
        return {
            "uptime_s": wall_s,
            "fleet": fleet,
            "models": per_model,
            "workers": workers,
        }
