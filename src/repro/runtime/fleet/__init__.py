"""Production serving tier: multi-worker, multi-tenant inference fleet.

The fleet scales the single-model :class:`~repro.runtime.serve
.InferenceServer` into a serving layer: N worker threads over shared
read-only baked weights (one memmap per plan), continuous batching across
concurrent request streams, bounded-queue admission control with deadline
shedding, per-model routing, and a serving-metrics surface
(``fleet.stats()``) that feeds ``repro calibrate``.

Workers come in two tiers: ``kind="thread"`` (in-process, overlap bounded
by the GIL) and ``kind="process"`` (child processes cold-started from the
weight packs, driven over a pipe protocol with heartbeat crash detection
and respawn — see :mod:`~repro.runtime.fleet.worker`).  The deterministic
fault-injection hooks live in :mod:`~repro.runtime.fleet.testing`.

Entry points: :class:`ServingFleet` directly, :func:`repro.api.serve_fleet`,
or ``repro serve --workers N --worker-kind process --models a,b``;
``repro bench --suite serving`` replays
:mod:`~repro.runtime.fleet.traffic` traces against both tiers.
"""

from repro.runtime.fleet.fleet import WORKER_KINDS, ServingFleet
from repro.runtime.fleet.metrics import ServingMetrics, latency_percentiles
from repro.runtime.fleet.requests import (
    DeadlineExceeded,
    FleetClosed,
    FleetHandle,
    QueueFull,
    WorkerCrashed,
)
from repro.runtime.fleet.scheduler import FleetScheduler
from repro.runtime.fleet.traffic import (
    TraceEvent,
    burst_trace,
    merge_traces,
    poisson_trace,
    replay,
)
from repro.runtime.fleet.weights import PlanWeightPack, pack_plan_memmap
from repro.runtime.fleet.worker import ProcessWorker

__all__ = [
    "ServingFleet",
    "WORKER_KINDS",
    "FleetHandle",
    "FleetScheduler",
    "ProcessWorker",
    "QueueFull",
    "DeadlineExceeded",
    "FleetClosed",
    "WorkerCrashed",
    "ServingMetrics",
    "latency_percentiles",
    "PlanWeightPack",
    "pack_plan_memmap",
    "TraceEvent",
    "poisson_trace",
    "burst_trace",
    "merge_traces",
    "replay",
]
