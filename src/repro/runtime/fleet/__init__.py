"""Production serving tier: multi-worker, multi-tenant inference fleet.

The fleet scales the single-model :class:`~repro.runtime.serve
.InferenceServer` into a serving layer: N worker threads over shared
read-only baked weights (one memmap per plan), continuous batching across
concurrent request streams, bounded-queue admission control with deadline
shedding, per-model routing, and a serving-metrics surface
(``fleet.stats()``) that feeds ``repro calibrate``.

Entry points: :class:`ServingFleet` directly, :func:`repro.api.serve_fleet`,
or ``repro serve --workers N --models a,b``; ``repro bench --suite serving``
replays :mod:`~repro.runtime.fleet.traffic` traces against it.
"""

from repro.runtime.fleet.fleet import ServingFleet
from repro.runtime.fleet.metrics import ServingMetrics, latency_percentiles
from repro.runtime.fleet.requests import (
    DeadlineExceeded,
    FleetClosed,
    FleetHandle,
    QueueFull,
)
from repro.runtime.fleet.scheduler import FleetScheduler
from repro.runtime.fleet.traffic import (
    TraceEvent,
    burst_trace,
    merge_traces,
    poisson_trace,
    replay,
)
from repro.runtime.fleet.weights import PlanWeightPack, pack_plan_memmap

__all__ = [
    "ServingFleet",
    "FleetHandle",
    "FleetScheduler",
    "QueueFull",
    "DeadlineExceeded",
    "FleetClosed",
    "ServingMetrics",
    "latency_percentiles",
    "PlanWeightPack",
    "pack_plan_memmap",
    "TraceEvent",
    "poisson_trace",
    "burst_trace",
    "merge_traces",
    "replay",
]
