"""Deterministic fault-injection harness for the serving fleet.

A serving tier is only trustworthy if worker death, hangs and queue races
are *tested*, not hoped away — and those tests must be reproducible, never
"sleep and pray".  This module collects the injection points the fleet test
surface is built on:

* :class:`FakeClock` — a pausable, manually-advanced time source installed
  into :mod:`repro.runtime.fleet.clock`.  Deadline expiry, queue-age
  fairness and latency stamps become pure functions of the test script:
  nothing expires unless the test advances time past it.
* :class:`ScriptedEngine` — an in-process fake worker engine whose
  behaviour per ``run`` call follows a script (``"ok"``, ``"block"`` on a
  releasable gate, ``"error"``); monkeypatch it over
  ``repro.runtime.fleet.fleet.Engine`` to choreograph thread-tier
  interleavings (a request mid-compute while ``close()`` lands, etc.).
* fault scripts for *process* workers — plain action strings consumed one
  per batch inside the child (``ServingFleet(fault_scripts={0: [CRASH]})``):
  :data:`CRASH` kills the process mid-batch, :data:`HANG` stops heartbeats
  while staying alive (exercising the missed-heartbeat kill),
  :func:`slow` delays compute while heartbeating (must *not* be killed),
  :data:`ERROR` raises an engine-side exception (worker stays healthy).

Every failure mode in ``docs/serving.md``'s failure-semantics table maps to
one of these hooks, so CI can replay each scenario exactly.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.runtime.fleet import clock

#: Process-worker fault action: die mid-batch (``os._exit``) — the parent
#: sees a dead pipe and fails the batch with ``WorkerCrashed``.
CRASH = "crash"
#: Process-worker fault action: stay alive but go silent (no heartbeats,
#: no result) — the parent kills the worker after ``max_missed_heartbeats``.
HANG = "hang"
#: Process-worker fault action: raise inside the engine — the batch fails
#: with the shipped exception; the worker keeps serving.
ERROR = "error"


def slow(seconds: float) -> str:
    """Fault action: delay one batch by ``seconds`` while heartbeating.

    A slow batch is *not* a crash — the parent must keep waiting as long as
    heartbeats flow; tests use this to pin down that distinction.
    """
    return f"slow:{float(seconds)}"


class FakeClock:
    """Manually-advanced fleet time source; install via context manager.

    While installed, :func:`repro.runtime.fleet.clock.now` returns this
    clock's time, so request deadlines and the scheduler's global-FIFO age
    comparison move only when the test calls :meth:`advance` — deadline
    sheds become deterministic.  Heartbeat supervision of real child
    processes intentionally stays on real time.

    Example::

        with FakeClock() as fake:
            request = _FleetRequest("a", x, deadline_ms=10.0)
            fake.advance(0.011)          # now the deadline has passed
            assert request.expired()
    """

    def __init__(self, start: float = 0.0) -> None:
        self._time = float(start)
        self._lock = threading.Lock()
        self._saved = None

    def now(self) -> float:
        """Current fake time in seconds."""
        with self._lock:
            return self._time

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` (>= 0); returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds}")
        with self._lock:
            self._time += float(seconds)
            return self._time

    def install(self) -> "FakeClock":
        """Make this clock the fleet time source (remember the old one)."""
        self._saved = clock.time_source()
        clock.set_time_source(self.now)
        return self

    def uninstall(self) -> None:
        """Restore the time source that was active at :meth:`install`."""
        clock.set_time_source(self._saved)
        self._saved = None

    def __enter__(self) -> "FakeClock":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()


class ScriptedEngine:
    """Scriptable in-process engine stub for thread-tier fault tests.

    Substitute for :class:`repro.runtime.engine.Engine` (same constructor
    shape: one plan) via monkeypatching.  Each ``run`` call consumes the
    next action from the class-level :attr:`script`:

    * ``"ok"`` — return zeros of shape ``(batch, out_features)``;
    * ``"block"`` — wait on :attr:`gate` until the test releases it (a
      batch frozen mid-compute: the close()/drain race window);
    * ``"error"`` — raise ``RuntimeError``.

    An exhausted script keeps serving ``"ok"``.  Class-level state
    (:attr:`instances`, :attr:`script`, :attr:`gate`) is reset with
    :meth:`reset` so tests do not leak into each other.
    """

    #: Every constructed instance, in creation order.
    instances: list["ScriptedEngine"] = []
    #: Shared action script consumed across instances, one entry per run.
    script: list[str] = []
    #: Gate that ``"block"`` actions wait on.
    gate = threading.Event()
    #: Output feature count of the fake logits.
    out_features = 2
    _lock = threading.Lock()

    def __init__(self, plan) -> None:
        self.plan = plan
        self.run_calls = 0
        with ScriptedEngine._lock:
            ScriptedEngine.instances.append(self)

    @classmethod
    def reset(cls, script: list[str] | None = None) -> None:
        """Clear instances, install ``script``, re-arm the gate."""
        with cls._lock:
            cls.instances = []
            cls.script = list(script or [])
            cls.gate = threading.Event()

    @classmethod
    def release(cls) -> None:
        """Open the gate: every blocked ``run`` proceeds."""
        cls.gate.set()

    def run(self, batch) -> np.ndarray:
        """Serve one batch according to the next scripted action."""
        self.run_calls += 1
        with ScriptedEngine._lock:
            action = (
                ScriptedEngine.script.pop(0) if ScriptedEngine.script else "ok"
            )
        if action == "block":
            if not ScriptedEngine.gate.wait(timeout=30.0):
                raise RuntimeError("ScriptedEngine gate never released")
        elif action == "error":
            raise RuntimeError("scripted engine error")
        return np.zeros((len(batch), self.out_features))
