"""Shared read-only baked weights: ship one plan's arrays via one memmap.

A :class:`~repro.runtime.plan.ExecutionPlan` carries every baked
(BN-folded, fake-quantised) weight and bias array inline.  A serving fleet
runs many workers over the *same* plan, and the weights are strictly
read-only at inference time — so instead of each worker holding (or, across
processes, pickling) a private copy, :func:`pack_plan_memmap` parks all of a
plan's arrays in one tempfile and :meth:`PlanWeightPack.restore` rebuilds an
equivalent plan whose weights are read-only ``np.memmap`` views of that
file.  This is the same one-file shipping trick
:func:`repro.core.parallel.pack_splits_memmap` uses for datasets.

Consequences for the fleet:

* worker spin-up is cheap — a new worker builds an
  :class:`~repro.runtime.engine.Engine` (its own arena slice) over the
  already-mapped plan, touching no weight bytes;
* weight memory is O(1) in the worker count — every worker's kernels read
  the same physical pages, so fleet RSS grows only by the per-worker arenas.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

import numpy as np

from repro.runtime.plan import ExecutionPlan, PlanOp


@dataclass(frozen=True)
class PlanWeightPack:
    """Descriptor of one plan's baked arrays parked in a single tempfile.

    ``fields`` records, per op, where its weight/bias live in the file.  The
    pack owner (normally :class:`~repro.runtime.fleet.fleet.ServingFleet`)
    should :meth:`unlink` the file once every consumer has mapped it — on
    POSIX, live memmaps keep the pages reachable after the unlink.
    """

    path: str
    plan: ExecutionPlan  # structural plan; ops hold no weight arrays
    #: (op index, "weight"/"bias", dtype str, shape, byte offset) per array.
    fields: tuple[tuple[int, str, str, tuple[int, ...], int], ...]
    nbytes: int

    def restore(self) -> ExecutionPlan:
        """Rebuild an executable plan with read-only memmapped weights.

        Every call maps the same file, so N restores (one per process, say)
        still share one set of physical pages.  Within one process a single
        restored plan can simply be shared across worker threads.
        """
        arrays: dict[tuple[int, str], np.ndarray] = {}
        for op_index, field, dtype, shape, offset in self.fields:
            arrays[(op_index, field)] = np.memmap(
                self.path, dtype=np.dtype(dtype), mode="r",
                offset=offset, shape=tuple(shape),
            )
        ops = []
        for index, op in enumerate(self.plan.ops):
            ops.append(PlanOp(
                kind=op.kind,
                inputs=op.inputs,
                output=op.output,
                attrs=dict(op.attrs),
                weight=arrays.get((index, "weight")),
                bias=arrays.get((index, "bias")),
                act=op.act,
                scratch=op.scratch,
                label=op.label,
            ))
        return ExecutionPlan(
            name=self.plan.name,
            ops=ops,
            buffers=list(self.plan.buffers),
            input_buffer=self.plan.input_buffer,
            output_buffer=self.plan.output_buffer,
            dtype=self.plan.dtype,
            bits=self.plan.bits,
            metadata=dict(self.plan.metadata),
        )

    def unlink(self) -> None:
        """Remove the backing file (safe while memmaps are still live)."""
        try:
            os.unlink(self.path)
        except OSError:
            pass


def pack_plan_memmap(plan: ExecutionPlan) -> PlanWeightPack:
    """Write ``plan``'s baked weight/bias arrays into one tempfile.

    Returns a :class:`PlanWeightPack` whose ``plan`` holds the structure
    (ops, buffers, geometry) with the weight arrays stripped; ``restore``
    reattaches them as read-only memmap views.
    """
    fd, path = tempfile.mkstemp(prefix="repro-plan-", suffix=".bin")
    fields: list[tuple[int, str, str, tuple[int, ...], int]] = []
    offset = 0
    with os.fdopen(fd, "wb") as handle:
        for index, op in enumerate(plan.ops):
            for field in ("weight", "bias"):
                array = getattr(op, field)
                if array is None:
                    continue
                array = np.ascontiguousarray(array)
                fields.append(
                    (index, field, array.dtype.str, array.shape, offset)
                )
                handle.write(array.tobytes())
                offset += array.nbytes
    stripped_ops = [
        PlanOp(
            kind=op.kind, inputs=op.inputs, output=op.output,
            attrs=dict(op.attrs), weight=None, bias=None, act=op.act,
            scratch=op.scratch, label=op.label,
        )
        for op in plan.ops
    ]
    structural = ExecutionPlan(
        name=plan.name,
        ops=stripped_ops,
        buffers=list(plan.buffers),
        input_buffer=plan.input_buffer,
        output_buffer=plan.output_buffer,
        dtype=plan.dtype,
        bits=plan.bits,
        metadata=dict(plan.metadata),
    )
    return PlanWeightPack(
        path=path, plan=structural, fields=tuple(fields), nbytes=offset
    )
