"""ServingFleet: N workers, shared baked weights, one multi-tenant door.

The fleet is the production tier above :class:`~repro.runtime.serve
.InferenceServer` (single model, single worker).  One fleet hosts many
compiled plans behind ``submit(model, x)``:

* each plan's baked arrays are packed once into a single memmap
  (:func:`~repro.runtime.fleet.weights.pack_plan_memmap`) and every worker's
  engine reads the same read-only pages — weight memory is O(1) in the
  worker count, and spinning up a worker touches no weight bytes;
* workers come in two kinds.  ``kind="thread"`` runs worker threads, each
  with its own :class:`~repro.runtime.engine.Engine` per model (private
  arena slice); threads overlap only while numpy kernels release the GIL.
  ``kind="process"`` runs worker *processes* that cold-start from the same
  weight packs and are driven over a pipe control protocol
  (:mod:`~repro.runtime.fleet.worker`) — true core parallelism, heartbeat
  crash detection, and optional respawn;
* the :class:`~repro.runtime.fleet.scheduler.FleetScheduler` provides
  continuous batching, bounded-queue admission control, and deadline
  shedding; every decision lands in
  :class:`~repro.runtime.fleet.metrics.ServingMetrics`, surfaced as
  ``fleet.stats()``.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.obs.tracer import Tracer, get_tracer, reanchor_spans
from repro.runtime.engine import Engine
from repro.runtime.fleet import clock
from repro.runtime.fleet.metrics import ServingMetrics
from repro.runtime.fleet.requests import (
    DeadlineExceeded,
    FleetClosed,
    FleetHandle,
    QueueFull,
    WorkerCrashed,
    _FleetRequest,
)
from repro.runtime.fleet.scheduler import FleetScheduler
from repro.runtime.fleet.weights import pack_plan_memmap
from repro.runtime.fleet.worker import ProcessWorker
from repro.runtime.plan import ExecutionPlan

if TYPE_CHECKING:  # runtime import is deferred inside submit_with_retry
    from repro.resilience.retry import RetryPolicy

#: Worker tiers a fleet can run.
WORKER_KINDS = ("thread", "process")


class ServingFleet:
    """Multi-worker, multi-tenant serving frontend over compiled plans.

    Args:
        plans: Mapping of model name to compiled
            :class:`~repro.runtime.plan.ExecutionPlan`; each becomes a
            routing key for :meth:`submit`.
        workers: Worker count (``>= 1``).
        max_batch: Largest coalesced batch a worker pulls per model.
        max_queue: Per-model admission bound; submits beyond it raise
            :class:`~repro.runtime.fleet.requests.QueueFull`.
        kind: ``"thread"`` (in-process workers, GIL-bound) or ``"process"``
            (one child process per worker: true core scaling, crash
            isolation, heartbeat supervision).
        heartbeat_s: Process tier only — child heartbeat interval.
        max_missed_heartbeats: Process tier only — silent intervals before
            a worker is declared hung and killed
            (:class:`~repro.runtime.fleet.requests.WorkerCrashed`).
        respawn: Process tier only — replace crashed workers with fresh
            ones (the in-flight batch still fails fast; later traffic is
            served).  When ``False`` a crashed worker's slot retires and
            the remaining workers carry the load.
        start_method: Process tier only — ``multiprocessing`` start method
            (default ``spawn``; the cold-start path the deploy story uses).
        fault_scripts: Deterministic fault-injection hook (tests/CI only):
            per worker slot, a list of actions consumed one per batch —
            ``"crash"``, ``"hang"``, ``"slow:<seconds>"``, ``"error"``.

    Use as a context manager or call :meth:`close` — workers (threads and
    dispatcher threads alike) are non-daemonic.
    """

    def __init__(
        self,
        plans: dict[str, ExecutionPlan],
        workers: int = 2,
        max_batch: int = 8,
        max_queue: int = 64,
        kind: str = "thread",
        heartbeat_s: float = 0.25,
        max_missed_heartbeats: int = 8,
        respawn: bool = True,
        start_method: str | None = None,
        fault_scripts: dict[int, list[str]] | None = None,
    ) -> None:
        if not plans:
            raise ValueError("ServingFleet needs at least one plan")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if kind not in WORKER_KINDS:
            raise ValueError(
                f"kind must be one of {WORKER_KINDS}, got {kind!r}"
            )
        self.workers = int(workers)
        self.max_batch = int(max_batch)
        self.kind = kind
        self.heartbeat_s = float(heartbeat_s)
        self.max_missed_heartbeats = int(max_missed_heartbeats)
        self._respawn_enabled = bool(respawn)
        self._start_method = start_method
        self._packs = {
            name: pack_plan_memmap(plan) for name, plan in plans.items()
        }
        # One memmap-backed plan per model, shared by every worker.
        self._plans = {
            name: pack.restore() for name, pack in self._packs.items()
        }
        if kind == "thread":
            # Pages stay reachable through the live memmaps; process fleets
            # keep the files until close() so respawned workers can re-map.
            for pack in self._packs.values():
                pack.unlink()
        self._scheduler = FleetScheduler(max_queue=max_queue, max_batch=max_batch)
        for name in plans:
            self._scheduler.add_model(name)
        self.metrics = ServingMetrics(self.workers)
        self._closed = False
        self._close_lock = threading.Lock()
        self._procs: list[ProcessWorker | None] = [None] * self.workers
        self._restarts = [0] * self.workers
        if kind == "process":
            scripts = fault_scripts or {}
            try:
                for index in range(self.workers):
                    self._procs[index] = ProcessWorker(
                        index,
                        self._packs,
                        heartbeat_s=self.heartbeat_s,
                        max_missed=self.max_missed_heartbeats,
                        fault_script=scripts.get(index),
                        start_method=start_method,
                    )
            except BaseException:
                for proc in self._procs:
                    if proc is not None:
                        proc.kill()
                for pack in self._packs.values():
                    pack.unlink()
                raise
            loop = self._process_worker_loop
        else:
            loop = self._worker_loop
        # Engines (thread tier) are built lazily per (worker, model): a
        # worker allocates a model's arena only once it serves that model.
        self._threads = [
            threading.Thread(
                target=loop,
                args=(index,),
                name=f"fleet-worker-{index}",
            )
            for index in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- shared dequeue handling ---------------------------------------------
    def _shed_requests(
        self, model: str, shed: list[_FleetRequest], worker_index: int
    ) -> None:
        tracer = get_tracer()
        for request in shed:
            request.fail(DeadlineExceeded(
                f"request for {model!r} shed after exceeding its deadline"
            ))
            if tracer.enabled:
                tracer.add_span(
                    "request.shed", request.enqueued_at,
                    request.dispatched_at - request.enqueued_at,
                    cat="fleet", tid=worker_index,
                    args={"model": model, "req": request.req_id},
                )
        if shed:
            self.metrics.record_shed(model, len(shed))

    def _emit_request_spans(
        self,
        tracer: Tracer,
        model: str,
        live: list[_FleetRequest],
        compute_start: float,
        compute_end: float,
        worker_index: int,
    ) -> None:
        """Lifecycle spans for a completed batch, on the worker's trace lane.

        Per request (joined by the ``req`` arg): ``request`` (enqueue →
        completion), ``request.queued`` (enqueue → scheduler dispatch),
        ``request.dispatch`` (dispatch → compute start: shed filtering plus
        batch assembly) and ``request.compute`` (the batch's compute
        interval).  All timestamps come from the fleet clock
        (:mod:`repro.runtime.fleet.clock`), so traces are deterministic
        under ``FakeClock``.
        """
        for request in live:
            queued_s = request.dispatched_at - request.enqueued_at
            args = {
                "model": model,
                "req": request.req_id,
                "queue_wait_ms": queued_s * 1e3,
                "batch": request.batch_size,
            }
            tracer.add_span(
                "request", request.enqueued_at, request.latency_ms / 1e3,
                cat="fleet", tid=worker_index, args=args,
            )
            tracer.add_span(
                "request.queued", request.enqueued_at, queued_s,
                cat="fleet", tid=worker_index,
                args={"model": model, "req": request.req_id},
            )
            tracer.add_span(
                "request.dispatch", request.dispatched_at,
                compute_start - request.dispatched_at,
                cat="fleet", tid=worker_index,
                args={"model": model, "req": request.req_id},
            )
            tracer.add_span(
                "request.compute", compute_start,
                compute_end - compute_start,
                cat="fleet", tid=worker_index,
                args={
                    "model": model, "req": request.req_id,
                    "batch": request.batch_size,
                },
            )

    # -- thread worker loop --------------------------------------------------
    def _worker_loop(self, worker_index: int) -> None:
        engines: dict[str, Engine] = {}
        while True:
            picked = self._scheduler.next_batch()
            if picked is None:
                return
            model, live, shed = picked
            start = time.perf_counter()
            tracer = get_tracer()
            self._shed_requests(model, shed, worker_index)
            if not live:
                self.metrics.record_worker_busy(
                    worker_index, time.perf_counter() - start
                )
                continue
            engine = engines.get(model)
            if engine is None:
                engine = engines[model] = Engine(self._plans[model])
            try:
                batch = np.stack([request.x for request in live])
                compute_start = clock.now()
                outputs = engine.run(batch)
                compute_end = clock.now()
            except Exception as error:  # engine failures reach the callers
                for request in live:
                    request.fail(error)
                self.metrics.record_failed(model, len(live))
                self.metrics.record_worker_busy(
                    worker_index, time.perf_counter() - start
                )
                continue
            for row, request in enumerate(live):
                request.complete(np.array(outputs[row]), len(live))
            if tracer.enabled:
                self._emit_request_spans(
                    tracer, model, live, compute_start, compute_end,
                    worker_index,
                )
            self.metrics.record_batch(
                model,
                [request.latency_ms for request in live],
                worker_index,
                time.perf_counter() - start,
            )

    # -- process worker loop (parent-side dispatcher) ------------------------
    def _process_worker_loop(self, worker_index: int) -> None:
        while True:
            picked = self._scheduler.next_batch()
            if picked is None:
                break
            model, live, shed = picked
            start = time.perf_counter()
            tracer = get_tracer()
            self._shed_requests(model, shed, worker_index)
            if not live:
                self.metrics.record_worker_busy(
                    worker_index, time.perf_counter() - start
                )
                continue
            batch = np.stack([request.x for request in live])
            outputs = None
            child_spans: list[dict] | None = None
            compute_start = compute_end = 0.0
            crash: WorkerCrashed | None = None
            error: Exception | None = None
            attempts = 0
            while True:
                worker = self._procs[worker_index]
                if worker is None:
                    crash = WorkerCrashed(
                        f"worker {worker_index} is gone and respawn is off"
                    )
                    break
                try:
                    compute_start = clock.now()
                    outputs, child_spans = worker.run_batch(
                        model, batch, trace=tracer.enabled
                    )
                    compute_end = clock.now()
                    break
                except WorkerCrashed as failure:
                    self.metrics.record_crash(worker_index)
                    try:
                        replacement = self._respawn(worker_index)
                    except Exception:
                        # Cold start of the replacement failed: retire the
                        # slot rather than hang this batch's waiters.
                        self._procs[worker_index] = None
                        replacement = None
                    # A batch the child never received may retry once on
                    # the fresh worker; anything else fails fast (the
                    # child may have started computing it).
                    if (replacement is not None and not failure.delivered
                            and attempts == 0):
                        attempts += 1
                        continue
                    crash = failure
                    break
                except Exception as failure:
                    error = failure
                    break
            if crash is not None:
                for request in live:
                    request.fail(crash)
                self.metrics.record_failed(model, len(live))
                self.metrics.record_worker_busy(
                    worker_index, time.perf_counter() - start
                )
                if self._procs[worker_index] is None:
                    # Slot retired: remaining workers keep draining the
                    # queue; leftovers are failed at close().
                    return
                continue
            if error is not None:
                for request in live:
                    request.fail(error)
                self.metrics.record_failed(model, len(live))
                self.metrics.record_worker_busy(
                    worker_index, time.perf_counter() - start
                )
                continue
            for row, request in enumerate(live):
                request.complete(np.array(outputs[row]), len(live))
            if tracer.enabled:
                # The SUBMIT round trip is the batch's compute interval on
                # the parent timeline; the child's relative spans re-anchor
                # to its start, so they nest inside ``fleet.submit``.
                tracer.add_span(
                    "fleet.submit", compute_start,
                    compute_end - compute_start,
                    cat="fleet", tid=worker_index,
                    args={
                        "model": model, "batch": len(live),
                        "worker": worker_index,
                    },
                )
                if child_spans:
                    tracer.extend(reanchor_spans(
                        child_spans, compute_start,
                        pid=tracer.pid, tid=worker_index,
                        extra_args={"worker": worker_index},
                    ))
                self._emit_request_spans(
                    tracer, model, live, compute_start, compute_end,
                    worker_index,
                )
            self.metrics.record_batch(
                model,
                [request.latency_ms for request in live],
                worker_index,
                time.perf_counter() - start,
            )
        # Graceful drain: every batch handed to this dispatcher is resolved;
        # now let the child exit cleanly.
        worker = self._procs[worker_index]
        if worker is not None:
            worker.shutdown()

    def _respawn(self, worker_index: int) -> ProcessWorker | None:
        """Replace a crashed worker process, or retire its slot."""
        old = self._procs[worker_index]
        if old is not None:
            old.kill()
        if not self._respawn_enabled or self._closed:
            self._procs[worker_index] = None
            return None
        replacement = ProcessWorker(
            worker_index,
            self._packs,
            heartbeat_s=self.heartbeat_s,
            max_missed=self.max_missed_heartbeats,
            start_method=self._start_method,
        )
        self._procs[worker_index] = replacement
        self._restarts[worker_index] += 1
        return replacement

    # -- client API ----------------------------------------------------------
    def submit(
        self,
        model: str,
        x: np.ndarray,
        deadline_ms: float | None = None,
    ) -> FleetHandle:
        """Enqueue one sample for ``model``; returns a waitable handle.

        Raises:
            ValueError: For an unregistered model name or a batched input.
            FleetClosed: After :meth:`close`.
            QueueFull: When ``model``'s queue is at ``max_queue`` — the
                rejection is also counted in the metrics.
        """
        if model not in self._plans:
            raise ValueError(
                f"unknown model {model!r}; registered: "
                f"{', '.join(sorted(self._plans))}"
            )
        x = np.asarray(x)
        expected = tuple(self._plans[model].input_shape)
        if x.shape != expected:
            raise ValueError(
                f"model {model!r} expects one sample of shape "
                f"{expected}, got {x.shape}"
            )
        request = _FleetRequest(model, x, deadline_ms)
        # Acceptance is recorded *before* the enqueue: the moment the
        # request is visible to a worker it may complete, and the metrics
        # invariant (accepted >= completed + failed + shed) must hold at
        # every snapshot, not only at quiescence.
        self.metrics.record_accepted(model)
        try:
            self._scheduler.submit(request)
        except Exception:
            self.metrics.record_unaccepted(model)
            raise
        return FleetHandle(request)

    def submit_with_retry(
        self,
        model: str,
        x: np.ndarray,
        deadline_ms: float | None = None,
        retry: "RetryPolicy | None" = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> FleetHandle:
        """:meth:`submit` with bounded, backed-off retries on ``QueueFull``.

        Backpressure is transient by design — a full queue drains as
        workers pull batches — so the client-side answer is a few spaced
        retries rather than instant failure.  Uses the shared
        :class:`repro.resilience.RetryPolicy` (default:
        ``RetryPolicy()``, 2 retries with decorrelated-jitter backoff) and
        re-raises ``QueueFull`` once the budget is spent.  Only
        ``QueueFull`` is retried: ``FleetClosed`` (and every other error)
        propagates immediately — retrying a shut-down fleet can never
        succeed.  ``sleep`` is injectable for deterministic tests.

        Raises:
            QueueFull: When the queue is still full after the last retry.
            FleetClosed: Immediately after :meth:`close` — never retried.
            ValueError: For unknown models or bad shapes — never retried.
        """
        from repro.resilience.retry import RetryPolicy

        policy = retry if retry is not None else RetryPolicy()
        tracer = get_tracer()
        delays = iter(policy.schedule())
        attempt = 0
        while True:
            try:
                return self.submit(model, x, deadline_ms)
            except QueueFull:
                attempt += 1
                if attempt > policy.max_retries:
                    raise
                if tracer.enabled:
                    tracer.counter("fleet.submit_retries", float(attempt),
                                   cat="fleet")
                sleep(next(delays))

    def infer(
        self,
        model: str,
        x: np.ndarray,
        deadline_ms: float | None = None,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Blocking convenience wrapper: ``submit(...).result(timeout)``."""
        return self.submit(model, x, deadline_ms).result(timeout)

    def models(self) -> list[str]:
        """Registered model names, sorted."""
        return sorted(self._plans)

    # -- observability -------------------------------------------------------
    def _worker_info(self, index: int) -> dict:
        """Process-tier liveness block for one worker slot."""
        if self.kind == "thread":
            return {
                "kind": "thread",
                "alive": self._threads[index].is_alive(),
                "restarts": 0,
                "pid": None,
            }
        worker = self._procs[index]
        return {
            "kind": "process",
            "alive": worker.alive if worker is not None else False,
            "restarts": self._restarts[index],
            "pid": worker.pid if worker is not None else None,
        }

    def stats(self) -> dict:
        """JSON-serialisable serving state.

        Per-model and fleet-wide counters and latency percentiles from
        :class:`~repro.runtime.fleet.metrics.ServingMetrics`; per-worker
        blocks carry the worker kind, liveness, pid and respawn count (the
        schema is identical across tiers — thread workers report
        ``pid: None`` and ``restarts: 0``); plus the weight-sharing ledger:
        bytes of baked weights mapped once per model versus what
        ``workers`` private copies would have cost.
        """
        snapshot = self.metrics.snapshot(self._scheduler.depths())
        for index, block in enumerate(snapshot["workers"]):
            block.update(self._worker_info(index))
        shared = sum(pack.nbytes for pack in self._packs.values())
        snapshot["config"] = {
            "workers": self.workers,
            "kind": self.kind,
            "max_batch": self.max_batch,
            "max_queue": self._scheduler.max_queue,
            "models": self.models(),
        }
        snapshot["weights"] = {
            "shared_bytes": shared,
            "unshared_bytes": shared * self.workers,
            "per_model_bytes": {
                name: pack.nbytes for name, pack in sorted(self._packs.items())
            },
        }
        return snapshot

    # -- lifecycle -----------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Shut down: stop admission, drain workers, fail leftovers.

        Dispatcher/worker threads finish the batch they hold (graceful
        drain — in-flight requests are answered, not abandoned), process
        workers receive SHUTDOWN and are joined (escalating to kill on
        timeout), and requests still queued when the workers exit are
        failed with :class:`~repro.runtime.fleet.requests.FleetClosed` — no
        waiter hangs.  Idempotent.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._scheduler.close()
        for thread in self._threads:
            thread.join(timeout)
        for proc in self._procs:
            # Normally shut down by their dispatcher; this catches workers
            # whose dispatcher thread had to be abandoned on join timeout.
            if proc is not None and proc.alive:
                proc.kill()
        leftovers = self._scheduler.drain()
        for request in leftovers:
            request.fail(FleetClosed(
                "fleet shut down before serving this request"
            ))
        if leftovers:
            by_model: dict[str, int] = {}
            for request in leftovers:
                by_model[request.model] = by_model.get(request.model, 0) + 1
            for model, count in by_model.items():
                self.metrics.record_failed(model, count)
        if self.kind == "process":
            for pack in self._packs.values():
                pack.unlink()

    def __enter__(self) -> "ServingFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
