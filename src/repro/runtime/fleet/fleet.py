"""ServingFleet: N workers, shared baked weights, one multi-tenant door.

The fleet is the production tier above :class:`~repro.runtime.serve
.InferenceServer` (single model, single worker).  One fleet hosts many
compiled plans behind ``submit(model, x)``:

* each plan's baked arrays are packed once into a single memmap
  (:func:`~repro.runtime.fleet.weights.pack_plan_memmap`) and every worker's
  engine reads the same read-only pages — weight memory is O(1) in the
  worker count, and spinning up a worker touches no weight bytes;
* each worker thread owns its own :class:`~repro.runtime.engine.Engine` per
  model — a private arena slice — so workers never contend on scratch
  buffers; numpy kernels release the GIL, so workers overlap on multi-core
  hosts;
* the :class:`~repro.runtime.fleet.scheduler.FleetScheduler` provides
  continuous batching, bounded-queue admission control, and deadline
  shedding; every decision lands in
  :class:`~repro.runtime.fleet.metrics.ServingMetrics`, surfaced as
  ``fleet.stats()``.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.runtime.engine import Engine
from repro.runtime.fleet.metrics import ServingMetrics
from repro.runtime.fleet.requests import (
    DeadlineExceeded,
    FleetClosed,
    FleetHandle,
    _FleetRequest,
)
from repro.runtime.fleet.scheduler import FleetScheduler
from repro.runtime.fleet.weights import pack_plan_memmap
from repro.runtime.plan import ExecutionPlan


class ServingFleet:
    """Multi-worker, multi-tenant serving frontend over compiled plans.

    Args:
        plans: Mapping of model name to compiled
            :class:`~repro.runtime.plan.ExecutionPlan`; each becomes a
            routing key for :meth:`submit`.
        workers: Worker-thread count (``>= 1``).
        max_batch: Largest coalesced batch a worker pulls per model.
        max_queue: Per-model admission bound; submits beyond it raise
            :class:`~repro.runtime.fleet.requests.QueueFull`.

    Use as a context manager or call :meth:`close` — worker threads are
    non-daemonic.
    """

    def __init__(
        self,
        plans: dict[str, ExecutionPlan],
        workers: int = 2,
        max_batch: int = 8,
        max_queue: int = 64,
    ) -> None:
        if not plans:
            raise ValueError("ServingFleet needs at least one plan")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.max_batch = int(max_batch)
        self._packs = {
            name: pack_plan_memmap(plan) for name, plan in plans.items()
        }
        # One memmap-backed plan per model, shared by every worker thread.
        self._plans = {
            name: pack.restore() for name, pack in self._packs.items()
        }
        for pack in self._packs.values():
            pack.unlink()  # pages stay reachable through the live memmaps
        self._scheduler = FleetScheduler(max_queue=max_queue, max_batch=max_batch)
        for name in plans:
            self._scheduler.add_model(name)
        self.metrics = ServingMetrics(self.workers)
        self._closed = False
        self._close_lock = threading.Lock()
        # Engines are built lazily per (worker, model): a worker allocates a
        # model's arena only once it actually serves that model's traffic.
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"fleet-worker-{index}",
            )
            for index in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- worker loop ---------------------------------------------------------
    def _worker_loop(self, worker_index: int) -> None:
        engines: dict[str, Engine] = {}
        while True:
            picked = self._scheduler.next_batch()
            if picked is None:
                return
            model, live, shed = picked
            start = time.perf_counter()
            for request in shed:
                request.fail(DeadlineExceeded(
                    f"request for {model!r} shed after exceeding its deadline"
                ))
            if shed:
                self.metrics.record_shed(model, len(shed))
            if not live:
                self.metrics.record_worker_busy(
                    worker_index, time.perf_counter() - start
                )
                continue
            engine = engines.get(model)
            if engine is None:
                engine = engines[model] = Engine(self._plans[model])
            try:
                batch = np.stack([request.x for request in live])
                outputs = engine.run(batch)
            except Exception as error:  # engine failures reach the callers
                for request in live:
                    request.fail(error)
                self.metrics.record_failed(model, len(live))
                self.metrics.record_worker_busy(
                    worker_index, time.perf_counter() - start
                )
                continue
            for row, request in enumerate(live):
                request.complete(np.array(outputs[row]), len(live))
            self.metrics.record_batch(
                model,
                [request.latency_ms for request in live],
                worker_index,
                time.perf_counter() - start,
            )

    # -- client API ----------------------------------------------------------
    def submit(
        self,
        model: str,
        x: np.ndarray,
        deadline_ms: float | None = None,
    ) -> FleetHandle:
        """Enqueue one sample for ``model``; returns a waitable handle.

        Raises:
            ValueError: For an unregistered model name or a batched input.
            FleetClosed: After :meth:`close`.
            QueueFull: When ``model``'s queue is at ``max_queue`` — the
                rejection is also counted in the metrics.
        """
        if model not in self._plans:
            raise ValueError(
                f"unknown model {model!r}; registered: "
                f"{', '.join(sorted(self._plans))}"
            )
        x = np.asarray(x)
        expected = tuple(self._plans[model].input_shape)
        if x.shape != expected:
            raise ValueError(
                f"model {model!r} expects one sample of shape "
                f"{expected}, got {x.shape}"
            )
        request = _FleetRequest(model, x, deadline_ms)
        try:
            self._scheduler.submit(request)
        except Exception:
            self.metrics.record_rejected(model)
            raise
        self.metrics.record_accepted(model)
        return FleetHandle(request)

    def infer(
        self,
        model: str,
        x: np.ndarray,
        deadline_ms: float | None = None,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Blocking convenience wrapper: ``submit(...).result(timeout)``."""
        return self.submit(model, x, deadline_ms).result(timeout)

    def models(self) -> list[str]:
        """Registered model names, sorted."""
        return sorted(self._plans)

    # -- observability -------------------------------------------------------
    def stats(self) -> dict:
        """JSON-serialisable serving state.

        Per-model and fleet-wide counters and latency percentiles from
        :class:`~repro.runtime.fleet.metrics.ServingMetrics`, plus the
        weight-sharing ledger: bytes of baked weights mapped once per model
        versus what ``workers`` private copies would have cost.
        """
        snapshot = self.metrics.snapshot(self._scheduler.depths())
        shared = sum(pack.nbytes for pack in self._packs.values())
        snapshot["config"] = {
            "workers": self.workers,
            "max_batch": self.max_batch,
            "max_queue": self._scheduler.max_queue,
            "models": self.models(),
        }
        snapshot["weights"] = {
            "shared_bytes": shared,
            "unshared_bytes": shared * self.workers,
            "per_model_bytes": {
                name: pack.nbytes for name, pack in sorted(self._packs.items())
            },
        }
        return snapshot

    # -- lifecycle -----------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Shut down: stop admission, join workers, fail leftovers.

        Requests still queued when the workers exit are failed with
        :class:`~repro.runtime.fleet.requests.FleetClosed` — no waiter
        hangs.  Idempotent.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._scheduler.close()
        for thread in self._threads:
            thread.join(timeout)
        leftovers = self._scheduler.drain()
        for request in leftovers:
            request.fail(FleetClosed(
                "fleet shut down before serving this request"
            ))
        if leftovers:
            by_model: dict[str, int] = {}
            for request in leftovers:
                by_model[request.model] = by_model.get(request.model, 0) + 1
            for model, count in by_model.items():
                self.metrics.record_failed(model, count)

    def __enter__(self) -> "ServingFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
