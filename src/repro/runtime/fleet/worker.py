"""Process worker tier: pipe control protocol, heartbeats, crash detection.

Thread workers share the parent's memory; process workers get true core
parallelism (no GIL) at the cost of an explicit control protocol.  One
worker = one child process + one duplex pipe, driven by a parent-side
dispatcher thread.  Frames on the wire (plain picklable tuples):

========= =========== ===================================================
direction frame        meaning
========= =========== ===================================================
child →   ``READY``    cold start finished: every plan's weights are
                       memmapped (read-only, pages shared with the parent
                       and every sibling worker), pid attached
child →   ``HB``       heartbeat — sent every ``heartbeat_s`` by a
                       background thread; silence is how hangs are caught
child →   ``RESULT``   ``(seq, outputs, spans)`` for an earlier ``SUBMIT``;
                       ``spans`` is ``None`` unless tracing was requested,
                       else a list of span events with timestamps relative
                       to the child's receipt of the batch (the parent
                       re-anchors them — :func:`repro.obs.reanchor_spans`)
child →   ``ERROR``    ``(seq, exception)`` — engine-side failure; the
                       worker is still healthy and keeps serving
parent →  ``SUBMIT``   ``(seq, model, batch, trace)`` — run one coalesced
                       batch; ``trace`` asks the child to time its work
                       into RESULT's span list
parent →  ``SHUTDOWN`` graceful drain: finish nothing new, exit cleanly
========= =========== ===================================================

Crash detection is the parent's job: a dead pipe (``EOFError`` /
``BrokenPipeError``), a dead process, or ``max_missed`` heartbeat intervals
of silence all raise :class:`~repro.runtime.fleet.requests.WorkerCrashed`
from :meth:`ProcessWorker.run_batch` — the dispatcher fails the in-flight
batch fast (no waiter ever hangs) and may respawn the worker.

Cold start ships **no weight bytes**: the child receives each model's
:class:`~repro.runtime.fleet.weights.PlanWeightPack` (structural plan +
memmap file path) and restores read-only ``np.memmap`` views, so weights
stay one shared file-backed copy per model across the whole fleet.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from typing import Any, Mapping

import numpy as np

from repro.runtime.fleet.requests import WorkerCrashed
from repro.runtime.fleet.weights import PlanWeightPack

#: Frame tags of the control protocol (first tuple element).
READY = "READY"
HEARTBEAT = "HB"
RESULT = "RESULT"
ERROR = "ERROR"
SUBMIT = "SUBMIT"
SHUTDOWN = "SHUTDOWN"

#: Default child start method: ``spawn`` is fork-safety-proof (the parent
#: runs dispatcher threads) and exercises the true cold-start path.
DEFAULT_START_METHOD = "spawn"


def _apply_fault(action: str, stop_heartbeat: threading.Event) -> None:
    """Execute one scripted fault ``action`` inside the child (test hook)."""
    if action == "crash":
        # Die mid-batch without a goodbye — the parent sees a dead pipe.
        os._exit(13)
    elif action == "hang":
        # Go silent: stop heartbeating but stay alive, holding the batch.
        # Only the parent's missed-heartbeat kill can end this state.
        stop_heartbeat.set()
        time.sleep(3600.0)
    elif action.startswith("slow:"):
        # Slow batch: compute is delayed but heartbeats keep flowing, so
        # the parent must NOT declare this worker dead.
        time.sleep(float(action.split(":", 1)[1]))


def worker_main(
    conn,
    packs: Mapping[str, PlanWeightPack],
    heartbeat_s: float,
    fault_script: list[str] | None = None,
) -> None:
    """Child-process entry point: restore plans, heartbeat, serve batches.

    Restores every pack's weights as read-only memmaps *before* sending
    ``READY`` (the parent may unlink the backing files only after the fleet
    closes), then loops on control frames.  Engines are built lazily per
    model.  ``fault_script`` is the deterministic test hook: one action
    string per SUBMIT, consumed in order (``"crash"``, ``"hang"``,
    ``"slow:<seconds>"``, ``"error"``; anything else serves normally).
    """
    from repro.runtime.engine import Engine

    plans = {name: pack.restore() for name, pack in packs.items()}
    engines: dict[str, Any] = {}
    faults = list(fault_script or [])
    send_lock = threading.Lock()
    stop_heartbeat = threading.Event()

    def _send(frame) -> None:
        with send_lock:
            conn.send(frame)

    def _beat() -> None:
        while not stop_heartbeat.wait(heartbeat_s):
            try:
                _send((HEARTBEAT,))
            except (OSError, ValueError):
                return

    _send((READY, os.getpid()))
    heartbeat = threading.Thread(
        target=_beat, name="fleet-heartbeat", daemon=True
    )
    heartbeat.start()
    try:
        while True:
            try:
                frame = conn.recv()
            except (EOFError, OSError):
                return
            if frame[0] == SHUTDOWN:
                return
            _, seq, model, batch, trace = frame
            # Span timestamps are relative to batch receipt (the child's
            # time zero); the parent re-anchors them onto its own timeline.
            received = time.perf_counter()
            spans: list[dict] | None = [] if trace else None
            action = faults.pop(0) if faults else "ok"
            _apply_fault(action, stop_heartbeat)
            try:
                if action == "error":
                    raise RuntimeError(
                        f"injected engine error for model {model!r}"
                    )
                engine = engines.get(model)
                if engine is None:
                    build_start = time.perf_counter()
                    engine = engines[model] = Engine(plans[model])
                    if spans is not None:
                        spans.append({
                            "ph": "X", "name": "worker.engine_build",
                            "cat": "fleet", "ts": build_start - received,
                            "dur": time.perf_counter() - build_start,
                            "pid": os.getpid(), "tid": 0,
                            "args": {"model": model},
                        })
                run_start = time.perf_counter()
                outputs = np.asarray(engine.run(batch))
                if spans is not None:
                    spans.append({
                        "ph": "X", "name": "worker.compute", "cat": "fleet",
                        "ts": run_start - received,
                        "dur": time.perf_counter() - run_start,
                        "pid": os.getpid(), "tid": 0,
                        "args": {"model": model, "batch": int(len(batch))},
                    })
            except Exception as error:
                try:
                    _send((ERROR, seq, error))
                except Exception:
                    # Unpicklable exception: ship the repr instead.
                    _send((ERROR, seq, RuntimeError(repr(error))))
                continue
            _send((RESULT, seq, outputs, spans))
    finally:
        stop_heartbeat.set()
        try:
            conn.close()
        except OSError:
            pass


class ProcessWorker:
    """Parent-side handle for one fleet worker process.

    Owns the child process, its pipe, the SUBMIT sequence counter and the
    heartbeat ledger.  Exactly one dispatcher thread drives each instance —
    the pipe's parent end is single-reader by construction.

    Args:
        index: Fleet worker slot (names the process).
        packs: Per-model weight packs the child cold-starts from.
        heartbeat_s: Child heartbeat interval in seconds.
        max_missed: Heartbeat intervals of silence before the worker is
            declared hung and killed.
        start_timeout: Bound on cold start (process spawn + plan restore).
        fault_script: Optional deterministic fault actions (tests only).
        start_method: ``multiprocessing`` start method; default ``spawn``.
    """

    def __init__(
        self,
        index: int,
        packs: Mapping[str, PlanWeightPack],
        heartbeat_s: float = 0.25,
        max_missed: int = 8,
        start_timeout: float = 60.0,
        fault_script: list[str] | None = None,
        start_method: str | None = None,
    ) -> None:
        self.index = index
        self.heartbeat_s = float(heartbeat_s)
        self.max_missed = int(max_missed)
        ctx = mp.get_context(start_method or DEFAULT_START_METHOD)
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=worker_main,
            args=(child_conn, dict(packs), self.heartbeat_s, fault_script),
            name=f"fleet-proc-{index}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.last_seen = time.monotonic()
        self.seq = 0
        self.pid: int | None = None
        try:
            frame = self._recv(start_timeout)
        except WorkerCrashed:
            self.kill()
            raise
        if frame is None or frame[0] != READY:
            self.kill()
            raise WorkerCrashed(
                f"worker {index} failed to cold-start within {start_timeout}s"
            )
        self.pid = frame[1]

    # -- wire helpers --------------------------------------------------------
    def _recv(self, timeout: float):
        """One frame from the child, or ``None`` after ``timeout`` seconds.

        Raises:
            WorkerCrashed: On a dead pipe or a dead child process.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            try:
                if self.conn.poll(min(remaining, self.heartbeat_s)):
                    frame = self.conn.recv()
                    self.last_seen = time.monotonic()
                    return frame
            except (EOFError, OSError) as error:
                raise WorkerCrashed(
                    f"worker {self.index} (pid {self.pid}) closed its pipe: "
                    f"{error!r}"
                ) from error
            if not self.proc.is_alive():
                # Dead process with an empty pipe: nothing more is coming.
                raise WorkerCrashed(
                    f"worker {self.index} (pid {self.pid}) exited with code "
                    f"{self.proc.exitcode}"
                )

    # -- batch execution -----------------------------------------------------
    def run_batch(
        self, model: str, batch: np.ndarray, trace: bool = False
    ) -> tuple[np.ndarray, list[dict] | None]:
        """Ship one batch and block for its result.

        Multiplexes heartbeats while waiting; a slow batch that keeps
        heartbeating waits indefinitely, a silent one is killed after
        ``max_missed`` intervals.

        Returns ``(outputs, spans)``: with ``trace=True`` the child times
        its engine build/compute into ``spans`` (timestamps relative to its
        receipt of the batch, for the parent to re-anchor); otherwise
        ``spans`` is ``None``.

        Raises:
            WorkerCrashed: Dead pipe / dead process / missed heartbeats.
                ``delivered=False`` when the SUBMIT frame never reached the
                child (safe to retry elsewhere).
            Exception: An engine-side error, re-raised as shipped.
        """
        self.seq += 1
        seq = self.seq
        try:
            self.conn.send((SUBMIT, seq, model, batch, bool(trace)))
        except (OSError, ValueError) as error:
            self.kill()
            raise WorkerCrashed(
                f"worker {self.index} (pid {self.pid}) pipe rejected a "
                f"batch: {error!r}",
                delivered=False,
            ) from error
        # Silence is measured from submission: while idle the dispatcher
        # does not drain the pipe, so heartbeats accumulate unread and
        # ``last_seen`` goes stale without the worker being unhealthy.
        self.last_seen = time.monotonic()
        silence_budget = self.heartbeat_s * self.max_missed
        while True:
            frame = self._recv(
                self.last_seen + silence_budget - time.monotonic()
            )
            if frame is None:
                self.kill()
                raise WorkerCrashed(
                    f"worker {self.index} (pid {self.pid}) missed "
                    f"{self.max_missed} heartbeats while serving {model!r}"
                )
            if frame[0] == HEARTBEAT:
                continue
            if frame[0] == RESULT and frame[1] == seq:
                return frame[2], frame[3]
            if frame[0] == ERROR and frame[1] == seq:
                error = frame[2]
                if isinstance(error, BaseException):
                    raise error
                raise RuntimeError(str(error))
            # Stale frame from a pre-respawn lifetime: ignore and keep
            # waiting for this sequence number.

    # -- lifecycle -----------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the child process is running."""
        return self.proc.is_alive()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Graceful drain: send SHUTDOWN, join; escalate to kill on timeout."""
        try:
            self.conn.send((SHUTDOWN,))
        except (OSError, ValueError):
            pass
        self.proc.join(timeout)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout)
        self._close_conn()

    def kill(self) -> None:
        """Hard-stop the child (crash path); idempotent."""
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join(5.0)
        self._close_conn()

    def _close_conn(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
