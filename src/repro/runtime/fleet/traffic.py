"""Traffic traces and open-loop replay for serving benchmarks.

A trace is a sorted list of :class:`TraceEvent` arrival offsets.  The
generators are seeded and deterministic:

* :func:`poisson_trace` — open-loop Poisson arrivals (exponential
  inter-arrival gaps) at a target rate, the standard steady-load model;
* :func:`burst_trace` — clustered arrivals separated by idle gaps, the
  worst case for admission control and deadline shedding;
* :func:`merge_traces` — interleave per-model traces into one multi-tenant
  timeline.

:func:`replay` drives a :class:`~repro.runtime.fleet.fleet.ServingFleet`
with a trace *open-loop*: submission times come from the trace alone, never
from completions, so a slow fleet visibly builds queue depth, sheds
deadlines, and rejects on backpressure instead of quietly slowing the
client down (closed-loop replay would hide exactly the tail behaviour a
serving benchmark exists to measure).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.runtime.fleet.fleet import ServingFleet
from repro.runtime.fleet.metrics import latency_percentiles
from repro.runtime.fleet.requests import (
    DeadlineExceeded,
    FleetHandle,
    QueueFull,
)


@dataclass(frozen=True)
class TraceEvent:
    """One arrival: offset from trace start (seconds) and target model."""

    t: float
    model: str


def poisson_trace(
    model: str,
    rate_hz: float,
    duration_s: float,
    seed: int = 0,
) -> list[TraceEvent]:
    """Open-loop Poisson arrivals for ``model`` at ``rate_hz`` requests/s."""
    if rate_hz <= 0:
        raise ValueError(f"rate_hz must be > 0, got {rate_hz}")
    rng = np.random.default_rng(seed)
    events: list[TraceEvent] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate_hz))
        if t >= duration_s:
            return events
        events.append(TraceEvent(t=t, model=model))


def burst_trace(
    model: str,
    bursts: int,
    burst_size: int,
    gap_s: float,
    spacing_s: float = 0.0,
) -> list[TraceEvent]:
    """``bursts`` clusters of ``burst_size`` arrivals, ``gap_s`` apart.

    Within a burst, arrivals are ``spacing_s`` apart (0 = simultaneous).
    """
    if bursts < 1 or burst_size < 1:
        raise ValueError("bursts and burst_size must be >= 1")
    events = [
        TraceEvent(t=burst * gap_s + hit * spacing_s, model=model)
        for burst in range(bursts)
        for hit in range(burst_size)
    ]
    return sorted(events, key=lambda event: event.t)


def merge_traces(*traces: list[TraceEvent]) -> list[TraceEvent]:
    """Interleave traces into one timeline, stably sorted by arrival."""
    merged = [event for trace in traces for event in trace]
    return sorted(merged, key=lambda event: event.t)


def replay(
    fleet: ServingFleet,
    trace: list[TraceEvent],
    inputs: dict[str, np.ndarray],
    deadline_ms: float | None = None,
    timeout: float = 60.0,
) -> dict[str, Any]:
    """Drive ``fleet`` with ``trace`` open-loop; summarise the outcome.

    Args:
        fleet: The fleet under test (left open; caller owns its lifecycle).
        trace: Sorted arrivals; each event submits ``inputs[event.model]``.
        inputs: One sample per model named in the trace.
        deadline_ms: Optional per-request deadline applied to every submit.
        timeout: Wait bound for the final outstanding handle.

    Returns a JSON-serialisable record: offered/served counts, outcome split
    (completed / rejected / shed / failed), wall-clock, served throughput in
    requests/s, and latency percentiles over completed requests.
    """
    handles: list[FleetHandle] = []
    rejected = 0
    start = time.perf_counter()
    for event in trace:
        wait = event.t - (time.perf_counter() - start)
        if wait > 0:
            time.sleep(wait)
        try:
            handles.append(
                fleet.submit(event.model, inputs[event.model], deadline_ms)
            )
        except QueueFull:
            rejected += 1
    completed = shed = failed = 0
    latencies: list[float] = []
    per_model: dict[str, list[float]] = {}
    for handle in handles:
        try:
            handle.result(timeout)
        except DeadlineExceeded:
            shed += 1
        except Exception:  # FleetClosed, TimeoutError, engine errors
            failed += 1
        else:
            completed += 1
            latencies.append(handle.latency_ms)
            per_model.setdefault(handle.model, []).append(handle.latency_ms)
    wall_s = time.perf_counter() - start
    record: dict[str, Any] = {
        "offered": len(trace),
        "accepted": len(handles),
        "rejected": rejected,
        "completed": completed,
        "shed": shed,
        "failed": failed,
        "wall_s": wall_s,
        "throughput_rps": completed / wall_s if wall_s > 0 else 0.0,
    }
    if latencies:
        record["latency_ms"] = latency_percentiles(latencies)
        record["per_model"] = {
            model: {
                "completed": len(samples),
                "latency_ms": latency_percentiles(samples),
            }
            for model, samples in sorted(per_model.items())
        }
    return record
