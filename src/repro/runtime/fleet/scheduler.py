"""Continuous-batching scheduler: per-model bounded queues, global FIFO.

The scheduler is the meeting point between client threads (``submit``) and
worker threads (``next_batch``).  Its policy, in order:

1. **Admission control** — each model has a bounded queue; a submit beyond
   ``max_queue`` raises :class:`~repro.runtime.fleet.requests.QueueFull`
   instead of growing an unbounded backlog (explicit backpressure).
2. **Continuous batching** — a free worker immediately pulls whatever is
   pending for one model (up to ``max_batch``), with no coalescing wait
   window: under load, batches form naturally because requests arrive while
   every worker is busy; a lone request on an idle fleet is served at
   batch-1 latency.
3. **Global FIFO across tenants** — the worker picks the model whose *head*
   request has waited longest, so one chatty tenant cannot starve another:
   every model's oldest request ages toward the front of the fleet-wide
   line.
4. **Shed on deadline** — expired requests are separated out at dequeue
   time, *before* any compute is spent on them; the worker fails them with
   :class:`~repro.runtime.fleet.requests.DeadlineExceeded` and serves only
   the live remainder.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.runtime.fleet import clock
from repro.runtime.fleet.requests import (
    FleetClosed,
    QueueFull,
    _FleetRequest,
)


class FleetScheduler:
    """Bounded per-model request queues plus the worker dispatch loop.

    Thread-safe: client threads call :meth:`submit`, worker threads block in
    :meth:`next_batch`, and :meth:`close`/:meth:`drain` run the shutdown
    hand-off.  All state is guarded by one condition variable.
    """

    def __init__(self, max_queue: int = 64, max_batch: int = 8) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.max_queue = int(max_queue)
        self.max_batch = int(max_batch)
        self._cond = threading.Condition()
        self._queues: dict[str, deque[_FleetRequest]] = {}
        self._closed = False

    def add_model(self, name: str) -> None:
        """Register a routing key (idempotent)."""
        with self._cond:
            self._queues.setdefault(name, deque())

    def models(self) -> list[str]:
        """Currently registered routing keys, sorted."""
        with self._cond:
            return sorted(self._queues)

    # -- client side --------------------------------------------------------
    def submit(self, request: _FleetRequest) -> None:
        """Admit one request or raise (bounded queue, closed fleet).

        Raises:
            FleetClosed: After :meth:`close`.
            QueueFull: When the model's queue is at ``max_queue``.
            KeyError: For an unregistered model (callers validate first and
                raise a friendlier error).
        """
        with self._cond:
            if self._closed:
                raise FleetClosed("fleet is shut down")
            queue = self._queues[request.model]
            if len(queue) >= self.max_queue:
                raise QueueFull(
                    f"queue for model {request.model!r} is full "
                    f"({self.max_queue} pending)"
                )
            queue.append(request)
            self._cond.notify()

    def depths(self) -> dict[str, int]:
        """Pending request count per model."""
        with self._cond:
            return {name: len(queue) for name, queue in self._queues.items()}

    # -- worker side --------------------------------------------------------
    def next_batch(
        self,
    ) -> tuple[str, list[_FleetRequest], list[_FleetRequest]] | None:
        """Block for the next per-model batch; ``None`` means shut down.

        Returns ``(model, live, shed)``: up to ``max_batch`` requests popped
        from the queue whose head has waited longest, split into still-live
        requests and deadline-expired ones (in arrival order).  ``live`` may
        be empty when every popped request had already expired — the caller
        sheds and comes back.

        After :meth:`close`, no further batches are handed out even if work
        is still queued — shutdown is fail-fast, and the owner fails the
        :meth:`drain` leftovers explicitly rather than serving a closed
        fleet's backlog.
        """
        with self._cond:
            while True:
                if self._closed:
                    return None
                best: str | None = None
                oldest = float("inf")
                for name, queue in self._queues.items():
                    if queue and queue[0].enqueued_at < oldest:
                        oldest = queue[0].enqueued_at
                        best = name
                if best is not None:
                    queue = self._queues[best]
                    now = clock.now()
                    live: list[_FleetRequest] = []
                    shed: list[_FleetRequest] = []
                    while queue and len(live) + len(shed) < self.max_batch:
                        request = queue.popleft()
                        request.dispatched_at = now
                        (shed if request.expired(now) else live).append(request)
                    return best, live, shed
                if self._closed:
                    return None
                self._cond.wait()

    # -- shutdown -----------------------------------------------------------
    def close(self) -> None:
        """Stop admitting; wake every blocked worker so it can exit."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self) -> list[_FleetRequest]:
        """Pop every still-queued request (for failing them at shutdown)."""
        with self._cond:
            leftovers: list[_FleetRequest] = []
            for queue in self._queues.values():
                leftovers.extend(queue)
                queue.clear()
            return leftovers
