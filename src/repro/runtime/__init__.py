"""Compiled inference runtime: plan, arena planner, executor, serving.

The deployment half of the co-search: once a network (searched or from the
zoo) is derived into an :class:`~repro.nas.arch_spec.ArchSpec`, this package
turns it into something that *runs fast* —

* :func:`compile_spec` lowers the network into a static
  :class:`ExecutionPlan` (BatchNorm folded, quantisation baked);
* :func:`plan_arena` assigns every intermediate an offset in one
  preallocated arena with buffer reuse (:class:`ArenaLayout`);
* :class:`Engine` executes the plan autograd-free with out-buffer kernels;
* :class:`InferenceServer` / :class:`BatchingQueue` serve it with
  micro-batching and per-request latency stats;
* :class:`ServingFleet` (:mod:`repro.runtime.fleet`) scales that into a
  multi-worker, multi-tenant serving tier with admission control.

See ``docs/runtime.md`` and ``docs/serving.md`` for the full walkthrough.
"""

from repro.runtime.arena import ArenaLayout, LiveRange, live_ranges, plan_arena
from repro.runtime.compile import compile_spec
from repro.runtime.engine import Engine
from repro.runtime.fleet import ServingFleet
from repro.runtime.plan import BufferSpec, ExecutionPlan, PlanOp
from repro.runtime.serve import BatchingQueue, InferenceHandle, InferenceServer

__all__ = [
    "ArenaLayout",
    "BatchingQueue",
    "BufferSpec",
    "Engine",
    "ExecutionPlan",
    "InferenceHandle",
    "InferenceServer",
    "LiveRange",
    "PlanOp",
    "ServingFleet",
    "compile_spec",
    "live_ranges",
    "plan_arena",
]
