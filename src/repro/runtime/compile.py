"""Graph capture: lower a network into a static :class:`ExecutionPlan`.

:func:`compile_spec` walks a :class:`~repro.nas.network.BuiltNetwork` (or
builds one from an :class:`~repro.nas.arch_spec.ArchSpec`) unit by unit and
emits a topologically-ordered op list with all training-time machinery baked
out:

* **BatchNorm folding** — eval-mode BN is an affine map per channel, so it
  collapses into the preceding convolution:
  ``w' = w * gamma / sqrt(var + eps)`` and
  ``b' = beta - mean * gamma / sqrt(var + eps)`` (folds computed in float64,
  stored in the policy dtype).
* **Quantisation baking** — fake-quantised weights are materialised once at
  compile time through the *same* :func:`repro.nas.quantization.fake_quantize`
  code path the training forward uses, so the baked plan reproduces
  ``BuiltNetwork.forward(x, bits=...)`` exactly.
* **Scratch planning** — each convolution registers its padded-input and
  im2col column buffers as plan scratch, which the arena planner folds into
  reused space.

The result executes conv -> activation only; see
:class:`repro.runtime.engine.Engine` for the executor.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.ops_nn import _conv_output_size
from repro.autograd.tensor import get_default_dtype, no_grad
from repro.nas.arch_spec import ArchSpec
from repro.nas.network import (
    BuiltNetwork,
    _BranchesUnit,
    _ConvUnit,
    _FCUnit,
    _MBConvUnit,
    _PoolUnit,
    _SepConvUnit,
    build_network,
)
from repro.nas.quantization import fake_quantize
from repro.nn.layers import BatchNorm2d, Conv2d, Linear
from repro.runtime.plan import BufferSpec, ExecutionPlan, PlanOp


class _PlanBuilder:
    """Accumulates buffers and ops while the lowering walks the network."""

    def __init__(
        self,
        dtype: np.dtype,
        fuse_residual: bool = True,
        fuse_pool: bool = True,
    ) -> None:
        self.dtype = np.dtype(dtype)
        self.fuse_residual = fuse_residual
        self.fuse_pool = fuse_pool
        self.buffers: list[BufferSpec] = []
        self.ops: list[PlanOp] = []

    def buffer(self, shape: tuple[int, ...], role: str = "activation") -> int:
        buf = BufferSpec(id=len(self.buffers), shape=tuple(shape), role=role)
        self.buffers.append(buf)
        return buf.id

    def emit(self, op: PlanOp) -> int:
        self.ops.append(op)
        return op.output


def _quantized_weight(param, bits: int | None) -> np.ndarray:
    """Bake fake-quantisation exactly as ``BuiltNetwork.forward`` applies it
    (falsy ``bits`` means the float path)."""
    if not bits:
        return param.data
    return fake_quantize(param, bits).data


def _fold_conv_bn(
    conv: Conv2d, bn: BatchNorm2d, bits: int | None, dtype: np.dtype
) -> tuple[np.ndarray, np.ndarray]:
    """Fold eval-mode BatchNorm into the (quantised) conv weight and a bias.

    The fold is computed in float64 and cast to the policy dtype so the only
    deviation from the unfused reference is the final rounding.
    """
    weight = _quantized_weight(conv.weight, bits).astype(np.float64)
    gamma = bn.gamma.data.astype(np.float64)
    beta = bn.beta.data.astype(np.float64)
    mean = np.asarray(bn.running_mean, dtype=np.float64)
    var = np.asarray(bn.running_var, dtype=np.float64)
    scale = gamma / np.sqrt(var + bn.eps)
    folded = weight * scale.reshape(-1, 1, 1, 1)
    bias = beta - mean * scale
    return folded.astype(dtype), bias.astype(dtype)


def _conv_geometry(
    in_shape: tuple[int, ...], kernel: int, stride: int, padding: int
) -> tuple[int, int]:
    _, h, w = in_shape
    out_h = _conv_output_size(h + 2 * padding, kernel, stride)
    out_w = _conv_output_size(w + 2 * padding, kernel, stride)
    if out_h < 1 or out_w < 1:
        raise ValueError(
            f"kernel {kernel} too large for input {h}x{w} with padding {padding}"
        )
    return out_h, out_w


def _lower_conv_unit(
    unit: _ConvUnit,
    in_buf: int,
    in_shape: tuple[int, ...],
    bits: int | None,
    b: _PlanBuilder,
    residual_in: int | None = None,
) -> tuple[int, tuple[int, ...]]:
    conv = unit.conv
    c_in, h, w = in_shape
    out_h, out_w = _conv_geometry(in_shape, conv.kernel_size, conv.stride,
                                  conv.padding)
    weight, bias = _fold_conv_bn(conv, unit.bn, bits, b.dtype)
    scratch: list[int] = []
    attrs = {
        "stride": conv.stride, "padding": conv.padding, "groups": conv.groups,
        "kernel": conv.kernel_size, "pad_buf": None, "col_buf": None,
        "add_buf": residual_in,
    }
    if conv.padding:
        attrs["pad_buf"] = b.buffer(
            (c_in, h + 2 * conv.padding, w + 2 * conv.padding), role="scratch"
        )
        scratch.append(attrs["pad_buf"])
    if not (conv.kernel_size == 1 and conv.stride == 1):
        attrs["col_buf"] = b.buffer(
            (c_in, conv.kernel_size, conv.kernel_size, out_h, out_w),
            role="scratch",
        )
        scratch.append(attrs["col_buf"])
    out_shape = (conv.out_channels, out_h, out_w)
    out_buf = b.buffer(out_shape)
    # A fused residual is an op input like any other: the liveness pass
    # keeps it alive through this op so the arena cannot overlap it with
    # the output.
    inputs = (in_buf,) if residual_in is None else (in_buf, residual_in)
    b.emit(PlanOp(
        kind="conv", inputs=inputs, output=out_buf, attrs=attrs,
        weight=weight, bias=bias, act="relu6" if unit.act else None,
        scratch=tuple(scratch),
        label=f"conv{conv.kernel_size}x{conv.kernel_size}"
              f"{'dw' if conv.groups == c_in and conv.groups > 1 else ''}"
              f"{'+add' if residual_in is not None else ''}",
    ))
    return out_buf, out_shape


def _lower_pool_unit(
    unit: _PoolUnit, in_buf: int, in_shape: tuple[int, ...], b: _PlanBuilder
) -> tuple[int, tuple[int, ...]]:
    c, h, w = in_shape
    if unit.mode == "max":
        out_h, out_w = _conv_geometry(in_shape, unit.kernel, unit.stride,
                                      unit.padding)
        scratch: tuple[int, ...] = ()
        pad_buf = None
        if unit.padding:
            pad_buf = b.buffer(
                (c, h + 2 * unit.padding, w + 2 * unit.padding), role="scratch"
            )
            scratch = (pad_buf,)
        out_shape = (c, out_h, out_w)
        out_buf = b.buffer(out_shape)
        b.emit(PlanOp(
            kind="maxpool", inputs=(in_buf,), output=out_buf,
            attrs={"kernel": unit.kernel, "stride": unit.stride,
                   "padding": unit.padding, "pad_buf": pad_buf},
            scratch=scratch, label=f"maxpool{unit.kernel}",
        ))
        return out_buf, out_shape
    if h % unit.kernel or w % unit.kernel:
        raise ValueError(
            f"avg pool kernel {unit.kernel} does not divide {h}x{w}"
        )
    out_shape = (c, h // unit.kernel, w // unit.kernel)
    out_buf = b.buffer(out_shape)
    b.emit(PlanOp(
        kind="avgpool", inputs=(in_buf,), output=out_buf,
        attrs={"kernel": unit.kernel}, label=f"avgpool{unit.kernel}",
    ))
    return out_buf, out_shape


def _poolable_into_conv(pool: _PoolUnit, unit) -> bool:
    """True when ``avgpool(k) -> conv1x1`` can fuse into one strided conv.

    Average pooling is linear, so a following dense 1x1 convolution absorbs
    it exactly: a kernel-``k`` stride-``k`` conv whose weight is the 1x1
    weight tiled over the window and divided by ``k**2`` computes the same
    map in a single im2col GEMM — no pooled intermediate, one op fewer.
    The builder's avg forward ignores stride/padding (window == stride,
    no padding), so the window geometry is fully described by ``kernel``.
    """
    return (
        pool.mode == "avg"
        and isinstance(unit, _ConvUnit)
        and unit.conv.kernel_size == 1
        and unit.conv.stride == 1
        and unit.conv.padding == 0
        and unit.conv.groups == 1
    )


def _lower_avgpool_conv_fused(
    pool: _PoolUnit,
    unit: _ConvUnit,
    in_buf: int,
    in_shape: tuple[int, ...],
    bits: int | None,
    b: _PlanBuilder,
) -> tuple[int, tuple[int, ...]]:
    conv = unit.conv
    c_in, h, w = in_shape
    k = pool.kernel
    if h % k or w % k:
        raise ValueError(f"avg pool kernel {k} does not divide {h}x{w}")
    weight_1x1, bias = _fold_conv_bn(conv, unit.bn, bits, b.dtype)
    weight = (
        np.tile(weight_1x1.astype(np.float64), (1, 1, k, k)) / (k * k)
    ).astype(b.dtype)
    out_h, out_w = h // k, w // k
    col_buf = b.buffer((c_in, k, k, out_h, out_w), role="scratch")
    out_shape = (conv.out_channels, out_h, out_w)
    out_buf = b.buffer(out_shape)
    b.emit(PlanOp(
        kind="conv", inputs=(in_buf,), output=out_buf,
        attrs={"stride": k, "padding": 0, "groups": 1, "kernel": k,
               "pad_buf": None, "col_buf": col_buf, "add_buf": None},
        weight=weight, bias=bias, act="relu6" if unit.act else None,
        scratch=(col_buf,), label=f"avgpool{k}+conv1x1",
    ))
    return out_buf, out_shape


def _lower_fc_unit(
    unit: _FCUnit,
    in_buf: int,
    in_shape: tuple[int, ...],
    bits: int | None,
    b: _PlanBuilder,
) -> tuple[int, tuple[int, ...]]:
    cur, shape = in_buf, in_shape
    if len(shape) == 3:
        if unit.flatten:
            flat = (shape[0] * shape[1] * shape[2],)
            cur = b.emit(PlanOp(
                kind="flatten", inputs=(cur,), output=b.buffer(flat),
                label="flatten",
            ))
            shape = flat
        else:
            pooled = (shape[0],)
            cur = b.emit(PlanOp(
                kind="gap", inputs=(cur,), output=b.buffer(pooled), label="gap",
            ))
            shape = pooled
    linear: Linear = unit.linear
    weight = _quantized_weight(linear.weight, bits).astype(b.dtype)
    bias = (
        linear.bias.data.astype(b.dtype) if linear.bias is not None else None
    )
    out_shape = (linear.out_features,)
    cur = b.emit(PlanOp(
        kind="linear", inputs=(cur,), output=b.buffer(out_shape),
        weight=weight, bias=bias, act="relu" if unit.act else None,
        label="linear",
    ))
    return cur, out_shape


def _lower_unit(
    unit, in_buf: int, in_shape: tuple[int, ...], bits: int | None,
    b: _PlanBuilder,
) -> tuple[int, tuple[int, ...]]:
    """Dispatch over the builder unit vocabulary; returns (buffer, shape)."""
    if isinstance(unit, _ConvUnit):
        return _lower_conv_unit(unit, in_buf, in_shape, bits, b)
    if isinstance(unit, _MBConvUnit):
        cur, shape = _lower_conv_unit(unit.expand, in_buf, in_shape, bits, b)
        cur, shape = _lower_conv_unit(unit.dw, cur, shape, bits, b)
        if unit.use_residual and b.fuse_residual:
            # Conv+add fusion: the projection conv accumulates the block
            # input into its own output pass (see conv2d_into's residual
            # argument) — one op and one buffer fewer per residual block,
            # and the add rides the GEMM output while it is still hot.
            return _lower_conv_unit(
                unit.project, cur, shape, bits, b, residual_in=in_buf
            )
        cur, shape = _lower_conv_unit(unit.project, cur, shape, bits, b)
        if unit.use_residual:
            cur = b.emit(PlanOp(
                kind="add", inputs=(cur, in_buf), output=b.buffer(shape),
                label="residual",
            ))
        return cur, shape
    if isinstance(unit, _SepConvUnit):
        cur, shape = _lower_conv_unit(unit.dw, in_buf, in_shape, bits, b)
        return _lower_conv_unit(unit.pw, cur, shape, bits, b)
    if isinstance(unit, _PoolUnit):
        return _lower_pool_unit(unit, in_buf, in_shape, b)
    if isinstance(unit, _BranchesUnit):
        outs: list[tuple[int, tuple[int, ...]]] = []
        for units in unit._branches:
            cur, shape = in_buf, in_shape
            for sub in units:
                cur, shape = _lower_unit(sub, cur, shape, bits, b)
            outs.append((cur, shape))
        shapes = [s for _, s in outs]
        if len({s[1:] for s in shapes}) != 1:
            raise ValueError(f"branches disagree on resolution: {shapes}")
        if unit.combine == "add":
            if len({s[0] for s in shapes}) != 1:
                raise ValueError(f"'add' branches disagree on channels: {shapes}")
            out_shape = shapes[0]
            out_buf = b.buffer(out_shape)
            b.emit(PlanOp(
                kind="add", inputs=tuple(buf for buf, _ in outs),
                output=out_buf, label="add",
            ))
            return out_buf, out_shape
        out_shape = (sum(s[0] for s in shapes),) + shapes[0][1:]
        out_buf = b.buffer(out_shape)
        b.emit(PlanOp(
            kind="concat", inputs=tuple(buf for buf, _ in outs),
            output=out_buf,
            attrs={"channels": tuple(s[0] for s in shapes)}, label="concat",
        ))
        return out_buf, out_shape
    if isinstance(unit, _FCUnit):
        return _lower_fc_unit(unit, in_buf, in_shape, bits, b)
    raise TypeError(
        f"compile_spec cannot lower unit type {type(unit).__name__}"
    )


def compile_spec(
    model: ArchSpec | BuiltNetwork,
    bits: int | None = None,
    seed: int | None = None,
    fuse_residual: bool = True,
    fuse_pool: bool = True,
) -> ExecutionPlan:
    """Lower a spec or built network into a static inference plan.

    ``bits`` mirrors ``BuiltNetwork.forward``: ``None`` uses the spec's
    annotated ``weight_bits`` (if any); 32+ is the float path.  Passing an
    :class:`ArchSpec` instantiates weights via
    :func:`~repro.nas.network.build_network` with ``seed``; passing a
    :class:`BuiltNetwork` compiles its *current* weights and BN running
    statistics, so the plan reproduces the network's eval-mode forward.
    ``fuse_residual`` (default on) lets each MBConv residual ride the
    projection conv's output pass instead of a separate add op — identical
    arithmetic order, one op and one activation buffer fewer per block.
    ``fuse_pool`` (default on) collapses every top-level
    ``avgpool(k) -> conv1x1`` pair into one kernel-``k`` stride-``k`` conv
    (the pooled mean is absorbed into the tiled weight) — same map up to
    float summation order, one op and the pooled buffer fewer.

    Returns:
        An :class:`ExecutionPlan` ready for
        :class:`repro.runtime.engine.Engine`.

    Raises:
        TypeError: For specs the network builder cannot instantiate
            (e.g. channel shuffles) or unknown model types.
    """
    if isinstance(model, BuiltNetwork):
        net = model
    elif isinstance(model, ArchSpec):
        if not model.buildable():
            raise TypeError(
                f"spec {model.name!r} contains blocks the runtime cannot "
                f"lower (channel shuffle)"
            )
        net = build_network(model, seed=seed)
    else:
        raise TypeError(
            f"compile_spec expects ArchSpec or BuiltNetwork, got "
            f"{type(model).__name__}"
        )
    spec = net.spec
    effective_bits = spec.weight_bits if bits is None else bits
    if not effective_bits or effective_bits >= 32:
        effective_bits = None  # the float path, matching fake_quantize
    builder = _PlanBuilder(
        get_default_dtype(), fuse_residual=fuse_residual, fuse_pool=fuse_pool
    )
    in_shape = (spec.input_channels, spec.input_size, spec.input_size)
    in_buf = builder.buffer(in_shape, role="input")
    cur, shape = in_buf, in_shape
    units = list(net.units)
    with no_grad():
        index = 0
        while index < len(units):
            unit = units[index]
            lookahead = units[index + 1] if index + 1 < len(units) else None
            if (builder.fuse_pool and isinstance(unit, _PoolUnit)
                    and lookahead is not None
                    and _poolable_into_conv(unit, lookahead)):
                cur, shape = _lower_avgpool_conv_fused(
                    unit, lookahead, cur, shape, effective_bits, builder
                )
                index += 2
                continue
            cur, shape = _lower_unit(unit, cur, shape, effective_bits, builder)
            index += 1
    return ExecutionPlan(
        name=spec.name,
        ops=builder.ops,
        buffers=builder.buffers,
        input_buffer=in_buf,
        output_buffer=cur,
        dtype=builder.dtype,
        bits=effective_bits,
        metadata={"blocks": len(spec.blocks)},
    )
