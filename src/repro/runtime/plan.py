"""Static execution plans — the compiled IR of the inference runtime.

An :class:`ExecutionPlan` is what :func:`repro.runtime.compile_spec` lowers a
network into: a topologically-ordered list of :class:`PlanOp` records over a
flat table of :class:`BufferSpec` slots.  Every tensor the plan touches —
activations, padded-input scratch, im2col column scratch — is a buffer with a
*per-sample* shape; the arena planner (:mod:`repro.runtime.arena`) later
assigns each buffer an offset in one preallocated arena, and the executor
(:mod:`repro.runtime.engine`) scales offsets linearly with the batch size.

Weights are baked into the ops at compile time: BatchNorm is folded into the
convolution weights/bias and fake-quantisation is applied once, so the plan
executes conv -> activation only (no normalisation, no quantisation, no
autograd at inference time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

#: Op kinds an :class:`ExecutionPlan` may contain, in the vocabulary the
#: executor dispatches on.
OP_KINDS = (
    "conv", "linear", "maxpool", "avgpool", "gap", "flatten", "add", "concat",
)

#: Fused activation tags (``None`` means linear output).
ACTIVATIONS = (None, "relu", "relu6")


@dataclass(frozen=True)
class BufferSpec:
    """One arena slot: a tensor with a fixed *per-sample* shape.

    ``role`` distinguishes the network input/output from ordinary
    activations and from op-local scratch (padded inputs, im2col columns) —
    scratch buffers are live only during the op that uses them, which is what
    lets the arena planner fold them into reused space.
    """

    id: int
    shape: tuple[int, ...]
    role: str = "activation"

    @property
    def elems(self) -> int:
        """Per-sample element count (batch axis excluded)."""
        return int(np.prod(self.shape)) if self.shape else 1


@dataclass
class PlanOp:
    """One executable step: read ``inputs``, write ``output``.

    ``weight``/``bias`` hold the baked (BN-folded, fake-quantised) arrays for
    conv/linear ops; ``attrs`` carries geometry (stride, padding, groups,
    kernel); ``scratch`` names the pad/column buffers this op may clobber.
    """

    kind: str
    inputs: tuple[int, ...]
    output: int
    attrs: dict[str, Any] = field(default_factory=dict)
    weight: np.ndarray | None = None
    bias: np.ndarray | None = None
    act: str | None = None
    scratch: tuple[int, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}; known: {OP_KINDS}")
        if self.act not in ACTIVATIONS:
            raise ValueError(f"unknown activation {self.act!r}")


@dataclass
class ExecutionPlan:
    """A compiled network: ordered ops over a flat buffer table.

    Produced by :func:`repro.runtime.compile_spec`; executed by
    :class:`repro.runtime.engine.Engine`.  Buffer shapes are per-sample — the
    executor prepends the batch axis at run time.
    """

    name: str
    ops: list[PlanOp]
    buffers: list[BufferSpec]
    input_buffer: int
    output_buffer: int
    dtype: np.dtype
    bits: int | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def buffer(self, buffer_id: int) -> BufferSpec:
        """Look up a buffer by id (ids are dense indices into the table)."""
        return self.buffers[buffer_id]

    @property
    def input_shape(self) -> tuple[int, ...]:
        """Per-sample input shape (C, H, W)."""
        return self.buffers[self.input_buffer].shape

    @property
    def output_shape(self) -> tuple[int, ...]:
        """Per-sample output shape (num_classes,)."""
        return self.buffers[self.output_buffer].shape

    def num_ops(self, kind: str | None = None) -> int:
        """Op count, optionally restricted to one kind."""
        if kind is None:
            return len(self.ops)
        return sum(1 for op in self.ops if op.kind == kind)

    def weight_bytes(self) -> int:
        """Total bytes of baked weight/bias arrays."""
        total = 0
        for op in self.ops:
            for arr in (op.weight, op.bias):
                if arr is not None:
                    total += arr.nbytes
        return total

    def buffer_elems(self) -> int:
        """Sum of per-sample elements over every buffer (no arena reuse)."""
        return sum(b.elems for b in self.buffers)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON summary of the plan (weights elided)."""
        kinds: dict[str, int] = {}
        for op in self.ops:
            kinds[op.kind] = kinds.get(op.kind, 0) + 1
        return {
            "name": self.name,
            "bits": self.bits,
            "dtype": np.dtype(self.dtype).name,
            "ops": len(self.ops),
            "op_kinds": kinds,
            "buffers": len(self.buffers),
            "buffer_elems": self.buffer_elems(),
            "weight_bytes": self.weight_bytes(),
            "input_shape": list(self.input_shape),
            "output_shape": list(self.output_shape),
        }
