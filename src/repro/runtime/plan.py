"""Static execution plans — the compiled IR of the inference runtime.

An :class:`ExecutionPlan` is what :func:`repro.runtime.compile_spec` lowers a
network into: a topologically-ordered list of :class:`PlanOp` records over a
flat table of :class:`BufferSpec` slots.  Every tensor the plan touches —
activations, padded-input scratch, im2col column scratch — is a buffer with a
*per-sample* shape; the arena planner (:mod:`repro.runtime.arena`) later
assigns each buffer an offset in one preallocated arena, and the executor
(:mod:`repro.runtime.engine`) scales offsets linearly with the batch size.

Weights are baked into the ops at compile time: BatchNorm is folded into the
convolution weights/bias and fake-quantisation is applied once, so the plan
executes conv -> activation only (no normalisation, no quantisation, no
autograd at inference time).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

#: Op kinds an :class:`ExecutionPlan` may contain, in the vocabulary the
#: executor dispatches on.
OP_KINDS = (
    "conv", "linear", "maxpool", "avgpool", "gap", "flatten", "add", "concat",
)

#: Fused activation tags (``None`` means linear output).
ACTIVATIONS = (None, "relu", "relu6")


def _attrs_to_json(attrs: dict[str, Any]) -> dict[str, Any]:
    """Op attrs are ints/None plus the concat ``channels`` tuple."""
    return {
        key: list(value) if isinstance(value, tuple) else value
        for key, value in attrs.items()
    }


def _attrs_from_json(attrs: dict[str, Any]) -> dict[str, Any]:
    """Inverse of :func:`_attrs_to_json` (lists come back as tuples)."""
    return {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in attrs.items()
    }


@dataclass(frozen=True)
class BufferSpec:
    """One arena slot: a tensor with a fixed *per-sample* shape.

    ``role`` distinguishes the network input/output from ordinary
    activations and from op-local scratch (padded inputs, im2col columns) —
    scratch buffers are live only during the op that uses them, which is what
    lets the arena planner fold them into reused space.
    """

    id: int
    shape: tuple[int, ...]
    role: str = "activation"

    @property
    def elems(self) -> int:
        """Per-sample element count (batch axis excluded)."""
        return int(np.prod(self.shape)) if self.shape else 1


@dataclass
class PlanOp:
    """One executable step: read ``inputs``, write ``output``.

    ``weight``/``bias`` hold the baked (BN-folded, fake-quantised) arrays for
    conv/linear ops; ``attrs`` carries geometry (stride, padding, groups,
    kernel); ``scratch`` names the pad/column buffers this op may clobber.
    """

    kind: str
    inputs: tuple[int, ...]
    output: int
    attrs: dict[str, Any] = field(default_factory=dict)
    weight: np.ndarray | None = None
    bias: np.ndarray | None = None
    act: str | None = None
    scratch: tuple[int, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}; known: {OP_KINDS}")
        if self.act not in ACTIVATIONS:
            raise ValueError(f"unknown activation {self.act!r}")


@dataclass
class ExecutionPlan:
    """A compiled network: ordered ops over a flat buffer table.

    Produced by :func:`repro.runtime.compile_spec`; executed by
    :class:`repro.runtime.engine.Engine`.  Buffer shapes are per-sample — the
    executor prepends the batch axis at run time.
    """

    name: str
    ops: list[PlanOp]
    buffers: list[BufferSpec]
    input_buffer: int
    output_buffer: int
    dtype: np.dtype
    bits: int | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def buffer(self, buffer_id: int) -> BufferSpec:
        """Look up a buffer by id (ids are dense indices into the table)."""
        return self.buffers[buffer_id]

    @property
    def input_shape(self) -> tuple[int, ...]:
        """Per-sample input shape (C, H, W)."""
        return self.buffers[self.input_buffer].shape

    @property
    def output_shape(self) -> tuple[int, ...]:
        """Per-sample output shape (num_classes,)."""
        return self.buffers[self.output_buffer].shape

    def num_ops(self, kind: str | None = None) -> int:
        """Op count, optionally restricted to one kind."""
        if kind is None:
            return len(self.ops)
        return sum(1 for op in self.ops if op.kind == kind)

    def weight_bytes(self) -> int:
        """Total bytes of baked weight/bias arrays."""
        total = 0
        for op in self.ops:
            for arr in (op.weight, op.bias):
                if arr is not None:
                    total += arr.nbytes
        return total

    def buffer_elems(self) -> int:
        """Sum of per-sample elements over every buffer (no arena reuse)."""
        return sum(b.elems for b in self.buffers)

    def save(self, path: str | Path) -> Path:
        """Serialise the plan to a ``.npz`` file for cold-start-free deploys.

        The structural header (op list, buffer table, geometry attrs) is
        stored as JSON; every op's baked weight/bias lands as its own array
        entry.  :meth:`load` reconstructs an equivalent plan without
        touching the network builder, the BN folding or the quantiser — the
        compile cost is paid once, at build time.

        Returns the path actually written: ``np.savez`` appends ``.npz``
        when missing, and the return value reflects that.
        """
        path = Path(path)
        if path.suffix != ".npz":
            # Mirror np.savez_compressed, which silently appends the
            # suffix — callers must get back the real filename.
            path = Path(str(path) + ".npz")
        header = {
            "version": 1,
            "name": self.name,
            "dtype": np.dtype(self.dtype).name,
            "bits": self.bits,
            "input_buffer": self.input_buffer,
            "output_buffer": self.output_buffer,
            "metadata": self.metadata,
            "buffers": [
                {"id": b.id, "shape": list(b.shape), "role": b.role}
                for b in self.buffers
            ],
            "ops": [
                {
                    "kind": op.kind,
                    "inputs": list(op.inputs),
                    "output": op.output,
                    "attrs": _attrs_to_json(op.attrs),
                    "act": op.act,
                    "scratch": list(op.scratch),
                    "label": op.label,
                    "weight": op.weight is not None,
                    "bias": op.bias is not None,
                }
                for op in self.ops
            ],
        }
        arrays: dict[str, np.ndarray] = {
            "header": np.frombuffer(
                json.dumps(header).encode("utf-8"), dtype=np.uint8
            ).copy()
        }
        for index, op in enumerate(self.ops):
            if op.weight is not None:
                arrays[f"op{index}_weight"] = op.weight
            if op.bias is not None:
                arrays[f"op{index}_bias"] = op.bias
        np.savez_compressed(path, **arrays)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ExecutionPlan":
        """Reconstruct a plan written by :meth:`save`.

        Raises:
            ValueError: If the file lacks the plan header (not a saved plan)
                or carries an unknown format version.
        """
        with np.load(Path(path)) as archive:
            if "header" not in archive:
                raise ValueError(f"{path} is not a saved ExecutionPlan")
            header = json.loads(bytes(archive["header"]).decode("utf-8"))
            if header.get("version") != 1:
                raise ValueError(
                    f"unsupported plan format version {header.get('version')!r}"
                )
            ops = []
            for index, rec in enumerate(header["ops"]):
                ops.append(PlanOp(
                    kind=rec["kind"],
                    inputs=tuple(rec["inputs"]),
                    output=rec["output"],
                    attrs=_attrs_from_json(rec["attrs"]),
                    weight=(
                        archive[f"op{index}_weight"] if rec["weight"] else None
                    ),
                    bias=archive[f"op{index}_bias"] if rec["bias"] else None,
                    act=rec["act"],
                    scratch=tuple(rec["scratch"]),
                    label=rec["label"],
                ))
        return cls(
            name=header["name"],
            ops=ops,
            buffers=[
                BufferSpec(id=b["id"], shape=tuple(b["shape"]), role=b["role"])
                for b in header["buffers"]
            ],
            input_buffer=header["input_buffer"],
            output_buffer=header["output_buffer"],
            dtype=np.dtype(header["dtype"]),
            bits=header["bits"],
            metadata=header["metadata"],
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON summary of the plan (weights elided)."""
        kinds: dict[str, int] = {}
        for op in self.ops:
            kinds[op.kind] = kinds.get(op.kind, 0) + 1
        return {
            "name": self.name,
            "bits": self.bits,
            "dtype": np.dtype(self.dtype).name,
            "ops": len(self.ops),
            "op_kinds": kinds,
            "buffers": len(self.buffers),
            "buffer_elems": self.buffer_elems(),
            "weight_bytes": self.weight_bytes(),
            "input_shape": list(self.input_shape),
            "output_shape": list(self.output_shape),
        }
