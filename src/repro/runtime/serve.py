"""Micro-batching serving frontend for compiled engines.

Requests are single samples; a :class:`BatchingQueue` coalesces whatever is
pending into one batch (up to ``max_batch`` samples, waiting at most
``max_wait_ms`` for stragglers after the first arrival), and a worker thread
runs the whole batch through one :class:`~repro.runtime.engine.Engine` call.
This is the standard throughput/latency trade of inference serving: batch-1
latency for a lone request, amortised GEMMs under load.

Per-request latency (enqueue -> result) is recorded so the server can report
measured latency next to the analytic device-model prediction
(:func:`repro.hw.report.predicted_vs_measured`).
"""

from __future__ import annotations

import queue
import threading
import time

import numpy as np

from repro.runtime.engine import Engine

#: Sentinel object that tells the worker loop to drain and stop.
_SHUTDOWN = object()


def latency_summary(samples_ms) -> dict[str, float]:
    """Mean/p50/p95/max summary of a latency sample list (milliseconds).

    The one latency-summary shape used by :meth:`InferenceServer.stats` and
    the ``repro infer``/``repro serve`` CLI payloads.
    """
    arr = np.asarray(list(samples_ms), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("latency_summary needs at least one sample")
    return {
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
    }


class _PendingRequest:
    """One in-flight sample plus its completion event."""

    __slots__ = (
        "x", "event", "output", "error", "enqueued_at", "batch_size",
        "latency_ms_",
    )

    def __init__(self, x: np.ndarray) -> None:
        self.x = x
        self.event = threading.Event()
        self.output: np.ndarray | None = None
        self.error: BaseException | None = None
        self.enqueued_at = time.perf_counter()
        self.batch_size = 0
        self.latency_ms_ = 0.0


class InferenceHandle:
    """Caller-side future for a submitted request."""

    def __init__(self, request: _PendingRequest) -> None:
        self._request = request

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block until the request completes; returns the logits.

        Raises ``TimeoutError`` if the server does not answer in time and
        re-raises any engine-side exception.
        """
        if not self._request.event.wait(timeout):
            raise TimeoutError("inference request timed out")
        if self._request.error is not None:
            raise self._request.error
        assert self._request.output is not None
        return self._request.output

    @property
    def latency_ms(self) -> float:
        """Enqueue-to-completion latency (valid once the result is set)."""
        return getattr(self._request, "latency_ms_", 0.0)

    @property
    def batch_size(self) -> int:
        """Size of the coalesced batch this request rode in."""
        return self._request.batch_size


class BatchingQueue:
    """Coalesces pending items into micro-batches.

    ``get_batch`` blocks for the first item, then keeps pulling until either
    ``max_batch`` items are collected or ``max_wait_ms`` elapses — so a lone
    request pays at most ``max_wait_ms`` extra latency while a burst is served
    in one batch.  An empty list signals shutdown.
    """

    def __init__(self, max_batch: int = 8, max_wait_ms: float = 2.0) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        self._closing = False

    def put(self, item) -> None:
        """Enqueue one item for the next batch.

        Raises ``RuntimeError`` once :meth:`close` has been called — a late
        item would sit behind the shutdown sentinel and never be served.
        """
        if self._closing:
            raise RuntimeError("BatchingQueue is closed")
        self._queue.put(item)

    def close(self) -> None:
        """Signal shutdown; ``get_batch`` returns ``[]`` once drained."""
        self._closing = True
        self._queue.put(_SHUTDOWN)

    def drain(self) -> list:
        """Pop every remaining item (sentinels excluded) without blocking.

        A ``put`` that raced :meth:`close` can land *behind* the shutdown
        sentinel, where no ``get_batch`` will ever reach it.  The owner
        calls ``drain`` after the worker has exited and fails the leftovers
        explicitly, so no waiter hangs on a completed shutdown.
        """
        leftovers = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return leftovers
            if item is not _SHUTDOWN:
                leftovers.append(item)

    def get_batch(self) -> list:
        """Block for the next micro-batch (``[]`` means shut down)."""
        if self._closed:
            return []
        first = self._queue.get()
        if first is _SHUTDOWN:
            self._closed = True
            return []
        batch = [first]
        deadline = time.perf_counter() + self.max_wait_ms / 1e3
        while len(batch) < self.max_batch:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                self._closed = True
                break
            batch.append(item)
        return batch


class InferenceServer:
    """Threaded micro-batching server over one compiled engine.

    Usable as a context manager::

        with InferenceServer(engine, max_batch=8) as server:
            logits = server.infer(x)

    ``submit`` returns an :class:`InferenceHandle` immediately;
    ``stats()`` summarises per-request latency and batch coalescing.
    """

    def __init__(
        self,
        engine: Engine,
        max_batch: int = 8,
        max_wait_ms: float = 2.0,
    ) -> None:
        self.engine = engine
        self.queue = BatchingQueue(max_batch=max_batch, max_wait_ms=max_wait_ms)
        self._lock = threading.Lock()
        self._latencies_ms: list[float] = []
        self._batch_sizes: list[int] = []
        self._worker = threading.Thread(
            target=self._loop, name="repro-infer", daemon=True
        )
        self._worker.start()

    # -- request path -------------------------------------------------------
    def submit(self, x: np.ndarray) -> InferenceHandle:
        """Enqueue one sample ``(C, H, W)``; returns a handle immediately."""
        x = np.asarray(x, dtype=self.engine.plan.dtype)
        if x.shape != self.engine.plan.input_shape:
            raise ValueError(
                f"request shape {x.shape} does not match plan input "
                f"{self.engine.plan.input_shape}"
            )
        request = _PendingRequest(x)
        self.queue.put(request)
        return InferenceHandle(request)

    def infer(self, x: np.ndarray, timeout: float | None = 30.0) -> np.ndarray:
        """Submit one sample and block for its logits."""
        return self.submit(x).result(timeout)

    # -- worker -------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            batch = self.queue.get_batch()
            if not batch:
                return
            xs = np.stack([request.x for request in batch])
            try:
                outputs = self.engine.run(xs)
            except BaseException as err:  # propagate to every waiter
                for request in batch:
                    request.error = err
                    request.event.set()
                continue
            done = time.perf_counter()
            with self._lock:
                self._batch_sizes.append(len(batch))
                for request, output in zip(batch, outputs):
                    latency = (done - request.enqueued_at) * 1e3
                    self._latencies_ms.append(latency)
                    request.output = np.array(output)
                    request.batch_size = len(batch)
                    request.latency_ms_ = latency
                    request.event.set()

    # -- reporting / lifecycle ----------------------------------------------
    def stats(self) -> dict:
        """Per-request latency and coalescing summary (JSON-serialisable)."""
        with self._lock:
            latencies = np.asarray(self._latencies_ms, dtype=np.float64)
            batches = list(self._batch_sizes)
        if latencies.size == 0:
            return {"requests": 0, "batches": 0}
        return {
            "requests": int(latencies.size),
            "batches": len(batches),
            "mean_batch": float(np.mean(batches)),
            "max_batch": int(np.max(batches)),
            "latency_ms": latency_summary(latencies),
            "engine": self.engine.stats(),
        }

    def close(self, timeout: float = 10.0) -> None:
        """Drain the queue and stop the worker thread.

        Requests that raced :meth:`close` past the shutdown sentinel are
        failed with ``RuntimeError`` instead of leaving their futures
        hanging.
        """
        self.queue.close()
        self._worker.join(timeout)
        for request in self.queue.drain():
            request.error = RuntimeError(
                "InferenceServer closed before serving this request"
            )
            request.event.set()

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
