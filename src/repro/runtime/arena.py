"""Arena memory planner: liveness analysis + greedy best-fit offset packing.

Instead of allocating every intermediate tensor per inference call (the
``BuiltNetwork.forward`` behaviour the ROADMAP flags as allocation-bound),
the runtime preallocates **one** arena and assigns every plan buffer an
offset inside it.  Two buffers may share space whenever their live ranges do
not overlap — the classic static memory planning problem of embedded
inference runtimes (TFLite's greedy-by-size planner, TVM's storage rewrite).

Liveness is derived from the plan's op order: a buffer is live from the op
that defines it (the network input from op 0) through the last op that reads
it.  Scratch buffers (padded inputs, im2col columns) are live only during
their single op, so the same scratch space is reused by every convolution in
the network.  Placement is greedy best-fit by decreasing size: each buffer
takes the lowest offset that fits in a gap between already-placed,
live-range-overlapping buffers.

All offsets and sizes are in *per-sample elements*; because every buffer
scales linearly with the batch, a valid per-sample layout scaled by ``N`` is
a valid batch-``N`` layout, and the executor multiplies offsets by the batch
size at run time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.plan import ExecutionPlan


@dataclass(frozen=True)
class LiveRange:
    """Inclusive op-index interval ``[start, end]`` during which a buffer
    holds data that must not be clobbered."""

    start: int
    end: int

    def overlaps(self, other: "LiveRange") -> bool:
        """Whether the two intervals intersect."""
        return not (self.end < other.start or other.end < self.start)


def live_ranges(plan: ExecutionPlan) -> dict[int, LiveRange]:
    """Per-buffer live range from the plan's op order.

    A buffer is *defined* at the op that outputs it (the plan input at op 0)
    and *dies* after its last appearance as an input, scratch or output.  The
    plan output is kept live through the final op so the executor can copy it
    out before the arena is reused.
    """
    first: dict[int, int] = {plan.input_buffer: 0}
    last: dict[int, int] = {plan.input_buffer: 0}
    for index, op in enumerate(plan.ops):
        for buf in (*op.inputs, *op.scratch, op.output):
            first.setdefault(buf, index)
            last[buf] = index
    last[plan.output_buffer] = len(plan.ops) - 1
    return {buf: LiveRange(first[buf], last[buf]) for buf in first}


@dataclass
class ArenaLayout:
    """Offsets (per-sample elements) assigned to every plan buffer.

    ``arena_elems`` is the arena's total per-sample size; ``peak_elems`` is
    the lower bound — the maximum, over op indices, of the summed sizes of
    simultaneously-live buffers; ``total_elems`` is what per-op allocation
    would cost (the sum over *all* buffers, no reuse).
    """

    offsets: dict[int, int]
    arena_elems: int
    peak_elems: int
    total_elems: int
    ranges: dict[int, LiveRange]

    @property
    def reuse_factor(self) -> float:
        """How much memory reuse saves: no-reuse total / arena size."""
        return self.total_elems / self.arena_elems if self.arena_elems else 1.0

    @property
    def fragmentation(self) -> float:
        """Fractional overhead above the peak-live lower bound.

        ``peak_elems`` is the max summed size of simultaneously-live buffers —
        a lower bound no allocator can beat but (this being strip packing) one
        that is not always *achievable*; greedy best-fit lands within a
        fraction of a percent on the model zoo.
        """
        if not self.peak_elems:
            return 0.0
        return self.arena_elems / self.peak_elems - 1.0

    def validate(self, plan: ExecutionPlan) -> None:
        """Check the planner invariants; raises ``RuntimeError`` on violation.

        1. Every buffer has an in-bounds slot of its full size.
        2. No two buffers whose live ranges overlap share any element.
        3. The arena never exceeds the no-reuse total.
        """
        sized = [(b.id, self.offsets[b.id], b.elems) for b in plan.buffers]
        for buf_id, offset, elems in sized:
            if offset < 0 or offset + elems > self.arena_elems:
                raise RuntimeError(
                    f"buffer {buf_id} [{offset}, {offset + elems}) escapes the "
                    f"arena of {self.arena_elems} elements"
                )
        for i, (id_a, off_a, n_a) in enumerate(sized):
            for id_b, off_b, n_b in sized[i + 1:]:
                if not self.ranges[id_a].overlaps(self.ranges[id_b]):
                    continue
                if off_a < off_b + n_b and off_b < off_a + n_a:
                    raise RuntimeError(
                        f"live buffers {id_a} and {id_b} overlap in the arena"
                    )
        if self.arena_elems > self.total_elems:
            raise RuntimeError(
                f"arena ({self.arena_elems}) exceeds the no-reuse total "
                f"({self.total_elems})"
            )


def plan_arena(plan: ExecutionPlan) -> ArenaLayout:
    """Assign every buffer an arena offset with greedy best-fit packing.

    Buffers are placed in decreasing size order; each takes the lowest
    offset at which it fits without overlapping any already-placed buffer
    whose live range intersects its own (gaps between conflicting buffers
    are considered, so freed regions are reused).
    """
    ranges = live_ranges(plan)
    peak = _peak_live(plan, ranges)
    total = plan.buffer_elems()
    order = sorted(plan.buffers, key=lambda b: (-b.elems, b.id))
    placed: list[tuple[int, int, int]] = []  # (offset, end, buffer_id)
    offsets: dict[int, int] = {}
    arena_end = 0
    for buf in order:
        conflicts = sorted(
            (off, end) for off, end, other in placed
            if ranges[buf.id].overlaps(ranges[other])
        )
        cursor = 0
        for off, end in conflicts:
            if cursor + buf.elems <= off:
                break
            cursor = max(cursor, end)
        offsets[buf.id] = cursor
        placed.append((cursor, cursor + buf.elems, buf.id))
        arena_end = max(arena_end, cursor + buf.elems)
    return ArenaLayout(
        offsets=offsets, arena_elems=arena_end, peak_elems=peak,
        total_elems=total, ranges=ranges,
    )


def _peak_live(plan: ExecutionPlan, ranges: dict[int, LiveRange]) -> int:
    """Maximum over op indices of the summed sizes of live buffers."""
    peak = 0
    for index in range(len(plan.ops)):
        live = sum(
            b.elems for b in plan.buffers
            if ranges[b.id].start <= index <= ranges[b.id].end
        )
        peak = max(peak, live)
    return peak
