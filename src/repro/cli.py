"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tables``   regenerate Table 1/2/3 or Figure 4 (``--which all`` for every
             registered experiment).
``anchors``  verify the calibration anchors against the paper's numbers.
``zoo``      list every model in the zoo with MACs/params.
``explore``  latency/throughput estimates for one zoo model across every
             registered hardware target.
``search``   run a reduced-scale co-search and print the derived network
             plus its convergence trajectory.  ``--seeds``/``--workers``
             batch several seeds in parallel (one record per seed plus an
             aggregate); ``--checkpoint-dir``/``--resume`` snapshot the
             search every N epochs and restart it bit-identically.
``bench``    run the numerics benchmark suite headlessly and write
             ``BENCH_numerics.json`` (conv fwd+bwd, supernet step,
             end-to-end search — each against the pre-refactor baseline).

``tables``, ``zoo``, ``explore`` and ``search`` accept ``--format json`` for
machine-readable output (the ``to_dict()`` forms from :mod:`repro.api`).
Target and device names come from :mod:`repro.hw.registry`; the CLI holds no
hardware dispatch of its own.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.baselines.model_zoo import MODEL_ZOO
from repro.core.results import MULTI_SEARCH_OBJECTIVES
from repro.eval.experiments import EXPERIMENTS, experiment_dict, run_experiment
from repro.hw.registry import TARGETS, device_names, target_names
from repro.utils.serialization import ReproJSONEncoder


def _emit_json(payload) -> None:
    print(json.dumps(payload, indent=2, cls=ReproJSONEncoder))


def _cmd_tables(args: argparse.Namespace) -> int:
    names = sorted(EXPERIMENTS) if args.which == "all" else [args.which]
    if args.format == "json":
        _emit_json({name: experiment_dict(name) for name in names})
        return 0
    for name in names:
        print(run_experiment(name))
        print()
    return 0


def _cmd_anchors(args: argparse.Namespace) -> int:
    from repro.hw.calibration import verify_anchors

    failures = 0
    for key, (measured, paper, ok) in verify_anchors().items():
        status = "OK " if ok else "FAIL"
        print(f"[{status}] {key:30s} measured={measured:8.2f} paper={paper:8.2f}")
        failures += not ok
    return 1 if failures else 0


def _cmd_zoo(args: argparse.Namespace) -> int:
    from repro import api

    summaries = api.zoo()
    if args.format == "json":
        _emit_json({"count": len(summaries), "models": summaries})
        return 0
    print(f"{'model':18s} {'blocks':>7s} {'layers':>7s} {'MACs':>9s} {'params':>9s}")
    for s in summaries:
        print(f"{s['name']:18s} {s['blocks']:7d} {s['layers']:7d} "
              f"{s['macs'] / 1e9:8.2f}G {s['params'] / 1e6:8.2f}M")
    return 0


_UNITS = {"latency_ms": "ms", "throughput_fps": "fps"}


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro import api

    if args.plan:
        plan = api.deploy_plan(
            args.model, args.plan, device=args.device, bits=args.bits
        )
        if args.format == "json":
            _emit_json(plan.to_dict())
            return 0
        if plan.note:
            print(f"note: {plan.note}")
        print(plan.text)
        return 0

    targets = list(args.targets) if args.targets else target_names()
    devices = {}
    if args.device:
        # Explicitly requested targets must accept the device (resolve_device
        # raises otherwise); with the default "all targets" sweep the override
        # applies only where the device is registered.
        from repro.hw.registry import get_target

        devices = {
            t: args.device for t in targets
            if args.targets or args.device in get_target(t).devices
        }
    report = api.estimate(
        models=[args.model],
        targets=targets,
        bits=[args.bits],
        devices=devices,
    )
    if args.format == "json":
        _emit_json(report.to_dict())
        return 0

    record0 = report.records[0]
    print(f"{args.model}: {record0.macs / 1e9:.2f} GMACs, "
          f"{record0.params / 1e6:.2f}M params\n")
    print(f"{'target':16s} {'device':16s} {'bits':>4s} {'metric':>10s} "
          f"{'value':>10s}")
    notes = []
    details = []
    for r in report:
        metric = r.metric.split("_")[0]
        unit = _UNITS.get(r.metric, "")
        value = "NA" if not r.supported else f"{r.value:.2f} {unit}"
        print(f"{r.target:16s} {r.device:16s} {r.bits:4d} {metric:>10s} "
              f"{value:>10s}")
        if r.note:
            notes.append(f"  {r.target}: {r.note}")
        if r.extras:
            pairs = ", ".join(f"{k}={v:.1f}" for k, v in r.extras.items())
            details.append(f"  {r.target}: {pairs}")
    if details:
        print("\ndetails:")
        print("\n".join(details))
    if notes:
        print("\nnotes:")
        print("\n".join(notes))
    return 0


def _resolve_seeds(args: argparse.Namespace) -> list[int]:
    """``--seeds N`` -> N seeds starting at ``--seed``; ``--seeds a b c`` -> exact list."""
    if len(args.seeds) == 1:
        count = args.seeds[0]
        if count < 1:
            raise ValueError(f"--seeds count must be >= 1, got {count}")
        return [args.seed + i for i in range(count)]
    return list(args.seeds)


def _cmd_search(args: argparse.Namespace) -> int:
    from repro import api
    from repro.eval.figures import render_architecture
    from repro.eval.trajectory import render_trajectory

    shared = dict(
        target=args.target,
        device=args.device,
        epochs=args.epochs,
        blocks=args.blocks,
        batch_size=12,
        resource_fraction=args.resource_fraction,
        retrain_epochs=10 if args.retrain else 0,
        name=f"cli-{args.target}",
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )

    if args.seeds:
        multi = api.search_many(
            _resolve_seeds(args),
            workers=args.workers,
            objective=args.objective,
            checkpoint_dir=args.checkpoint_dir,
            **shared,
        )
        if args.format == "json":
            _emit_json(multi.to_dict())
            return 0
        values = multi.objective_values()
        print(f"{'seed':>6s} {'spec':24s} {'converged':>9s} "
              f"{multi.objective:>14s}")
        for seed, run, value in zip(multi.seeds, multi.runs, values):
            marker = " <- best" if run is multi.best else ""
            print(f"{seed:6d} {run.spec_name:24s} {str(run.converged):>9s} "
                  f"{value:14.4f}{marker}")
        print(f"\nbest seed {multi.best_seed} "
              f"({multi.workers} worker(s), {multi.wall_seconds:.1f}s)\n")
        print(render_architecture(multi.best.result.spec))
        return 0

    request = api.SearchRequest(
        seed=args.seed, checkpoint_dir=args.checkpoint_dir, **shared,
    )
    report = api.search(request)
    if args.format == "json":
        _emit_json(report.to_dict())
        return 0
    if report.resumed_from:
        print(f"resumed from: {report.resumed_from}\n")
    print(render_architecture(report.result.spec))
    print()
    print(render_trajectory(report.result.history))
    print(f"\nconverged: {report.converged}  "
          f"(train-loss drop {report.train_loss_drop:.3f}, "
          f"theta perplexity {report.final_theta_perplexity:.2f})")
    if report.retrain is not None:
        print(f"retrained top-1 error: {report.retrain.top1_error:.1f}%")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import bench

    report = bench.run_benchmarks(quick=args.quick)
    path = bench.write_report(report, args.output)
    if args.format == "json":
        _emit_json(report)
    else:
        print(bench.render_report(report))
        print(f"\nwrote {path}")
    return 0


def _add_format(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (json is machine-readable)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser("tables", help="regenerate paper tables/figures")
    p_tables.add_argument("--which", default="all",
                          choices=["all", *sorted(EXPERIMENTS)])
    _add_format(p_tables)
    p_tables.set_defaults(fn=_cmd_tables)

    p_anchors = sub.add_parser("anchors", help="verify calibration anchors")
    p_anchors.set_defaults(fn=_cmd_anchors)

    p_zoo = sub.add_parser("zoo", help="list model-zoo networks")
    _add_format(p_zoo)
    p_zoo.set_defaults(fn=_cmd_zoo)

    plannable = [name for name, spec in TARGETS.items()
                 if spec.plan_flow is not None]
    p_explore = sub.add_parser(
        "explore", help="device estimates for one model across targets"
    )
    p_explore.add_argument("--model", required=True, choices=sorted(MODEL_ZOO))
    p_explore.add_argument("--bits", type=int, default=32,
                           help="requested weight precision; clamped to each "
                                "target's supported menu with a note")
    p_explore.add_argument("--targets", nargs="+", choices=target_names(),
                           help="restrict to these targets (default: all)")
    p_explore.add_argument("--device", choices=device_names(),
                           help="override the target's default device")
    p_explore.add_argument("--plan", choices=plannable,
                           help="print the per-layer deployment plan for "
                                "this target instead")
    _add_format(p_explore)
    p_explore.set_defaults(fn=_cmd_explore)

    p_search = sub.add_parser("search", help="run a reduced-scale co-search")
    p_search.add_argument("--target", default="gpu", choices=target_names())
    p_search.add_argument("--device", choices=device_names(),
                          help="override the target's default device")
    p_search.add_argument("--epochs", type=int, default=6)
    p_search.add_argument("--blocks", type=int, default=3)
    p_search.add_argument("--seed", type=int, default=0)
    p_search.add_argument("--resource-fraction", type=float, default=None,
                          help="fraction of device resources as RES_ub "
                               "(default: the target's registered default)")
    p_search.add_argument("--retrain", action="store_true")
    p_search.add_argument("--seeds", type=int, nargs="+", default=None,
                          metavar="N|SEED",
                          help="batched multi-seed search: one value N runs "
                               "N seeds starting at --seed; several values "
                               "are used as the exact seed list")
    p_search.add_argument("--workers", type=int, default=1,
                          help="worker processes for --seeds (rankings are "
                               "identical for any worker count)")
    p_search.add_argument("--objective", default="total_loss",
                          choices=MULTI_SEARCH_OBJECTIVES,
                          help="final-epoch metric that picks the best seed")
    p_search.add_argument("--checkpoint-dir", default=None,
                          help="snapshot searcher state here every "
                               "--checkpoint-every epochs (per-seed subdirs "
                               "with --seeds)")
    p_search.add_argument("--checkpoint-every", type=int, default=1,
                          help="checkpoint period in epochs")
    p_search.add_argument("--resume", action="store_true",
                          help="restart from the newest checkpoint in "
                               "--checkpoint-dir (bit-identical to an "
                               "uninterrupted run)")
    _add_format(p_search)
    p_search.set_defaults(fn=_cmd_search)

    p_bench = sub.add_parser(
        "bench", help="run the numerics benchmark suite headlessly"
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="fewer repeats and a smaller search "
                              "(CI smoke mode)")
    p_bench.add_argument("--output", default="BENCH_numerics.json",
                         help="where to write the JSON report")
    _add_format(p_bench)
    p_bench.set_defaults(fn=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ValueError as err:
        # Registry/facade lookup errors (unknown target/device/model or an
        # incompatible combination) are user input errors, not crashes.
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
