"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tables``   regenerate Table 1/2/3 or Figure 4 (``--which all`` for every
             registered experiment).
``anchors``  verify the calibration anchors against the paper's numbers.
``zoo``      list every model in the zoo with MACs/params.
``explore``  latency/throughput estimates for one zoo model across devices.
``search``   run a reduced-scale co-search and print the derived network
             plus its convergence trajectory.
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines.model_zoo import MODEL_ZOO, get_model
from repro.eval.experiments import EXPERIMENTS, run_experiment


def _cmd_tables(args: argparse.Namespace) -> int:
    names = sorted(EXPERIMENTS) if args.which == "all" else [args.which]
    for name in names:
        print(run_experiment(name))
        print()
    return 0


def _cmd_anchors(args: argparse.Namespace) -> int:
    from repro.hw.calibration import verify_anchors

    failures = 0
    for key, (measured, paper, ok) in verify_anchors().items():
        status = "OK " if ok else "FAIL"
        print(f"[{status}] {key:30s} measured={measured:8.2f} paper={paper:8.2f}")
        failures += not ok
    return 1 if failures else 0


def _cmd_zoo(args: argparse.Namespace) -> int:
    print(f"{'model':18s} {'blocks':>7s} {'layers':>7s} {'MACs':>9s} {'params':>9s}")
    for name in sorted(MODEL_ZOO):
        s = get_model(name).summary()
        print(f"{name:18s} {s['blocks']:7d} {s['layers']:7d} "
              f"{s['macs'] / 1e9:8.2f}G {s['params'] / 1e6:8.2f}M")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.hw.analytic import (
        UnsupportedNetworkError,
        fpga_pipelined_report,
        fpga_recursive_latency_ms,
        gpu_latency_ms,
    )
    from repro.hw.device import GTX_1080TI, TITAN_RTX, ZC706, ZCU102
    from repro.hw.energy import gpu_energy_mj

    spec = get_model(args.model)
    bits = args.bits
    fpga_bits = min(bits, 16)
    if args.plan:
        from repro.hw.report import deployment_plan

        device = TITAN_RTX if args.plan == "gpu" else (
            ZCU102 if args.plan == "recursive" else ZC706
        )
        plan_bits = bits if args.plan == "gpu" else fpga_bits
        print(deployment_plan(spec, args.plan, device, plan_bits))
        return 0
    print(spec.describe())
    print(f"\nGPU latency (Titan RTX, {bits}-bit):  "
          f"{gpu_latency_ms(spec, TITAN_RTX, bits):8.2f} ms")
    print(f"GPU latency (1080 Ti, {bits}-bit):    "
          f"{gpu_latency_ms(spec, GTX_1080TI, bits):8.2f} ms")
    print(f"GPU energy  (Titan RTX, {bits}-bit):  "
          f"{gpu_energy_mj(spec, TITAN_RTX, bits):8.1f} mJ/inference")
    try:
        print(f"FPGA latency (ZCU102 recursive):   "
              f"{fpga_recursive_latency_ms(spec, ZCU102, fpga_bits):8.2f} ms")
    except UnsupportedNetworkError:
        print("FPGA latency (ZCU102 recursive):         NA (unsupported ops)")
    report = fpga_pipelined_report(spec, ZC706, fpga_bits)
    print(f"FPGA throughput (ZC706 pipelined): {report.fps:8.1f} fps "
          f"(bottleneck {report.bottleneck_kind}{report.bottleneck_kernel})")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.core.config import EDDConfig
    from repro.core.cosearch import EDDSearcher
    from repro.core.trainer import train_from_spec
    from repro.data.synthetic import SyntheticTaskConfig, make_synthetic_task
    from repro.eval.figures import render_architecture
    from repro.eval.trajectory import render_trajectory, summarize
    from repro.nas.space import SearchSpaceConfig

    space = SearchSpaceConfig.reduced(
        num_blocks=args.blocks, num_classes=6, input_size=12
    )
    splits = make_synthetic_task(
        SyntheticTaskConfig(num_classes=6, image_size=12, train_per_class=16,
                            val_per_class=8, test_per_class=8, seed=args.seed)
    )
    config = EDDConfig(target=args.target, epochs=args.epochs, batch_size=12,
                       seed=args.seed, arch_start_epoch=1,
                       resource_fraction=args.resource_fraction)
    searcher = EDDSearcher(space, splits, config)
    result = searcher.search(name=f"cli-{args.target}")
    print(render_architecture(result.spec))
    print()
    print(render_trajectory(result.history))
    summary = summarize(result.history)
    print(f"\nconverged: {summary.converged()}  "
          f"(train-loss drop {summary.train_loss_drop:.3f}, "
          f"theta perplexity {summary.final_theta_perplexity:.2f})")
    if args.retrain:
        trained = train_from_spec(result.spec, splits, epochs=10, batch_size=12)
        print(f"retrained top-1 error: {trained.top1_error:.1f}%")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser("tables", help="regenerate paper tables/figures")
    p_tables.add_argument("--which", default="all",
                          choices=["all", *sorted(EXPERIMENTS)])
    p_tables.set_defaults(fn=_cmd_tables)

    p_anchors = sub.add_parser("anchors", help="verify calibration anchors")
    p_anchors.set_defaults(fn=_cmd_anchors)

    p_zoo = sub.add_parser("zoo", help="list model-zoo networks")
    p_zoo.set_defaults(fn=_cmd_zoo)

    p_explore = sub.add_parser("explore", help="device estimates for one model")
    p_explore.add_argument("--model", required=True, choices=sorted(MODEL_ZOO))
    p_explore.add_argument("--bits", type=int, default=32, choices=(8, 16, 32))
    p_explore.add_argument("--plan", choices=("gpu", "recursive", "pipelined"),
                           help="print the per-layer deployment plan instead")
    p_explore.set_defaults(fn=_cmd_explore)

    p_search = sub.add_parser("search", help="run a reduced-scale co-search")
    p_search.add_argument("--target", default="gpu",
                          choices=["gpu", "fpga_recursive", "fpga_pipelined", "accel"])
    p_search.add_argument("--epochs", type=int, default=6)
    p_search.add_argument("--blocks", type=int, default=3)
    p_search.add_argument("--seed", type=int, default=0)
    p_search.add_argument("--resource-fraction", type=float, default=0.05)
    p_search.add_argument("--retrain", action="store_true")
    p_search.set_defaults(fn=_cmd_search)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
