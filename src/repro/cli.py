"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tables``   regenerate Table 1/2/3 or Figure 4 (``--which all`` for every
             registered experiment).
``anchors``  verify the calibration anchors against the paper's numbers.
``zoo``      list every model in the zoo with MACs/params.
``explore``  latency/throughput estimates for one zoo model across every
             registered hardware target.
``search``   run a reduced-scale co-search and print the derived network
             plus its convergence trajectory.  ``--seeds``/``--workers``
             batch several seeds in parallel (one record per seed plus an
             aggregate); ``--checkpoint-dir``/``--resume`` snapshot the
             search every N epochs and restart it bit-identically.
``bench``    run a benchmark suite headlessly: ``--suite numerics`` writes
             ``BENCH_numerics.json`` (conv fwd+bwd, supernet step,
             end-to-end search vs the pre-refactor baseline);
             ``--suite runtime`` writes ``BENCH_runtime.json``
             (``Engine.run`` vs ``BuiltNetwork.forward`` across the zoo);
             ``--suite serving`` writes ``BENCH_serving.json`` (traffic
             replay against the fleet: throughput and tail latency vs
             worker count); ``--suite search`` writes ``BENCH_search.json``
             (batched soft-mode supernet evaluation vs the serial
             per-candidate oracle, plus float64 parity).
``compile``  lower a model into a static execution plan and save it to disk
             (``.npz``) for cold-start-free deployment.
``infer``    compile a model into the inference runtime and time
             ``Engine.run`` (``--compare`` adds the module-forward baseline;
             ``--plan`` runs a previously saved plan instead;
             ``--profile`` prints a per-op table joining measured times
             against the analytic per-op prediction).
``serve``    round-trip requests through the micro-batching inference
             server and report per-request latency next to the analytic
             device-model prediction (``--once`` for CI smoke).
             ``--models a,b --workers N`` serves several models from one
             multi-worker :class:`~repro.runtime.fleet.ServingFleet`
             (shared baked weights, admission control, fleet stats);
             ``--trace-out`` records the request lifecycle as a Chrome
             trace, ``--metrics-out`` dumps Prometheus-style counters.
``trace``    inspect a trace file: ``trace summary`` prints the top ops by
             self-time and per-model queue-wait percentiles.
``calibrate`` refit device calibration constants from a serving log
             (``--log``) or, at op granularity, from a per-op profile
             (``--per-op``, written by ``infer --profile --profile-out``).

``tables``, ``zoo``, ``explore``, ``search``, ``bench``, ``infer``,
``serve`` and ``trace`` accept ``--format json`` for machine-readable
output (the ``to_dict()`` forms from :mod:`repro.api`).  Target and device
names come from :mod:`repro.hw.registry`; the CLI holds no hardware
dispatch of its own.  The global ``--log-level`` flag (or the
``REPRO_LOG_LEVEL`` environment variable) sets the ``repro`` logger level.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path

from repro.baselines.model_zoo import MODEL_ZOO
from repro.core.results import MULTI_SEARCH_OBJECTIVES
from repro.eval.experiments import EXPERIMENTS, experiment_dict, run_experiment
from repro.hw.registry import TARGETS, device_names, target_names
from repro.utils.log import LOG_LEVELS
from repro.utils.serialization import ReproJSONEncoder


def _emit_json(payload) -> None:
    print(json.dumps(payload, indent=2, cls=ReproJSONEncoder))


def _cmd_tables(args: argparse.Namespace) -> int:
    names = sorted(EXPERIMENTS) if args.which == "all" else [args.which]
    if args.format == "json":
        _emit_json({name: experiment_dict(name) for name in names})
        return 0
    for name in names:
        print(run_experiment(name))
        print()
    return 0


def _cmd_anchors(args: argparse.Namespace) -> int:
    from repro.hw.calibration import verify_anchors

    failures = 0
    for key, (measured, paper, ok) in verify_anchors().items():
        status = "OK " if ok else "FAIL"
        print(f"[{status}] {key:30s} measured={measured:8.2f} paper={paper:8.2f}")
        failures += not ok
    return 1 if failures else 0


def _cmd_zoo(args: argparse.Namespace) -> int:
    from repro import api

    summaries = api.zoo()
    if args.format == "json":
        _emit_json({"count": len(summaries), "models": summaries})
        return 0
    print(f"{'model':18s} {'blocks':>7s} {'layers':>7s} {'MACs':>9s} {'params':>9s}")
    for s in summaries:
        print(f"{s['name']:18s} {s['blocks']:7d} {s['layers']:7d} "
              f"{s['macs'] / 1e9:8.2f}G {s['params'] / 1e6:8.2f}M")
    return 0


_UNITS = {"latency_ms": "ms", "throughput_fps": "fps"}


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro import api

    if args.plan:
        plan = api.deploy_plan(
            args.model, args.plan, device=args.device, bits=args.bits
        )
        if args.format == "json":
            _emit_json(plan.to_dict())
            return 0
        if plan.note:
            print(f"note: {plan.note}")
        print(plan.text)
        return 0

    targets = list(args.targets) if args.targets else target_names()
    devices = {}
    if args.device:
        # Explicitly requested targets must accept the device (resolve_device
        # raises otherwise); with the default "all targets" sweep the override
        # applies only where the device is registered.
        from repro.hw.registry import get_target

        devices = {
            t: args.device for t in targets
            if args.targets or args.device in get_target(t).devices
        }
    report = api.estimate(
        models=[args.model],
        targets=targets,
        bits=[args.bits],
        devices=devices,
    )
    if args.format == "json":
        _emit_json(report.to_dict())
        return 0

    record0 = report.records[0]
    print(f"{args.model}: {record0.macs / 1e9:.2f} GMACs, "
          f"{record0.params / 1e6:.2f}M params\n")
    print(f"{'target':16s} {'device':16s} {'bits':>4s} {'metric':>10s} "
          f"{'value':>10s}")
    notes = []
    details = []
    for r in report:
        metric = r.metric.split("_")[0]
        unit = _UNITS.get(r.metric, "")
        value = "NA" if not r.supported else f"{r.value:.2f} {unit}"
        print(f"{r.target:16s} {r.device:16s} {r.bits:4d} {metric:>10s} "
              f"{value:>10s}")
        if r.note:
            notes.append(f"  {r.target}: {r.note}")
        if r.extras:
            pairs = ", ".join(f"{k}={v:.1f}" for k, v in r.extras.items())
            details.append(f"  {r.target}: {pairs}")
    if details:
        print("\ndetails:")
        print("\n".join(details))
    if notes:
        print("\nnotes:")
        print("\n".join(notes))
    return 0


def _resolve_seeds(args: argparse.Namespace) -> list[int]:
    """``--seeds N`` -> N seeds starting at ``--seed``; ``--seeds a b c`` -> exact list."""
    if len(args.seeds) == 1:
        count = args.seeds[0]
        if count < 1:
            raise ValueError(f"--seeds count must be >= 1, got {count}")
        return [args.seed + i for i in range(count)]
    return list(args.seeds)


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.resilience import PREEMPTION_EXIT_CODE, Preempted, PreemptionGuard

    # "defer" mode: the first SIGINT/SIGTERM only sets a flag; the engine
    # finishes the epoch in flight, checkpoints (when --checkpoint-dir is
    # set) and raises Preempted — a second signal interrupts hard.
    try:
        with PreemptionGuard(mode="defer"):
            return _run_search(args)
    except Preempted as err:
        print(f"\n{err}", file=sys.stderr)
        if err.checkpoint is not None:
            print("resume with the same command plus --resume",
                  file=sys.stderr)
        return PREEMPTION_EXIT_CODE


def _run_search(args: argparse.Namespace) -> int:
    from repro import api
    from repro.eval.figures import render_architecture
    from repro.eval.trajectory import render_trajectory

    shared = dict(
        target=args.target,
        device=args.device,
        epochs=args.epochs,
        blocks=args.blocks,
        batch_size=12,
        resource_fraction=args.resource_fraction,
        retrain_epochs=10 if args.retrain else 0,
        name=f"cli-{args.target}",
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        max_rollbacks=args.max_rollbacks,
    )
    retry_policy = (
        api.RetryPolicy(max_retries=args.max_retries)
        if args.max_retries > 0 else None
    )

    if args.seeds:
        multi = api.search_many(
            _resolve_seeds(args),
            workers=args.workers,
            objective=args.objective,
            checkpoint_dir=args.checkpoint_dir,
            cache_dir=args.cache_dir,
            early_stop_after=args.early_stop_after,
            early_stop_keep=args.early_stop_keep,
            task_timeout=args.task_timeout,
            retry_policy=retry_policy,
            **shared,
        )
        if args.format == "json":
            _emit_json(multi.to_dict())
            return 0
        values = multi.objective_values()
        print(f"{'seed':>6s} {'spec':24s} {'converged':>9s} "
              f"{multi.objective:>14s}")
        for seed, run, value in zip(multi.seeds, multi.runs, values):
            marker = " <- best" if run is multi.best else ""
            cached = " (cached)" if seed in multi.cached_seeds else ""
            stopped = (" (early-stopped)"
                       if seed in multi.early_stopped_seeds else "")
            print(f"{seed:6d} {run.spec_name:24s} {str(run.converged):>9s} "
                  f"{value:14.4f}{marker}{cached}{stopped}")
        print(f"\nbest seed {multi.best_seed} "
              f"({multi.workers} worker(s), {multi.wall_seconds:.1f}s)\n")
        print(render_architecture(multi.best.result.spec))
        return 0

    if args.cache_dir:
        # Cached reports are keyed per batch configuration; a silent no-op
        # here would look like caching works when it does not.
        raise ValueError("--cache-dir requires --seeds (multi-seed search)")
    request = api.SearchRequest(
        seed=args.seed, checkpoint_dir=args.checkpoint_dir, **shared,
    )
    report = api.search(request)
    if args.format == "json":
        _emit_json(report.to_dict())
        return 0
    if report.resumed_from:
        print(f"resumed from: {report.resumed_from}\n")
    print(render_architecture(report.result.spec))
    print()
    print(render_trajectory(report.result.history))
    print(f"\nconverged: {report.converged}  "
          f"(train-loss drop {report.train_loss_drop:.3f}, "
          f"theta perplexity {report.final_theta_perplexity:.2f})")
    if report.retrain is not None:
        print(f"retrained top-1 error: {report.retrain.top1_error:.1f}%")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import bench

    if args.suite == "runtime":
        report = bench.run_runtime_benchmarks(quick=args.quick)
        rendered = bench.render_runtime_report(report)
        default_output = "BENCH_runtime.json"
    elif args.suite == "serving":
        report = bench.run_serving_benchmarks(quick=args.quick)
        rendered = bench.render_serving_report(report)
        default_output = "BENCH_serving.json"
    elif args.suite == "training":
        report = bench.run_training_benchmarks(quick=args.quick)
        rendered = bench.render_training_report(report)
        default_output = "BENCH_training.json"
    elif args.suite == "search":
        report = bench.run_search_benchmarks(quick=args.quick)
        rendered = bench.render_search_report(report)
        default_output = "BENCH_search.json"
    else:
        report = bench.run_benchmarks(quick=args.quick)
        rendered = bench.render_report(report)
        default_output = "BENCH_numerics.json"
    path = bench.write_report(report, args.output or default_output)
    if args.format == "json":
        _emit_json(report)
    else:
        print(rendered)
        print(f"\nwrote {path}")
    return 0


def _runtime_engine(args: argparse.Namespace):
    """Shared ``infer``/``serve`` path: compile the requested (scaled) model."""
    from repro import api

    return api.compile_model(
        args.model,
        bits=args.bits,
        seed=args.seed,
        width_mult=args.width,
        input_size=args.input_size,
        num_classes=args.classes,
    )


def _cmd_compile(args: argparse.Namespace) -> int:
    engine = _runtime_engine(args)
    path = engine.plan.save(args.out)
    layout = engine.layout  # planned (and validated) by Engine.__init__
    payload = {
        "plan": engine.plan.to_dict(),
        "path": str(path),
        "arena_elems": layout.arena_elems,
        "arena_reuse": layout.reuse_factor,
    }
    if args.format == "json":
        _emit_json(payload)
        return 0
    print(f"compiled {engine.plan.name}: {engine.plan.num_ops()} ops, "
          f"{len(engine.plan.buffers)} buffers "
          f"(arena reuse {layout.reuse_factor:.1f}x)")
    print(f"wrote {path}")
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.runtime.serve import latency_summary

    if args.runs < 1 or args.batch < 1:
        raise ValueError(
            f"--runs and --batch must be >= 1, got {args.runs}/{args.batch}"
        )
    if args.plan:
        from repro.runtime import Engine, ExecutionPlan

        if args.compare:
            raise ValueError(
                "--compare rebuilds the module forward and needs --model, "
                "not --plan"
            )
        engine = Engine(ExecutionPlan.load(args.plan))
    elif args.model:
        engine = _runtime_engine(args)
    else:
        raise ValueError("infer needs either --model or --plan")
    plan = engine.plan
    rng = np.random.default_rng(args.seed or 0)
    x = rng.normal(size=(args.batch,) + plan.input_shape)
    engine.run(x)  # warm the arena for this batch size
    samples = []
    for _ in range(args.runs):
        out = engine.run(x, profile=args.profile)
        samples.append(engine.last_ms)
    payload = {
        "plan": plan.to_dict(),
        "arena_kib": engine.arena_bytes(args.batch) / 1024.0,
        "arena_reuse": engine.layout.reuse_factor,
        "batch": args.batch,
        "runs": args.runs,
        "latency_ms": latency_summary(samples),
        "output_shape": list(out.shape),
    }
    if args.compare:
        from repro.autograd.tensor import Tensor
        from repro.nas.network import build_network

        from repro import api

        spec = api._runtime_spec(args.model, args.width, args.input_size,
                                 args.classes)
        net = build_network(spec, seed=args.seed)
        net.eval()
        xt = Tensor(x)
        # Same effective precision as the compiled plan (None falls back to
        # the spec annotation in both paths), so the comparison is
        # apples-to-apples.
        net(xt, bits=args.bits)
        import time as _time

        fwd = []
        for _ in range(args.runs):
            start = _time.perf_counter()
            net(xt, bits=args.bits)
            fwd.append((_time.perf_counter() - start) * 1e3)
        forward_summary = latency_summary(fwd)
        payload["compare"] = {
            "forward_latency_ms": forward_summary,
            "speedup": forward_summary["p50"] / payload["latency_ms"]["p50"],
        }
    if args.profile:
        from repro.obs import profile_report

        payload["profile"] = profile_report(
            engine, target=args.target, device=args.device, bits=args.bits
        )
        if args.profile_out:
            Path(args.profile_out).write_text(
                json.dumps(payload["profile"], indent=2), encoding="utf-8"
            )
    if args.format == "json":
        _emit_json(payload)
        return 0
    print(f"{plan.name}: {plan.num_ops()} ops, {len(plan.buffers)} buffers, "
          f"arena {payload['arena_kib']:.0f} KiB "
          f"(reuse {payload['arena_reuse']:.1f}x)")
    lat = payload["latency_ms"]
    print(f"batch {args.batch}: p50 {lat['p50']:.2f} ms, "
          f"mean {lat['mean']:.2f} ms over {args.runs} runs")
    if args.compare:
        cmp = payload["compare"]
        print(f"BuiltNetwork.forward p50 "
              f"{cmp['forward_latency_ms']['p50']:.2f} ms "
              f"-> {cmp['speedup']:.1f}x speedup")
    if args.profile:
        from repro.obs import render_profile_table

        print(render_profile_table(payload["profile"]))
        if args.profile_out:
            print(f"wrote profile to {args.profile_out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.models and args.model:
        raise ValueError("pass either --model or --models, not both")
    if not args.models and not args.model:
        raise ValueError("pass --model NAME or --models a,b,c")
    if args.metrics_out and not args.models:
        raise ValueError("--metrics-out reports fleet counters; it needs "
                         "--models")
    requests = 1 if args.once else args.requests
    if requests < 1:
        raise ValueError(f"--requests must be >= 1, got {requests}")
    from repro.resilience import PREEMPTION_EXIT_CODE, Preempted, PreemptionGuard

    # "raise" mode: SIGINT/SIGTERM raises Preempted at the signal point so
    # the with-blocks below unwind — the fleet drains in-flight requests via
    # close() and the trace session flushes its sinks — before we exit.
    try:
        with PreemptionGuard(mode="raise"):
            # The trace session wraps the whole serving run so
            # request-lifecycle spans from every tier land in one file,
            # written when the stack exits.
            with contextlib.ExitStack() as stack:
                if args.trace_out:
                    from repro import api

                    suffix = Path(args.trace_out).suffix.lower()
                    if suffix in (".jsonl", ".ndjson"):
                        stack.enter_context(
                            api.trace_session(jsonl=args.trace_out))
                    else:
                        stack.enter_context(
                            api.trace_session(chrome=args.trace_out))
                if args.models:
                    code = _serve_fleet(args, requests)
                else:
                    code = _serve_single(args, requests)
    except Preempted as err:
        print(f"\ninterrupted ({err.signame}); fleet drained, sinks flushed",
              file=sys.stderr)
        return PREEMPTION_EXIT_CODE
    if args.trace_out and code == 0 and args.format != "json":
        print(f"wrote trace to {args.trace_out}")
    return code


def _serve_single(args: argparse.Namespace, requests: int) -> int:
    """``repro serve --model``: the single-model micro-batching server."""
    import numpy as np

    from repro import api
    from repro.hw.report import predicted_vs_measured
    from repro.runtime import InferenceServer

    engine = _runtime_engine(args)
    rng = np.random.default_rng(args.seed or 0)
    with InferenceServer(
        engine, max_batch=args.max_batch, max_wait_ms=args.max_wait_ms
    ) as server:
        handles = [
            server.submit(rng.normal(size=engine.plan.input_shape))
            for _ in range(requests)
        ]
        outputs = [h.result(timeout=60.0) for h in handles]
        stats = server.stats()
    spec = api._runtime_spec(args.model, args.width, args.input_size,
                             args.classes)
    comparison = predicted_vs_measured(
        spec, args.target, stats["latency_ms"]["p50"],
        device=args.device, bits=args.bits,
    )
    if args.calibration_log:
        from repro.hw.calibration import append_serving_record

        append_serving_record(args.calibration_log, comparison)
    payload = {
        "plan": engine.plan.to_dict(),
        "requests": requests,
        "max_batch": args.max_batch,
        "max_wait_ms": args.max_wait_ms,
        "stats": stats,
        "predicted_vs_measured": comparison,
        "output_shape": list(outputs[0].shape),
    }
    if args.format == "json":
        _emit_json(payload)
        return 0
    print(f"served {stats['requests']} request(s) in {stats['batches']} "
          f"batch(es) (mean batch {stats['mean_batch']:.1f})")
    lat = stats["latency_ms"]
    print(f"latency p50 {lat['p50']:.2f} ms, p95 {lat['p95']:.2f} ms, "
          f"max {lat['max']:.2f} ms")
    predicted = comparison["predicted_ms"]
    if predicted:
        print(f"{comparison['target']}/{comparison['device']} predicts "
              f"{predicted:.2f} ms/frame -> measured/predicted "
              f"{comparison['measured_over_predicted']:.1f}x")
    return 0


def _serve_fleet(args: argparse.Namespace, requests: int) -> int:
    """``repro serve --models a,b --workers N``: the multi-tenant fleet path."""
    import numpy as np

    from repro import api
    from repro.hw.report import predicted_vs_measured

    names = [name.strip() for name in args.models.split(",") if name.strip()]
    if not names:
        raise ValueError("--models needs at least one model name")
    rng = np.random.default_rng(args.seed or 0)
    with api.serve_fleet(
        names,
        workers=args.workers,
        worker_kind=args.worker_kind,
        bits=args.bits,
        seed=args.seed,
        width_mult=args.width,
        input_size=args.input_size,
        num_classes=args.classes,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
    ) as fleet:
        handles = []
        for name in names:
            spec = api._runtime_spec(name, args.width, args.input_size,
                                     args.classes)
            shape = (spec.input_channels, spec.input_size, spec.input_size)
            # submit_with_retry: an open-loop submit burst can outrun the
            # bounded per-model queues; backpressure is transient, so back
            # off and retry instead of dying on QueueFull.
            handles += [
                fleet.submit_with_retry(name, rng.normal(size=shape))
                for _ in range(requests)
            ]
        for handle in handles:
            handle.result(timeout=60.0)
        stats = fleet.stats()
    if args.metrics_out:
        from repro.obs import prometheus_text

        Path(args.metrics_out).write_text(prometheus_text(stats),
                                          encoding="utf-8")
    comparisons = {}
    for name in names:
        spec = api._runtime_spec(name, args.width, args.input_size,
                                 args.classes)
        comparison = predicted_vs_measured(
            spec, args.target, stats["models"][name]["latency_ms"]["p50"],
            device=args.device, bits=args.bits,
        )
        comparisons[name] = comparison
        if args.calibration_log:
            from repro.hw.calibration import append_serving_record

            append_serving_record(args.calibration_log, comparison)
    payload = {
        "models": names,
        "workers": args.workers,
        "worker_kind": args.worker_kind,
        "requests_per_model": requests,
        "stats": stats,
        "predicted_vs_measured": comparisons,
    }
    if args.format == "json":
        _emit_json(payload)
        return 0
    fleet_block = stats["fleet"]
    print(f"fleet served {fleet_block['completed']} request(s) across "
          f"{len(names)} model(s) on {args.workers} {args.worker_kind} "
          f"worker(s)")
    for name in names:
        block = stats["models"][name]
        lat = block["latency_ms"]
        line = (f"  {name}: p50 {lat['p50']:.2f} ms, p95 {lat['p95']:.2f} ms, "
                f"p99 {lat['p99']:.2f} ms (mean batch {block['mean_batch']:.1f})")
        predicted = comparisons[name]["predicted_ms"]
        if predicted:
            line += (f"; predicted {predicted:.2f} ms -> "
                     f"{comparisons[name]['measured_over_predicted']:.1f}x")
        print(line)
    shared = stats["weights"]["shared_bytes"]
    print(f"weights: {shared / 1024:.0f} KiB mapped once "
          f"(vs {stats['weights']['unshared_bytes'] / 1024:.0f} KiB unshared)")
    if args.metrics_out:
        print(f"wrote metrics to {args.metrics_out}")
    return 0


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    from repro.obs import load_trace, render_trace_summary, summarize_trace

    summary = summarize_trace(load_trace(args.file))
    if args.format == "json":
        _emit_json(summary)
        return 0
    print(render_trace_summary(summary, top=args.top))
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.hw.calibration import fit_from_profile, fit_from_serving_log

    if bool(args.log) == bool(args.per_op):
        raise ValueError("pass exactly one of --log (serving log) or "
                         "--per-op (profile JSON)")
    if args.per_op:
        fits = fit_from_profile(args.per_op)
    else:
        fits = fit_from_serving_log(args.log)
    if not fits:
        print("no usable records (need predicted_ms and measured_ms)",
              file=sys.stderr)
        return 1
    if args.format == "json":
        _emit_json({"fits": [fit.to_dict() for fit in fits.values()]})
        return 0
    print(f"{'target':16s} {'device':16s} {'n':>4s} {'meas/pred':>10s} "
          f"{'scale':>8s} {'fitted':>8s}")
    for fit in fits.values():
        print(f"{fit.target:16s} {fit.device:16s} {fit.records:4d} "
              f"{fit.ratio_geomean:10.2f} {fit.current_scale:8.3f} "
              f"{fit.fitted_scale:8.3f}")
    return 0


def _add_format(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (json is machine-readable)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--log-level", choices=LOG_LEVELS, default=None,
                        help="set the repro logger level (overrides the "
                             "REPRO_LOG_LEVEL environment variable)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser("tables", help="regenerate paper tables/figures")
    p_tables.add_argument("--which", default="all",
                          choices=["all", *sorted(EXPERIMENTS)])
    _add_format(p_tables)
    p_tables.set_defaults(fn=_cmd_tables)

    p_anchors = sub.add_parser("anchors", help="verify calibration anchors")
    p_anchors.set_defaults(fn=_cmd_anchors)

    p_zoo = sub.add_parser("zoo", help="list model-zoo networks")
    _add_format(p_zoo)
    p_zoo.set_defaults(fn=_cmd_zoo)

    plannable = [name for name, spec in TARGETS.items()
                 if spec.plan_flow is not None]
    p_explore = sub.add_parser(
        "explore", help="device estimates for one model across targets"
    )
    p_explore.add_argument("--model", required=True, choices=sorted(MODEL_ZOO))
    p_explore.add_argument("--bits", type=int, default=32,
                           help="requested weight precision; clamped to each "
                                "target's supported menu with a note")
    p_explore.add_argument("--targets", nargs="+", choices=target_names(),
                           help="restrict to these targets (default: all)")
    p_explore.add_argument("--device", choices=device_names(),
                           help="override the target's default device")
    p_explore.add_argument("--plan", choices=plannable,
                           help="print the per-layer deployment plan for "
                                "this target instead")
    _add_format(p_explore)
    p_explore.set_defaults(fn=_cmd_explore)

    p_search = sub.add_parser("search", help="run a reduced-scale co-search")
    p_search.add_argument("--target", default="gpu", choices=target_names())
    p_search.add_argument("--device", choices=device_names(),
                          help="override the target's default device")
    p_search.add_argument("--epochs", type=int, default=6)
    p_search.add_argument("--blocks", type=int, default=3)
    p_search.add_argument("--seed", type=int, default=0)
    p_search.add_argument("--resource-fraction", type=float, default=None,
                          help="fraction of device resources as RES_ub "
                               "(default: the target's registered default)")
    p_search.add_argument("--retrain", action="store_true")
    p_search.add_argument("--seeds", type=int, nargs="+", default=None,
                          metavar="N|SEED",
                          help="batched multi-seed search: one value N runs "
                               "N seeds starting at --seed; several values "
                               "are used as the exact seed list")
    p_search.add_argument("--workers", type=int, default=1,
                          help="worker processes for --seeds (rankings are "
                               "identical for any worker count)")
    p_search.add_argument("--objective", default="total_loss",
                          choices=MULTI_SEARCH_OBJECTIVES,
                          help="final-epoch metric that picks the best seed")
    p_search.add_argument("--checkpoint-dir", default=None,
                          help="snapshot searcher state here every "
                               "--checkpoint-every epochs (per-seed subdirs "
                               "with --seeds)")
    p_search.add_argument("--checkpoint-every", type=int, default=1,
                          help="checkpoint period in epochs")
    p_search.add_argument("--cache-dir", default=None,
                          help="cross-run result cache for --seeds: finished "
                               "seeds are skipped when the shared "
                               "configuration is unchanged")
    p_search.add_argument("--resume", action="store_true",
                          help="restart from the newest checkpoint in "
                               "--checkpoint-dir (bit-identical to an "
                               "uninterrupted run)")
    p_search.add_argument("--early-stop-after", type=int, default=None,
                          metavar="E",
                          help="with --seeds: probe every seed for E epochs, "
                               "then resume only the --early-stop-keep best "
                               "to the full --epochs (dominated seeds are "
                               "killed early)")
    p_search.add_argument("--early-stop-keep", type=int, default=1,
                          metavar="K",
                          help="probe-stage survivors (default 1)")
    p_search.add_argument("--max-rollbacks", type=int, default=0,
                          help="on a diverged epoch (non-finite loss or "
                               "parameters) roll back to the last good "
                               "checkpoint and retry with a scaled-down "
                               "learning rate, at most this many times "
                               "(default 0: fail fast)")
    p_search.add_argument("--max-retries", type=int, default=0,
                          help="with --seeds: retry a crashed or timed-out "
                               "seed evaluation this many times before "
                               "giving up on it (default 0)")
    p_search.add_argument("--task-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="with --seeds: kill and retry a seed "
                               "evaluation that exceeds this wall-clock "
                               "budget")
    _add_format(p_search)
    p_search.set_defaults(fn=_cmd_search)

    p_bench = sub.add_parser(
        "bench", help="run a benchmark suite headlessly"
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="fewer repeats and a smaller search "
                              "(CI smoke mode)")
    p_bench.add_argument("--suite",
                         choices=("numerics", "runtime", "serving",
                                  "training", "search"),
                         default="numerics",
                         help="numerics: conv/supernet/search vs the "
                              "pre-refactor baseline; runtime: Engine.run vs "
                              "BuiltNetwork.forward across the zoo; training: "
                              "buffer pool + phase-decomposed gradients vs "
                              "the pre-PR training hot path; search: batched "
                              "soft-mode supernet evaluation vs the serial "
                              "oracle")
    p_bench.add_argument("--output", default=None,
                         help="where to write the JSON report (default "
                              "BENCH_<suite>.json)")
    _add_format(p_bench)
    p_bench.set_defaults(fn=_cmd_bench)

    from repro.baselines.model_zoo import buildable_models

    # Only specs the network builder can instantiate are compilable — the
    # shuffle-containing zoo entries stay analytic-model-only.
    runtime_models = buildable_models()

    def add_runtime_model_args(
        p: argparse.ArgumentParser, required: bool = True
    ) -> None:
        p.add_argument("--model", required=required, choices=runtime_models)
        p.add_argument("--bits", type=int, default=None,
                       help="bake this weight precision into the plan "
                            "(default: the spec's annotation, if any)")
        p.add_argument("--seed", type=int, default=0,
                       help="weight-initialisation seed")
        p.add_argument("--width", type=float, default=None,
                       help="channel width multiplier (scale the model down "
                            "for CPU-scale runs)")
        p.add_argument("--input-size", type=int, default=None,
                       help="override the input resolution")
        p.add_argument("--classes", type=int, default=None,
                       help="override the classifier width")

    p_compile = sub.add_parser(
        "compile", help="compile a model and save the execution plan to disk"
    )
    add_runtime_model_args(p_compile)
    p_compile.add_argument("--out", default="plan.npz",
                           help="destination .npz file (ExecutionPlan.save)")
    _add_format(p_compile)
    p_compile.set_defaults(fn=_cmd_compile)

    p_infer = sub.add_parser(
        "infer", help="compile a model and time Engine.run on random input"
    )
    add_runtime_model_args(p_infer, required=False)
    p_infer.add_argument("--plan", default=None,
                         help="run a saved plan (repro compile --out) instead "
                              "of compiling --model")
    p_infer.add_argument("--batch", type=int, default=1)
    p_infer.add_argument("--runs", type=int, default=10,
                         help="timed repetitions after one warm-up run")
    p_infer.add_argument("--compare", action="store_true",
                         help="also time BuiltNetwork.forward and report the "
                              "speedup")
    p_infer.add_argument("--profile", action="store_true",
                         help="time every plan op and print a per-op table "
                              "(joined against the analytic per-op "
                              "prediction when --target is given)")
    p_infer.add_argument("--profile-out", default=None,
                         help="also write the per-op profile payload as JSON "
                              "(consumed by repro calibrate --per-op)")
    p_infer.add_argument("--target", default=None, choices=target_names(),
                         help="hardware target for the per-op analytic "
                              "prediction column (with --profile)")
    p_infer.add_argument("--device", default=None, choices=device_names(),
                         help="override the target's default device "
                              "(with --profile --target)")
    _add_format(p_infer)
    p_infer.set_defaults(fn=_cmd_infer)

    p_serve = sub.add_parser(
        "serve", help="serve a compiled model through the micro-batching queue"
    )
    add_runtime_model_args(p_serve, required=False)
    p_serve.add_argument("--models", default=None,
                         help="comma-separated model names: serve them all "
                              "from one multi-worker fleet (instead of "
                              "--model)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="fleet worker count (with --models)")
    p_serve.add_argument("--worker-kind", choices=("thread", "process"),
                         default="thread",
                         help="fleet worker tier (with --models): 'thread' "
                              "shares the GIL, 'process' cold-starts one "
                              "child per worker from the shared weight "
                              "memmaps for true core scaling")
    p_serve.add_argument("--max-queue", type=int, default=64,
                         help="per-model admission bound before QueueFull "
                              "(with --models)")
    p_serve.add_argument("--requests", type=int, default=8,
                         help="number of random requests to round-trip "
                              "(per model with --models)")
    p_serve.add_argument("--once", action="store_true",
                         help="round-trip a single request and exit "
                              "(CI smoke mode)")
    p_serve.add_argument("--max-batch", type=int, default=8,
                         help="micro-batch coalescing limit")
    p_serve.add_argument("--max-wait-ms", type=float, default=2.0,
                         help="max time to wait for stragglers after the "
                              "first request of a batch")
    p_serve.add_argument("--target", default="gpu", choices=target_names(),
                         help="hardware target for the predicted-vs-measured "
                              "comparison")
    p_serve.add_argument("--device", choices=device_names(),
                         help="override the target's default device")
    p_serve.add_argument("--calibration-log", default=None,
                         help="append the predicted-vs-measured record to "
                              "this JSONL file (consumed by repro calibrate)")
    p_serve.add_argument("--trace-out", default=None,
                         help="record request-lifecycle spans and write them "
                              "here on exit (.json: Chrome trace-event "
                              "format, loadable in chrome://tracing or "
                              "Perfetto; .jsonl: one event per line)")
    p_serve.add_argument("--metrics-out", default=None,
                         help="write a Prometheus-style text dump of the "
                              "fleet counters here (with --models)")
    _add_format(p_serve)
    p_serve.set_defaults(fn=_cmd_serve)

    p_trace = sub.add_parser(
        "trace", help="inspect a trace file written by serve --trace-out"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_tsum = trace_sub.add_parser(
        "summary",
        help="top ops by self-time plus per-model queue-wait percentiles",
    )
    p_tsum.add_argument("file",
                        help="Chrome-trace .json or .jsonl events file")
    p_tsum.add_argument("--top", type=int, default=15,
                        help="rows in the by-self-time op table")
    _add_format(p_tsum)
    p_tsum.set_defaults(fn=_cmd_trace_summary)

    p_calibrate = sub.add_parser(
        "calibrate",
        help="refit device calibration_scale constants from measurements",
    )
    p_calibrate.add_argument("--log", default=None,
                             help="JSONL log written by "
                                  "repro serve --calibration-log")
    p_calibrate.add_argument("--per-op", default=None, dest="per_op",
                             help="per-op profile JSON written by repro "
                                  "infer --profile --profile-out: every op "
                                  "becomes an independent predicted/measured "
                                  "calibration record")
    _add_format(p_calibrate)
    p_calibrate.set_defaults(fn=_cmd_calibrate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level:
        from repro.utils.log import set_level

        set_level(args.log_level)
    try:
        return args.fn(args)
    except (ValueError, OSError) as err:
        # Registry/facade lookup errors (unknown target/device/model or an
        # incompatible combination) and bad file paths (--plan/--log) are
        # user input errors, not crashes.
        print(f"error: {err}", file=sys.stderr)
        return 2
    except Exception as err:
        from repro.resilience import DivergenceError

        if isinstance(err, DivergenceError):
            # The rollback budget is spent (or there was nothing to roll
            # back to) — report it as a run failure, not a traceback.
            print(f"error: {err}", file=sys.stderr)
            return 3
        raise


if __name__ == "__main__":
    sys.exit(main())
