"""Fault tolerance for the search tier: crash-safe, preemptable, self-healing.

A multi-hour bilevel search must survive the four ways long jobs actually
die: machine/process crashes (durable atomic checkpoints — see
:mod:`repro.core.checkpoint`), numerical divergence
(:class:`DivergenceGuard`: rollback to the last good checkpoint plus a
deterministic LR intervention, budgeted by ``max_rollbacks``), flaky or
wedged parallel workers (:class:`RetryPolicy` + the fault-tolerant
:class:`~repro.core.parallel.ParallelEvaluator`), and preemption signals
(:class:`PreemptionGuard`: checkpoint-then-exit with
:data:`PREEMPTION_EXIT_CODE`).  Every failure has a typed exception —
:class:`CorruptCheckpoint`, :class:`DivergenceError`, :class:`PoisonTask`,
:class:`Preempted` — and every recovery emits :mod:`repro.obs` spans and
counters so resilience events are visible in traces, not silent.

:mod:`repro.resilience.testing` provides the deterministic fault-injection
harness (scripted crash/hang/flaky tasks over an on-disk attempt ledger)
that CI uses to replay each failure mode, mirroring
:mod:`repro.runtime.fleet.testing` for the serving tier.  See
``docs/resilience.md`` for the failure-semantics table.
"""

from repro.resilience.errors import (
    CorruptCheckpoint,
    DivergenceError,
    PoisonTask,
    Preempted,
)
from repro.resilience.retry import RetryPolicy
from repro.resilience.preemption import (
    PREEMPTION_EXIT_CODE,
    PreemptionCallback,
    PreemptionGuard,
    preemption_requested,
)
from repro.resilience.divergence import DivergenceGuard

__all__ = [
    "CorruptCheckpoint",
    "DivergenceError",
    "DivergenceGuard",
    "PoisonTask",
    "Preempted",
    "PreemptionCallback",
    "PreemptionGuard",
    "PREEMPTION_EXIT_CODE",
    "RetryPolicy",
    "preemption_requested",
]
