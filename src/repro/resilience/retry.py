"""Reusable bounded-retry policy with decorrelated-jitter backoff.

One policy object serves every retry site in the system — the parallel
evaluator's task retries, the fleet client's ``submit_with_retry``, and
anything users build on ``api`` — so retry behaviour is configured once
and stays consistent.  The backoff schedule uses *decorrelated jitter*
(each delay drawn uniformly from ``[base, prev * 3]``, capped at
``max_delay_s``): it spreads synchronized retriers apart like full jitter
while still growing roughly exponentially.  The draw comes from a private
``random.Random(seed)``, so a given policy always produces the same
schedule — retries stay deterministic, which the bit-identical-ranking
guarantees of :class:`repro.core.parallel.ParallelEvaluator` depend on.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic decorrelated-jitter backoff.

    ``max_retries`` counts *re*-tries: a task gets ``max_retries + 1``
    total attempts.  ``max_retries=0`` disables retrying while keeping the
    policy object usable as a marker.  The schedule is a pure function of
    the dataclass fields (seeded RNG), so two policies with equal fields
    sleep identically.
    """

    #: Retries after the first attempt (total attempts = ``max_retries + 1``).
    max_retries: int = 2
    #: Floor of every backoff delay, seconds.
    base_delay_s: float = 0.05
    #: Ceiling of every backoff delay, seconds.
    max_delay_s: float = 2.0
    #: Seed for the jitter RNG — equal policies back off identically.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay_s < 0:
            raise ValueError(f"base_delay_s must be >= 0, got {self.base_delay_s}")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError(
                f"max_delay_s ({self.max_delay_s}) must be >= "
                f"base_delay_s ({self.base_delay_s})"
            )

    def delays(self) -> Iterator[float]:
        """Yield the infinite decorrelated-jitter delay sequence.

        ``d[0] = base``; ``d[n+1] = min(max, uniform(base, d[n] * 3))``.
        Deterministic for a given ``seed``.
        """
        rng = random.Random(self.seed)
        delay = self.base_delay_s
        while True:
            yield delay
            delay = min(self.max_delay_s, rng.uniform(self.base_delay_s, delay * 3.0))

    def schedule(self) -> list[float]:
        """Return the concrete delay before each retry (len == ``max_retries``)."""
        it = self.delays()
        return [next(it) for _ in range(self.max_retries)]

    def call(
        self,
        fn: Callable[[], object],
        *,
        retry_on: tuple[type[BaseException], ...] = (Exception,),
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ):
        """Call ``fn`` with bounded retries on ``retry_on`` exceptions.

        ``sleep`` is injectable so tests (and callers with their own
        pacing) never wall-clock-wait; ``on_retry(attempt, error)`` fires
        before each backoff sleep.  The final failure is re-raised
        unchanged once the budget is spent.
        """
        delays = iter(self.schedule())
        attempt = 0
        while True:
            try:
                return fn()
            except retry_on as err:
                attempt += 1
                if attempt > self.max_retries:
                    raise
                if on_retry is not None:
                    on_retry(attempt, err)
                sleep(next(delays))
