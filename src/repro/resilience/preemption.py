"""Cooperative SIGTERM/SIGINT handling: checkpoint-then-exit, never a corpse.

Long searches run under schedulers (and humans) that send SIGTERM before
SIGKILL.  The default Python behaviour — ``KeyboardInterrupt`` mid-kernel,
or instant death — wastes every epoch since the last checkpoint and can
leave half-written artefacts.  :class:`PreemptionGuard` converts the first
signal into a *request* that the work loop honours at its next safe point:

* ``mode="defer"`` (``repro search``) — the handler only sets a flag;
  :func:`preemption_requested` is polled at epoch boundaries, where the
  engine checkpoints and raises :class:`~repro.resilience.errors.Preempted`.
* ``mode="raise"`` (``repro serve``) — the handler raises
  :class:`~repro.resilience.errors.Preempted` immediately in the main
  thread, unwinding ``with`` blocks so the fleet's graceful ``close()``
  drains in-flight batches and trace/metrics sinks flush on the way out.

A second signal in ``defer`` mode escalates to an ordinary
``KeyboardInterrupt`` — the user can always insist.  The CLI maps
``Preempted`` to :data:`PREEMPTION_EXIT_CODE` (75, ``EX_TEMPFAIL``: "try
again later", which a resumable search genuinely is).
"""

from __future__ import annotations

import signal
import threading
from types import FrameType
from typing import Callable, Iterable

from repro.resilience.errors import Preempted
from repro.utils.log import get_logger

__all__ = [
    "PREEMPTION_EXIT_CODE",
    "PreemptionCallback",
    "PreemptionGuard",
    "preemption_requested",
]

logger = get_logger("resilience")

#: Process exit code for a clean preemption exit (``EX_TEMPFAIL``): the run
#: was interrupted but is resumable — schedulers treat it as "retry later".
PREEMPTION_EXIT_CODE = 75

_DEFAULT_SIGNALS = (signal.SIGINT, signal.SIGTERM)

#: The innermost active guard, consulted by :func:`preemption_requested`.
_ACTIVE: "PreemptionGuard | None" = None


def preemption_requested() -> bool:
    """True when an active :class:`PreemptionGuard` has caught a signal.

    Cheap enough to poll every epoch; always ``False`` when no guard is
    installed (library use stays signal-agnostic by default).
    """
    guard = _ACTIVE
    return guard is not None and guard.requested


class PreemptionGuard:
    """Context manager installing cooperative SIGINT/SIGTERM handlers.

    Handlers can only be installed from the main thread; elsewhere the
    guard degrades to an inert no-op (with a debug log) rather than
    failing — worker threads simply do not get preemption handling.
    Restores the previous handlers on exit and supports nesting in the
    trivial way: the innermost guard wins.
    """

    def __init__(
        self,
        mode: str = "defer",
        signals: Iterable[signal.Signals] = _DEFAULT_SIGNALS,
    ) -> None:
        if mode not in ("defer", "raise"):
            raise ValueError(f"mode must be 'defer' or 'raise', got {mode!r}")
        self.mode = mode
        self._signals = tuple(signals)
        self._previous: dict[int, object] = {}
        self._outer: "PreemptionGuard | None" = None
        self._installed = False
        #: Signal number of the first caught signal, or ``None``.
        self.signum: int | None = None

    @property
    def requested(self) -> bool:
        """True once a signal has been caught by this guard."""
        return self.signum is not None

    def _handle(self, signum: int, frame: FrameType | None) -> None:
        if self.signum is not None and self.mode == "defer":
            # Second signal: the user insists — escalate to a hard interrupt.
            logger.warning("second signal %d: escalating to KeyboardInterrupt", signum)
            raise KeyboardInterrupt
        self.signum = signum
        logger.warning(
            "received signal %d: %s",
            signum,
            "will checkpoint and exit at the next safe point"
            if self.mode == "defer"
            else "raising Preempted",
        )
        if self.mode == "raise":
            raise Preempted(signum)

    def __enter__(self) -> "PreemptionGuard":
        global _ACTIVE
        if threading.current_thread() is threading.main_thread():
            try:
                for sig in self._signals:
                    self._previous[int(sig)] = signal.signal(sig, self._handle)
                self._installed = True
            except (ValueError, OSError):  # pragma: no cover - platform quirk
                self._previous.clear()
        if not self._installed:
            logger.debug("preemption guard inert (not on the main thread)")
        self._outer, _ACTIVE = _ACTIVE, self
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        if self._installed:
            for signum, previous in self._previous.items():
                signal.signal(signum, previous)  # type: ignore[arg-type]
            self._previous.clear()
            self._installed = False
        _ACTIVE = self._outer
        self._outer = None


class PreemptionCallback:
    """Epoch callback: on a pending preemption request, checkpoint and raise.

    Appended after the :class:`~repro.core.checkpoint.CheckpointCallback`
    in the engine's callback list so a cadence save for this epoch has
    already happened; ``save_now()`` then either reuses that file or
    force-saves one, and the callback raises
    :class:`~repro.resilience.errors.Preempted` carrying the path.  With
    no checkpoint callback configured the raise still happens — the run
    exits cleanly at the epoch boundary, it just has nothing to save.
    """

    def __init__(self, checkpoint_callback: object | None = None) -> None:
        self._checkpoint = checkpoint_callback

    def __call__(self, record: object) -> None:
        """Raise :class:`Preempted` (after saving) if a signal is pending."""
        if not preemption_requested():
            return
        path: str | None = None
        save_now: Callable[[], object] | None = getattr(
            self._checkpoint, "save_now", None
        )
        if save_now is not None:
            path = str(save_now())
        guard = _ACTIVE
        signum = guard.signum if guard is not None and guard.signum else signal.SIGTERM
        raise Preempted(
            int(signum), checkpoint=path, epoch=getattr(record, "epoch", None)
        )
