"""Deterministic fault injection for the parallel evaluator.

Mirrors :mod:`repro.runtime.fleet.testing` for the *search* tier: the
fault-tolerance claims of :class:`repro.core.parallel.ParallelEvaluator`
(crash recovery, timeout kills, retry backoff, poison quarantine, and —
above all — rankings bit-identical to the fault-free run) must be
*replayed*, not hoped for.  The obstacle is that retried tasks cross
process boundaries: a payload cannot carry "fail on the first attempt
only" as in-memory state, because each attempt may run in a different
worker process — or in a freshly rebuilt pool.  The harness therefore
keeps attempt counts in an **on-disk ledger**: every execution of task
``i`` appends one byte to ``<ledger>/task-<i>.attempts`` and the byte
count *is* the attempt index, valid across workers, pool rebuilds, and
``os._exit`` crashes (the byte is flushed before the fault fires).

Fault scripts are per-task tuples of actions consumed one per attempt::

    task = FaultyTask(train_spec_worker)
    payloads = [
        task.payload(0, ledger, p0),                      # always clean
        task.payload(1, ledger, p1, faults=(CRASH, OK)),  # die once, then fine
        task.payload(2, ledger, p2, faults=(ERROR, ERROR, OK)),
    ]
    results = ParallelEvaluator(workers=4, retry=policy).map(task, payloads)

Actions: :data:`CRASH` (``os._exit`` → ``BrokenProcessPool``), :data:`HANG`
(sleep forever → per-task timeout), :data:`ERROR` (raise
:class:`FaultInjected`), :func:`slow` (delay, then run), :data:`OK`.
Attempts beyond the script run clean, so innocent tasks resubmitted after
a pool rebuild are unaffected and results depend only on the payload —
which is what makes the ranking-equality assertions exact.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = [
    "CRASH",
    "ERROR",
    "HANG",
    "OK",
    "FaultInjected",
    "FaultyPayload",
    "FaultyTask",
    "slow",
]

#: Fault action: kill the worker process mid-task (``os._exit``) — the
#: evaluator sees ``BrokenProcessPool`` and rebuilds the executor.
CRASH = "crash"
#: Fault action: sleep far past any test timeout — exercises the per-task
#: timeout kill-and-rebuild path.
HANG = "hang"
#: Fault action: raise :class:`FaultInjected` — a flaky task error, retried
#: in-place without a pool rebuild.
ERROR = "error"
#: Fault action: run the wrapped function normally.
OK = "ok"

_HANG_SECONDS = 3600.0


def slow(seconds: float) -> str:
    """Fault action: delay one attempt by ``seconds``, then run normally."""
    return f"slow:{float(seconds)}"


class FaultInjected(RuntimeError):
    """Scripted task failure raised by the :data:`ERROR` action."""

    def __init__(self, task_id: int, attempt: int) -> None:
        super().__init__(f"injected fault: task {task_id} attempt {attempt}")
        #: Ledger id of the failing task.
        self.task_id = task_id
        #: Zero-based attempt index the fault fired on.
        self.attempt = attempt


def _claim_attempt(ledger: str, task_id: int) -> int:
    """Atomically claim and return this execution's attempt index.

    Appends one byte to the task's ledger file and reads the resulting
    size; O_APPEND makes concurrent claims safe, and the flush *before*
    the fault action fires means even an ``os._exit`` crash leaves its
    attempt recorded.
    """
    path = os.path.join(ledger, f"task-{task_id}.attempts")
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, b".")
        return os.fstat(fd).st_size - 1
    finally:
        os.close(fd)


def attempts_made(ledger: str, task_id: int) -> int:
    """Return how many times task ``task_id`` has started executing."""
    path = os.path.join(ledger, f"task-{task_id}.attempts")
    try:
        return os.stat(path).st_size
    except FileNotFoundError:
        return 0


@dataclass(frozen=True)
class FaultyPayload:
    """One task's payload plus its fault script and ledger coordinates.

    Plain picklable data — this is what actually crosses the process
    boundary.  ``payload`` is forwarded untouched to the wrapped function
    once the scripted faults for the current attempt are exhausted.
    """

    #: Stable id keying the attempt ledger (independent of submit order).
    task_id: int
    #: Directory holding the per-task attempt files.
    ledger: str
    #: Fault actions consumed one per attempt; attempts beyond run clean.
    faults: tuple[str, ...]
    #: The real payload for the wrapped worker function.
    payload: object


@dataclass(frozen=True)
class FaultyTask:
    """Picklable wrapper running a fault script before the real function.

    ``fn`` must itself be picklable (a module-level function) for process
    pools, exactly like any other :class:`ParallelEvaluator` task.
    """

    #: The real worker function invoked with ``FaultyPayload.payload``.
    fn: Callable[[object], object]

    def payload(
        self,
        task_id: int,
        ledger: str,
        payload: object,
        faults: Sequence[str] = (),
    ) -> FaultyPayload:
        """Build the scripted payload for one task."""
        return FaultyPayload(task_id, str(ledger), tuple(faults), payload)

    def __call__(self, scripted: FaultyPayload) -> object:
        """Claim an attempt, perform its scripted action, then run ``fn``."""
        attempt = _claim_attempt(scripted.ledger, scripted.task_id)
        action = (
            scripted.faults[attempt] if attempt < len(scripted.faults) else OK
        )
        if action == CRASH:
            os._exit(17)
        elif action == HANG:
            time.sleep(_HANG_SECONDS)
        elif action == ERROR:
            raise FaultInjected(scripted.task_id, attempt)
        elif action.startswith("slow:"):
            time.sleep(float(action.split(":", 1)[1]))
        return self.fn(scripted.payload)
